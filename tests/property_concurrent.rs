//! Linearizability property suite for [`wsm_core::ConcurrentMap`], plus
//! interleaving stress for the lock-free MPSC publication shards.
//!
//! Random multi-threaded op histories (1–4 worker threads, a tiny overlapping
//! keyspace so operations genuinely race) are executed against the map while
//! every operation records an *invoke* and a *return* ticket from one global
//! atomic witness clock.  A Wing–Gong style checker (shared with the async
//! suite — see `tests/common/linearize.rs`) then searches for a
//! linearization: a total order of the completed operations that (a) respects
//! real time (if `a` returned before `b` was invoked, `a` comes first) and
//! (b) replays correctly against a sequential `BTreeMap` oracle.  The search
//! walks one-op-per-thread frontiers with memoization on (frontier, oracle
//! state), which keeps it polynomial for these history sizes.
//!
//! Both combiner regimes are exercised per history: the small-batch inline
//! fast path (threshold `usize::MAX`) and the pooled path (threshold `0`,
//! every batch shipped to the work-stealing pool).
//!
//! The sharded front-end (`wsm_shard::ShardedMap`) is checked *per shard*:
//! the partitioner is a pure function of the key, so every operation on a key
//! flows through exactly one shard, and the front-end's guarantee is that
//! each shard's slice of the history is linearizable.  Each random
//! multi-threaded history is projected onto every shard's key set (keeping
//! per-thread order and the recorded witness intervals) and each projection
//! is checked with the same Wing–Gong search — under both waiter hand-off
//! modes ([`wsm_core::Handoff`]), and through both the single-op and the
//! batched (`run_batch`) surface.

use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use wsm_core::{BatchedMap, ConcurrentMap, Handoff, M1, M2};
use wsm_shard::{Partitioner, ShardedMap};
use wsm_sync::MpscShard;

#[path = "common/linearize.rs"]
mod linearize;

use linearize::{linearizable, linearizable_from, project_onto, Done, Op};

/// Builds per-thread op lists from generated `(kind, key)` pairs; insert
/// values are globally unique so the oracle can distinguish every write.
fn decode_history(raw: &[Vec<(u8, u8)>]) -> Vec<Vec<Op>> {
    raw.iter()
        .enumerate()
        .map(|(t, ops)| {
            ops.iter()
                .enumerate()
                .map(|(i, &(kind, key))| {
                    let key = u64::from(key);
                    match kind {
                        0 => Op::Search(key),
                        1 => Op::Insert(key, (t as u64) * 1000 + i as u64 + 1),
                        _ => Op::Delete(key),
                    }
                })
                .collect()
        })
        .collect()
}

/// Runs every thread's ops against the map, recording witness tickets.
fn execute<M>(map: ConcurrentMap<u64, u64, M>, per_thread: &[Vec<Op>]) -> Vec<Vec<Done>>
where
    M: BatchedMap<u64, u64> + Send,
{
    let map = &map;
    let clock = AtomicU64::new(0);
    let clock = &clock;
    std::thread::scope(|s| {
        let handles: Vec<_> = per_thread
            .iter()
            .enumerate()
            .map(|(t, ops)| {
                s.spawn(move || {
                    ops.iter()
                        .map(|&op| {
                            let invoke = clock.fetch_add(1, Ordering::SeqCst);
                            let result = match op {
                                Op::Search(k) => map.search(t, k),
                                Op::Insert(k, v) => map.insert(t, k, v),
                                Op::Delete(k) => map.delete(t, k),
                            };
                            let ret = clock.fetch_add(1, Ordering::SeqCst);
                            Done {
                                op,
                                result,
                                invoke,
                                ret,
                            }
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

/// Runs every thread's ops against a sharded map through its single-op API,
/// recording witness tickets.
fn execute_sharded<M, P>(map: &ShardedMap<u64, u64, M, P>, per_thread: &[Vec<Op>]) -> Vec<Vec<Done>>
where
    M: BatchedMap<u64, u64> + Send,
    P: Partitioner<u64>,
{
    let clock = AtomicU64::new(0);
    let clock = &clock;
    std::thread::scope(|s| {
        let handles: Vec<_> = per_thread
            .iter()
            .map(|ops| {
                s.spawn(move || {
                    ops.iter()
                        .map(|&op| {
                            let invoke = clock.fetch_add(1, Ordering::SeqCst);
                            let result = match op {
                                Op::Search(k) => map.get(k),
                                Op::Insert(k, v) => map.insert(k, v),
                                Op::Delete(k) => map.remove(k),
                            };
                            let ret = clock.fetch_add(1, Ordering::SeqCst);
                            Done {
                                op,
                                result,
                                invoke,
                                ret,
                            }
                        })
                        .collect::<Vec<_>>()
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

/// Like [`execute_sharded`], but each thread submits its ops in
/// `chunk`-sized batches through `run_batch`.  All ops of a batch share the
/// batch's invoke/return interval — which is exactly their real interval:
/// the caller invoked them together and observed all results together.
/// Per-thread Done order stays program order; within a batch that is sound
/// because the shard applies same-key ops in sub-batch order and distinct
/// keys commute in the oracle.
fn execute_sharded_batched<M, P>(
    map: &ShardedMap<u64, u64, M, P>,
    per_thread: &[Vec<Op>],
    chunk: usize,
) -> Vec<Vec<Done>>
where
    M: BatchedMap<u64, u64> + Send,
    P: Partitioner<u64>,
{
    let clock = AtomicU64::new(0);
    let clock = &clock;
    std::thread::scope(|s| {
        let handles: Vec<_> = per_thread
            .iter()
            .map(|ops| {
                s.spawn(move || {
                    let mut dones = Vec::with_capacity(ops.len());
                    for batch in ops.chunks(chunk.max(1)) {
                        let invoke = clock.fetch_add(1, Ordering::SeqCst);
                        let results = map.run_batch(
                            batch
                                .iter()
                                .map(|&op| match op {
                                    Op::Search(k) => wsm_core::Operation::Search(k),
                                    Op::Insert(k, v) => wsm_core::Operation::Insert(k, v),
                                    Op::Delete(k) => wsm_core::Operation::Delete(k),
                                })
                                .collect(),
                        );
                        let ret = clock.fetch_add(1, Ordering::SeqCst);
                        for (&op, result) in batch.iter().zip(results) {
                            dones.push(Done {
                                op,
                                result: result.value().copied(),
                                invoke,
                                ret,
                            });
                        }
                    }
                    dones
                })
            })
            .collect();
        handles.into_iter().map(|h| h.join().unwrap()).collect()
    })
}

/// Executes a history against `ShardedMap` (both hand-off modes, single-op
/// and batched surfaces) and asserts each shard's projected history
/// linearizes.
fn check_sharded(per_thread: &[Vec<Op>], shards: usize) {
    for handoff in [Handoff::Doorbell, Handoff::Cell] {
        let map = ShardedMap::with_shards(shards, |_| M1::<u64, u64>::new(4)).with_handoff(handoff);
        let histories = execute_sharded(&map, per_thread);
        for shard in 0..map.shards() {
            let projected = project_onto(&histories, |k| map.shard_of(&k) == shard);
            assert!(
                linearizable(&projected),
                "shard {shard}/{shards} not linearizable ({handoff:?}, point ops): \
                 {projected:#?}"
            );
        }

        let map = ShardedMap::with_shards(shards, |_| M1::<u64, u64>::new(4)).with_handoff(handoff);
        let histories = execute_sharded_batched(&map, per_thread, 3);
        for shard in 0..map.shards() {
            let projected = project_onto(&histories, |k| map.shard_of(&k) == shard);
            assert!(
                linearizable(&projected),
                "shard {shard}/{shards} not linearizable ({handoff:?}, batched): \
                 {projected:#?}"
            );
        }
    }
}

/// Preloads an M1-backed map sequentially, executes the history at both
/// combiner regimes, and asserts a linearization exists from the preloaded
/// state.
fn check_preloaded_m1(per_thread: &[Vec<Op>], preload: &BTreeMap<u64, u64>) {
    let shards = per_thread.len().max(1);
    for threshold in [usize::MAX, 0] {
        let mut inner = M1::<u64, u64>::new(4);
        inner.run_ops(
            preload
                .iter()
                .map(|(&k, &v)| wsm_core::Operation::Insert(k, v))
                .collect(),
        );
        let map = ConcurrentMap::new(inner, shards).with_inline_threshold(threshold);
        let histories = execute(map, per_thread);
        assert!(
            linearizable_from(&histories, preload.clone()),
            "no linearization over preloaded M1 (inline threshold {threshold}): {histories:#?}"
        );
    }
}

/// [`check_preloaded_m1`] for the pipelined M2.
fn check_preloaded_m2(per_thread: &[Vec<Op>], preload: &BTreeMap<u64, u64>) {
    let shards = per_thread.len().max(1);
    for threshold in [usize::MAX, 0] {
        let mut inner = M2::<u64, u64>::new(4);
        inner.run_ops(
            preload
                .iter()
                .map(|(&k, &v)| wsm_core::Operation::Insert(k, v))
                .collect(),
        );
        let map = ConcurrentMap::new(inner, shards).with_inline_threshold(threshold);
        let histories = execute(map, per_thread);
        assert!(
            linearizable_from(&histories, preload.clone()),
            "no linearization over preloaded M2 (inline threshold {threshold}): {histories:#?}"
        );
    }
}

/// Executes the history on an M1-backed map at the given inline threshold
/// and asserts a linearization exists.
fn check_m1(per_thread: &[Vec<Op>], inline_threshold: usize) {
    let shards = per_thread.len().max(1);
    let map =
        ConcurrentMap::new(M1::<u64, u64>::new(4), shards).with_inline_threshold(inline_threshold);
    let histories = execute(map, per_thread);
    assert!(
        linearizable(&histories),
        "no linearization (inline threshold {inline_threshold}): {histories:#?}"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Random histories on M1, both combiner regimes.
    #[test]
    fn concurrent_m1_histories_linearize(
        raw in prop::collection::vec(
            prop::collection::vec((0u8..3, 0u8..3), 1..7),
            1..5,
        )
    ) {
        let per_thread = decode_history(&raw);
        check_m1(&per_thread, usize::MAX); // inline small-batch fast path
        check_m1(&per_thread, 0); // every batch through the pool
    }

    /// Random histories on the pipelined M2, both combiner regimes.
    #[test]
    fn concurrent_m2_histories_linearize(
        raw in prop::collection::vec(
            prop::collection::vec((0u8..3, 0u8..3), 1..6),
            1..4,
        )
    ) {
        let per_thread = decode_history(&raw);
        let shards = per_thread.len().max(1);
        for threshold in [usize::MAX, 0] {
            let map = ConcurrentMap::new(M2::<u64, u64>::new(4), shards)
                .with_inline_threshold(threshold);
            let histories = execute(map, &per_thread);
            prop_assert!(
                linearizable(&histories),
                "no linearization (inline threshold {threshold}): {histories:#?}"
            );
        }
    }

    /// Working-set-order reads over a preloaded cascade: threads hammer a
    /// tiny hot set (plus occasional cold keys), so every batch exercises the
    /// recency-list move-to-front and promotion-transfer paths of the fused
    /// `RecencyMap` — the arena splice code, not just tree lookups.  Checked
    /// on M1 and M2, both combiner regimes.
    #[test]
    fn working_set_order_reads_linearize(
        raw in prop::collection::vec(
            prop::collection::vec((0u8..4, 0u8..8), 1..6),
            1..4,
        )
    ) {
        // Decode with a read-heavy skew: selector 0-2 → search, 3 → insert.
        // Key 0-5 hit the preloaded hot range, 6-7 map to cold keys deep in
        // the cascade.
        let per_thread: Vec<Vec<Op>> = raw
            .iter()
            .enumerate()
            .map(|(t, ops)| {
                ops.iter()
                    .enumerate()
                    .map(|(i, &(kind, key))| {
                        let key = if key < 6 { u64::from(key) } else { 50 + u64::from(key) };
                        if kind < 3 {
                            Op::Search(key)
                        } else {
                            Op::Insert(key, (t as u64) * 1000 + i as u64 + 1)
                        }
                    })
                    .collect()
            })
            .collect();
        let preload: BTreeMap<u64, u64> = (0..64u64).map(|k| (k, k)).collect();
        check_preloaded_m1(&per_thread, &preload);
        check_preloaded_m2(&per_thread, &preload);
    }

    /// Eviction-shaped mixes over a preloaded cascade: deletes of resident
    /// keys force hole-refill transfers (take_front off deeper segments) and
    /// fresh inserts force overflow transfers (take_back), so the
    /// inter-segment splices of the fused map run under real concurrency.
    #[test]
    fn eviction_shaped_mixes_linearize(
        raw in prop::collection::vec(
            prop::collection::vec((0u8..4, 0u8..16), 1..6),
            1..4,
        )
    ) {
        // Selector 0 → search, 1-2 → delete (eviction pressure), 3 → fresh
        // insert far above the preloaded keyspace.
        let per_thread: Vec<Vec<Op>> = raw
            .iter()
            .enumerate()
            .map(|(t, ops)| {
                ops.iter()
                    .enumerate()
                    .map(|(i, &(kind, key))| match kind {
                        0 => Op::Search(u64::from(key) * 4),
                        1 | 2 => Op::Delete(u64::from(key) * 4),
                        _ => Op::Insert(
                            1000 + (t as u64) * 100 + i as u64,
                            (t as u64) * 1000 + i as u64 + 1,
                        ),
                    })
                    .collect()
            })
            .collect();
        let preload: BTreeMap<u64, u64> = (0..64u64).map(|k| (k, k)).collect();
        check_preloaded_m1(&per_thread, &preload);
        check_preloaded_m2(&per_thread, &preload);
    }

    /// Random histories on the sharded front-end: every shard's projected
    /// history must linearize, under both hand-off modes and through both
    /// the single-op and the batched surface.
    #[test]
    fn sharded_histories_linearize_per_shard(
        raw in prop::collection::vec(
            prop::collection::vec((0u8..3, 0u8..5), 1..7),
            1..5,
        ),
        shards in 2usize..5,
    ) {
        let per_thread = decode_history(&raw);
        check_sharded(&per_thread, shards);
    }

    /// The degenerate S=1 sharded map is exactly one `ConcurrentMap` behind
    /// the router: the whole (unprojected) history must linearize.
    #[test]
    fn single_shard_router_histories_linearize(
        raw in prop::collection::vec(
            prop::collection::vec((0u8..3, 0u8..3), 1..6),
            1..4,
        )
    ) {
        let per_thread = decode_history(&raw);
        let map = ShardedMap::with_shards(1, |_| M1::<u64, u64>::new(4));
        let histories = execute_sharded_batched(&map, &per_thread, 2);
        prop_assert!(linearizable(&histories), "S=1 router: {histories:#?}");
    }

    /// MPSC shard stress: pool-scheduled producers with seeded yield
    /// schedules race an OS-thread combiner; nothing may be lost or
    /// duplicated.
    #[test]
    fn mpsc_shard_no_loss_under_pool_schedules(
        seed in any::<u64>(),
        producers in 1usize..5,
        per_producer in 64u64..512,
    ) {
        let shard: Arc<MpscShard<u64>> = Arc::new(MpscShard::with_capacity(8));
        let done = Arc::new(AtomicBool::new(false));
        let collected = Arc::new(Mutex::new(Vec::new()));
        let drainer = {
            let shard = Arc::clone(&shard);
            let done = Arc::clone(&done);
            let collected = Arc::clone(&collected);
            std::thread::spawn(move || {
                let mut out = Vec::new();
                while !done.load(Ordering::Acquire) {
                    shard.drain_into(&mut out);
                    std::thread::yield_now();
                }
                shard.drain_into(&mut out);
                *collected.lock().unwrap() = out;
            })
        };
        // Producers run as pool tasks: the seeded schedule perturbs the
        // interleaving between the work-stealing workers and the drainer.
        wsm_pool::with_threads(producers, || {
            wsm_pool::scope(|s| {
                for p in 0..producers as u64 {
                    let shard = &shard;
                    s.spawn(move |_| {
                        let mut schedule = seed.wrapping_add(p.wrapping_mul(0x9E3779B97F4A7C15)) | 1;
                        for i in 0..per_producer {
                            shard.publish(p * per_producer + i);
                            schedule = schedule
                                .wrapping_mul(6364136223846793005)
                                .wrapping_add(1442695040888963407);
                            if schedule & 6 == 0 {
                                std::thread::yield_now();
                            }
                        }
                    });
                }
            });
        });
        done.store(true, Ordering::Release);
        drainer.join().unwrap();
        let out = collected.lock().unwrap();
        let expected = producers as u64 * per_producer;
        prop_assert_eq!(out.len() as u64, expected, "lost publications");
        let distinct: std::collections::BTreeSet<u64> = out.iter().copied().collect();
        prop_assert_eq!(distinct.len() as u64, expected, "duplicated publications");
    }
}

/// The checker itself must reject impossible histories: a search that
/// returns a value nobody ever inserted, and a real-time violation.
#[test]
fn checker_rejects_impossible_histories() {
    // Value from nowhere.
    let h = vec![vec![Done {
        op: Op::Search(1),
        result: Some(99),
        invoke: 0,
        ret: 1,
    }]];
    assert!(!linearizable(&h));

    // Real-time violation: the insert returned before the search began, yet
    // the search missed it (and no other op could explain the miss).
    let h = vec![
        vec![Done {
            op: Op::Insert(1, 7),
            result: None,
            invoke: 0,
            ret: 1,
        }],
        vec![Done {
            op: Op::Search(1),
            result: None,
            invoke: 2,
            ret: 3,
        }],
    ];
    assert!(!linearizable(&h));

    // The same pair with overlapping intervals IS linearizable.
    let h = vec![
        vec![Done {
            op: Op::Insert(1, 7),
            result: None,
            invoke: 0,
            ret: 3,
        }],
        vec![Done {
            op: Op::Search(1),
            result: None,
            invoke: 1,
            ret: 2,
        }],
    ];
    assert!(linearizable(&h));
}

/// A projected single-threaded sharded history must match the oracle exactly
/// on every shard (the degenerate 1-worker case of the sharded suite).
#[test]
fn single_threaded_sharded_history_matches_oracle() {
    let ops = vec![vec![
        Op::Insert(1, 10),
        Op::Insert(2, 20),
        Op::Search(1),
        Op::Delete(2),
        Op::Insert(1, 11),
        Op::Search(2),
        Op::Delete(1),
    ]];
    let map = ShardedMap::with_shards(3, |_| M1::<u64, u64>::new(4));
    let histories = execute_sharded(&map, &ops);
    let results: Vec<Option<u64>> = histories[0].iter().map(|d| d.result).collect();
    assert_eq!(
        results,
        vec![None, None, Some(10), Some(20), Some(10), None, Some(11)]
    );
    for shard in 0..map.shards() {
        let projected = project_onto(&histories, |k| map.shard_of(&k) == shard);
        assert!(linearizable(&projected), "shard {shard}");
    }
}

/// Deterministic single-threaded histories must match the oracle exactly
/// (the degenerate 1-worker case of the suite).
#[test]
fn single_threaded_history_matches_oracle() {
    let ops = vec![vec![
        Op::Insert(1, 10),
        Op::Search(1),
        Op::Insert(1, 20),
        Op::Delete(1),
        Op::Search(1),
        Op::Delete(2),
    ]];
    let map = ConcurrentMap::new(M1::<u64, u64>::new(4), 1);
    let histories = execute(map, &ops);
    let results: Vec<Option<u64>> = histories[0].iter().map(|d| d.result).collect();
    assert_eq!(
        results,
        vec![None, Some(10), Some(10), Some(20), None, None]
    );
    assert!(linearizable(&histories));
}
