//! Workspace smoke test: every public map structure in the workspace agrees
//! with `std::collections::BTreeMap` on the same randomized operation
//! sequence.
//!
//! This is the fast cross-structure oracle future refactors run first: it
//! covers the sequential structures (`M0`, `IaconoMap`, `SplayMap`, `AvlMap`),
//! the raw 2-3 tree (`Tree23`), and the batched parallel maps (`M1`, `M2`)
//! driven through `run_batch`, all on one deterministic pseudo-random mixed
//! workload of searches, inserts and deletes over a small key space (so that
//! hits, misses, replacements and re-inserts all occur).

use std::collections::BTreeMap;
use wsm_core::{BatchedMap, OpId, OpResult, Operation, TaggedOp, M1, M2};
use wsm_seq::{AvlMap, IaconoMap, InstrumentedMap, SplayMap, M0};
use wsm_twothree::Tree23;

#[derive(Clone, Copy, Debug)]
enum Op {
    Search(u64),
    Insert(u64, u64),
    Delete(u64),
}

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

fn random_ops(n: usize, key_space: u64, seed: u64) -> Vec<Op> {
    let mut state = seed;
    (0..n)
        .map(|_| {
            let key = xorshift(&mut state) % key_space;
            match xorshift(&mut state) % 4 {
                0 | 1 => Op::Search(key),
                2 => Op::Insert(key, xorshift(&mut state)),
                _ => Op::Delete(key),
            }
        })
        .collect()
}

/// Applies one op to the model and returns the expected affected value.
fn model_step(model: &mut BTreeMap<u64, u64>, op: Op) -> Option<u64> {
    match op {
        Op::Search(k) => model.get(&k).copied(),
        Op::Insert(k, v) => model.insert(k, v),
        Op::Delete(k) => model.remove(&k),
    }
}

fn check_sequential<M: InstrumentedMap<u64, u64>>(name: &str, map: &mut M, ops: &[Op]) {
    let mut model = BTreeMap::new();
    for (i, &op) in ops.iter().enumerate() {
        let expected = model_step(&mut model, op);
        let (got, _) = match op {
            Op::Search(k) => map.search(&k),
            Op::Insert(k, v) => map.insert(k, v),
            Op::Delete(k) => map.remove(&k),
        };
        assert_eq!(
            got, expected,
            "{name}: op {i} ({op:?}) disagrees with BTreeMap"
        );
        assert_eq!(map.len(), model.len(), "{name}: size diverged at op {i}");
    }
}

#[test]
fn sequential_structures_agree_with_btreemap() {
    let ops = random_ops(3_000, 96, 0xFEED);
    check_sequential("M0", &mut M0::new(), &ops);
    check_sequential("IaconoMap", &mut IaconoMap::new(), &ops);
    check_sequential("SplayMap", &mut SplayMap::new(), &ops);
    check_sequential("AvlMap", &mut AvlMap::new(), &ops);
}

#[test]
fn tree23_agrees_with_btreemap() {
    // Tree23 is not an InstrumentedMap; drive its single-item API directly.
    let ops = random_ops(3_000, 96, 0xBEEF);
    let mut model = BTreeMap::new();
    let mut tree: Tree23<u64, u64> = Tree23::new();
    for (i, &op) in ops.iter().enumerate() {
        let expected = model_step(&mut model, op);
        let got = match op {
            Op::Search(k) => tree.get(&k).copied(),
            Op::Insert(k, v) => tree.insert(k, v),
            Op::Delete(k) => tree.remove(&k),
        };
        assert_eq!(
            got, expected,
            "Tree23: op {i} ({op:?}) disagrees with BTreeMap"
        );
        assert_eq!(tree.len(), model.len(), "Tree23: size diverged at op {i}");
    }
    tree.check_invariants();
}

fn check_batched<M: BatchedMap<u64, u64>>(name: &str, map: &mut M, ops: &[Op], batch: usize) {
    let mut model = BTreeMap::new();
    let mut next_id: OpId = 0;
    for chunk in ops.chunks(batch) {
        let base = next_id;
        let expected: Vec<Option<u64>> =
            chunk.iter().map(|&op| model_step(&mut model, op)).collect();
        let tagged: Vec<TaggedOp<u64, u64>> = chunk
            .iter()
            .map(|&op| {
                let t = TaggedOp {
                    id: next_id,
                    op: match op {
                        Op::Search(k) => Operation::Search(k),
                        Op::Insert(k, v) => Operation::Insert(k, v),
                        Op::Delete(k) => Operation::Delete(k),
                    },
                };
                next_id += 1;
                t
            })
            .collect();
        let (results, _) = map.run_batch(tagged);
        let by_id: BTreeMap<OpId, OpResult<u64>> = results.into_iter().collect();
        for (i, exp) in expected.iter().enumerate() {
            let got = by_id[&(base + i as OpId)].value().copied();
            assert_eq!(
                &got, exp,
                "{name}: op {i} of chunk at base {base} disagrees with BTreeMap"
            );
        }
        assert_eq!(map.len(), model.len(), "{name}: size diverged");
    }
}

#[test]
fn batched_maps_agree_with_btreemap() {
    let ops = random_ops(3_000, 96, 0xC0DE);
    check_batched("M1", &mut M1::new(4), &ops, 33);
    check_batched("M2", &mut M2::new(4), &ops, 33);
}
