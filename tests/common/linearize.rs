//! Shared Wing–Gong linearizability checker for the workspace property
//! suites (`tests/property_concurrent.rs`, `tests/property_service.rs`).
//!
//! A history is a per-thread (or per-task) list of completed operations,
//! each carrying its result and an *invoke*/*return* ticket pair from one
//! global atomic witness clock.  [`linearizable`] searches for a
//! linearization: a total order of the completed operations that (a)
//! respects real time (if `a` returned before `b` was invoked, `a` comes
//! first) and (b) replays correctly against a sequential `BTreeMap` oracle.
//! The search walks one-op-per-thread frontiers with memoization on
//! (frontier, oracle state), which keeps it polynomial for property-sized
//! histories.
//!
//! Included via `#[path = "common/linearize.rs"]` from each test target, so
//! items unused by one target are expected.
#![allow(dead_code)]

use std::collections::{BTreeMap, HashSet};

/// One operation of a generated history.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Op {
    Search(u64),
    Insert(u64, u64),
    Delete(u64),
}

/// One completed operation: what ran, what it returned, and its witness
/// interval.
#[derive(Clone, Debug)]
pub struct Done {
    pub op: Op,
    /// `Search` → the found value; `Insert`/`Delete` → the previous value.
    pub result: Option<u64>,
    pub invoke: u64,
    pub ret: u64,
}

/// The key an operation touches.
pub fn key_of(op: Op) -> u64 {
    match op {
        Op::Search(k) | Op::Insert(k, _) | Op::Delete(k) => k,
    }
}

/// Projects per-thread histories onto one shard's key set: per-thread order
/// and witness intervals are preserved, ops owned by other shards drop out.
pub fn project_onto<F: Fn(u64) -> bool>(histories: &[Vec<Done>], owns: F) -> Vec<Vec<Done>> {
    histories
        .iter()
        .map(|h| h.iter().filter(|d| owns(key_of(d.op))).cloned().collect())
        .collect()
}

/// Applies `op` to the oracle; returns whether the recorded result matches.
pub fn oracle_step(model: &mut BTreeMap<u64, u64>, done: &Done) -> bool {
    let expected = match done.op {
        Op::Search(k) => model.get(&k).copied(),
        Op::Insert(k, v) => model.insert(k, v),
        Op::Delete(k) => model.remove(&k),
    };
    expected == done.result
}

/// Memo key of the linearization search: (per-thread frontier, oracle
/// contents).
type SearchState = (Vec<usize>, Vec<(u64, u64)>);

/// Wing–Gong linearizability check with memoization on
/// (per-thread frontier, oracle contents).
pub fn linearizable(histories: &[Vec<Done>]) -> bool {
    linearizable_from(histories, BTreeMap::new())
}

/// [`linearizable`] against a map that was preloaded (sequentially, before
/// any concurrent operation was invoked) with `initial` — used by the
/// working-set-order and eviction histories, which need a populated segment
/// cascade so the concurrent ops actually traverse the recency lists.
pub fn linearizable_from(histories: &[Vec<Done>], initial: BTreeMap<u64, u64>) -> bool {
    fn dfs(
        histories: &[Vec<Done>],
        positions: &mut Vec<usize>,
        model: &mut BTreeMap<u64, u64>,
        seen: &mut HashSet<SearchState>,
    ) -> bool {
        if positions
            .iter()
            .enumerate()
            .all(|(t, &p)| p == histories[t].len())
        {
            return true;
        }
        let state_key = (
            positions.clone(),
            model.iter().map(|(&k, &v)| (k, v)).collect::<Vec<_>>(),
        );
        if !seen.insert(state_key) {
            return false;
        }
        // The earliest unlinearized return bounds which ops may go next: an
        // op whose invoke is after some pending op's return cannot precede
        // it.  Within a thread ops are sequential, so the per-thread next op
        // carries that thread's minimal pending return.
        let min_pending_ret = positions
            .iter()
            .enumerate()
            .filter_map(|(t, &p)| histories[t].get(p).map(|d| d.ret))
            .min()
            .expect("not all threads are done");
        for t in 0..histories.len() {
            let p = positions[t];
            let Some(done) = histories[t].get(p) else {
                continue;
            };
            if done.invoke > min_pending_ret {
                continue; // some pending op returned before this one began
            }
            let mut trial = model.clone();
            if !oracle_step(&mut trial, done) {
                continue;
            }
            positions[t] += 1;
            let ok = dfs(histories, positions, &mut trial, seen);
            positions[t] -= 1;
            if ok {
                return true;
            }
        }
        false
    }

    let mut positions = vec![0; histories.len()];
    let mut model = initial;
    let mut seen = HashSet::new();
    dfs(histories, &mut positions, &mut model, &mut seen)
}
