//! Property-based tests for the substrates: the batched fanout-B tree (swept
//! over B in {2, 8, 16}, B = 2 being the paper's 2-3 shape) against a
//! `BTreeMap` model, the recency map's ordering laws, and the entropy sorts'
//! correctness, stability and bound-tracking.

use proptest::prelude::*;
use std::collections::BTreeMap;
use wsm_model::insert_working_set_bound;
use wsm_sort::{esort, pesort, pesort_group};
use wsm_twothree::{RecencyMap, Tree23};

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn tree23_batch_ops_match_btreemap(
        batches in prop::collection::vec(
            (prop::collection::btree_set(any::<u16>(), 1..60), any::<bool>()),
            1..12,
        ),
        fan in prop::sample::select(vec![2usize, 8, 16]),
    ) {
        let mut model: BTreeMap<u16, u16> = BTreeMap::new();
        let mut tree: Tree23<u16, u16> = Tree23::with_fanout(fan);
        for (keys, is_insert) in batches {
            let keys: Vec<u16> = keys.into_iter().collect();
            if is_insert {
                let items: Vec<(u16, u16)> = keys.iter().map(|&k| (k, k.wrapping_mul(3))).collect();
                let replaced = tree.batch_insert(items.clone());
                for ((k, v), r) in items.into_iter().zip(replaced) {
                    prop_assert_eq!(r, model.insert(k, v));
                }
            } else {
                let removed = tree.batch_remove(&keys);
                for (k, r) in keys.iter().zip(removed) {
                    prop_assert_eq!(r.map(|(_, v)| v), model.remove(k));
                }
            }
            tree.check_invariants();
            prop_assert_eq!(tree.len(), model.len());
        }
        for (k, v) in &model {
            prop_assert_eq!(tree.get(k), Some(v));
        }
    }

    #[test]
    fn tree23_split_and_join_preserve_content(
        keys in prop::collection::btree_set(any::<u32>(), 1..200),
        pivot in any::<u32>(),
        fan in prop::sample::select(vec![2usize, 8, 16]),
    ) {
        let items: Vec<(u32, u32)> = keys.iter().map(|&k| (k, k)).collect();
        let mut tree: Tree23<u32, u32> = Tree23::from_sorted_with_fanout(items.clone(), fan);
        let (found, right) = tree.split_off(&pivot);
        tree.check_invariants();
        right.check_invariants();
        prop_assert_eq!(found.is_some(), keys.contains(&pivot));
        prop_assert!(tree.keys().iter().all(|&k| k < pivot));
        prop_assert!(right.keys().iter().all(|&k| k > pivot));
        // Re-join (re-inserting the pivot if it was split out).
        if let Some((k, v)) = found {
            tree.insert(k, v);
        }
        tree.join_greater(right);
        tree.check_invariants();
        prop_assert_eq!(tree.len(), keys.len());
    }

    #[test]
    fn recency_map_pop_order_is_lru(
        keys in prop::collection::vec(any::<u16>(), 1..100),
    ) {
        // Insert each key at the front in sequence (re-inserting moves it to
        // the front); popping from the back must yield least-recently-used
        // keys first.
        let mut map: RecencyMap<u16, ()> = RecencyMap::new();
        for &k in &keys {
            map.remove(&k);
            map.insert_front(k, ());
        }
        // Expected LRU order: last occurrence position, ascending.
        let mut last_pos: BTreeMap<u16, usize> = BTreeMap::new();
        for (i, &k) in keys.iter().enumerate() {
            last_pos.insert(k, i);
        }
        let mut expected: Vec<(usize, u16)> = last_pos.into_iter().map(|(k, i)| (i, k)).collect();
        expected.sort();
        let expected_lru: Vec<u16> = expected.into_iter().map(|(_, k)| k).collect();
        let popped: Vec<u16> = map.take_back(expected_lru.len()).into_iter().map(|(k, _)| k).collect();
        // pop_back returns most-recent-first of the popped suffix, so reverse.
        let popped_lru: Vec<u16> = popped.into_iter().rev().collect();
        prop_assert_eq!(popped_lru, expected_lru);
    }

    #[test]
    fn sorts_agree_with_std_and_group_correctly(
        items in prop::collection::vec(0u16..64, 0..400),
    ) {
        let mut expected = items.clone();
        expected.sort();
        let (e, _) = esort(&items);
        let (p, _) = pesort(items.clone());
        prop_assert_eq!(&e, &expected);
        prop_assert_eq!(&p, &expected);

        let (groups, _) = pesort_group(&items);
        // Groups are in ascending key order and positions are increasing.
        prop_assert!(groups.windows(2).all(|w| w[0].0 < w[1].0));
        let mut total = 0;
        for (key, positions) in &groups {
            prop_assert!(positions.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(positions.iter().all(|&i| items[i] == *key));
            total += positions.len();
        }
        prop_assert_eq!(total, items.len());
    }

    #[test]
    fn esort_work_is_within_constant_factor_of_iwl(
        items in prop::collection::vec(0u16..32, 50..500),
    ) {
        let (_, cost) = esort(&items);
        let iw = insert_working_set_bound(&items).max(1);
        prop_assert!(
            cost.work < 60 * iw,
            "ESort work {} vs IW_L {}", cost.work, iw
        );
    }
}
