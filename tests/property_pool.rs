//! Property and stress tests for the work-stealing pool (`wsm-pool`): the
//! parallel code paths must be observationally identical to their sequential
//! counterparts, at every pool size.
//!
//! This is the workspace-level safety net for PR 2's tentpole: `rayon::join`
//! now runs on real threads, so `pesort` and the `Tree23::par_*` batch
//! operations execute with genuine interleaving.  Determinism is a theorem
//! about the algorithms (divide-and-conquer with order-preserving merges),
//! and these tests check it empirically under randomized inputs and
//! different worker counts.

use proptest::prelude::*;
use wsm_sort::{pesort, pesort_by, pesort_group};
use wsm_twothree::Tree23;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn parallel_pesort_matches_std_sort(
        items in prop::collection::vec(any::<u32>(), 0..5000),
        threads in 1usize..5,
    ) {
        let mut expected = items.clone();
        expected.sort();
        let got = wsm_pool::with_threads(threads, move || pesort(items).0);
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn parallel_pesort_is_stable(
        keys in prop::collection::vec(0u8..16, 0..4000),
        threads in 1usize..5,
    ) {
        // Tag every item with its arrival index; sorting by key only must
        // keep tags ascending within each key, on every pool size.
        let tagged: Vec<(u8, usize)> = keys.into_iter().zip(0..).collect();
        let sorted = wsm_pool::with_threads(threads, move || {
            pesort_by(tagged, &|a: &(u8, usize), b: &(u8, usize)| a.0.cmp(&b.0)).0
        });
        for w in sorted.windows(2) {
            prop_assert!(w[0].0 <= w[1].0);
            if w[0].0 == w[1].0 {
                prop_assert!(w[0].1 < w[1].1, "equal keys reordered under parallelism");
            }
        }
    }

    #[test]
    fn parallel_pesort_group_matches_sequential_grouping(
        keys in prop::collection::vec(0u16..64, 0..3000),
    ) {
        // pesort_group drives M1/M2's duplicate combining; its output must
        // not depend on whether the sort underneath ran in parallel.
        let par = wsm_pool::with_threads(4, {
            let keys = keys.clone();
            move || pesort_group(&keys).0
        });
        let seq = wsm_pool::with_threads(1, move || pesort_group(&keys).0);
        prop_assert_eq!(par, seq);
    }

    #[test]
    fn par_batch_insert_matches_sequential(
        keys in prop::collection::btree_set(any::<u16>(), 0..3000),
        threads in 1usize..5,
    ) {
        let items: Vec<(u16, u16)> = keys.iter().map(|&k| (k, k.wrapping_mul(7))).collect();
        let seq_replaced = {
            let mut tree: Tree23<u16, u16> = Tree23::new();
            let replaced = tree.batch_insert(items.clone());
            tree.check_invariants();
            replaced
        };
        let (par_replaced, len) = wsm_pool::with_threads(threads, move || {
            let mut tree: Tree23<u16, u16> = Tree23::new();
            let replaced = tree.par_batch_insert(items);
            tree.check_invariants();
            (replaced, tree.len())
        });
        prop_assert_eq!(par_replaced, seq_replaced);
        prop_assert_eq!(len, keys.len());
    }

    #[test]
    fn par_batch_roundtrip_matches_sequential(
        insert_keys in prop::collection::btree_set(any::<u16>(), 1..2000),
        remove_keys in prop::collection::btree_set(any::<u16>(), 1..2000),
    ) {
        // Insert one sorted batch, remove another (overlapping) one, read
        // everything back — in parallel and sequentially — and compare all
        // three result vectors plus the surviving content.
        let items: Vec<(u16, u32)> = insert_keys.iter().map(|&k| (k, u32::from(k) + 1)).collect();
        let removals: Vec<u16> = remove_keys.iter().copied().collect();
        let probe: Vec<u16> = (0..2048).map(|i| (i * 31) as u16).collect();

        let run = |parallel: bool| {
            let items = items.clone();
            let removals = removals.clone();
            let probe = probe.clone();
            move || {
                let mut tree: Tree23<u16, u32> = Tree23::new();
                let replaced = if parallel {
                    tree.par_batch_insert(items)
                } else {
                    tree.batch_insert(items)
                };
                let removed = if parallel {
                    tree.par_batch_remove(&removals)
                } else {
                    tree.batch_remove(&removals)
                };
                tree.check_invariants();
                let found: Vec<Option<u32>> = if parallel {
                    tree.par_batch_get(&probe).into_iter().map(|v| v.copied()).collect()
                } else {
                    tree.batch_get(&probe).into_iter().map(|v| v.copied()).collect()
                };
                (replaced, removed, found, tree.len())
            }
        };
        let par = wsm_pool::with_threads(4, run(true));
        let seq = run(false)();
        prop_assert_eq!(par, seq);
    }
}

/// Stress: many OS threads running parallel sorts concurrently on the global
/// pool, interleaved with fork-join tree batch operations — results must
/// still be deterministic.
#[test]
fn concurrent_external_sorts_stay_correct() {
    let handles: Vec<_> = (0..6u64)
        .map(|seed| {
            std::thread::spawn(move || {
                let mut state = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) + 1;
                let mut next = move || {
                    state ^= state << 13;
                    state ^= state >> 7;
                    state ^= state << 17;
                    state
                };
                for round in 0..5 {
                    let n = 2000 + (round * 997) as usize;
                    let items: Vec<u64> = (0..n).map(|_| next() % 1000).collect();
                    let mut expected = items.clone();
                    expected.sort();
                    let (got, _) = pesort(items);
                    assert_eq!(got, expected, "seed {seed} round {round}");
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

/// Stress: nested parallelism — a scope spawning joins that themselves sort —
/// must neither deadlock nor corrupt results.
#[test]
fn nested_scope_and_join_stress() {
    use std::sync::atomic::{AtomicUsize, Ordering};
    let done = AtomicUsize::new(0);
    wsm_pool::scope(|s| {
        for t in 0..8usize {
            let done = &done;
            s.spawn(move |_| {
                let items: Vec<u64> = (0..3000).map(|i| (i * 37 + t as u64 * 101) % 500).collect();
                let mut expected = items.clone();
                expected.sort();
                let (got, _) = pesort(items);
                assert_eq!(got, expected);
                done.fetch_add(1, Ordering::SeqCst);
            });
        }
    });
    assert_eq!(done.load(Ordering::SeqCst), 8);
}
