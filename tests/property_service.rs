//! Property suite for the async service front-end (`wsm_svc::WsMapService`).
//!
//! Three layers of evidence, over both working-set maps (M1, M2), shard
//! counts S ∈ {1, 4}, and all three waiter hand-off modes
//! ([`wsm_core::Handoff`]):
//!
//! * **Sequential differential** — one `block_on` client awaiting batches in
//!   order must match a `BTreeMap` oracle result-for-result: the async plumbing
//!   (deposit → pump → waker/self-wake → harvest) adds no reorderings when
//!   there is no concurrency to blame.
//! * **Disjoint-range differential** — concurrent client tasks on an
//!   executor, each owning a private key range.  Each client's completion
//!   order *is* its program order, so every client must match its own
//!   sequential oracle exactly, however its batches interleaved with others
//!   in the combiner.
//! * **Linearizability** — concurrent client tasks on an overlapping
//!   keyspace.  Each awaited batch is one invoke/return interval on the
//!   witness clock, and the Wing–Gong checker (shared with the blocking
//!   suite — `tests/common/linearize.rs`) must find a linearization of each
//!   shard's projected history.
//!
//! Batches through the service share their interval soundly for the same
//! reason as the blocking `run_batch` suite: per-key order within a batch is
//! preserved by the shard's group resolution, and distinct keys commute in
//! the oracle.

use proptest::prelude::*;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use wsm_core::{BatchedMap, Handoff, M1, M2};
use wsm_shard::ShardedMap;
use wsm_svc::{block_on, Executor, WsMapService};

#[path = "common/linearize.rs"]
mod linearize;

use linearize::{linearizable, project_onto, Done, Op};

/// All three waiter hand-off modes — every suite below runs under each.
const HANDOFFS: [Handoff; 3] = [Handoff::Doorbell, Handoff::Cell, Handoff::Waker];

/// Builds per-task op lists from generated `(kind, key)` pairs; insert
/// values are globally unique so the oracle can distinguish every write.
fn decode_history(raw: &[Vec<(u8, u8)>]) -> Vec<Vec<Op>> {
    raw.iter()
        .enumerate()
        .map(|(t, ops)| {
            ops.iter()
                .enumerate()
                .map(|(i, &(kind, key))| {
                    let key = u64::from(key);
                    match kind {
                        0 => Op::Search(key),
                        1 => Op::Insert(key, (t as u64) * 1000 + i as u64 + 1),
                        _ => Op::Delete(key),
                    }
                })
                .collect()
        })
        .collect()
}

fn to_operation(op: Op) -> wsm_core::Operation<u64, u64> {
    match op {
        Op::Search(k) => wsm_core::Operation::Search(k),
        Op::Insert(k, v) => wsm_core::Operation::Insert(k, v),
        Op::Delete(k) => wsm_core::Operation::Delete(k),
    }
}

/// What a sequential `BTreeMap` oracle says each op returns, in order.
fn oracle_results(ops: &[Op]) -> Vec<Option<u64>> {
    let mut model = BTreeMap::new();
    ops.iter()
        .map(|&op| match op {
            Op::Search(k) => model.get(&k).copied(),
            Op::Insert(k, v) => model.insert(k, v),
            Op::Delete(k) => model.remove(&k),
        })
        .collect()
}

type Backend<M> = ShardedMap<u64, u64, M, wsm_shard::HashPartitioner>;

fn service<M>(
    make: impl FnMut(usize) -> M,
    shards: usize,
    handoff: Handoff,
) -> (Arc<Backend<M>>, WsMapService<u64, u64, Backend<M>>)
where
    M: BatchedMap<u64, u64> + Send,
{
    let map = Arc::new(ShardedMap::with_shards(shards, make).with_handoff(handoff));
    (Arc::clone(&map), WsMapService::from_arc(map))
}

/// One client awaiting its batches in order, recording witness intervals.
/// The whole awaited batch shares one interval — the client invoked its ops
/// together and observed all results together.
async fn run_client<M>(
    svc: WsMapService<u64, u64, Backend<M>>,
    ops: Vec<Op>,
    chunk: usize,
    clock: Arc<AtomicU64>,
) -> Vec<Done>
where
    M: BatchedMap<u64, u64> + Send,
{
    let mut dones = Vec::with_capacity(ops.len());
    for batch in ops.chunks(chunk.max(1)) {
        let invoke = clock.fetch_add(1, Ordering::SeqCst);
        let call = svc.call_batch(batch.iter().map(|&op| to_operation(op)).collect());
        let results = call.await;
        let ret = clock.fetch_add(1, Ordering::SeqCst);
        for (&op, result) in batch.iter().zip(results) {
            dones.push(Done {
                op,
                result: result.value().copied(),
                invoke,
                ret,
            });
        }
    }
    dones
}

/// Runs per-client histories as concurrent executor tasks; returns each
/// client's completed history (client order preserved).
fn run_async_history<M>(
    make: impl FnMut(usize) -> M,
    shards: usize,
    handoff: Handoff,
    per_client: &[Vec<Op>],
    chunk: usize,
) -> (Arc<Backend<M>>, Vec<Vec<Done>>)
where
    M: BatchedMap<u64, u64> + Send + 'static,
{
    let (map, svc) = service(make, shards, handoff);
    let exec = Executor::new(2);
    let clock = Arc::new(AtomicU64::new(0));
    let handles: Vec<_> = per_client
        .iter()
        .map(|ops| {
            let svc = svc.clone();
            let ops = ops.clone();
            let clock = Arc::clone(&clock);
            exec.spawn(run_client(svc, ops, chunk, clock))
        })
        .collect();
    let histories = handles.into_iter().map(block_on).collect();
    (map, histories)
}

/// Sequential differential for one map type across S ∈ {1, 4} and all
/// hand-off modes.
fn check_sequential<M>(mut make: impl FnMut(usize) -> M, ops: &[Op], chunk: usize)
where
    M: BatchedMap<u64, u64> + Send + 'static,
{
    let expected = oracle_results(ops);
    for shards in [1usize, 4] {
        for handoff in HANDOFFS {
            let (_, histories) =
                run_async_history(&mut make, shards, handoff, &[ops.to_vec()], chunk);
            let got: Vec<Option<u64>> = histories[0].iter().map(|d| d.result).collect();
            assert_eq!(
                got, expected,
                "sequential async differential diverged (S={shards}, {handoff:?})"
            );
        }
    }
}

/// Disjoint-range differential: each concurrent client must match its own
/// sequential oracle exactly.
fn check_disjoint<M>(mut make: impl FnMut(usize) -> M, per_client: &[Vec<Op>], chunk: usize)
where
    M: BatchedMap<u64, u64> + Send + 'static,
{
    for shards in [1usize, 4] {
        for handoff in HANDOFFS {
            let (_, histories) = run_async_history(&mut make, shards, handoff, per_client, chunk);
            for (client, (ops, history)) in per_client.iter().zip(&histories).enumerate() {
                let got: Vec<Option<u64>> = history.iter().map(|d| d.result).collect();
                assert_eq!(
                    got,
                    oracle_results(ops),
                    "disjoint-range client {client} diverged (S={shards}, {handoff:?})"
                );
            }
        }
    }
}

/// Linearizability of overlapping async histories, checked per shard.
fn check_linearizable<M>(mut make: impl FnMut(usize) -> M, per_client: &[Vec<Op>], chunk: usize)
where
    M: BatchedMap<u64, u64> + Send + 'static,
{
    for shards in [1usize, 4] {
        for handoff in HANDOFFS {
            let (map, histories) = run_async_history(&mut make, shards, handoff, per_client, chunk);
            for shard in 0..shards {
                let projected = project_onto(&histories, |k| map.shard_of(&k) == shard);
                assert!(
                    linearizable(&projected),
                    "shard {shard}/{shards} of async history not linearizable \
                     ({handoff:?}): {projected:#?}"
                );
            }
        }
    }
}

/// Offsets every key into a per-client private range (clients stay disjoint
/// however the generator overlapped them).
fn make_disjoint(per_client: &[Vec<Op>]) -> Vec<Vec<Op>> {
    per_client
        .iter()
        .enumerate()
        .map(|(t, ops)| {
            let base = 100 * t as u64;
            ops.iter()
                .map(|&op| match op {
                    Op::Search(k) => Op::Search(base + k),
                    Op::Insert(k, v) => Op::Insert(base + k, v),
                    Op::Delete(k) => Op::Delete(base + k),
                })
                .collect()
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// One client, batches awaited in order: async results ≡ BTreeMap, over
    /// M1 and M2, S ∈ {1, 4}, all three hand-off modes.
    #[test]
    fn sequential_async_batches_match_oracle(
        raw in prop::collection::vec((0u8..3, 0u8..8), 1..24),
        chunk in 1usize..6,
    ) {
        let ops = decode_history(std::slice::from_ref(&raw)).remove(0);
        check_sequential(|_| M1::<u64, u64>::new(4), &ops, chunk);
        check_sequential(|_| M2::<u64, u64>::new(4), &ops, chunk);
    }

    /// Concurrent clients on disjoint ranges: each client's completion order
    /// must equal its program order against its own oracle.
    #[test]
    fn disjoint_concurrent_async_clients_match_oracle(
        raw in prop::collection::vec(
            prop::collection::vec((0u8..3, 0u8..6), 1..10),
            2..5,
        ),
        chunk in 1usize..5,
    ) {
        let per_client = make_disjoint(&decode_history(&raw));
        check_disjoint(|_| M1::<u64, u64>::new(4), &per_client, chunk);
        check_disjoint(|_| M2::<u64, u64>::new(4), &per_client, chunk);
    }

    /// Concurrent clients on an overlapping keyspace: every shard's
    /// projected async history must linearize (Wing–Gong, shared checker).
    #[test]
    fn overlapping_async_histories_linearize(
        raw in prop::collection::vec(
            prop::collection::vec((0u8..3, 0u8..4), 1..7),
            2..4,
        ),
        chunk in 1usize..4,
    ) {
        let per_client = decode_history(&raw);
        check_linearizable(|_| M1::<u64, u64>::new(4), &per_client, chunk);
        check_linearizable(|_| M2::<u64, u64>::new(4), &per_client, chunk);
    }
}

/// Deterministic smoke: the full service surface (`batch_insert` /
/// `batch_search` / `batch_remove`) against the oracle in waker mode.
#[test]
fn service_surface_matches_oracle_waker_mode() {
    let (_, svc) = service(|_| M1::<u64, u64>::new(4), 4, Handoff::Waker);
    let prev = block_on(svc.batch_insert((0..100u64).map(|k| (k, k * 2)).collect()));
    assert!(prev.iter().all(Option::is_none));
    let got = block_on(svc.batch_search((0..100u64).collect()));
    assert!(got
        .iter()
        .enumerate()
        .all(|(k, v)| *v == Some(k as u64 * 2)));
    let removed = block_on(svc.batch_remove((0..50u64).collect()));
    assert!(removed.iter().all(Option::is_some));
    let rest = block_on(svc.batch_search((0..100u64).collect()));
    assert_eq!(rest.iter().filter(|v| v.is_some()).count(), 50);
}
