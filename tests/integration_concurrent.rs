//! Integration tests for the concurrent (implicitly batched) front-end: many
//! OS threads hammer the same map and per-key sequential consistency is
//! checked.

use std::sync::Arc;
use wsm_core::{ConcurrentMap, M1, M2};

#[test]
fn concurrent_m1_per_key_history_is_sequential() {
    // Each thread owns a disjoint key range and performs a deterministic
    // sequence on it; every intermediate result must match the sequential
    // expectation even though batches interleave keys from all threads.
    let map = Arc::new(ConcurrentMap::new(M1::<u64, u64>::new(8), 8));
    let threads = 8u64;
    let keys_per_thread = 300u64;
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let map = Arc::clone(&map);
            std::thread::spawn(move || {
                let base = t * 10_000;
                for k in 0..keys_per_thread {
                    let key = base + k;
                    assert_eq!(map.search(t as usize, key), None);
                    assert_eq!(map.insert(t as usize, key, 1), None);
                    assert_eq!(map.insert(t as usize, key, 2), Some(1));
                    assert_eq!(map.search(t as usize, key), Some(2));
                    if k % 3 == 0 {
                        assert_eq!(map.delete(t as usize, key), Some(2));
                        assert_eq!(map.search(t as usize, key), None);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let kept = keys_per_thread - keys_per_thread.div_ceil(3);
    assert_eq!(map.len(), (threads * kept) as usize);
    // The inner M1 is still structurally sound.
    let inner = Arc::try_unwrap(map).ok().expect("sole owner").into_inner();
    inner.check_invariants();
}

#[test]
fn concurrent_m2_shared_hot_keys_count_correctly() {
    // All threads increment shared counters via read-modify-write; the total
    // number of successful increments must equal the number of attempts even
    // though the counter keys are hot and heavily batched.
    let map = Arc::new(ConcurrentMap::new(M2::<u64, u64>::new(4), 4));
    for k in 0..8u64 {
        map.insert(0, k, 0);
    }
    let threads = 4usize;
    let per = 300u64;
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let map = Arc::clone(&map);
            std::thread::spawn(move || {
                // Each thread owns two counters, so updates to a key are not
                // racy even though reads interleave globally.
                let mine = [2 * t as u64, 2 * t as u64 + 1];
                for i in 0..per {
                    let key = mine[(i % 2) as usize];
                    let cur = map.search(t, key).expect("counter exists");
                    map.insert(t, key, cur + 1);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    let total: u64 = (0..8u64).map(|k| map.search(0, k).unwrap()).sum();
    assert_eq!(total, threads as u64 * per);
}

#[test]
fn concurrent_map_survives_bursty_contention() {
    // Alternating bursts of inserts and deletes from many threads on an
    // overlapping key range; the final size is checked against a recount.
    let map = Arc::new(ConcurrentMap::new(M1::<u64, u64>::new(8), 8));
    let threads = 6usize;
    let range = 2_000u64;
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let map = Arc::clone(&map);
            std::thread::spawn(move || {
                for i in 0..range {
                    // Every thread inserts every key, so the last writer wins;
                    // deletes target a fixed stripe.
                    map.insert(t, i, t as u64);
                    if i % 5 == 0 {
                        map.delete(t, i);
                    }
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    // Keys divisible by 5 may or may not survive (insert/delete races between
    // threads are linearized arbitrarily); all others must be present.
    for key in 0..range {
        let present = map.search(0, key).is_some();
        if key % 5 != 0 {
            assert!(present, "key {key} must be present");
        }
    }
}
