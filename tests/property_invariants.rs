//! Deletion-heavy invariant stress for the working-set maps.
//!
//! PR 4 tightened `M2::check_invariants` from a `3p²` prefix-deficit
//! allowance to Lemma 16's `2p²`, backed by the eager hole-refill maintenance
//! cascade.  These tests interleave cut batches with `check_invariants` after
//! *every* run — exactly the pattern that exposes a maintenance scheduler
//! that lets refill deficits linger behind a balanced boundary (the old
//! conditional cascade needed the `3p²` escape hatch to survive this file).
//!
//! The measured-charge ceilings (`wsm_twothree::cost::MEASURED_CEILING`) are
//! debug assertions inside every charge the maps pay, so simply driving these
//! workloads in the test profile also pins measured work ≤ Lemma bound on
//! random batches.

use proptest::prelude::*;
use std::collections::BTreeMap;
use wsm_core::{BatchedMap, OpId, OpResult, Operation, TaggedOp, M1, M2};

fn xorshift(state: &mut u64) -> u64 {
    *state ^= *state << 13;
    *state ^= *state >> 7;
    *state ^= *state << 17;
    *state
}

/// Runs one tagged batch against map and model, checking results and sizes.
fn run_round<M: BatchedMap<u64, u64>>(
    map: &mut M,
    model: &mut BTreeMap<u64, u64>,
    ops: Vec<Operation<u64, u64>>,
    next_id: &mut OpId,
) {
    let base = *next_id;
    let expected: Vec<OpResult<u64>> = ops
        .iter()
        .map(|op| match op {
            Operation::Search(k) => OpResult::Search(model.get(k).copied()),
            Operation::Insert(k, v) => OpResult::Insert(model.insert(*k, *v)),
            Operation::Delete(k) => OpResult::Delete(model.remove(k)),
        })
        .collect();
    let batch: Vec<TaggedOp<u64, u64>> = ops
        .into_iter()
        .map(|op| {
            let t = TaggedOp { id: *next_id, op };
            *next_id += 1;
            t
        })
        .collect();
    let (results, _) = map.run_batch(batch);
    let by_id: BTreeMap<OpId, OpResult<u64>> = results.into_iter().collect();
    for (i, exp) in expected.iter().enumerate() {
        assert_eq!(&by_id[&(base + i as u64)], exp, "result {i} diverged");
    }
    assert_eq!(map.len(), model.len());
}

/// Builds one deletion-heavy batch: ~60% deletes of keys currently present,
/// the rest searches and fresh inserts.
fn deletion_heavy_batch(
    model: &BTreeMap<u64, u64>,
    size: usize,
    state: &mut u64,
    fresh_base: &mut u64,
) -> Vec<Operation<u64, u64>> {
    let present: Vec<u64> = model.keys().copied().collect();
    (0..size)
        .map(|_| {
            let roll = xorshift(state) % 10;
            if roll < 6 && !present.is_empty() {
                Operation::Delete(present[(xorshift(state) % present.len() as u64) as usize])
            } else if roll < 8 && !present.is_empty() {
                Operation::Search(present[(xorshift(state) % present.len() as u64) as usize])
            } else {
                *fresh_base += 1;
                Operation::Insert(*fresh_base, *fresh_base)
            }
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The test that would have caught the 3p² relaxation: grow M2 far enough
    /// to have a final slab, then hammer it with delete-dominated cut batches
    /// and assert the full Lemma 16 invariant set (2p² prefix deficit, 2p²
    /// filter bound) after every single run.
    #[test]
    fn m2_deletion_heavy_keeps_lemma16_invariants(
        p in 2usize..7,
        seed in any::<u64>(),
        rounds in 4usize..12,
    ) {
        let mut state = seed | 1;
        let mut model = BTreeMap::new();
        let mut m2 = M2::new(p);
        let mut next_id: OpId = 0;
        // Load enough items that the final slab exists even for small p.
        let load = 1500 + (xorshift(&mut state) % 1000);
        run_round(
            &mut m2,
            &mut model,
            (0..load).map(|i| Operation::Insert(i, i)).collect(),
            &mut next_id,
        );
        m2.check_invariants();
        prop_assert!(m2.num_segments() > m2.first_slab_len(), "need a final slab");

        let mut fresh_base = load;
        for _ in 0..rounds {
            let size = 1 + (xorshift(&mut state) as usize % (2 * p * p));
            let ops = deletion_heavy_batch(&model, size, &mut state, &mut fresh_base);
            run_round(&mut m2, &mut model, ops, &mut next_id);
            m2.check_invariants();
        }
    }

    /// Same pressure on M1 (whose invariant is stricter: every non-terminal
    /// segment exactly full after each batch).
    #[test]
    fn m1_deletion_heavy_keeps_segments_full(
        p in 2usize..7,
        seed in any::<u64>(),
        rounds in 4usize..12,
    ) {
        let mut state = seed | 1;
        let mut model = BTreeMap::new();
        let mut m1 = M1::new(p);
        let mut next_id: OpId = 0;
        let load = 800 + (xorshift(&mut state) % 500);
        run_round(
            &mut m1,
            &mut model,
            (0..load).map(|i| Operation::Insert(i, i)).collect(),
            &mut next_id,
        );
        m1.check_invariants();
        let mut fresh_base = load;
        for _ in 0..rounds {
            let size = 1 + (xorshift(&mut state) as usize % (2 * p * p));
            let ops = deletion_heavy_batch(&model, size, &mut state, &mut fresh_base);
            run_round(&mut m1, &mut model, ops, &mut next_id);
            m1.check_invariants();
        }
    }
}

/// Deterministic regression: waves of deletions sweep the whole structure,
/// with invariants checked after every cut batch; the eager cascade must
/// actually run (maintenance runs observed) and keep the deficit at 2p².
#[test]
fn deletion_waves_drive_the_maintenance_cascade() {
    let p = 2;
    let n: u64 = 3000;
    let mut model = BTreeMap::new();
    let mut m2 = M2::new(p);
    let mut next_id: OpId = 0;
    run_round(
        &mut m2,
        &mut model,
        (0..n).map(|i| Operation::Insert(i, i)).collect(),
        &mut next_id,
    );
    assert!(m2.num_segments() > m2.first_slab_len());
    m2.check_invariants();

    // Delete every other key in p²-sized batches, checking after each.
    let victims: Vec<u64> = (0..n).step_by(2).collect();
    for chunk in victims.chunks(p * p) {
        let ops: Vec<Operation<u64, u64>> = chunk.iter().map(|&k| Operation::Delete(k)).collect();
        run_round(&mut m2, &mut model, ops, &mut next_id);
        m2.check_invariants();
    }
    assert!(
        m2.maintenance_runs() > 0,
        "deletion waves must schedule dedicated maintenance runs"
    );
    assert_eq!(m2.size(), model.len());

    // The survivors are all still reachable afterwards.
    let ops: Vec<Operation<u64, u64>> = (1..n).step_by(97).map(Operation::Search).collect();
    run_round(&mut m2, &mut model, ops, &mut next_id);
    m2.check_invariants();
}

/// The precise workload that broke the old lazy maintenance scheduling: for
/// `p = 3` the strandable zone `S[0..m-2]` holds 2+4+16 = 22 items — more
/// than Lemma 16's `2p² = 18` allowance — and deleting exactly its residents
/// makes every batch resolve at `k ≤ m-2`, so the interface's in-loop
/// restores (bounded by the deepest segment a batch reaches) never push the
/// holes past boundary `m-1` and no token travels the final slab to repair
/// the prefixes as a side effect.  Under the old conditional cascade this
/// failed with "prefix S[0..4] more than 18 below capacity: 256 vs 278"; the
/// eager scheduling flushes the whole first slab into `S[m-1]` every
/// interface run and cascades it onward within the same `process_all`.
#[test]
fn first_slab_confined_deletions_cannot_strand_holes() {
    let p = 3; // 2p² = 18 < 22 strandable first-slab slots: the tight config.
    let n = 4000u64;
    let mut model = BTreeMap::new();
    let mut m2 = M2::new(p);
    let mut next_id: OpId = 0;
    run_round(
        &mut m2,
        &mut model,
        (0..n).map(|i| Operation::Insert(i, i)).collect(),
        &mut next_id,
    );
    assert!(m2.num_segments() > m2.first_slab_len());
    m2.check_invariants();

    // Warm the front with some search traffic so the first slab holds
    // organically promoted residents.
    for round in 0u64..4 {
        for v in 100..122 {
            run_round(
                &mut m2,
                &mut model,
                vec![Operation::Search(v + 100 * (round % 2))],
                &mut next_id,
            );
        }
    }
    m2.check_invariants();

    // Enumerate the actual residents of the strandable zone and delete all
    // of them in p²-sized batches, checking the 2p² bound after every batch.
    let residents: Vec<u64> = (0..n)
        .filter(|k| {
            m2.segment_of(k)
                .is_some_and(|s| s + 2 <= m2.first_slab_len())
        })
        .collect();
    assert!(
        residents.len() > 2 * p * p,
        "need more strandable residents ({}) than the 2p² allowance",
        residents.len()
    );
    for chunk in residents.chunks(p * p) {
        let ops: Vec<Operation<u64, u64>> = chunk.iter().map(|&k| Operation::Delete(k)).collect();
        run_round(&mut m2, &mut model, ops, &mut next_id);
        m2.check_invariants();
    }
    assert_eq!(m2.size(), model.len());
}

/// Measured charges stay under their Lemma bounds in aggregate as well: after
/// any of the workloads above, the meters' measured total is within the
/// documented ceiling of the accumulated worst-case bound.
#[test]
fn aggregate_measured_work_stays_under_the_aggregate_bound_ceiling() {
    let mut state = 0xFEED_5EEDu64;
    let mut model = BTreeMap::new();
    let mut m2 = M2::new(3);
    let mut next_id: OpId = 0;
    run_round(
        &mut m2,
        &mut model,
        (0..2000u64).map(|i| Operation::Insert(i, i)).collect(),
        &mut next_id,
    );
    let mut fresh = 2000;
    for _ in 0..30 {
        let ops = deletion_heavy_batch(&model, 24, &mut state, &mut fresh);
        run_round(&mut m2, &mut model, ops, &mut next_id);
    }
    let measured = m2.effective_work();
    let bound = m2.analytic_bound_work();
    let ceiling = wsm_twothree::cost::MEASURED_CEILING;
    assert!(
        measured <= ceiling * bound,
        "aggregate measured {measured} exceeds {ceiling} x bound {bound}"
    );
    assert!(bound > 0 && measured > 0);
}
