//! Workspace integration tests: M1 and M2 driven end-to-end through realistic
//! workloads, checked against a sequential model and against the working-set
//! bound, with structural invariants verified after every batch.

use std::collections::BTreeMap;
use wsm_core::{BatchedMap, OpId, OpResult, Operation, TaggedOp, M1, M2};
use wsm_model::{working_set_bound, MapOpKind};
use wsm_seq::{InstrumentedMap, M0};
use wsm_workloads::{Pattern, WorkloadSpec};

fn to_ops(kinds: &[MapOpKind<u64>]) -> Vec<Operation<u64, u64>> {
    kinds
        .iter()
        .map(|k| match k {
            MapOpKind::Search(k) => Operation::Search(*k),
            MapOpKind::Insert(k) => Operation::Insert(*k, *k * 7),
            MapOpKind::Delete(k) => Operation::Delete(*k),
        })
        .collect()
}

fn model_apply(model: &mut BTreeMap<u64, u64>, ops: &[Operation<u64, u64>]) -> Vec<OpResult<u64>> {
    ops.iter()
        .map(|op| match op {
            Operation::Search(k) => OpResult::Search(model.get(k).copied()),
            Operation::Insert(k, v) => OpResult::Insert(model.insert(*k, *v)),
            Operation::Delete(k) => OpResult::Delete(model.remove(k)),
        })
        .collect()
}

fn drive_batched<M: BatchedMap<u64, u64>>(
    map: &mut M,
    kinds: &[MapOpKind<u64>],
    batch: usize,
    check: impl Fn(&mut M),
) {
    let mut model = BTreeMap::new();
    let mut next_id: OpId = 0;
    for chunk in to_ops(kinds).chunks(batch) {
        let tagged: Vec<TaggedOp<u64, u64>> = chunk
            .iter()
            .cloned()
            .map(|op| {
                let t = TaggedOp { id: next_id, op };
                next_id += 1;
                t
            })
            .collect();
        let base = next_id - tagged.len() as u64;
        let expected = model_apply(&mut model, chunk);
        let (results, _) = map.run_batch(tagged);
        let by_id: BTreeMap<OpId, OpResult<u64>> = results.into_iter().collect();
        for (i, exp) in expected.iter().enumerate() {
            assert_eq!(&by_id[&(base + i as u64)], exp, "operation {i} in chunk");
        }
        assert_eq!(map.len(), model.len());
        check(map);
    }
}

#[test]
fn m1_matches_model_on_mixed_zipf_workload() {
    let mut spec = WorkloadSpec::read_only(1 << 11, 1 << 13, Pattern::Zipf(1.0), 17);
    spec.update_fraction = 0.3;
    let kinds = spec.full_sequence();
    let mut m1 = M1::new(4);
    drive_batched(&mut m1, &kinds, 48, |m| m.check_invariants());
}

#[test]
fn m2_matches_model_on_mixed_zipf_workload() {
    let mut spec = WorkloadSpec::read_only(1 << 11, 1 << 13, Pattern::Zipf(1.0), 18);
    spec.update_fraction = 0.3;
    let kinds = spec.full_sequence();
    let mut m2 = M2::new(4);
    drive_batched(&mut m2, &kinds, 48, |m| m.check_invariants());
}

#[test]
fn m1_and_m2_agree_with_each_other_across_patterns() {
    for pattern in [
        Pattern::HotSet {
            hot: 8,
            miss_rate: 0.1,
        },
        Pattern::Uniform,
        Pattern::SequentialScan,
        Pattern::Adversarial,
    ] {
        let mut spec = WorkloadSpec::read_only(1 << 10, 1 << 12, pattern, 23);
        spec.update_fraction = 0.2;
        let kinds = spec.full_sequence();
        let ops = to_ops(&kinds);
        let mut m1 = M1::new(8);
        let mut m2 = M2::new(8);
        let mut model = BTreeMap::new();
        let mut next_id = 0u64;
        for chunk in ops.chunks(64) {
            let mk = |next_id: &mut u64| -> Vec<TaggedOp<u64, u64>> {
                chunk
                    .iter()
                    .cloned()
                    .map(|op| {
                        let t = TaggedOp { id: *next_id, op };
                        *next_id += 1;
                        t
                    })
                    .collect()
            };
            let batch1 = mk(&mut next_id);
            let mut id2 = batch1.first().map(|t| t.id).unwrap_or(0);
            let batch2: Vec<TaggedOp<u64, u64>> = chunk
                .iter()
                .cloned()
                .map(|op| {
                    let t = TaggedOp { id: id2, op };
                    id2 += 1;
                    t
                })
                .collect();
            let expected = model_apply(&mut model, chunk);
            let (r1, _) = m1.run_batch(batch1);
            let (r2, _) = m2.run_batch(batch2);
            let r1: BTreeMap<_, _> = r1.into_iter().collect();
            let r2: BTreeMap<_, _> = r2.into_iter().collect();
            for (i, exp) in expected.iter().enumerate() {
                let id = r1.keys().copied().min().unwrap_or(0) + i as u64;
                assert_eq!(&r1[&id], exp, "{pattern:?}");
                assert_eq!(&r2[&id], exp, "{pattern:?}");
            }
        }
        assert_eq!(m1.len(), model.len());
        assert_eq!(m2.len(), model.len());
    }
}

#[test]
fn effective_work_of_all_structures_respects_working_set_bound_shape() {
    // On a high-locality workload, every working-set structure must stay
    // within a (generous) constant factor of W_L, while differing from the
    // uniform workload by a large margin.
    let hot = WorkloadSpec::read_only(
        1 << 12,
        1 << 14,
        Pattern::HotSet {
            hot: 8,
            miss_rate: 0.02,
        },
        3,
    )
    .full_sequence();
    let uniform = WorkloadSpec::read_only(1 << 12, 1 << 14, Pattern::Uniform, 3).full_sequence();

    let work_of = |kinds: &[MapOpKind<u64>]| -> (u64, u64, u64) {
        let mut m0 = M0::new();
        let mut m0_work = 0;
        for k in kinds {
            let (_, c) = match k {
                MapOpKind::Search(k) => m0.search(k),
                MapOpKind::Insert(k) => m0.insert(*k, *k),
                MapOpKind::Delete(k) => m0.remove(k),
            };
            m0_work += c.work;
        }
        let mut m1 = M1::new(8);
        let mut m2 = M2::new(8);
        let mut id = 0u64;
        for chunk in to_ops(kinds).chunks(64) {
            let mk: Vec<TaggedOp<u64, u64>> = chunk
                .iter()
                .cloned()
                .map(|op| {
                    let t = TaggedOp { id, op };
                    id += 1;
                    t
                })
                .collect();
            m1.run_batch(mk.clone());
            m2.run_batch(mk);
        }
        (m0_work, m1.effective_work(), m2.effective_work())
    };

    let wl_hot = working_set_bound(&hot) as f64;
    let wl_uniform = working_set_bound(&uniform) as f64;
    let (h0, h1, h2) = work_of(&hot);
    let (u0, u1, u2) = work_of(&uniform);

    // Constant-factor tracking of W_L on the hot workload.
    assert!((h0 as f64) < 30.0 * wl_hot);
    assert!((h1 as f64) < 80.0 * wl_hot);
    assert!((h2 as f64) < 80.0 * wl_hot);
    // The hot workload is much cheaper than uniform for every structure,
    // mirroring the gap in the bounds themselves.
    assert!(wl_hot * 2.0 < wl_uniform);
    assert!(h0 * 2 < u0);
    assert!(h1 * 2 < u1);
    assert!(h2 * 2 < u2);
}

#[test]
fn deletions_shrink_and_rebuild_correctly() {
    let mut m1 = M1::new(4);
    let mut m2 = M2::new(4);
    let n = 4000u64;
    let inserts: Vec<MapOpKind<u64>> = (0..n).map(MapOpKind::Insert).collect();
    let deletes: Vec<MapOpKind<u64>> = (0..n)
        .filter(|k| k % 2 == 0)
        .map(MapOpKind::Delete)
        .collect();
    let reinserts: Vec<MapOpKind<u64>> = (0..n)
        .filter(|k| k % 4 == 0)
        .map(MapOpKind::Insert)
        .collect();
    for kinds in [&inserts, &deletes, &reinserts] {
        let mut id = 0u64;
        for chunk in to_ops(kinds).chunks(50) {
            let batch: Vec<TaggedOp<u64, u64>> = chunk
                .iter()
                .cloned()
                .map(|op| {
                    let t = TaggedOp { id, op };
                    id += 1;
                    t
                })
                .collect();
            m1.run_batch(batch.clone());
            m2.run_batch(batch);
            m1.check_invariants();
            m2.check_invariants();
        }
    }
    let expected = (n / 2 + n / 4) as usize;
    assert_eq!(m1.len(), expected);
    assert_eq!(m2.len(), expected);
}
