//! Crash-injection property suite for the `wsm-wal` durability layer.
//!
//! A crash can land at any byte: these properties simulate one at *every*
//! WAL boundary by manipulating the on-disk files a healthy run left behind —
//! truncating the log at an arbitrary offset (a torn final append, or a kill
//! between appends when the cut lands on a record boundary), flipping an
//! arbitrary byte (media corruption), abandoning a checkpoint `.tmp`
//! (killed mid-checkpoint-write), and restoring a stale log next to a
//! renamed checkpoint (killed between the checkpoint rename and the log
//! truncation).  After each injected crash the reopened map must equal a
//! `BTreeMap` oracle of exactly the durable prefix of batches — never a
//! partially applied batch, never bytes past the damage — and opening twice
//! must be idempotent.

use proptest::prelude::*;
use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicUsize, Ordering};
use wsm_core::{Operation, M1};
use wsm_wal::{DurableMap, DurableOptions, SyncPolicy};

type Map = DurableMap<u64, u64, M1<u64, u64>>;

/// A unique directory per proptest case (cases run concurrently across test
/// threads and the same property reuses the process id).
fn fresh_dir(tag: &str) -> PathBuf {
    static NEXT: AtomicUsize = AtomicUsize::new(0);
    let n = NEXT.fetch_add(1, Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!("wsm-wal-prop-{}-{tag}-{n}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

fn open(dir: &Path, sync: SyncPolicy) -> Map {
    let opts = DurableOptions {
        sync,
        checkpoint_every: u64::MAX,
    };
    DurableMap::open_with(dir, opts, || M1::new(4)).expect("open WAL dir")
}

/// Decodes generated `(is_insert, key)` pairs into mutation-only batches with
/// globally unique insert values (so the oracle distinguishes every write).
fn materialize(raw: &[Vec<(bool, u8)>]) -> Vec<Vec<Operation<u64, u64>>> {
    let mut unique = 0u64;
    raw.iter()
        .map(|batch| {
            batch
                .iter()
                .map(|&(is_insert, key)| {
                    if is_insert {
                        unique += 1;
                        Operation::Insert(u64::from(key), unique)
                    } else {
                        Operation::Delete(u64::from(key))
                    }
                })
                .collect()
        })
        .collect()
}

/// Runs the batches through a durable map (one `call_batch` per batch — a
/// single-threaded submitter yields exactly one combine, hence one WAL record
/// per batch) and returns the oracle state after each record prefix:
/// `oracle_after[r]` is the expected contents once the first `r` records are
/// durable.  `oracle_after[0]` is empty, `oracle_after.last()` is the full run.
fn run_and_oracle(
    dir: &Path,
    sync: SyncPolicy,
    batches: &[Vec<Operation<u64, u64>>],
) -> Vec<BTreeMap<u64, u64>> {
    let map = open(dir, sync);
    let mut oracle = BTreeMap::new();
    let mut oracle_after = vec![oracle.clone()];
    for batch in batches {
        map.call_batch(batch.clone());
        for op in batch {
            match op {
                Operation::Insert(k, v) => {
                    oracle.insert(*k, *v);
                }
                Operation::Delete(k) => {
                    oracle.remove(k);
                }
                Operation::Search(_) => {}
            }
        }
        oracle_after.push(oracle.clone());
    }
    oracle_after
}

/// Walks the log's framing, returning the end offset of each complete record.
fn record_boundaries(bytes: &[u8]) -> Vec<usize> {
    let mut boundaries = Vec::new();
    let mut offset = 0usize;
    while offset + 8 <= bytes.len() {
        let len =
            u32::from_le_bytes(bytes[offset..offset + 4].try_into().expect("4 bytes")) as usize;
        if offset + 8 + len > bytes.len() {
            break;
        }
        offset += 8 + len;
        boundaries.push(offset);
    }
    boundaries
}

fn log_file(dir: &Path) -> PathBuf {
    dir.join("wal.log")
}

/// Asserts the reopened map holds exactly the oracle's contents (the key
/// domain is `u8`, so probing every key is exhaustive).
fn assert_state(map: &Map, oracle: &BTreeMap<u64, u64>) {
    assert_eq!(map.len(), oracle.len(), "recovered size diverges");
    for k in 0u64..256 {
        assert_eq!(map.search(k), oracle.get(&k).copied(), "key {k}");
    }
}

/// Mutation-only batches: 1–5 batches of 1–9 ops over an 8-bit keyspace.
fn batches_strategy() -> impl Strategy<Value = Vec<Vec<(bool, u8)>>> {
    prop::collection::vec(
        prop::collection::vec((any::<bool>(), any::<u8>()), 1..9),
        1..5,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Kill at *every* append boundary and inside every record: truncating
    /// the log at an arbitrary byte must recover exactly the batches whose
    /// records survive whole — a cut on a record boundary is a kill between
    /// appends (nothing torn), a cut inside a record is a torn final append
    /// (detected, truncated, never replayed).  A second open sees the
    /// repaired log and must be a no-op.
    #[test]
    fn truncating_anywhere_recovers_exactly_the_durable_prefix(
        raw in batches_strategy(),
        cut_permille in 0usize..1001,
    ) {
        let dir = fresh_dir("cut");
        let batches = materialize(&raw);
        let oracle_after = run_and_oracle(&dir, SyncPolicy::Batch, &batches);

        let bytes = std::fs::read(log_file(&dir)).expect("read log");
        prop_assert_eq!(record_boundaries(&bytes).len(), batches.len());
        let cut = bytes.len() * cut_permille / 1000;
        std::fs::write(log_file(&dir), &bytes[..cut]).expect("truncate log");

        let boundaries = record_boundaries(&bytes[..cut]);
        let durable = boundaries.len();
        let clean_end = boundaries.last().copied().unwrap_or(0);

        let map = open(&dir, SyncPolicy::Batch);
        let report = map.recovery();
        prop_assert_eq!(report.replayed_batches, durable as u64);
        prop_assert_eq!(report.truncated_torn_tail, cut != clean_end,
            "torn flag wrong for cut {} (clean prefix ends at {})", cut, clean_end);
        assert_state(&map, &oracle_after[durable]);
        drop(map);

        // The first open repaired the file: exactly the clean prefix remains.
        let repaired = std::fs::read(log_file(&dir)).expect("read repaired log");
        prop_assert_eq!(repaired.len(), clean_end);

        let map = open(&dir, SyncPolicy::Batch);
        prop_assert_eq!(map.recovery().replayed_batches, durable as u64);
        prop_assert!(!map.recovery().truncated_torn_tail);
        assert_state(&map, &oracle_after[durable]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Flip any byte of the log: the record containing it must fail its
    /// checksum (or framing), everything before it must replay, and nothing
    /// at or past the damage may ever be applied.
    #[test]
    fn corrupting_any_byte_never_replays_the_damaged_suffix(
        raw in batches_strategy(),
        pos_permille in 0usize..1000,
        flip in 0u8..255,
    ) {
        let dir = fresh_dir("flip");
        let batches = materialize(&raw);
        let oracle_after = run_and_oracle(&dir, SyncPolicy::Batch, &batches);

        let mut bytes = std::fs::read(log_file(&dir)).expect("read log");
        let pos = (bytes.len() - 1) * pos_permille / 1000;
        bytes[pos] ^= flip.wrapping_add(1); // a guaranteed-nonzero XOR mask
        std::fs::write(log_file(&dir), &bytes).expect("corrupt log");

        // The record containing `pos` is the first whose end exceeds it.
        let damaged = record_boundaries(&bytes)
            .iter()
            .filter(|&&end| end <= pos)
            .count();

        let map = open(&dir, SyncPolicy::Batch);
        let report = map.recovery();
        prop_assert_eq!(report.replayed_batches, damaged as u64);
        prop_assert!(report.truncated_torn_tail, "damage at byte {} must truncate", pos);
        assert_state(&map, &oracle_after[damaged]);
        drop(map);

        let map = open(&dir, SyncPolicy::Batch);
        prop_assert!(!map.recovery().truncated_torn_tail, "second open must be clean");
        assert_state(&map, &oracle_after[damaged]);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Kill mid-checkpoint, before the rename: the abandoned `.tmp` is not
    /// durable state — recovery must ignore it (whatever it contains), delete
    /// it, and replay the full log.
    #[test]
    fn abandoned_checkpoint_tmp_is_ignored_and_removed(
        raw in batches_strategy(),
        garbage in prop::collection::vec(any::<u8>(), 0..64),
    ) {
        let dir = fresh_dir("tmp");
        let batches = materialize(&raw);
        let oracle_after = run_and_oracle(&dir, SyncPolicy::Batch, &batches);

        let tmp = dir.join("checkpoint-9.tmp");
        std::fs::write(&tmp, &garbage).expect("plant stray tmp");

        let map = open(&dir, SyncPolicy::Batch);
        let report = map.recovery();
        prop_assert_eq!(report.checkpoint_seq, 0, "a .tmp must never seed state");
        prop_assert_eq!(report.replayed_batches, batches.len() as u64);
        assert_state(&map, oracle_after.last().expect("non-empty"));
        prop_assert!(!tmp.exists(), "recovery must clear abandoned tmp files");
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Kill between the checkpoint rename and the log truncation: recovery
    /// sees a durable checkpoint *and* a log full of records it already
    /// covers — those must be skipped by sequence, not replayed on top of
    /// the image (which would double-apply deletes-then-reinserts).
    #[test]
    fn checkpoint_renamed_but_log_not_truncated_skips_stale_records(
        raw in batches_strategy(),
    ) {
        let dir = fresh_dir("stale");
        let batches = materialize(&raw);
        let oracle_after = run_and_oracle(&dir, SyncPolicy::Batch, &batches);
        let full = oracle_after.last().expect("non-empty");

        let pre_checkpoint_log = std::fs::read(log_file(&dir)).expect("read log");
        {
            let map = open(&dir, SyncPolicy::Batch);
            map.checkpoint().expect("checkpoint");
        }
        // Simulate the crash: the checkpoint rename landed, the truncation
        // did not.
        std::fs::write(log_file(&dir), &pre_checkpoint_log).expect("restore stale log");

        let map = open(&dir, SyncPolicy::Batch);
        let report = map.recovery();
        prop_assert!(report.checkpoint_seq > 0, "the renamed checkpoint must win");
        prop_assert_eq!(report.skipped_stale_records, batches.len() as u64);
        prop_assert_eq!(report.replayed_batches, 0);
        assert_state(&map, full);
        drop(map);

        let map = open(&dir, SyncPolicy::Batch);
        assert_state(&map, full);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Kill a `sync=off` process without flushing: whatever reached the OS is
    /// some *prefix* of the appended records — recovery must land exactly on
    /// one of the oracle's prefix states, never a mix.
    #[test]
    fn sync_off_crash_recovers_some_batch_prefix(
        raw in batches_strategy(),
    ) {
        let dir = fresh_dir("off");
        let batches = materialize(&raw);
        let mut oracle = BTreeMap::new();
        let mut oracle_after = vec![oracle.clone()];
        {
            let map = open(&dir, SyncPolicy::Off);
            for batch in &batches {
                map.call_batch(batch.clone());
                for op in batch {
                    match op {
                        Operation::Insert(k, v) => { oracle.insert(*k, *v); }
                        Operation::Delete(k) => { oracle.remove(k); }
                        Operation::Search(_) => {}
                    }
                }
                oracle_after.push(oracle.clone());
            }
            // Crash: never flush, never run Drop.
            std::mem::forget(map);
        }

        let map = open(&dir, SyncPolicy::Batch);
        let durable = map.recovery().replayed_batches as usize;
        prop_assert!(durable <= batches.len());
        assert_state(&map, &oracle_after[durable]);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
