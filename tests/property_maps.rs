//! Property-based tests: M0, M1 and M2 behave exactly like a sequential map
//! under arbitrary operation sequences, and their structural invariants hold
//! after every batch.

use proptest::prelude::*;
use std::collections::BTreeMap;
use wsm_core::{BatchedMap, OpId, OpResult, Operation, TaggedOp, M1, M2};
use wsm_seq::{IaconoMap, InstrumentedMap, SplayMap, M0};

#[derive(Clone, Debug)]
enum Op {
    Search(u8),
    Insert(u8, u16),
    Delete(u8),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        (any::<u8>()).prop_map(Op::Search),
        (any::<u8>(), any::<u16>()).prop_map(|(k, v)| Op::Insert(k, v)),
        (any::<u8>()).prop_map(Op::Delete),
    ]
}

fn apply_model(model: &mut BTreeMap<u64, u64>, op: &Op) -> OpResult<u64> {
    match op {
        Op::Search(k) => OpResult::Search(model.get(&(*k as u64)).copied()),
        Op::Insert(k, v) => OpResult::Insert(model.insert(*k as u64, *v as u64)),
        Op::Delete(k) => OpResult::Delete(model.remove(&(*k as u64))),
    }
}

fn to_operation(op: &Op) -> Operation<u64, u64> {
    match op {
        Op::Search(k) => Operation::Search(*k as u64),
        Op::Insert(k, v) => Operation::Insert(*k as u64, *v as u64),
        Op::Delete(k) => Operation::Delete(*k as u64),
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sequential_structures_match_model(ops in prop::collection::vec(op_strategy(), 1..400)) {
        let mut model = BTreeMap::new();
        let mut m0: M0<u64, u64> = M0::new();
        let mut iacono: IaconoMap<u64, u64> = IaconoMap::new();
        let mut splay: SplayMap<u64, u64> = SplayMap::new();
        for op in &ops {
            let expected = apply_model(&mut model, op);
            let expected_val = expected.value().copied();
            let (got_m0, _) = match op {
                Op::Search(k) => m0.search(&(*k as u64)),
                Op::Insert(k, v) => m0.insert(*k as u64, *v as u64),
                Op::Delete(k) => m0.remove(&(*k as u64)),
            };
            let (got_ia, _) = match op {
                Op::Search(k) => iacono.search(&(*k as u64)),
                Op::Insert(k, v) => iacono.insert(*k as u64, *v as u64),
                Op::Delete(k) => iacono.remove(&(*k as u64)),
            };
            let (got_sp, _) = match op {
                Op::Search(k) => splay.search(&(*k as u64)),
                Op::Insert(k, v) => splay.insert(*k as u64, *v as u64),
                Op::Delete(k) => splay.remove(&(*k as u64)),
            };
            prop_assert_eq!(got_m0, expected_val);
            prop_assert_eq!(got_ia, expected_val);
            prop_assert_eq!(got_sp, expected_val);
            prop_assert_eq!(m0.len(), model.len());
            prop_assert_eq!(iacono.len(), model.len());
            prop_assert_eq!(splay.len(), model.len());
        }
        m0.check_invariants();
        iacono.check_invariants();
        splay.check_invariants();
    }

    #[test]
    fn m1_matches_model_under_arbitrary_batching(
        ops in prop::collection::vec(op_strategy(), 1..300),
        batch_size in 1usize..40,
        p in 2usize..9,
    ) {
        let mut model = BTreeMap::new();
        let mut m1 = M1::new(p);
        let mut next_id: OpId = 0;
        for chunk in ops.chunks(batch_size) {
            let expected: Vec<OpResult<u64>> = chunk.iter().map(|op| apply_model(&mut model, op)).collect();
            let base = next_id;
            let batch: Vec<TaggedOp<u64, u64>> = chunk.iter().map(|op| {
                let t = TaggedOp { id: next_id, op: to_operation(op) };
                next_id += 1;
                t
            }).collect();
            let (results, _) = m1.run_batch(batch);
            let by_id: BTreeMap<OpId, OpResult<u64>> = results.into_iter().collect();
            for (i, exp) in expected.iter().enumerate() {
                prop_assert_eq!(&by_id[&(base + i as u64)], exp);
            }
            m1.check_invariants();
            prop_assert_eq!(m1.len(), model.len());
        }
    }

    #[test]
    fn m2_matches_model_under_arbitrary_batching(
        ops in prop::collection::vec(op_strategy(), 1..300),
        batch_size in 1usize..40,
        p in 2usize..9,
    ) {
        let mut model = BTreeMap::new();
        let mut m2 = M2::new(p);
        let mut next_id: OpId = 0;
        for chunk in ops.chunks(batch_size) {
            let expected: Vec<OpResult<u64>> = chunk.iter().map(|op| apply_model(&mut model, op)).collect();
            let base = next_id;
            let batch: Vec<TaggedOp<u64, u64>> = chunk.iter().map(|op| {
                let t = TaggedOp { id: next_id, op: to_operation(op) };
                next_id += 1;
                t
            }).collect();
            let (results, _) = m2.run_batch(batch);
            let by_id: BTreeMap<OpId, OpResult<u64>> = results.into_iter().collect();
            for (i, exp) in expected.iter().enumerate() {
                prop_assert_eq!(&by_id[&(base + i as u64)], exp);
            }
            m2.check_invariants();
            prop_assert_eq!(m2.len(), model.len());
        }
    }

    #[test]
    fn work_never_decreases_and_size_is_bounded(
        ops in prop::collection::vec(op_strategy(), 1..200),
    ) {
        let mut m1 = M1::new(4);
        let mut last_work = 0;
        let mut distinct = std::collections::BTreeSet::new();
        for (i, op) in ops.iter().enumerate() {
            if let Op::Insert(k, _) = op { distinct.insert(*k); }
            let batch = vec![TaggedOp { id: i as OpId, op: to_operation(op) }];
            m1.run_batch(batch);
            let work = m1.effective_work();
            prop_assert!(work >= last_work, "effective work must be monotone");
            last_work = work;
            prop_assert!(m1.len() <= distinct.len(), "size cannot exceed distinct inserted keys");
        }
    }
}
