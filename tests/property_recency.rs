//! Oracle-differential property suite for the arena-fused [`RecencyMap`].
//!
//! The fused map (one key-ordered `Tree23` over an arena + intrusive recency
//! list) is the building block under M0, M1 and M2 simultaneously, so it gets
//! its own differential harness: every generated op stream is executed
//! against both the fused map and a trivially-correct reference model (a
//! `BTreeMap` for key order plus a `VecDeque` for recency order), with key
//! order, recency order, lookups and `check_invariants` (tree structure,
//! arena free-list accounting, list link integrity) asserted after **every**
//! step.  Failures shrink through the PR 3 minimizing engine, so a broken
//! splice prints a minimal op stream, not a 400-op transcript.
//!
//! The op surface covers everything the segment cascades use:
//! `insert_front`/`insert_back`, `insert_batch` (fused upsert),
//! `remove`/`remove_batch`, `get`/`get_batch`/`recency_rank`,
//! `push_front_batch`/`push_back_batch`, `take_front(k)`/`take_back(k)` and
//! `items_in_recency_order` — plus a two-map transfer test that pins
//! relative-order preservation across inter-segment moves.

use proptest::prelude::*;
use std::collections::{BTreeMap, VecDeque};
use wsm_twothree::RecencyMap;

/// The trivially-correct reference: recency order as an explicit deque
/// (front = most recent), key order recovered by sorting.
#[derive(Default)]
struct Model {
    order: VecDeque<(u16, u32)>,
}

impl Model {
    fn position(&self, key: u16) -> Option<usize> {
        self.order.iter().position(|&(k, _)| k == key)
    }

    fn get(&self, key: u16) -> Option<u32> {
        self.order.iter().find(|&&(k, _)| k == key).map(|&(_, v)| v)
    }

    fn insert_front(&mut self, key: u16, val: u32) -> Option<u32> {
        let old = self
            .position(key)
            .map(|p| self.order.remove(p).expect("position exists").1);
        self.order.push_front((key, val));
        old
    }

    fn insert_back(&mut self, key: u16, val: u32) -> Option<u32> {
        let old = self
            .position(key)
            .map(|p| self.order.remove(p).expect("position exists").1);
        self.order.push_back((key, val));
        old
    }

    fn remove(&mut self, key: u16) -> Option<u32> {
        self.position(key)
            .map(|p| self.order.remove(p).expect("position exists").1)
    }

    fn take_front(&mut self, k: usize) -> Vec<(u16, u32)> {
        let k = k.min(self.order.len());
        self.order.drain(..k).collect()
    }

    /// Most recent of the taken suffix first, like the fused map.
    fn take_back(&mut self, k: usize) -> Vec<(u16, u32)> {
        let k = k.min(self.order.len());
        let at = self.order.len() - k;
        self.order.split_off(at).into()
    }

    fn push_front_batch(&mut self, items: &[(u16, u32)]) {
        for &item in items.iter().rev() {
            self.order.push_front(item);
        }
    }

    fn push_back_batch(&mut self, items: &[(u16, u32)]) {
        for &item in items {
            self.order.push_back(item);
        }
    }

    fn keys_sorted(&self) -> Vec<u16> {
        let m: BTreeMap<u16, u32> = self.order.iter().copied().collect();
        m.into_keys().collect()
    }

    fn items(&self) -> Vec<(u16, u32)> {
        self.order.iter().copied().collect()
    }
}

/// Checks every observable of the fused map against the model.
fn assert_agree(map: &RecencyMap<u16, u32>, model: &Model) {
    map.check_invariants();
    assert_eq!(map.len(), model.order.len(), "length diverged");
    assert_eq!(map.keys_sorted(), model.keys_sorted(), "key order diverged");
    assert_eq!(
        map.items_in_recency_order(),
        model.items(),
        "recency order diverged"
    );
    assert_eq!(
        map.peek_front().map(|(k, v)| (*k, *v)),
        model.items().first().copied(),
        "peek_front diverged"
    );
    assert_eq!(
        map.peek_back().map(|(k, v)| (*k, *v)),
        model.items().last().copied(),
        "peek_back diverged"
    );
}

/// One generated operation, decoded from `(op selector, key, count)`.
fn apply(
    map: &mut RecencyMap<u16, u32>,
    model: &mut Model,
    other: &mut (RecencyMap<u16, u32>, Model),
    op: u8,
    key: u16,
    count: u8,
    val: &mut u32,
) {
    *val += 1;
    let key = key % 48; // small keyspace so re-inserts and hits are common
    let count = count as usize % 9;
    match op % 10 {
        0 => {
            assert_eq!(
                map.insert_front(key, *val),
                model.insert_front(key, *val),
                "insert_front previous value diverged"
            );
        }
        1 => {
            assert_eq!(
                map.insert_back(key, *val),
                model.insert_back(key, *val),
                "insert_back previous value diverged"
            );
        }
        2 => {
            assert_eq!(map.remove(&key), model.remove(key), "remove diverged");
        }
        3 => {
            // Sorted distinct removal batch around the key (hits and misses).
            let keys: Vec<u16> = (0..=count as u16).map(|d| key.saturating_add(d)).collect();
            let mut keys = keys;
            keys.dedup();
            let removed = map.remove_batch(&keys);
            let expected: Vec<Option<u32>> = keys.iter().map(|&k| model.remove(k)).collect();
            assert_eq!(removed, expected, "remove_batch diverged");
        }
        4 => {
            // take_front(k) — results must come back in recency order.
            assert_eq!(
                map.take_front(count),
                model.take_front(count),
                "take_front diverged"
            );
        }
        5 => {
            // take_back(k) — most recent of the suffix first.
            assert_eq!(
                map.take_back(count),
                model.take_back(count),
                "take_back diverged"
            );
        }
        6 => {
            // Batch upsert at the front (replaces present keys in place).
            let items: Vec<(u16, u32)> = (0..=count as u16)
                .filter_map(|d| {
                    key.checked_add(d * 3)
                        .map(|k| (k % 48, *val + u32::from(d)))
                })
                .collect();
            let mut seen = std::collections::BTreeSet::new();
            let items: Vec<(u16, u32)> =
                items.into_iter().filter(|(k, _)| seen.insert(*k)).collect();
            let expected: Vec<Option<u32>> = {
                // The model inserts front-most last so items[0] ends frontmost;
                // previous values must be captured in item order first.
                let prevs: Vec<Option<u32>> = items.iter().map(|&(k, _)| model.remove(k)).collect();
                for &(k, v) in items.iter().rev() {
                    model.order.push_front((k, v));
                }
                prevs
            };
            assert_eq!(
                map.insert_batch(items),
                expected,
                "insert_batch previous values diverged"
            );
        }
        7 => {
            // Inter-segment transfer: take_back(k) from this map, push_front
            // into the other — the segment-overflow cascade.  Relative
            // recency order must be preserved end to end.
            let moved = map.take_back(count);
            let expected = model.take_back(count);
            assert_eq!(moved, expected, "transfer take side diverged");
            // Drop keys already present in the destination (the real
            // cascades move between disjoint segments; the model's keyspace
            // is shared, so filter to keep the push precondition).
            let moved: Vec<(u16, u32)> = moved
                .into_iter()
                .filter(|(k, _)| other.0.get(k).is_none())
                .collect();
            other.1.push_front_batch(&moved);
            other.0.push_front_batch(moved);
        }
        8 => {
            // Inter-segment transfer in the other direction, onto the back.
            let moved = map.take_front(count);
            let expected = model.take_front(count);
            assert_eq!(moved, expected, "transfer take_front side diverged");
            let moved: Vec<(u16, u32)> = moved
                .into_iter()
                .filter(|(k, _)| other.0.get(k).is_none())
                .collect();
            other.1.push_back_batch(&moved);
            other.0.push_back_batch(moved);
        }
        _ => {
            // Read-only probes: get / get_batch / recency_rank agree.
            assert_eq!(map.get(&key).copied(), model.get(key), "get diverged");
            let keys: Vec<u16> = (0..4u16).map(|d| key.saturating_add(d)).collect();
            let got: Vec<Option<u32>> = map
                .get_batch(&keys)
                .into_iter()
                .map(|v| v.copied())
                .collect();
            let expected: Vec<Option<u32>> = keys.iter().map(|&k| model.get(k)).collect();
            assert_eq!(got, expected, "get_batch diverged");
            assert_eq!(
                map.recency_rank(&key),
                model.position(key),
                "recency_rank diverged"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The main differential drive: a generated op stream over two maps
    /// (ops apply to the first; transfer ops move items into the second),
    /// with full-surface agreement asserted after every step.
    #[test]
    fn fused_map_matches_deque_model(
        ops in prop::collection::vec((any::<u8>(), any::<u16>(), any::<u8>()), 1..60),
        fan in prop::sample::select(vec![2usize, 8, 16]),
    ) {
        let mut map: RecencyMap<u16, u32> = RecencyMap::with_fanout(fan);
        let mut model = Model::default();
        let mut other = (RecencyMap::with_fanout(fan), Model::default());
        let mut val = 0u32;
        for (op, key, count) in ops {
            apply(&mut map, &mut model, &mut other, op, key, count, &mut val);
            assert_agree(&map, &model);
            assert_agree(&other.0, &other.1);
        }
    }

    /// Relative-order preservation across inter-segment moves, isolated: no
    /// matter how a map was built, taking any suffix and pushing it onto
    /// another map preserves the relative recency order of both parts.
    #[test]
    fn transfers_preserve_relative_recency_order(
        keys in prop::collection::vec(any::<u16>(), 1..80),
        k in 1usize..20,
        to_front in any::<bool>(),
        fan in prop::sample::select(vec![2usize, 8, 16]),
    ) {
        let mut a: RecencyMap<u16, u32> = RecencyMap::with_fanout(fan);
        let mut a_model = Model::default();
        for (i, &key) in keys.iter().enumerate() {
            let key = key % 64;
            a.insert_front(key, i as u32);
            a_model.insert_front(key, i as u32);
        }
        let mut b: RecencyMap<u16, u32> = RecencyMap::with_fanout(fan);
        let mut b_model = Model::default();
        // Pre-populate the destination with disjoint keys (offset past the
        // source keyspace).
        for i in 0..8u16 {
            b.insert_back(100 + i, u32::from(i));
            b_model.insert_back(100 + i, u32::from(i));
        }
        let moved = a.take_back(k);
        prop_assert_eq!(&moved, &a_model.take_back(k));
        if to_front {
            b_model.push_front_batch(&moved);
            b.push_front_batch(moved);
        } else {
            b_model.push_back_batch(&moved);
            b.push_back_batch(moved);
        }
        assert_agree(&a, &a_model);
        assert_agree(&b, &b_model);
    }

    /// Move-to-front via re-insertion is exactly the model's LRU behaviour,
    /// and eviction via take_back pops least-recently-used first.
    #[test]
    fn lru_eviction_shape(
        accesses in prop::collection::vec(any::<u16>(), 1..120),
        evict in 1usize..16,
        fan in prop::sample::select(vec![2usize, 8, 16]),
    ) {
        let mut map: RecencyMap<u16, u32> = RecencyMap::with_fanout(fan);
        let mut model = Model::default();
        for (i, &key) in accesses.iter().enumerate() {
            let key = key % 32;
            assert_eq!(map.insert_front(key, i as u32), model.insert_front(key, i as u32));
        }
        assert_agree(&map, &model);
        let evicted = map.take_back(evict);
        prop_assert_eq!(&evicted, &model.take_back(evict));
        assert_agree(&map, &model);
    }
}

/// Deterministic shape pin: the exact cascade hand-off M1/M2 rely on (take
/// from the back of one segment, push to the front of the next, preserving
/// relative order even when the batch is split across several hops).
#[test]
fn multi_hop_cascade_preserves_order() {
    for fan in [2usize, 8, 16] {
        multi_hop_cascade_at(fan);
    }
}

fn multi_hop_cascade_at(fan: usize) {
    let mut segs: Vec<RecencyMap<u64, u64>> =
        (0..3).map(|_| RecencyMap::with_fanout(fan)).collect();
    for i in 0..12u64 {
        segs[0].insert_back(i, i);
    }
    // Hop 8 items to segment 1, then 4 of those onward to segment 2.
    let moved = segs[0].take_back(8);
    segs[1].push_front_batch(moved);
    let moved = segs[1].take_back(4);
    segs[2].push_front_batch(moved);
    let order = |s: &RecencyMap<u64, u64>| -> Vec<u64> {
        s.items_in_recency_order()
            .into_iter()
            .map(|x| x.0)
            .collect()
    };
    assert_eq!(order(&segs[0]), vec![0, 1, 2, 3]);
    assert_eq!(order(&segs[1]), vec![4, 5, 6, 7]);
    assert_eq!(order(&segs[2]), vec![8, 9, 10, 11]);
    for s in &segs {
        s.check_invariants();
    }
}
