//! Oracle-differential property suite for [`wsm_shard::ShardedMap`].
//!
//! Single-threaded differential testing over the full batch-op surface:
//! random sequences of mixed `run_batch` batches (plus the
//! `get_batch`/`insert_batch`/`remove_batch` conveniences and the point-op
//! API) are applied to a `ShardedMap` at `S ∈ {1, 2, 4}` and to a plain
//! `BTreeMap` oracle, asserting every returned result — and the final
//! contents — match exactly.  Because the submitter is single-threaded, the
//! sharded map must behave *identically* to the oracle: splitting, routing
//! and stitching may not reorder, drop or duplicate anything.  (Concurrent
//! histories are covered per shard in `property_concurrent.rs`.)

use proptest::prelude::*;
use std::collections::BTreeMap;
use wsm_core::{OpResult, Operation, M1, M2};
use wsm_shard::{RangePartitioner, ShardedMap};

/// Decodes `(kind, key)` pairs into operations with globally unique insert
/// values, so the oracle distinguishes every write.
fn decode_batch(raw: &[(u8, u8)], unique: &mut u64) -> Vec<Operation<u64, u64>> {
    raw.iter()
        .map(|&(kind, key)| {
            let key = u64::from(key);
            match kind {
                0 | 1 => Operation::Search(key),
                2 | 3 => {
                    *unique += 1;
                    Operation::Insert(key, *unique)
                }
                _ => Operation::Delete(key),
            }
        })
        .collect()
}

/// What the oracle says a batch must return, applying ops in input order.
fn oracle_batch(model: &mut BTreeMap<u64, u64>, ops: &[Operation<u64, u64>]) -> Vec<OpResult<u64>> {
    ops.iter()
        .map(|op| match op {
            Operation::Search(k) => OpResult::Search(model.get(k).copied()),
            Operation::Insert(k, v) => OpResult::Insert(model.insert(*k, *v)),
            Operation::Delete(k) => OpResult::Delete(model.remove(k)),
        })
        .collect()
}

/// Drains `map` and `model` into sorted pairs for the final-contents check.
fn final_contents<M, P>(map: &ShardedMap<u64, u64, M, P>, keys: u64) -> Vec<(u64, u64)>
where
    M: wsm_core::BatchedMap<u64, u64> + Send,
    P: wsm_shard::Partitioner<u64>,
{
    let found = map.get_batch((0..keys).collect());
    (0..keys)
        .zip(found)
        .filter_map(|(k, v)| v.map(|v| (k, v)))
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// `ShardedMap` over M1 ≡ `BTreeMap` for every batch, at S ∈ {1, 2, 4}.
    #[test]
    fn sharded_m1_batches_match_btreemap(
        batches in prop::collection::vec(
            prop::collection::vec((0u8..5, 0u8..24), 0..24),
            1..8,
        )
    ) {
        for shards in [1usize, 2, 4] {
            let map = ShardedMap::with_shards(shards, |_| M1::<u64, u64>::new(4));
            let mut model = BTreeMap::new();
            let mut unique = 0u64;
            for raw in &batches {
                let ops = decode_batch(raw, &mut unique);
                let expected = oracle_batch(&mut model, &ops);
                prop_assert_eq!(map.run_batch(ops), expected, "S={}", shards);
            }
            prop_assert_eq!(map.len(), model.len(), "S={}", shards);
            let model_pairs: Vec<(u64, u64)> = model.iter().map(|(&k, &v)| (k, v)).collect();
            prop_assert_eq!(final_contents(&map, 24), model_pairs, "S={}", shards);
        }
    }

    /// The convenience wrappers (`insert_batch` / `get_batch` /
    /// `remove_batch`) and the point-op API agree with the oracle too, over
    /// M2 and under a range partitioner — the ordered-workload configuration.
    #[test]
    fn sharded_m2_surface_matches_btreemap(
        rounds in prop::collection::vec(
            (prop::collection::vec(0u8..24, 1..16), 0u8..3),
            1..6,
        )
    ) {
        for shards in [1usize, 2, 4] {
            let map = ShardedMap::with_shards(shards, |_| M2::<u64, u64>::new(2))
                .with_partitioner(RangePartitioner::<u64>::even(24, shards));
            let mut model = BTreeMap::new();
            let mut unique = 0u64;
            for (keys, surface) in &rounds {
                let keys: Vec<u64> = keys.iter().map(|&k| u64::from(k)).collect();
                match surface {
                    0 => {
                        let pairs: Vec<(u64, u64)> = keys
                            .iter()
                            .map(|&k| {
                                unique += 1;
                                (k, unique)
                            })
                            .collect();
                        let expected: Vec<Option<u64>> =
                            pairs.iter().map(|&(k, v)| model.insert(k, v)).collect();
                        prop_assert_eq!(map.insert_batch(pairs), expected, "S={}", shards);
                    }
                    1 => {
                        let expected: Vec<Option<u64>> =
                            keys.iter().map(|k| model.get(k).copied()).collect();
                        prop_assert_eq!(map.get_batch(keys), expected, "S={}", shards);
                    }
                    _ => {
                        let expected: Vec<Option<u64>> =
                            keys.iter().map(|k| model.remove(k)).collect();
                        prop_assert_eq!(map.remove_batch(keys), expected, "S={}", shards);
                    }
                }
            }
            // Point-op surface over the surviving contents.
            for k in 0..24u64 {
                prop_assert_eq!(map.get(k), model.get(&k).copied(), "S={}", shards);
            }
            prop_assert_eq!(map.len(), model.len(), "S={}", shards);
        }
    }
}

/// Routing invariant, directly: whatever batch shape comes in, each key's
/// results must be those of the shard that owns it — searching right after a
/// mixed batch observes exactly the batch's per-key net effect.
#[test]
fn mixed_batch_net_effect_is_observable() {
    let map = ShardedMap::with_shards(4, |_| M1::<u64, u64>::new(4));
    let results = map.run_batch(vec![
        Operation::Insert(3, 30),
        Operation::Insert(9, 90),
        Operation::Delete(3),
        Operation::Insert(3, 31),
        Operation::Search(9),
        Operation::Delete(14),
    ]);
    assert_eq!(
        results,
        vec![
            OpResult::Insert(None),
            OpResult::Insert(None),
            OpResult::Delete(Some(30)),
            OpResult::Insert(None),
            OpResult::Search(Some(90)),
            OpResult::Delete(None),
        ]
    );
    assert_eq!(
        map.get_batch(vec![3, 9, 14]),
        vec![Some(31), Some(90), None]
    );
}
