//! Offline stand-in for the `rand` crate (0.9 API naming).
//!
//! Provides [`rngs::StdRng`] (a SplitMix64 generator), [`SeedableRng`] with
//! `seed_from_u64`, and the [`Rng`] extension methods `random_range` /
//! `random_bool` over integer and float ranges. Generation quality is far
//! below the real `rand` but more than adequate for workload synthesis, and
//! everything is deterministic given the seed.

use std::ops::Range;

/// Low-level source of randomness.
pub trait RngCore {
    /// Returns the next 64 random bits.
    fn next_u64(&mut self) -> u64;
}

/// Seedable generators.
pub trait SeedableRng: Sized {
    /// Creates a generator from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// User-facing sampling methods, implemented for every [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value uniformly from `range` (half-open).
    ///
    /// # Panics
    /// Panics if the range is empty.
    fn random_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        unit_f64(self.next_u64()) < p
    }
}

impl<R: RngCore> Rng for R {}

/// A range from which a uniform sample can be drawn.
pub trait SampleRange<T> {
    /// Draws one sample.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Maps 64 random bits to a float in `[0, 1)`.
fn unit_f64(bits: u64) -> f64 {
    // 53 high bits -> [0, 1) with full double precision.
    (bits >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

macro_rules! int_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample from an empty range");
                let span = (self.end - self.start) as u64;
                // Modulo bias is negligible for the spans used here and
                // irrelevant for synthetic workloads.
                self.start + (rng.next_u64() % span) as $t
            }
        }
    )*};
}

int_sample_range!(u8, u16, u32, u64, usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample from an empty range");
        self.start + unit_f64(rng.next_u64()) * (self.end - self.start)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The standard generator: SplitMix64 (Steele, Lea & Flood).
    ///
    /// Small state, passes through every 64-bit output exactly once, and is
    /// plenty for deterministic workload generation.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed }
        }
    }
}

/// The most commonly used items.
pub mod prelude {
    pub use crate::rngs::StdRng;
    pub use crate::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn deterministic_given_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: u64 = rng.random_range(10..20);
            assert!((10..20).contains(&x));
            let y: usize = rng.random_range(0..3);
            assert!(y < 3);
            let f: f64 = rng.random_range(0.0..1.0);
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn random_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.random_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "got {hits}");
    }

    #[test]
    fn uniform_range_is_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut counts = [0usize; 8];
        for _ in 0..8000 {
            counts[rng.random_range(0usize..8)] += 1;
        }
        assert!(
            counts.iter().all(|&c| (700..1300).contains(&c)),
            "{counts:?}"
        );
    }
}
