//! No-op derive macros for the offline `serde` stand-in.
//!
//! Nothing in this workspace actually serialises values (there is no
//! serde_json or similar); the derives only need to exist so that
//! `#[derive(Serialize, Deserialize)]` attributes compile. Each derive
//! expands to nothing.

use proc_macro::TokenStream;

/// Expands to nothing; satisfies `#[derive(Serialize)]`.
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Expands to nothing; satisfies `#[derive(Deserialize)]`.
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
