//! Offline stand-in for the `parking_lot` crate, backed by `std::sync`.
//!
//! Only the surface used by this workspace is provided: a [`Mutex`] whose
//! `lock` does not return a poison `Result`, and a [`Condvar`] whose wait
//! methods take `&mut MutexGuard`. Poisoned std locks are recovered
//! transparently (`parking_lot` has no lock poisoning).

use std::fmt;
use std::ops::{Deref, DerefMut};
use std::sync::PoisonError;
use std::time::Duration;

/// A mutual-exclusion primitive with `parking_lot`'s no-poison API.
#[derive(Default)]
pub struct Mutex<T: ?Sized> {
    inner: std::sync::Mutex<T>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex protecting `value`.
    pub const fn new(value: T) -> Self {
        Mutex {
            inner: std::sync::Mutex::new(value),
        }
    }

    /// Consumes the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner
            .into_inner()
            .unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquires the mutex, blocking until it is available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        MutexGuard {
            inner: Some(self.inner.lock().unwrap_or_else(PoisonError::into_inner)),
        }
    }

    /// Attempts to acquire the mutex without blocking.
    pub fn try_lock(&self) -> Option<MutexGuard<'_, T>> {
        match self.inner.try_lock() {
            Ok(guard) => Some(MutexGuard { inner: Some(guard) }),
            Err(std::sync::TryLockError::Poisoned(p)) => Some(MutexGuard {
                inner: Some(p.into_inner()),
            }),
            Err(std::sync::TryLockError::WouldBlock) => None,
        }
    }

    /// Mutable access without locking (requires exclusive access).
    pub fn get_mut(&mut self) -> &mut T {
        self.inner.get_mut().unwrap_or_else(PoisonError::into_inner)
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for Mutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        self.inner.fmt(f)
    }
}

/// RAII guard returned by [`Mutex::lock`].
///
/// The inner `Option` is always `Some` except transiently inside
/// [`Condvar::wait`]/[`Condvar::wait_for`], which must move the underlying
/// std guard through the wait call.
pub struct MutexGuard<'a, T: ?Sized> {
    inner: Option<std::sync::MutexGuard<'a, T>>,
}

impl<T: ?Sized> Deref for MutexGuard<'_, T> {
    type Target = T;
    fn deref(&self) -> &T {
        self.inner.as_ref().expect("guard present outside wait")
    }
}

impl<T: ?Sized> DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner.as_mut().expect("guard present outside wait")
    }
}

impl<T: ?Sized + fmt::Debug> fmt::Debug for MutexGuard<'_, T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        (**self).fmt(f)
    }
}

/// Result of a timed wait on a [`Condvar`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct WaitTimeoutResult {
    timed_out: bool,
}

impl WaitTimeoutResult {
    /// True if the wait ended because the timeout elapsed.
    pub fn timed_out(&self) -> bool {
        self.timed_out
    }
}

/// A condition variable with `parking_lot`'s `&mut guard` API.
#[derive(Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
}

impl Condvar {
    /// Creates a new condition variable.
    pub const fn new() -> Self {
        Condvar {
            inner: std::sync::Condvar::new(),
        }
    }

    /// Wakes one waiting thread.
    pub fn notify_one(&self) {
        self.inner.notify_one();
    }

    /// Wakes all waiting threads.
    pub fn notify_all(&self) {
        self.inner.notify_all();
    }

    /// Blocks the current thread until notified.
    pub fn wait<T>(&self, guard: &mut MutexGuard<'_, T>) {
        let inner = guard.inner.take().expect("guard present outside wait");
        let inner = self
            .inner
            .wait(inner)
            .unwrap_or_else(PoisonError::into_inner);
        guard.inner = Some(inner);
    }

    /// Blocks the current thread until notified or `timeout` elapses.
    pub fn wait_for<T>(
        &self,
        guard: &mut MutexGuard<'_, T>,
        timeout: Duration,
    ) -> WaitTimeoutResult {
        let inner = guard.inner.take().expect("guard present outside wait");
        let (inner, result) = match self.inner.wait_timeout(inner, timeout) {
            Ok((g, r)) => (g, r),
            Err(p) => {
                let (g, r) = p.into_inner();
                (g, r)
            }
        };
        guard.inner = Some(inner);
        WaitTimeoutResult {
            timed_out: result.timed_out(),
        }
    }
}

impl fmt::Debug for Condvar {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("Condvar")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn lock_roundtrip_and_into_inner() {
        let m = Mutex::new(5);
        *m.lock() += 1;
        assert_eq!(*m.lock(), 6);
        assert_eq!(m.into_inner(), 6);
    }

    #[test]
    fn condvar_wakes_waiter() {
        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = std::thread::spawn(move || {
            let (lock, cv) = &*pair2;
            let mut guard = lock.lock();
            while !*guard {
                cv.wait(&mut guard);
            }
        });
        {
            let (lock, cv) = &*pair;
            *lock.lock() = true;
            cv.notify_all();
        }
        t.join().unwrap();
    }

    #[test]
    fn wait_for_times_out() {
        let m = Mutex::new(());
        let cv = Condvar::new();
        let mut g = m.lock();
        let r = cv.wait_for(&mut g, Duration::from_millis(10));
        assert!(r.timed_out());
    }
}
