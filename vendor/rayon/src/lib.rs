//! Offline stand-in for the `rayon` crate, now backed by **real threads**.
//!
//! PR 1 shipped this as a sequential shim (no registry access to vendor the
//! real rayon); since PR 2 it delegates to the in-repo work-stealing pool
//! [`wsm_pool`], so every `rayon::join` and `par_iter` call site in the
//! workspace gets genuine parallelism without changing a line of caller
//! code.  The surface still matches upstream rayon where the workspace uses
//! it: [`join`], `prelude::IntoParallelRefIterator::par_iter` with
//! `.map(...).collect()`, and [`scope`]/[`Scope::spawn`].
//!
//! Thread-count control (not part of upstream's surface, but handy for the
//! scaling experiments): `wsm_pool::with_threads(n, f)` runs `f` on a
//! dedicated `n`-worker pool; outside of that, work lands on the global pool
//! sized by `WSM_POOL_THREADS` or the machine's available parallelism.

pub use wsm_pool::{scope, Scope};

/// Runs both closures, potentially in parallel, and returns their results.
///
/// Delegates to [`wsm_pool::join`]: `a` runs on the calling context while `b`
/// is exposed for stealing; panics propagate to the caller after both sides
/// settle (first panic wins), exactly like upstream rayon.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    wsm_pool::join(oper_a, oper_b)
}

/// Parallel-iterator traits (work-stealing implementations over slices).
pub mod prelude {
    /// `par_iter` for shared slices.
    pub trait IntoParallelRefIterator<'data> {
        /// The element type iterated over.
        type Item: Sync + 'data;
        /// Returns a parallel iterator over `&self`'s elements.
        fn par_iter(&'data self) -> ParIter<'data, Self::Item>;
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Item = T;
        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter { slice: self }
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Item = T;
        fn par_iter(&'data self) -> ParIter<'data, T> {
            ParIter { slice: self }
        }
    }

    /// A borrowing parallel iterator over a slice.
    pub struct ParIter<'data, T: Sync> {
        slice: &'data [T],
    }

    impl<'data, T: Sync> ParIter<'data, T> {
        /// Maps each element through `map_op` (applied in parallel).
        pub fn map<R, F>(self, map_op: F) -> ParMap<'data, T, F>
        where
            F: Fn(&'data T) -> R + Sync,
            R: Send,
        {
            ParMap {
                slice: self.slice,
                map_op,
            }
        }
    }

    /// A mapped parallel iterator; `collect` runs the map on the pool.
    pub struct ParMap<'data, T: Sync, F> {
        slice: &'data [T],
        map_op: F,
    }

    impl<'data, T: Sync, F> ParMap<'data, T, F> {
        /// Computes all mapped values in parallel (order-preserving) and
        /// collects them.
        pub fn collect<R, C>(self) -> C
        where
            F: Fn(&'data T) -> R + Sync,
            R: Send,
            C: FromIterator<R>,
        {
            let ParMap { slice, map_op } = self;
            wsm_pool::par_map(slice, map_op).into_iter().collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn join_returns_both_results() {
        let (a, b) = super::join(|| 1 + 1, || "x".to_string());
        assert_eq!(a, 2);
        assert_eq!(b, "x");
    }

    #[test]
    fn par_iter_maps_like_iter() {
        use super::prelude::*;
        let v = vec![1, 2, 3];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
    }

    #[test]
    fn par_iter_collect_preserves_order_on_large_input() {
        use super::prelude::*;
        let v: Vec<u64> = (0..50_000).collect();
        let plus_one: Vec<u64> = v.par_iter().map(|x| x + 1).collect();
        assert_eq!(plus_one, (1..=50_000).collect::<Vec<u64>>());
    }

    #[test]
    fn par_iter_results_may_borrow_through_elements() {
        use super::prelude::*;
        let owners: Vec<String> = (0..300).map(|i| format!("s{i}")).collect();
        let views: Vec<&str> = owners.par_iter().map(|s| s.as_str()).collect();
        assert_eq!(views[299], "s299");
    }

    #[test]
    fn scope_spawn_is_reexported() {
        let counter = AtomicUsize::new(0);
        super::scope(|s| {
            for _ in 0..5 {
                s.spawn(|_| {
                    counter.fetch_add(1, Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 5);
    }
}
