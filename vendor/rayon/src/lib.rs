//! Offline stand-in for the `rayon` crate.
//!
//! Provides the surface this workspace uses — [`join`] and
//! `prelude::par_iter` — with *sequential* execution. Every use in the
//! workspace is a divide-and-conquer recursion or an independent per-element
//! map, so results are identical to the real rayon; only the wall-clock
//! speedup is lost (the analytic work/span accounting the experiments rely
//! on is computed separately and is unaffected).

/// Runs both closures and returns their results.
///
/// The real rayon may run them on different threads; this stand-in runs them
/// sequentially, which is observationally equivalent for pure computations.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    (oper_a(), oper_b())
}

/// Parallel-iterator traits (sequential implementations).
pub mod prelude {
    /// `par_iter` for shared slices, delegating to the ordinary iterator.
    pub trait IntoParallelRefIterator<'data> {
        /// The iterator type produced.
        type Iter: Iterator;
        /// Returns a (here: sequential) iterator over `&self`'s elements.
        fn par_iter(&'data self) -> Self::Iter;
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for [T] {
        type Iter = std::slice::Iter<'data, T>;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }

    impl<'data, T: Sync + 'data> IntoParallelRefIterator<'data> for Vec<T> {
        type Iter = std::slice::Iter<'data, T>;
        fn par_iter(&'data self) -> Self::Iter {
            self.iter()
        }
    }
}

#[cfg(test)]
mod tests {
    #[test]
    fn join_returns_both_results() {
        let (a, b) = super::join(|| 1 + 1, || "x".to_string());
        assert_eq!(a, 2);
        assert_eq!(b, "x");
    }

    #[test]
    fn par_iter_maps_like_iter() {
        use super::prelude::*;
        let v = vec![1, 2, 3];
        let doubled: Vec<i32> = v.par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![2, 4, 6]);
    }
}
