//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! Provides the API surface the workspace benches use (`Criterion`,
//! `benchmark_group`, `bench_with_input`, `BenchmarkId`, `Bencher::iter`,
//! `criterion_group!`, `criterion_main!`). Each benchmark runs a small fixed
//! number of timed iterations and prints a one-line mean; there is no warm-up
//! modelling, outlier analysis or report generation. Configuration setters
//! accept and ignore their arguments so call sites compile unchanged.

use std::fmt::Display;
use std::time::{Duration, Instant};

/// How many timed iterations each benchmark runs.
const ITERATIONS: u32 = 3;

/// Entry point object handed to benchmark functions.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("benchmark group: {name}");
        BenchmarkGroup {
            name: name.to_string(),
        }
    }
}

/// Identifier of one benchmark within a group: a function name plus a
/// parameter value.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayed parameter.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Timing driver passed to the benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed: Duration,
    iterations: u32,
}

impl Bencher {
    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..ITERATIONS {
            let start = Instant::now();
            let out = routine();
            self.elapsed += start.elapsed();
            self.iterations += 1;
            std::hint::black_box(&out);
            drop(out);
        }
    }
}

/// A group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Sets the sample count (ignored by this stand-in).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the warm-up time (ignored by this stand-in).
    pub fn warm_up_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Sets the measurement time (ignored by this stand-in).
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Sets the throughput annotation (ignored by this stand-in).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::default();
        f(&mut bencher, input);
        report(&self.name, &id.id, &bencher);
        self
    }

    /// Runs one benchmark without an input value.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        report(&self.name, id, &bencher);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Throughput annotation (accepted and ignored).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Number of elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

fn report(group: &str, id: &str, b: &Bencher) {
    let mean = if b.iterations > 0 {
        b.elapsed / b.iterations
    } else {
        Duration::ZERO
    };
    println!(
        "  {group}/{id}: {mean:?} (mean of {} iterations)",
        b.iterations
    );
}

/// Prevents the compiler from optimising a value away.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares a `main` that runs the listed benchmark groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut runs = 0u32;
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(1));
        group.bench_with_input(BenchmarkId::new("f", 1), &5u64, |b, &x| {
            b.iter(|| {
                runs += 1;
                x * 2
            })
        });
        group.finish();
        assert_eq!(runs, ITERATIONS);
    }
}
