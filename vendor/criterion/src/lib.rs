//! Offline stand-in for the `criterion` benchmarking crate.
//!
//! Provides the API surface the workspace benches use (`Criterion`,
//! `benchmark_group`, `bench_with_input`, `BenchmarkId`, `Bencher::iter`,
//! `criterion_group!`, `criterion_main!`). Each benchmark runs a small fixed
//! number of timed iterations and prints a one-line mean; there is no warm-up
//! modelling, outlier analysis or report generation. Configuration setters
//! accept and ignore their arguments so call sites compile unchanged.
//!
//! Beyond upstream criterion's surface, [`criterion_main!`] additionally
//! routes every recorded mean through the workspace's JSON writer
//! (`wsm_bench::json`), persisting one `BENCH_bench_<binary>.json` per bench
//! binary into `$WSM_BENCH_DIR` (or the current directory) — the same
//! artifact format the `harness` binary emits, so `cargo bench` results are
//! regression-trackable alongside the experiment tables.  (With the real
//! criterion crate swapped in, its own report machinery replaces this.)

use std::fmt::Display;
use std::sync::Mutex;
use std::time::{Duration, Instant};

/// Means recorded by every benchmark run in this process, drained by
/// [`write_bench_artifacts`].
static RESULTS: Mutex<Vec<(String, f64)>> = Mutex::new(Vec::new());

/// How many timed iterations each benchmark runs.
const ITERATIONS: u32 = 3;

/// Entry point object handed to benchmark functions.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup {
        println!("benchmark group: {name}");
        BenchmarkGroup {
            name: name.to_string(),
        }
    }
}

/// Identifier of one benchmark within a group: a function name plus a
/// parameter value.
#[derive(Clone, Debug)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayed parameter.
    pub fn new<S: Into<String>, P: Display>(function_name: S, parameter: P) -> Self {
        BenchmarkId {
            id: format!("{}/{}", function_name.into(), parameter),
        }
    }
}

/// Timing driver passed to the benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    elapsed: Duration,
    iterations: u32,
}

impl Bencher {
    /// Times `routine` over a fixed number of iterations.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        for _ in 0..ITERATIONS {
            let start = Instant::now();
            let out = routine();
            self.elapsed += start.elapsed();
            self.iterations += 1;
            std::hint::black_box(&out);
            drop(out);
        }
    }
}

/// A group of related benchmarks.
#[derive(Debug)]
pub struct BenchmarkGroup {
    name: String,
}

impl BenchmarkGroup {
    /// Sets the sample count (ignored by this stand-in).
    pub fn sample_size(&mut self, _n: usize) -> &mut Self {
        self
    }

    /// Sets the warm-up time (ignored by this stand-in).
    pub fn warm_up_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Sets the measurement time (ignored by this stand-in).
    pub fn measurement_time(&mut self, _t: Duration) -> &mut Self {
        self
    }

    /// Sets the throughput annotation (ignored by this stand-in).
    pub fn throughput(&mut self, _t: Throughput) -> &mut Self {
        self
    }

    /// Runs one benchmark with an input value.
    pub fn bench_with_input<I: ?Sized, F>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::default();
        f(&mut bencher, input);
        report(&self.name, &id.id, &bencher);
        self
    }

    /// Runs one benchmark without an input value.
    pub fn bench_function<F>(&mut self, id: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        report(&self.name, id, &bencher);
        self
    }

    /// Ends the group.
    pub fn finish(self) {}
}

/// Throughput annotation (accepted and ignored).
#[derive(Clone, Copy, Debug)]
pub enum Throughput {
    /// Number of elements processed per iteration.
    Elements(u64),
    /// Number of bytes processed per iteration.
    Bytes(u64),
}

fn report(group: &str, id: &str, b: &Bencher) {
    let mean = if b.iterations > 0 {
        b.elapsed / b.iterations
    } else {
        Duration::ZERO
    };
    println!(
        "  {group}/{id}: {mean:?} (mean of {} iterations)",
        b.iterations
    );
    RESULTS
        .lock()
        .unwrap_or_else(|e| e.into_inner())
        .push((format!("{group}/{id}"), mean.as_nanos() as f64));
}

/// The benchmark binary's stem with cargo's trailing `-<hash>` stripped
/// (`pesort-0a1b2c3d4e5f6789` → `pesort`).
fn bench_binary_stem() -> String {
    let stem = std::env::args()
        .next()
        .and_then(|arg0| {
            std::path::Path::new(&arg0)
                .file_stem()
                .map(|s| s.to_string_lossy().into_owned())
        })
        .unwrap_or_else(|| "bench".to_string());
    match stem.rsplit_once('-') {
        Some((name, hash)) if hash.len() == 16 && hash.bytes().all(|b| b.is_ascii_hexdigit()) => {
            name.to_string()
        }
        _ => stem,
    }
}

/// Persists every mean recorded so far as `BENCH_bench_<binary>.json` via
/// the workspace JSON writer.  Called by [`criterion_main!`] after all
/// groups ran; harmless to call when nothing was recorded.
pub fn write_bench_artifacts() {
    let results = std::mem::take(&mut *RESULTS.lock().unwrap_or_else(|e| e.into_inner()));
    if results.is_empty() {
        return;
    }
    let rows: Vec<wsm_bench::Row> = results
        .iter()
        .map(|(label, ns)| wsm_bench::Row::new(label.clone(), vec![("mean ns", *ns)]))
        .collect();
    let id = format!("bench_{}", bench_binary_stem());
    let meta = [("source", "cargo bench".to_string())];
    match wsm_bench::json::write_rows(&wsm_bench::json::bench_dir(), &id, &meta, &rows) {
        Ok(path) => println!("[wrote {}]", path.display()),
        Err(err) => eprintln!("warning: could not write BENCH_{id}.json: {err}"),
    }
}

/// Prevents the compiler from optimising a value away.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Declares a function that runs the listed benchmark functions.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares a `main` that runs the listed benchmark groups, then persists
/// the recorded means as a `BENCH_bench_<binary>.json` artifact.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
            $crate::write_bench_artifacts();
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn group_runs_benchmarks() {
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("g");
        let mut runs = 0u32;
        group
            .sample_size(10)
            .warm_up_time(Duration::from_millis(1))
            .measurement_time(Duration::from_millis(1));
        group.bench_with_input(BenchmarkId::new("f", 1), &5u64, |b, &x| {
            b.iter(|| {
                runs += 1;
                x * 2
            })
        });
        group.finish();
        assert_eq!(runs, ITERATIONS);
    }
}
