//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro with an optional `#![proptest_config(...)]` header,
//! [`prop_oneof!`], `prop_assert!`/`prop_assert_eq!`, [`arbitrary::any`],
//! integer-range and tuple strategies, [`strategy::Strategy::prop_map`], and
//! [`collection::vec`] / [`collection::btree_set`].
//!
//! Cases are generated from a deterministic per-test RNG (seeded by hashing
//! the test name), so failures are reproducible run-to-run. Unlike the real
//! proptest there is **no shrinking**: a failing case panics immediately with
//! the case number in the panic message (via a scoped eprintln).

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use crate::test_runner::TestRng;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Boxes this strategy for use in heterogeneous collections
        /// (e.g. [`crate::prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A boxed, type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed strategies ([`crate::prop_oneof!`]).
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Creates a union over the given options.
        ///
        /// # Panics
        /// Panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
}

pub mod arbitrary {
    //! The [`Arbitrary`] trait and [`any`].

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical generation strategy.
    pub trait Arbitrary {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy generating any value of `T` (returned by [`any`]).
    pub struct Any<T> {
        _marker: PhantomData<fn() -> T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Returns the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: PhantomData,
        }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = sample_size(&self.size, rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates a `Vec` whose length lies in `size` (half-open).
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Strategy returned by [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = sample_size(&self.size, rng);
            let mut out = BTreeSet::new();
            // Duplicates may be drawn; bound the attempts so tiny value
            // domains cannot loop forever (the set may then be smaller than
            // the target, as with the real proptest when the domain is
            // exhausted).
            let mut attempts = 0usize;
            while out.len() < target && attempts < 10 * target + 16 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }

    /// Generates a `BTreeSet` whose size lies in `size` (half-open), smaller
    /// only if the element domain is too small.
    pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy { element, size }
    }

    fn sample_size(range: &Range<usize>, rng: &mut TestRng) -> usize {
        assert!(range.start < range.end, "empty size range");
        let span = (range.end - range.start) as u64;
        range.start + (rng.next_u64() % span) as usize
    }
}

pub mod test_runner {
    //! Configuration and the deterministic test RNG.

    /// Per-test configuration.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// Deterministic RNG used for generation (SplitMix64).
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Creates an RNG seeded by hashing `name` (FNV-1a), so every test
        /// function gets a distinct, stable stream.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng { state: h }
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
            z ^ (z >> 31)
        }
    }
}

pub mod prelude {
    //! Everything a property test usually imports.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// Module alias mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::collection;
    }
}

/// Asserts a condition inside a property, failing the case if false.
///
/// This stand-in panics immediately (no shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Asserts equality inside a property, failing the case if unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+);
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Defines property tests.
///
/// Mirrors the real macro's surface syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u64..100, v in prop::collection::vec(any::<u8>(), 0..10)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: expands each test function.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let mut rng = $crate::test_runner::TestRng::for_test(stringify!($name));
            // Build each strategy once (bound to the argument name, then
            // shadowed by the generated value inside the loop).
            $(let $arg = $strategy;)+
            for case in 0..config.cases {
                $(let $arg = $crate::strategy::Strategy::generate(&$arg, &mut rng);)+
                let result = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    $body
                }));
                if let Err(panic) = result {
                    eprintln!(
                        "proptest case {}/{} of `{}` failed (no shrinking in offline stand-in)",
                        case + 1,
                        config.cases,
                        stringify!($name),
                    );
                    ::std::panic::resume_unwind(panic);
                }
            }
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 5u64..10, len in 1usize..4) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((1..4).contains(&len));
        }

        #[test]
        fn vec_sizes_in_range(v in prop::collection::vec(any::<u8>(), 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
        }

        #[test]
        fn oneof_and_map_compose(
            v in prop::collection::vec(
                prop_oneof![
                    (any::<u8>()).prop_map(u64::from),
                    10u64..20,
                ],
                1..5,
            )
        ) {
            prop_assert!(v.iter().all(|&x| x < 256 || (10..20).contains(&x)));
        }

        #[test]
        fn btree_sets_have_distinct_elements(s in prop::collection::btree_set(any::<u16>(), 1..40)) {
            prop_assert!(!s.is_empty());
        }
    }
}
