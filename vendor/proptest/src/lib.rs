//! Offline stand-in for the `proptest` crate.
//!
//! Implements the subset this workspace's property tests use: the
//! [`proptest!`] macro with an optional `#![proptest_config(...)]` header,
//! [`prop_oneof!`], `prop_assert!`/`prop_assert_eq!`, [`arbitrary::any`],
//! integer-range and tuple strategies, [`strategy::Strategy::prop_map`],
//! [`sample::select`], and [`collection::vec`] / [`collection::btree_set`].
//!
//! Cases are generated from a deterministic per-test RNG (seeded by hashing
//! the test name), so failures are reproducible run-to-run.
//!
//! ## Shrinking
//!
//! On failure the runner **shrinks the counterexample** before reporting it.
//! Generation is a pure function of the stream of `u64` draws a strategy
//! pulls from the RNG, so the runner records that stream and then minimizes
//! it directly (the Hypothesis approach): first it zeroes ever-smaller chunks
//! of the stream, then it binary-searches each surviving draw down towards
//! zero, re-running the test body on the replayed stream and keeping every
//! mutation that still fails.  Because all strategies here map smaller draws
//! to simpler values (integer ranges to their lower end, `vec` lengths to
//! shorter vectors, `prop_oneof!` to earlier alternatives), the minimized
//! stream decodes to a minimal failing input, which is printed with `Debug`
//! before the panic is re-raised.

pub mod strategy {
    //! The [`Strategy`] trait and its combinators.

    use crate::test_runner::TestRng;

    /// A generator of values of type `Self::Value`.
    pub trait Strategy {
        /// The type of generated values.
        type Value;

        /// Generates one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Maps generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Boxes this strategy for use in heterogeneous collections
        /// (e.g. [`crate::prop_oneof!`]).
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A boxed, type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for BoxedStrategy<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    /// Strategy returned by [`Strategy::prop_map`].
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Uniform choice between boxed strategies ([`crate::prop_oneof!`]).
    ///
    /// The choice consumes one draw; under shrinking a smaller draw selects
    /// an earlier alternative, so list simpler strategies first.
    pub struct Union<T> {
        options: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Creates a union over the given options.
        ///
        /// # Panics
        /// Panics if `options` is empty.
        pub fn new(options: Vec<BoxedStrategy<T>>) -> Self {
            assert!(!options.is_empty(), "prop_oneof! needs at least one option");
            Union { options }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[i].generate(rng)
        }
    }

    macro_rules! int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + (rng.next_u64() % span) as $t
                }
            }
        )*};
    }

    int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }

    tuple_strategy!(A);
    tuple_strategy!(A, B);
    tuple_strategy!(A, B, C);
    tuple_strategy!(A, B, C, D);
    tuple_strategy!(A, B, C, D, E);
    tuple_strategy!(A, B, C, D, E, F);
}

pub mod arbitrary {
    //! The [`Arbitrary`] trait and [`any`].

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::marker::PhantomData;

    /// Types with a canonical generation strategy.
    pub trait Arbitrary {
        /// Generates one arbitrary value.
        fn arbitrary(rng: &mut TestRng) -> Self;
    }

    macro_rules! int_arbitrary {
        ($($t:ty),*) => {$(
            impl Arbitrary for $t {
                fn arbitrary(rng: &mut TestRng) -> $t {
                    rng.next_u64() as $t
                }
            }
        )*};
    }

    int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

    impl Arbitrary for bool {
        fn arbitrary(rng: &mut TestRng) -> bool {
            rng.next_u64() & 1 == 1
        }
    }

    /// Strategy generating any value of `T` (returned by [`any`]).
    pub struct Any<T> {
        _marker: PhantomData<fn() -> T>,
    }

    impl<T: Arbitrary> Strategy for Any<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            T::arbitrary(rng)
        }
    }

    /// Returns the canonical strategy for `T`.
    pub fn any<T: Arbitrary>() -> Any<T> {
        Any {
            _marker: PhantomData,
        }
    }
}

pub mod sample {
    //! Sampling strategies ([`select`]).

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;

    /// Strategy returned by [`select`].
    pub struct Select<T> {
        options: Vec<T>,
    }

    impl<T: Clone> Strategy for Select<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = (rng.next_u64() % self.options.len() as u64) as usize;
            self.options[i].clone()
        }
    }

    /// Uniform choice from a fixed list of values.  Smaller draws select
    /// earlier elements, so list the simplest value first for shrinking.
    ///
    /// # Panics
    /// Panics if `options` is empty.
    pub fn select<T: Clone>(options: Vec<T>) -> Select<T> {
        assert!(!options.is_empty(), "select needs at least one option");
        Select { options }
    }
}

pub mod collection {
    //! Collection strategies.

    use crate::strategy::Strategy;
    use crate::test_runner::TestRng;
    use std::collections::BTreeSet;
    use std::ops::Range;

    /// Strategy returned by [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let len = sample_size(&self.size, rng);
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Generates a `Vec` whose length lies in `size` (half-open).
    pub fn vec<S: Strategy>(element: S, size: Range<usize>) -> VecStrategy<S> {
        VecStrategy { element, size }
    }

    /// Strategy returned by [`btree_set`].
    pub struct BTreeSetStrategy<S> {
        element: S,
        size: Range<usize>,
    }

    impl<S: Strategy> Strategy for BTreeSetStrategy<S>
    where
        S::Value: Ord,
    {
        type Value = BTreeSet<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> BTreeSet<S::Value> {
            let target = sample_size(&self.size, rng);
            let mut out = BTreeSet::new();
            // Duplicates may be drawn; bound the attempts so tiny value
            // domains cannot loop forever (the set may then be smaller than
            // the target, as with the real proptest when the domain is
            // exhausted).
            let mut attempts = 0usize;
            while out.len() < target && attempts < 10 * target + 16 {
                out.insert(self.element.generate(rng));
                attempts += 1;
            }
            out
        }
    }

    /// Generates a `BTreeSet` whose size lies in `size` (half-open), smaller
    /// only if the element domain is too small.
    pub fn btree_set<S: Strategy>(element: S, size: Range<usize>) -> BTreeSetStrategy<S> {
        BTreeSetStrategy { element, size }
    }

    fn sample_size(range: &Range<usize>, rng: &mut TestRng) -> usize {
        assert!(range.start < range.end, "empty size range");
        let span = (range.end - range.start) as u64;
        range.start + (rng.next_u64() % span) as usize
    }
}

pub mod test_runner {
    //! Configuration, the deterministic test RNG, and the shrinking runner.

    use crate::strategy::Strategy;
    use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};

    /// Per-test configuration.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of cases to run per property.
        pub cases: u32,
    }

    impl Config {
        /// A configuration running `cases` cases.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 256 }
        }
    }

    /// How many candidate streams the shrinker may evaluate per failure.
    const SHRINK_BUDGET: usize = 4096;

    enum Mode {
        /// Fresh generation from the SplitMix64 state, recording each draw.
        Random { record: Vec<u64> },
        /// Replay of a recorded (possibly mutated) draw stream; reads past
        /// the end yield 0, the minimal draw.
        Replay { draws: Vec<u64>, pos: usize },
    }

    /// Deterministic RNG used for generation (SplitMix64), with draw
    /// recording and replay for shrinking.
    pub struct TestRng {
        state: u64,
        mode: Mode,
    }

    impl TestRng {
        /// Creates an RNG seeded by hashing `name` (FNV-1a), so every test
        /// function gets a distinct, stable stream.
        pub fn for_test(name: &str) -> Self {
            let mut h: u64 = 0xcbf29ce484222325;
            for b in name.bytes() {
                h ^= u64::from(b);
                h = h.wrapping_mul(0x100000001b3);
            }
            TestRng {
                state: h,
                mode: Mode::Random { record: Vec::new() },
            }
        }

        /// Creates an RNG replaying the given draw stream (used by the
        /// shrinker; exhausted streams keep yielding 0).
        pub fn replay(draws: &[u64]) -> Self {
            TestRng {
                state: 0,
                mode: Mode::Replay {
                    draws: draws.to_vec(),
                    pos: 0,
                },
            }
        }

        /// Returns the next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            match &mut self.mode {
                Mode::Random { record } => {
                    self.state = self.state.wrapping_add(0x9E3779B97F4A7C15);
                    let mut z = self.state;
                    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
                    let v = z ^ (z >> 31);
                    record.push(v);
                    v
                }
                Mode::Replay { draws, pos } => {
                    let v = draws.get(*pos).copied().unwrap_or(0);
                    *pos += 1;
                    v
                }
            }
        }

        /// Takes the draws recorded since the last call (empty in replay
        /// mode).
        pub fn take_record(&mut self) -> Vec<u64> {
            match &mut self.mode {
                Mode::Random { record } => std::mem::take(record),
                Mode::Replay { .. } => Vec::new(),
            }
        }
    }

    /// How many shrink re-runs are in flight process-wide.  A global count —
    /// not a thread-local — because concurrent properties spawn OS threads /
    /// pool workers inside the test body, and their panics during shrinking
    /// must be silenced too.  While any shrink is active, unrelated panics
    /// lose only the hook's immediate stderr print; libtest still reports
    /// every failure from the captured payload.
    static SILENCE_DEPTH: std::sync::atomic::AtomicUsize = std::sync::atomic::AtomicUsize::new(0);

    /// Installs (once per process) a panic hook that stays silent while any
    /// shrink re-run is active and defers to the previous hook otherwise, so
    /// hundreds of shrink re-runs do not spam stderr.
    fn silence_shrink_panics() {
        use std::sync::Once;
        static HOOK: Once = Once::new();
        HOOK.call_once(|| {
            let previous = std::panic::take_hook();
            std::panic::set_hook(Box::new(move |info| {
                if SILENCE_DEPTH.load(std::sync::atomic::Ordering::SeqCst) == 0 {
                    previous(info);
                }
            }));
        });
    }

    /// Runs `test` on the replayed stream, reporting whether it failed.
    fn fails<S, F>(strategy: &S, test: &F, draws: &[u64]) -> bool
    where
        S: Strategy,
        F: Fn(S::Value),
    {
        let mut rng = TestRng::replay(draws);
        let value = strategy.generate(&mut rng);
        SILENCE_DEPTH.fetch_add(1, std::sync::atomic::Ordering::SeqCst);
        let result = catch_unwind(AssertUnwindSafe(|| test(value)));
        SILENCE_DEPTH.fetch_sub(1, std::sync::atomic::Ordering::SeqCst);
        result.is_err()
    }

    /// Minimizes a failing draw stream: chunk zeroing, then a per-draw binary
    /// search towards zero.  Every kept mutation still fails `test`.
    fn shrink_draws<S, F>(strategy: &S, test: &F, mut draws: Vec<u64>) -> (Vec<u64>, usize)
    where
        S: Strategy,
        F: Fn(S::Value),
    {
        let mut budget = SHRINK_BUDGET;
        // Pass 1: zero chunks of halving size (drops whole substructures —
        // e.g. a vec length draw and its elements — in one step).
        let mut chunk = draws.len();
        while chunk > 0 && budget > 0 {
            let mut start = 0;
            while start < draws.len() && budget > 0 {
                let end = (start + chunk).min(draws.len());
                if draws[start..end].iter().any(|&d| d != 0) {
                    let saved: Vec<u64> = draws[start..end].to_vec();
                    draws[start..end].iter_mut().for_each(|d| *d = 0);
                    budget -= 1;
                    if !fails(strategy, test, &draws) {
                        draws[start..end].copy_from_slice(&saved);
                    }
                }
                start = end;
            }
            chunk /= 2;
        }
        // Pass 2: binary-search each draw towards zero.
        for i in 0..draws.len() {
            let original = draws[i];
            if original == 0 {
                continue;
            }
            let mut lo = 0u64; // lowest candidate not yet known to pass
            let mut hi = original; // known to fail
            while lo < hi && budget > 0 {
                let mid = lo + (hi - lo) / 2;
                draws[i] = mid;
                budget -= 1;
                if fails(strategy, test, &draws) {
                    hi = mid;
                } else {
                    lo = mid + 1;
                }
            }
            draws[i] = hi;
        }
        (draws, SHRINK_BUDGET - budget)
    }

    /// Drives one property: generates `config.cases` inputs, runs `test` on
    /// each, and on the first failure shrinks the recorded draw stream,
    /// prints the minimized counterexample and re-raises the (minimized)
    /// panic.
    pub fn run_cases<S, F>(name: &str, config: &Config, strategy: &S, test: F)
    where
        S: Strategy,
        S::Value: std::fmt::Debug,
        F: Fn(S::Value),
    {
        silence_shrink_panics();
        let mut rng = TestRng::for_test(name);
        for case in 0..config.cases {
            rng.take_record();
            let value = strategy.generate(&mut rng);
            if let Err(original_panic) = catch_unwind(AssertUnwindSafe(|| test(value))) {
                let draws = rng.take_record();
                // The failing input is reconstructed from its draw stream
                // only now, so passing cases never pay for a Debug render.
                let original_value = strategy.generate(&mut TestRng::replay(&draws));
                let (minimized, runs) = shrink_draws(strategy, &test, draws);
                let minimized_value = strategy.generate(&mut TestRng::replay(&minimized));
                eprintln!(
                    "proptest `{name}`: case {}/{} failed; original input:\n{:#?}\n\
                     minimal failing input (after {runs} shrink runs):\n{:#?}",
                    case + 1,
                    config.cases,
                    original_value,
                    minimized_value,
                );
                // Re-run the minimized case un-silenced so the panic payload
                // (and assertion message) match the printed input.  The
                // shrinker only keeps failing streams, so this must fail;
                // fall back to the original panic if it somehow does not
                // (e.g. a flaky property).
                match catch_unwind(AssertUnwindSafe(|| {
                    test(strategy.generate(&mut TestRng::replay(&minimized)))
                })) {
                    Err(minimized_panic) => resume_unwind(minimized_panic),
                    Ok(()) => resume_unwind(original_panic),
                }
            }
        }
    }
}

pub mod prelude {
    //! Everything a property test usually imports.

    pub use crate::arbitrary::any;
    pub use crate::strategy::{BoxedStrategy, Strategy};
    pub use crate::test_runner::Config as ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_oneof, proptest};

    /// Module alias mirroring `proptest::prelude::prop`.
    pub mod prop {
        pub use crate::{collection, sample};
    }
}

/// Asserts a condition inside a property, failing the case if false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        assert!($cond);
    };
    ($cond:expr, $($fmt:tt)+) => {
        assert!($cond, $($fmt)+);
    };
}

/// Asserts equality inside a property, failing the case if unequal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr $(,)?) => {
        assert_eq!($left, $right);
    };
    ($left:expr, $right:expr, $($fmt:tt)+) => {
        assert_eq!($left, $right, $($fmt)+);
    };
}

/// Uniform choice between strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strategy:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strategy)),+
        ])
    };
}

/// Defines property tests.
///
/// Mirrors the real macro's surface syntax:
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))]
///     #[test]
///     fn my_property(x in 0u64..100, v in prop::collection::vec(any::<u8>(), 0..10)) {
///         prop_assert!(x < 100);
///     }
/// }
/// ```
///
/// A failing case is shrunk (see the crate docs) and the minimized input is
/// printed via `Debug` before the panic is re-raised.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($config:expr)] $($rest:tt)*) => {
        $crate::__proptest_items! { ($config) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_items! { ($crate::test_runner::Config::default()) $($rest)* }
    };
}

/// Implementation detail of [`proptest!`]: expands each test function.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    (($config:expr)) => {};
    (($config:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let config: $crate::test_runner::Config = $config;
            let strategy = ($($strategy,)+);
            $crate::test_runner::run_cases(
                stringify!($name),
                &config,
                &strategy,
                |($($arg,)+)| $body,
            );
        }
        $crate::__proptest_items! { ($config) $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_respect_bounds(x in 5u64..10, len in 1usize..4) {
            prop_assert!((5..10).contains(&x));
            prop_assert!((1..4).contains(&len));
        }

        #[test]
        fn vec_sizes_in_range(v in prop::collection::vec(any::<u8>(), 2..6)) {
            prop_assert!((2..6).contains(&v.len()));
        }

        #[test]
        fn oneof_and_map_compose(
            v in prop::collection::vec(
                prop_oneof![
                    (any::<u8>()).prop_map(u64::from),
                    10u64..20,
                ],
                1..5,
            )
        ) {
            prop_assert!(v.iter().all(|&x| x < 256 || (10..20).contains(&x)));
        }

        #[test]
        fn btree_sets_have_distinct_elements(s in prop::collection::btree_set(any::<u16>(), 1..40)) {
            prop_assert!(!s.is_empty());
        }
    }

    mod shrinking {
        use crate::test_runner::{run_cases, Config};
        use std::panic::{catch_unwind, AssertUnwindSafe};
        use std::sync::Mutex;

        #[test]
        fn integer_counterexample_shrinks_to_boundary() {
            // Fails for x >= 777; the minimal counterexample is exactly 777,
            // and the final (re-raised) run must execute it.
            let executed: Mutex<Vec<u64>> = Mutex::new(Vec::new());
            let strategy = (0u64..100_000,);
            let result = catch_unwind(AssertUnwindSafe(|| {
                run_cases(
                    "shrink_int_demo",
                    &Config::with_cases(64),
                    &strategy,
                    |(x,)| {
                        executed.lock().unwrap().push(x);
                        assert!(x < 777, "too big: {x}");
                    },
                );
            }));
            assert!(result.is_err(), "property must fail");
            let last = *executed.lock().unwrap().last().unwrap();
            assert_eq!(last, 777, "shrinker should land on the failure boundary");
        }

        #[test]
        fn vec_counterexample_shrinks_to_single_element() {
            // Fails when any element is >= 500; minimal case is one element
            // of exactly 500.
            let executed: Mutex<Vec<Vec<u64>>> = Mutex::new(Vec::new());
            let strategy = (crate::collection::vec(0u64..1000, 0..20),);
            let result = catch_unwind(AssertUnwindSafe(|| {
                run_cases(
                    "shrink_vec_demo",
                    &Config::with_cases(64),
                    &strategy,
                    |(v,)| {
                        executed.lock().unwrap().push(v.clone());
                        assert!(v.iter().all(|&x| x < 500), "oversized element in {v:?}");
                    },
                );
            }));
            assert!(result.is_err(), "property must fail");
            let last = executed.lock().unwrap().last().unwrap().clone();
            assert_eq!(last, vec![500], "minimal case is a single boundary element");
        }

        #[test]
        fn choice_counterexample_shrinks_to_first_failing_option() {
            // The second alternative always fails; shrinking must keep a
            // failing stream while minimizing the payload.
            let executed: Mutex<Vec<u64>> = Mutex::new(Vec::new());
            let strategy = (prop_oneof![0u64..10, 100u64..200],);
            let result = catch_unwind(AssertUnwindSafe(|| {
                run_cases(
                    "shrink_choice_demo",
                    &Config::with_cases(64),
                    &strategy,
                    |(x,)| {
                        executed.lock().unwrap().push(x);
                        assert!(x < 100, "chose the failing branch: {x}");
                    },
                );
            }));
            assert!(result.is_err(), "property must fail");
            let last = *executed.lock().unwrap().last().unwrap();
            assert_eq!(last, 100, "minimal failing choice is the branch floor");
        }

        #[test]
        fn passing_properties_never_shrink() {
            let strategy = (0u64..100,);
            run_cases(
                "no_shrink_needed",
                &Config::with_cases(32),
                &strategy,
                |(x,)| {
                    assert!(x < 100);
                },
            );
        }
    }
}
