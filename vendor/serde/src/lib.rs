//! Offline stand-in for the `serde` crate.
//!
//! The workspace only *derives* `Serialize`/`Deserialize` (for forward
//! compatibility of its report types); nothing serialises values yet, so the
//! derive macros re-exported here expand to nothing and the marker traits
//! below exist purely so the names resolve in both namespaces, as with the
//! real serde.

/// Marker trait standing in for `serde::Serialize`.
pub trait Serialize {}

/// Marker trait standing in for `serde::Deserialize`.
pub trait Deserialize<'de> {}

pub use serde_derive::{Deserialize, Serialize};
