//! Quickstart: using the parallel working-set maps.
//!
//! Run with `cargo run --example quickstart`.
//!
//! The example shows the three ways of using the library:
//! 1. the batched API of M1/M2 (operations arrive in batches, the map reports
//!    its effective work/span in the paper's cost model),
//! 2. the implicit-batching concurrent front-end used from plain threads, and
//! 3. comparing measured work against the working-set bound `W_L`.

use std::sync::Arc;
use wsm_core::{BatchedMap, ConcurrentMap, Operation, M1, M2};
use wsm_model::{working_set_bound, MapOpKind};

fn main() {
    // ---------------------------------------------------------------
    // 1. Batched usage: build a map for p = 8 processors and run batches.
    // ---------------------------------------------------------------
    let mut m1: M1<u64, String> = M1::new(8);
    let results = m1.run_ops(vec![
        Operation::Insert(10, "ten".to_string()),
        Operation::Insert(20, "twenty".to_string()),
        Operation::Search(10),
        Operation::Delete(20),
        Operation::Search(20),
    ]);
    println!("M1 results: {results:?}");
    println!(
        "M1 size={} effective work={} effective span={}",
        m1.size(),
        m1.effective_work(),
        m1.effective_span()
    );

    // M2 has the same interface but pipelines its final slab; per-operation
    // latencies are available after processing.
    let mut m2: M2<u64, u64> = M2::new(8);
    m2.run_ops((0..10_000).map(|i| Operation::Insert(i, i)).collect());
    m2.run_ops(vec![Operation::Search(1), Operation::Search(9_999)]);
    let lat: Vec<u64> = m2
        .latencies()
        .iter()
        .rev()
        .take(2)
        .map(|l| l.latency())
        .collect();
    println!("M2 latest per-op pipeline latencies (virtual steps): {lat:?}");

    // ---------------------------------------------------------------
    // 2. Concurrent usage: implicit batching from ordinary threads.
    // ---------------------------------------------------------------
    let map = Arc::new(ConcurrentMap::new(M1::<u64, u64>::new(4), 4));
    let handles: Vec<_> = (0..4u64)
        .map(|t| {
            let map = Arc::clone(&map);
            std::thread::spawn(move || {
                for i in 0..1_000 {
                    map.insert(t as usize, t * 1_000 + i, i);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
    println!(
        "concurrent map holds {} items after 4 threads x 1000 inserts",
        map.len()
    );

    // ---------------------------------------------------------------
    // 3. The working-set bound: skewed accesses are provably cheap.
    // ---------------------------------------------------------------
    let mut ops: Vec<MapOpKind<u64>> = (0..4_096).map(MapOpKind::Insert).collect();
    ops.extend((0..16_384).map(|i| MapOpKind::Search(i % 8))); // hot set of 8 keys
    let wl = working_set_bound(&ops);
    let mut m1: M1<u64, u64> = M1::new(8);
    for chunk in ops.chunks(64) {
        let batch = chunk
            .iter()
            .map(|k| match k {
                MapOpKind::Search(k) => Operation::Search(*k),
                MapOpKind::Insert(k) => Operation::Insert(*k, *k),
                MapOpKind::Delete(k) => Operation::Delete(*k),
            })
            .collect();
        m1.run_ops(batch);
    }
    println!(
        "hot-set workload: W_L = {wl}, M1 effective work = {} (ratio {:.2})",
        m1.effective_work(),
        m1.effective_work() as f64 / wl as f64
    );
}
