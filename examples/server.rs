//! A miniature key-value "server" built on the async service front-end.
//!
//! Run with `cargo run --example server --release`.  `WSM_SVC_CLIENTS`
//! concurrent client tasks (default 8) each fire `WSM_SVC_REQUESTS`
//! batched lookups (default 500) of `WSM_SVC_BATCH` keys (default 16)
//! against one [`wsm_svc::WsMapService`], pacing themselves at
//! `WSM_SVC_QPS` requests per second per client (default 500).  The clients
//! are cooperative futures on the service's own [`wsm_svc::Executor`]
//! (`WSM_SVC_WORKERS` threads, default 2) — no OS thread per connection.
//!
//! The backend is a [`wsm_shard::ShardedMap`] (`WSM_SHARDS`, default 4) in
//! the hand-off mode named by `WSM_HANDOFF` (`doorbell` | `cell` | `waker`,
//! default waker for a service workload: an awaiting `BatchCall` goes
//! quiescent until its `ResultCell`s fill, instead of cooperatively
//! re-polling).  The run ends with a per-mode-relevant latency summary —
//! p50/p99/p999 over every request — mirroring what experiment E21
//! (`harness e21`) records as a committed artifact.
//!
//! A fraction of requests (1 in 8) are writes: each client refreshes its
//! hottest keys through `batch_insert`, so the combiner sees mixed batches.

use std::sync::Arc;
use std::time::{Duration, Instant};
use wsm_core::M1;
use wsm_shard::ShardedMap;
use wsm_svc::{block_on, Executor, WsMapService};
use wsm_workloads::{Pattern, WorkloadSpec};

const KEYSPACE: u64 = 1 << 14;

/// Concurrent client tasks: `WSM_SVC_CLIENTS` or 8.
fn clients() -> usize {
    wsm_core::env::parse("WSM_SVC_CLIENTS", "a client count >= 1", 8, |&n: &usize| {
        n > 0
    })
}

/// Paced requests per client: `WSM_SVC_REQUESTS` or 500.
fn requests() -> usize {
    wsm_core::env::parse(
        "WSM_SVC_REQUESTS",
        "a request count >= 1",
        500,
        |&n: &usize| n > 0,
    )
}

/// Keys per batched request: `WSM_SVC_BATCH` or 16.
fn batch() -> usize {
    wsm_core::env::parse("WSM_SVC_BATCH", "a batch size >= 1", 16, |&n: &usize| n > 0)
}

/// Target requests/second per client: `WSM_SVC_QPS` or 500.
fn qps() -> u64 {
    wsm_core::env::parse("WSM_SVC_QPS", "a rate >= 1", 500, |&n: &u64| n > 0)
}

/// Keyspace shards: `WSM_SHARDS` or 4.
fn shards() -> usize {
    wsm_core::env::parse("WSM_SHARDS", "a shard count >= 1", 4, |&n: &usize| n > 0)
}

fn main() {
    let (clients, requests, batch, qps, shards) = (clients(), requests(), batch(), qps(), shards());
    let interval = Duration::from_micros(1_000_000 / qps);

    // The maps read `WSM_HANDOFF` themselves at construction.
    let map = Arc::new(ShardedMap::with_shards(shards, |_| M1::<u64, u64>::new(4)));
    let handoff = map.handoff();
    let preload: Vec<(u64, u64)> = (0..KEYSPACE).map(|k| (k, k)).collect();
    for chunk in preload.chunks(512) {
        map.insert_batch(chunk.to_vec());
    }
    let svc = WsMapService::from_arc(map);
    let exec = Executor::from_env();
    let timer = exec.timer();

    println!(
        "server: {clients} clients x {requests} req x {batch} keys @ {qps} req/s each, \
         S={shards}, handoff={handoff:?}"
    );

    let wall = Instant::now();
    let handles: Vec<_> = (0..clients)
        .map(|c| {
            let svc = svc.clone();
            let timer = timer.clone();
            let keys: Vec<u64> =
                WorkloadSpec::read_only(KEYSPACE, requests * batch, Pattern::Zipf(1.1), c as u64)
                    .access_phase()
                    .iter()
                    .map(|op| *op.key())
                    .collect();
            exec.spawn(async move {
                let mut latencies = Vec::with_capacity(requests);
                let base = Instant::now();
                for r in 0..requests {
                    timer.sleep_until(base + interval * r as u32).await;
                    let window = keys[r * batch..(r + 1) * batch].to_vec();
                    let issued = Instant::now();
                    if r % 8 == 7 {
                        let _ = svc
                            .batch_insert(window.into_iter().map(|k| (k, k + 1)).collect())
                            .await;
                    } else {
                        let _ = svc.batch_search(window).await;
                    }
                    latencies.push(issued.elapsed().as_nanos() as u64);
                }
                latencies
            })
        })
        .collect();
    let mut latencies: Vec<u64> = handles.into_iter().flat_map(block_on).collect();
    let elapsed = wall.elapsed();

    latencies.sort_unstable();
    let pct = |p: f64| {
        let idx = ((latencies.len() as f64 - 1.0) * p).round() as usize;
        latencies[idx] as f64 / 1_000.0
    };
    let total_ops = (clients * requests * batch) as f64;
    println!(
        "served {} requests ({} ops) in {:.2?}: p50 {:.1} us, p99 {:.1} us, \
         p999 {:.1} us, achieved {:.0} kops/s",
        latencies.len(),
        total_ops,
        elapsed,
        pct(0.50),
        pct(0.99),
        pct(0.999),
        total_ops / elapsed.as_secs_f64() / 1_000.0,
    );
}
