//! Building a word-frequency index with heavily repeated keys.
//!
//! Run with `cargo run --example text_index --release`.
//!
//! Natural-language token streams are extremely low-entropy: a few words
//! account for most occurrences.  This is exactly the regime where (a) the
//! entropy sorts beat comparison sorting and (b) the working-set map's
//! duplicate combining pays off, because every batch of tokens contains many
//! repeats of the same hot words.  The example indexes a synthetic Zipfian
//! "document stream", reports the entropy bound versus the sort cost, and
//! compares the effective work of M2 against a splay tree processing the same
//! token stream one call at a time.

use wsm_core::{BatchedMap, Operation, TaggedOp, M2};
use wsm_model::{entropy_bound, sequence_entropy};
use wsm_seq::SplayMap;
use wsm_sort::pesort_group;
use wsm_workloads::{Pattern, WorkloadSpec};

const VOCABULARY: u64 = 20_000;
const TOKENS: usize = 200_000;

fn main() {
    // A Zipf(1.05) token stream over a 20k-word vocabulary.
    let tokens: Vec<u64> = WorkloadSpec::read_only(VOCABULARY, TOKENS, Pattern::Zipf(1.05), 11)
        .access_phase()
        .iter()
        .map(|op| *op.key())
        .collect();
    let h = sequence_entropy(&tokens);
    println!("token stream: {TOKENS} tokens, vocabulary {VOCABULARY}, entropy {h:.2} bits/token");

    // Entropy sorting a batch of tokens (what M1/M2 do internally per batch).
    let (groups, sort_cost) = pesort_group(&tokens[..50_000.min(tokens.len())]);
    println!(
        "PESort grouped 50k tokens into {} distinct words with {} work (entropy bound {:.0})",
        groups.len(),
        sort_cost.work,
        entropy_bound(&tokens[..50_000.min(tokens.len())])
    );

    // Build the index with M2: word -> occurrence count, processed in batches
    // of 4096 tokens (one "document" at a time).
    let mut index: M2<u64, u64> = M2::new(8);
    let mut next_id = 0u64;
    for doc in tokens.chunks(4096) {
        // Count occurrences within the document first (the map stores totals).
        let mut counts: std::collections::BTreeMap<u64, u64> = std::collections::BTreeMap::new();
        for &t in doc {
            *counts.entry(t).or_insert(0) += 1;
        }
        // Read existing totals, then write back the new totals, as one batch
        // each.
        let read_batch: Vec<TaggedOp<u64, u64>> = counts
            .keys()
            .map(|&w| {
                let t = TaggedOp {
                    id: next_id,
                    op: Operation::Search(w),
                };
                next_id += 1;
                t
            })
            .collect();
        let ids: Vec<u64> = read_batch.iter().map(|t| t.id).collect();
        let (results, _) = index.run_batch(read_batch);
        let by_id: std::collections::BTreeMap<u64, _> = results.into_iter().collect();
        let write_batch: Vec<TaggedOp<u64, u64>> = counts
            .iter()
            .zip(ids)
            .map(|((&w, &c), id)| {
                let old = match &by_id[&id] {
                    wsm_core::OpResult::Search(Some(v)) => *v,
                    _ => 0,
                };
                let t = TaggedOp {
                    id: next_id,
                    op: Operation::Insert(w, old + c),
                };
                next_id += 1;
                t
            })
            .collect();
        index.run_batch(write_batch);
    }
    println!(
        "M2 index: {} distinct words, measured work {} ({:.2} per token)",
        index.len(),
        index.effective_work(),
        index.effective_work() as f64 / TOKENS as f64
    );
    // Measured vs worst-case charges (see `wsm_twothree::cost`): the index
    // paid for the tree nodes it actually touched; the Lemma A.2 bound is
    // kept alongside as the analytic ceiling, and the pipelined maintenance
    // cascade count shows the Lemma 16 hole-refill runs this stream needed.
    println!(
        "M2 worst-case bound charge {} ({:.2} of bound paid), {} maintenance runs",
        index.analytic_bound_work(),
        index.effective_work() as f64 / index.analytic_bound_work().max(1) as f64,
        index.maintenance_runs()
    );

    // Splay-tree baseline: the classic sequential self-adjusting structure,
    // one call per token.
    let mut splay: SplayMap<u64, u64> = SplayMap::new();
    let mut splay_work = 0u64;
    for &t in &tokens {
        let (old, c1) = splay.access(&t);
        let (_, c2) = splay.insert_item(t, old.unwrap_or(0) + 1);
        splay_work += c1.work + c2.work;
    }
    println!(
        "splay baseline: effective work {splay_work} ({:.2} per token)",
        splay_work as f64 / TOKENS as f64
    );
    println!(
        "both are distribution-sensitive; the batched map additionally exposes parallelism inside every batch"
    );
}
