//! Shared nothing: this crate exists to host the runnable examples
//! (`cargo run --example quickstart`, `web_cache`, `graph_shortest_paths`,
//! `text_index`) and the workspace-level integration/property tests that live
//! in `../tests`.
