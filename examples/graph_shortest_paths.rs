//! Dijkstra-style graph exploration using the working-set map as the distance
//! table.
//!
//! Run with `cargo run --example graph_shortest_paths --release`.
//!
//! Shortest-path style algorithms have strong temporal locality: the distance
//! entries of vertices near the current frontier are touched over and over
//! while far-away vertices are untouched.  The paper cites parallel
//! shortest-path algorithms as a motivating use of batched parallel search
//! structures; this example runs a frontier-by-frontier (delta-stepping
//! flavoured) relaxation where each frontier's distance lookups and updates
//! are issued to M1 as one batch, and reports the effective work against the
//! working-set bound and against a non-adaptive AVL baseline.

use wsm_core::{BatchedMap, OpResult, Operation, TaggedOp, M1};
use wsm_model::MapOpKind;
use wsm_seq::{AvlMap, InstrumentedMap};

/// A deterministic sparse layered graph: `layers` layers of `width` vertices,
/// each vertex connecting to a handful of vertices in the next layer.
struct Graph {
    adj: Vec<Vec<(u64, u64)>>, // (target, weight)
}

impl Graph {
    fn layered(layers: u64, width: u64) -> Self {
        let n = layers * width;
        let mut adj = vec![Vec::new(); n as usize];
        let mut state = 0xABCDu64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for layer in 0..layers - 1 {
            for i in 0..width {
                let u = layer * width + i;
                for _ in 0..3 {
                    let v = (layer + 1) * width + next() % width;
                    adj[u as usize].push((v, 1 + next() % 8));
                }
            }
        }
        Graph { adj }
    }

    fn vertices(&self) -> u64 {
        self.adj.len() as u64
    }
}

fn main() {
    let graph = Graph::layered(64, 256);
    let n = graph.vertices();
    println!("graph: {n} vertices, layered 64 x 256");

    // Distance table in the working-set map: vertex -> best known distance.
    let mut dist: M1<u64, u64> = M1::new(8);
    let mut ops_trace: Vec<MapOpKind<u64>> = Vec::new();
    let mut next_id = 0u64;
    let mut run = |m: &mut M1<u64, u64>, batch: Vec<Operation<u64, u64>>| -> Vec<OpResult<u64>> {
        let tagged: Vec<TaggedOp<u64, u64>> = batch
            .into_iter()
            .map(|op| {
                let t = TaggedOp { id: next_id, op };
                next_id += 1;
                t
            })
            .collect();
        let ids: Vec<u64> = tagged.iter().map(|t| t.id).collect();
        let (results, _) = m.run_batch(tagged);
        let by_id: std::collections::BTreeMap<u64, OpResult<u64>> = results.into_iter().collect();
        ids.into_iter().map(|id| by_id[&id].clone()).collect()
    };

    // Source = vertex 0.
    run(&mut dist, vec![Operation::Insert(0, 0)]);
    ops_trace.push(MapOpKind::Insert(0));

    let mut frontier: Vec<u64> = vec![0];
    let mut settled = 0u64;
    while !frontier.is_empty() {
        settled += frontier.len() as u64;
        // 1. Batch-read the distances of the whole frontier.
        let reads: Vec<Operation<u64, u64>> =
            frontier.iter().map(|&v| Operation::Search(v)).collect();
        ops_trace.extend(frontier.iter().map(|&v| MapOpKind::Search(v)));
        let current: Vec<u64> = run(&mut dist, reads)
            .into_iter()
            .map(|r| match r {
                OpResult::Search(Some(d)) => d,
                _ => u64::MAX,
            })
            .collect();

        // 2. Relax all outgoing edges; batch-read the targets' distances.
        let mut candidates: Vec<(u64, u64)> = Vec::new();
        for (&u, &du) in frontier.iter().zip(&current) {
            for &(v, w) in &graph.adj[u as usize] {
                candidates.push((v, du.saturating_add(w)));
            }
        }
        let reads: Vec<Operation<u64, u64>> = candidates
            .iter()
            .map(|&(v, _)| Operation::Search(v))
            .collect();
        ops_trace.extend(candidates.iter().map(|&(v, _)| MapOpKind::Search(v)));
        let olds = run(&mut dist, reads);

        // 3. Batch-write the improvements and build the next frontier.
        let mut writes: Vec<Operation<u64, u64>> = Vec::new();
        let mut next_frontier: Vec<u64> = Vec::new();
        for ((v, nd), old) in candidates.into_iter().zip(olds) {
            let improved = match old {
                OpResult::Search(Some(d)) => nd < d,
                _ => true,
            };
            if improved {
                writes.push(Operation::Insert(v, nd));
                ops_trace.push(MapOpKind::Insert(v));
                next_frontier.push(v);
            }
        }
        run(&mut dist, writes);
        next_frontier.sort_unstable();
        next_frontier.dedup();
        frontier = next_frontier;
    }

    let wl = wsm_model::working_set_bound(&ops_trace);
    println!(
        "settled ~{settled} vertex visits; issued {} map operations",
        ops_trace.len()
    );
    println!(
        "M1 measured work = {} vs working-set bound W_L = {wl} (ratio {:.2})",
        dist.effective_work(),
        dist.effective_work() as f64 / wl as f64
    );
    // The measured/worst-case charge split (see `wsm_twothree::cost`): the
    // map pays for the tree nodes it actually touched, with the closed-form
    // Appendix A.2 charge retained as the analytic ceiling.
    println!(
        "M1 worst-case bound charge = {} (measured runs at {:.2} of the Lemma bound)",
        dist.analytic_bound_work(),
        dist.effective_work() as f64 / dist.analytic_bound_work().max(1) as f64
    );

    // Non-adaptive baseline doing the same single operations sequentially.
    let mut avl: AvlMap<u64, u64> = AvlMap::new();
    let mut avl_work = 0u64;
    for op in &ops_trace {
        let (_, c) = match op {
            MapOpKind::Search(k) => avl.search(k),
            MapOpKind::Insert(k) => avl.insert(*k, 0),
            MapOpKind::Delete(k) => avl.remove(k),
        };
        avl_work += c.work;
    }
    println!(
        "AVL baseline work = {avl_work}; the frontier locality gives the working-set map a {:.1}x advantage",
        avl_work as f64 / dist.effective_work().max(1) as f64
    );
}
