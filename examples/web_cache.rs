//! Web-cache style workload: a skewed (Zipfian) stream of page lookups with a
//! small fraction of updates, served concurrently by many worker threads.
//!
//! Run with `cargo run --example web_cache --release`.  The number of
//! request-serving OS threads defaults to 4 and can be overridden with
//! `WSM_WORKERS=n`; the map's combiner runs small batches inline
//! (`WSM_INLINE_BATCH`, default 64) and fans larger ones out on the
//! work-stealing pool (`wsm-pool`, sized by `WSM_POOL_THREADS`).  Waiters
//! spin `WSM_SPIN_WAIT` yields before parking.  Experiment E16
//! (`harness e16`) tracks this workload's map-vs-AVL gap as a regression.
//!
//! This is the motivating scenario for working-set structures: most requests
//! hit a small set of hot pages, so a distribution-sensitive map does `O(log
//! r)` work per request instead of `O(log n)`.  The example compares the
//! implicitly-batched working-set map against a coarse-locked AVL tree on the
//! same request stream and reports wall-clock time and effective work.

use std::sync::Arc;
use std::time::Instant;
use wsm_core::{BatchedMap, ConcurrentMap, Operation, M1};
use wsm_seq::{AvlMap, InstrumentedMap};
use wsm_workloads::{Pattern, WorkloadSpec};

const PAGES: u64 = 1 << 14;
const REQUESTS_PER_WORKER: usize = 20_000;

/// Request-serving OS threads: `WSM_WORKERS` or 4.
fn workers() -> usize {
    std::env::var("WSM_WORKERS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or(4)
}

fn request_stream(worker: u64) -> Vec<u64> {
    WorkloadSpec::read_only(PAGES, REQUESTS_PER_WORKER, Pattern::Zipf(1.1), worker)
        .access_phase()
        .iter()
        .map(|op| *op.key())
        .collect()
}

fn main() {
    let workers = workers();
    // --- implicitly batched working-set map ---------------------------------
    let mut inner = M1::<u64, u64>::new(workers.max(2));
    inner.run_ops((0..PAGES).map(|p| Operation::Insert(p, p)).collect());
    let warm_work = inner.effective_work();
    let cache = Arc::new(ConcurrentMap::new(inner, workers));

    let start = Instant::now();
    let handles: Vec<_> = (0..workers)
        .map(|w| {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || {
                let mut hits = 0u64;
                for page in request_stream(w as u64) {
                    if cache.search(w, page).is_some() {
                        hits += 1;
                    }
                    // Occasionally refresh a page (update its value).
                    if page % 97 == 0 {
                        cache.insert(w, page, page + 1);
                    }
                }
                hits
            })
        })
        .collect();
    let hits: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    let wsm_elapsed = start.elapsed();
    let total_requests = (workers * REQUESTS_PER_WORKER) as u64;
    let wsm_work = cache.effective_work() - warm_work;

    println!("working-set cache: {total_requests} requests, {hits} hits");
    println!(
        "  wall time {:?}, effective work {wsm_work} ({:.2} per request)",
        wsm_elapsed,
        wsm_work as f64 / total_requests as f64
    );

    // --- coarse-locked AVL baseline ------------------------------------------
    let mut avl = AvlMap::new();
    for p in 0..PAGES {
        avl.insert_item(p, p);
    }
    let avl = Arc::new(parking_lot_mutex::Mutex::new(avl));
    let start = Instant::now();
    let handles: Vec<_> = (0..workers)
        .map(|w| {
            let avl = Arc::clone(&avl);
            std::thread::spawn(move || {
                let mut work = 0u64;
                for page in request_stream(w as u64) {
                    let (_, c) = avl.lock().unwrap_or_else(|e| e.into_inner()).search(&page);
                    work += c.work;
                }
                work
            })
        })
        .collect();
    let avl_work: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    let avl_elapsed = start.elapsed();
    println!("coarse-locked AVL: wall time {avl_elapsed:?}, effective work {avl_work} ({:.2} per request)",
        avl_work as f64 / total_requests as f64);
    println!(
        "working-set map does {:.1}x less comparison work per request on this Zipfian stream",
        avl_work as f64 / wsm_work.max(1) as f64
    );
}

/// Tiny shim so the example only depends on std (std::sync::Mutex with a
/// poison-forgiving lock), keeping the example focused on the library API.
mod parking_lot_mutex {
    pub use std::sync::Mutex;
}
