//! Web-cache style workload: a skewed (Zipfian) stream of page lookups with a
//! small fraction of updates, served concurrently by many worker threads.
//!
//! Run with `cargo run --example web_cache --release`.  The number of
//! request-serving OS threads defaults to 4 and can be overridden with
//! `WSM_WORKERS=n`; the map's combiner runs small batches inline
//! (`WSM_INLINE_BATCH`, default 64) and fans larger ones out on the
//! work-stealing pool (`wsm-pool`, sized by `WSM_POOL_THREADS`).  Waiters
//! spin `WSM_SPIN_WAIT` yields before parking.  Experiment E16
//! (`harness e16`) tracks this workload's map-vs-AVL gap as a regression.
//!
//! With `WSM_SHARDS=n` (n > 1) the cache is served by a
//! [`wsm_shard::ShardedMap`] instead: the keyspace is hash-partitioned
//! across `n` independent working-set maps, each with its own combiner, so
//! request-serving threads no longer all contend on a single election.  The
//! per-shard request/work split is reported at the end.  Experiment E19
//! (`harness e19`) measures the same unsharded-vs-sharded gap.
//!
//! This is the motivating scenario for working-set structures: most requests
//! hit a small set of hot pages, so a distribution-sensitive map does `O(log
//! r)` work per request instead of `O(log n)`.  The example compares the
//! implicitly-batched working-set map against a coarse-locked AVL tree on the
//! same request stream and reports wall-clock time and effective work.
//!
//! With `WSM_DURABLE_DIR=path` the run finishes with a durability demo: a
//! burst of inserts is served through a WAL-backed [`wsm_wal::DurableMap`] in
//! that directory, the process "crashes" (the map is leaked so no destructor
//! runs), and the directory is reopened to show the recovery report and that
//! every logged page survived.  `WSM_WAL_SYNC` / `WSM_WAL_CHECKPOINT_EVERY`
//! tune the demo's WAL exactly as they would a real deployment.

use std::sync::Arc;
use std::time::{Duration, Instant};
use wsm_core::{BatchedMap, ConcurrentMap, Operation, M1};
use wsm_seq::{AvlMap, InstrumentedMap};
use wsm_shard::ShardedMap;
use wsm_workloads::{Pattern, WorkloadSpec};

const PAGES: u64 = 1 << 14;
const REQUESTS_PER_WORKER: usize = 20_000;

/// Request-serving OS threads: `WSM_WORKERS` or 4.
fn workers() -> usize {
    wsm_core::env::parse("WSM_WORKERS", "a worker count >= 1", 4, |&n: &usize| n > 0)
}

/// Keyspace shards: `WSM_SHARDS` or 1 (single combiner, the default).
fn shards() -> usize {
    wsm_core::env::parse("WSM_SHARDS", "a shard count >= 1", 1, |&n: &usize| n > 0)
}

fn request_stream(worker: u64) -> Vec<u64> {
    WorkloadSpec::read_only(PAGES, REQUESTS_PER_WORKER, Pattern::Zipf(1.1), worker)
        .access_phase()
        .iter()
        .map(|op| *op.key())
        .collect()
}

/// Serves the request streams from one `ConcurrentMap` (single combiner).
fn serve_single(workers: usize) -> (Duration, u64, u64) {
    let mut inner = M1::<u64, u64>::new(workers.max(2));
    inner.run_ops((0..PAGES).map(|p| Operation::Insert(p, p)).collect());
    let warm_work = inner.effective_work();
    let cache = Arc::new(ConcurrentMap::new(inner, workers));

    let start = Instant::now();
    let handles: Vec<_> = (0..workers)
        .map(|w| {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || {
                let mut hits = 0u64;
                for page in request_stream(w as u64) {
                    if cache.search(w, page).is_some() {
                        hits += 1;
                    }
                    // Occasionally refresh a page (update its value).
                    if page % 97 == 0 {
                        cache.insert(w, page, page + 1);
                    }
                }
                hits
            })
        })
        .collect();
    let hits: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    (start.elapsed(), cache.effective_work() - warm_work, hits)
}

/// Serves the same streams from a hash-partitioned `ShardedMap`: every shard
/// is its own working-set map with its own combiner, so hot-page traffic on
/// different shards never contends on one election.
fn serve_sharded(shards: usize, workers: usize) -> (Duration, u64, u64) {
    let cache = Arc::new(ShardedMap::with_shards(shards, |_| {
        M1::<u64, u64>::new(workers.max(2))
    }));
    for block in (0..PAGES).collect::<Vec<_>>().chunks(1024) {
        cache.insert_batch(block.iter().map(|&p| (p, p)).collect());
    }
    let warm: Vec<_> = cache.shard_stats();

    let start = Instant::now();
    let handles: Vec<_> = (0..workers)
        .map(|w| {
            let cache = Arc::clone(&cache);
            std::thread::spawn(move || {
                let mut hits = 0u64;
                for page in request_stream(w as u64) {
                    if cache.get(page).is_some() {
                        hits += 1;
                    }
                    if page % 97 == 0 {
                        cache.insert(page, page + 1);
                    }
                }
                hits
            })
        })
        .collect();
    let hits: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    let elapsed = start.elapsed();

    let stats = cache.shard_stats();
    for (s, w0) in stats.iter().zip(&warm) {
        println!(
            "  shard {}: {} pages, {} effective work",
            s.shard,
            s.len,
            s.effective_work - w0.effective_work
        );
    }
    let work: u64 = stats
        .iter()
        .zip(&warm)
        .map(|(s, w0)| s.effective_work - w0.effective_work)
        .sum();
    (elapsed, work, hits)
}

/// `WSM_DURABLE_DIR` demo: log a burst of inserts through a WAL-backed map,
/// "crash" without running a single destructor, then reopen the directory and
/// prove nothing durable was lost.
fn durable_demo(dir: &str, workers: usize) {
    use wsm_wal::DurableMap;

    const BURST: u64 = 1024;
    let path = std::path::Path::new(dir);
    let _ = std::fs::remove_dir_all(path);
    let make = move || M1::<u64, u64>::new(workers.max(2));

    println!("\ndurability demo (WSM_DURABLE_DIR={dir}):");
    let cache = DurableMap::open(path, make).expect("open durable cache");
    for page in 0..BURST {
        cache.insert(page, page);
    }
    cache.flush().expect("flush WAL");
    let stats = cache.wal_stats();
    println!(
        "  logged {} batches / {} ops ({} bytes appended, {} fsyncs, {} checkpoints)",
        stats.batches_logged,
        stats.ops_logged,
        stats.bytes_appended,
        stats.syncs,
        stats.checkpoints
    );

    // Simulated kill -9: leak the map so neither the combiner nor the WAL
    // runs any shutdown path.  Everything the reopen sees went through the
    // commit hook before the "crash".
    std::mem::forget(cache);

    let cache = DurableMap::open(path, make).expect("reopen durable cache");
    let rec = cache.recovery();
    println!(
        "  reopened: checkpoint seq {} ({} items), replayed {} batches / {} ops{}",
        rec.checkpoint_seq,
        rec.checkpoint_items,
        rec.replayed_batches,
        rec.replayed_ops,
        if rec.truncated_torn_tail {
            ", truncated a torn tail"
        } else {
            ""
        }
    );
    let survived = (0..BURST).filter(|&p| cache.search(p) == Some(p)).count() as u64;
    println!("  {survived}/{BURST} pages survived the crash");
    assert_eq!(survived, BURST, "logged inserts must survive reopen");
}

fn main() {
    let workers = workers();
    let shards = shards();
    // --- implicitly batched working-set map ---------------------------------
    let (wsm_elapsed, wsm_work, hits) = if shards > 1 {
        println!("serving from {shards} hash-partitioned shards (WSM_SHARDS={shards})");
        serve_sharded(shards, workers)
    } else {
        serve_single(workers)
    };
    let total_requests = (workers * REQUESTS_PER_WORKER) as u64;

    println!("working-set cache: {total_requests} requests, {hits} hits");
    println!(
        "  wall time {:?}, effective work {wsm_work} ({:.2} per request)",
        wsm_elapsed,
        wsm_work as f64 / total_requests as f64
    );

    // --- coarse-locked AVL baseline ------------------------------------------
    let mut avl = AvlMap::new();
    for p in 0..PAGES {
        avl.insert_item(p, p);
    }
    let avl = Arc::new(parking_lot_mutex::Mutex::new(avl));
    let start = Instant::now();
    let handles: Vec<_> = (0..workers)
        .map(|w| {
            let avl = Arc::clone(&avl);
            std::thread::spawn(move || {
                let mut work = 0u64;
                for page in request_stream(w as u64) {
                    let (_, c) = avl.lock().unwrap_or_else(|e| e.into_inner()).search(&page);
                    work += c.work;
                }
                work
            })
        })
        .collect();
    let avl_work: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
    let avl_elapsed = start.elapsed();
    println!("coarse-locked AVL: wall time {avl_elapsed:?}, effective work {avl_work} ({:.2} per request)",
        avl_work as f64 / total_requests as f64);
    println!(
        "working-set map does {:.1}x less comparison work per request on this Zipfian stream",
        avl_work as f64 / wsm_work.max(1) as f64
    );

    // --- optional durability demo --------------------------------------------
    if let Ok(dir) = std::env::var("WSM_DURABLE_DIR") {
        if !dir.is_empty() {
            durable_demo(&dir, workers);
        }
    }
}

/// Tiny shim so the example only depends on std (std::sync::Mutex with a
/// poison-forgiving lock), keeping the example focused on the library API.
mod parking_lot_mutex {
    pub use std::sync::Mutex;
}
