//! The parallel buffer for implicit batching (Appendix A.1, Theorem 26).
//!
//! Every call a program makes to the map is first deposited into the map's
//! parallel buffer; when the map becomes ready it *flushes* the buffer and
//! receives the accumulated calls as one input batch.  The paper implements
//! the buffer as a static balanced tree of per-processor sub-buffers with
//! test-and-set flags on the internal nodes; here each submitting thread owns
//! a *shard* realised as a lock-free MPSC publication ring
//! ([`wsm_sync::MpscShard`]: atomic slot claim + sequence-stamped cells), and
//! the flush drains all shards in publication order — the flat-combining
//! realisation described in DESIGN.md substitution #4.  Producers never block
//! the combiner (and vice versa): a deposit is a tail-CAS plus an uncontended
//! cell hand-off, and the flush skips at most the one in-flight publication
//! per shard, which the next flush picks up.  The analytic cost per flushed
//! batch of size `b` is `O(p + b)` work and `O(log p + log b)` span, matching
//! Theorem 26's requirements.

use wsm_check::sync::{AtomicUsize, Ordering};
use wsm_model::{ceil_log2, Cost};
use wsm_sync::{Activation, MpscShard};

/// Ring capacity per shard: publications held between two flushes without
/// spilling to a shard's (rare, mutex-protected) overflow list.  The
/// combiner flushes continuously while calls are outstanding, so in practice
/// the ring only needs to hold the burst of one activation window.
const SHARD_RING_CAPACITY: usize = 1024;

/// A sharded buffer of pending calls plus the activation interface used to
/// wake the data structure when work arrives.
#[derive(Debug)]
pub struct ParallelBuffer<T> {
    shards: Vec<MpscShard<T>>,
    pending: AtomicUsize,
    activation: Activation,
}

impl<T> ParallelBuffer<T> {
    /// Creates a buffer with one shard per expected submitting processor.
    pub fn new(shards: usize) -> Self {
        Self::with_ring_capacity(shards, SHARD_RING_CAPACITY)
    }

    /// Like [`ParallelBuffer::new`], but with an explicit per-shard ring
    /// capacity.  Model-checking harnesses use tiny rings (2–4 cells) so the
    /// wrap-around and overflow paths are reachable within a few scheduler
    /// steps; production code should stay on [`ParallelBuffer::new`].
    pub fn with_ring_capacity(shards: usize, ring_capacity: usize) -> Self {
        let shards = shards.max(1);
        ParallelBuffer {
            shards: (0..shards)
                .map(|_| MpscShard::with_capacity(ring_capacity))
                .collect(),
            pending: AtomicUsize::new(0),
            activation: Activation::new(),
        }
    }

    /// Number of shards (`p` in the paper's construction).
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of operations currently buffered (racy under concurrency; exact
    /// when used single-threaded).
    pub fn len(&self) -> usize {
        // ord: Relaxed — advisory occupancy counter; actual item visibility
        // is carried by the shards' seq-stamp protocol, and the combiner
        // hand-off race a stale read could cause is closed by the doorbell
        // ring (model: tests/model_doorbell.rs).
        self.pending.load(Ordering::Relaxed)
    }

    /// True if no operations are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Deposits one call into the shard `shard_hint % shards`.  Constant time
    /// and lock-free; uncontended when each thread uses its own hint.
    pub fn push(&self, shard_hint: usize, item: T) {
        // Count *before* publishing.  The model checker caught the opposite
        // order underflowing the counter: a combiner could drain the item and
        // `fetch_sub` before this producer's `fetch_add` landed, leaving
        // `pending` at usize::MAX and `is_empty()` false forever (a combiner
        // livelock).  Counting first means a drain can only subtract items
        // whose increment happened-before their seq-stamp publication; the
        // counter may transiently over-count a not-yet-visible item, which
        // merely costs the combiner one extra (yielding) recheck round.
        // ord: Relaxed — ordering against the item itself is carried by the
        // shard's Release stamp below (model: tests/model_doorbell.rs).
        self.pending.fetch_add(1, Ordering::Relaxed);
        let shard = &self.shards[shard_hint % self.shards.len()];
        shard.publish(item);
    }

    /// Deposits a pre-built batch of calls into one shard, preserving the
    /// batch's order.
    pub fn push_batch(&self, shard_hint: usize, items: Vec<T>) {
        if items.is_empty() {
            return;
        }
        // ord: Relaxed — counted before publishing, as in `push` (which see
        // for why the other order underflows the counter).
        self.pending.fetch_add(items.len(), Ordering::Relaxed);
        let shard = &self.shards[shard_hint % self.shards.len()];
        for item in items {
            shard.publish(item);
        }
    }

    /// Flushes every shard, returning the accumulated input batch and the
    /// analytic cost of the flush (`O(p + b)` work, `O(log p + log b)` span).
    pub fn flush(&self) -> (Vec<T>, Cost) {
        let mut out = Vec::new();
        let cost = self.flush_into(&mut out);
        (out, cost)
    }

    /// Like [`ParallelBuffer::flush`], but appends into a caller-provided
    /// buffer (so a combiner draining in a loop reuses one allocation).
    pub fn flush_into(&self, out: &mut Vec<T>) -> Cost {
        let before = out.len();
        for shard in &self.shards {
            shard.drain_into(out);
        }
        let drained = out.len() - before;
        // ord: Relaxed — counter decrement only; drained items were already
        // acquired through their shards' seq stamps.
        self.pending.fetch_sub(drained, Ordering::Relaxed);
        Self::flush_cost(self.shards.len() as u64, drained as u64)
    }

    /// The analytic flush cost for `p` shards and a batch of `b` operations.
    pub fn flush_cost(p: u64, b: u64) -> Cost {
        let span = u64::from(ceil_log2(p + 1)) + u64::from(ceil_log2(b + 1)) + 1;
        Cost::new((p + b).max(span), span)
    }

    /// Runs `process` under the buffer's activation interface: the closure is
    /// executed only if no other activation is running and `ready()` holds,
    /// and it may request reactivation by returning `true` (Definition 36).
    /// Returns the number of runs performed by this call.
    pub fn activate<C, P>(&self, ready: C, process: P) -> usize
    where
        C: FnMut() -> bool,
        P: FnMut() -> bool,
    {
        self.activation.activate(ready, process)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_and_flush_roundtrip() {
        let buf: ParallelBuffer<u64> = ParallelBuffer::new(4);
        assert!(buf.is_empty());
        for i in 0..20 {
            buf.push(i as usize, i);
        }
        assert_eq!(buf.len(), 20);
        let (mut items, cost) = buf.flush();
        items.sort_unstable();
        assert_eq!(items, (0..20).collect::<Vec<_>>());
        assert!(buf.is_empty());
        assert!(cost.work >= 20);
        assert!(cost.span <= 12);
    }

    #[test]
    fn push_batch_counts_items_and_keeps_order() {
        let buf: ParallelBuffer<u64> = ParallelBuffer::new(2);
        buf.push_batch(0, vec![1, 2, 3]);
        buf.push_batch(1, Vec::new());
        assert_eq!(buf.len(), 3);
        let (items, _) = buf.flush();
        assert_eq!(items, vec![1, 2, 3]);
    }

    #[test]
    fn flush_cost_shape() {
        // Work linear in p + b, span logarithmic.
        let c = ParallelBuffer::<u64>::flush_cost(64, 1 << 16);
        assert!(c.work >= (1 << 16) + 64);
        assert!(c.span <= 26);
    }

    #[test]
    fn overflowing_a_shard_ring_loses_nothing() {
        // Everything lands in one shard and far exceeds its ring capacity, so
        // the overflow path must carry the excess in order.
        let buf: ParallelBuffer<u64> = ParallelBuffer::new(1);
        let n = 3 * SHARD_RING_CAPACITY as u64;
        for i in 0..n {
            buf.push(0, i);
        }
        assert_eq!(buf.len(), n as usize);
        let (items, _) = buf.flush();
        assert_eq!(items, (0..n).collect::<Vec<_>>());
        assert!(buf.is_empty());
    }

    #[test]
    fn concurrent_pushes_are_not_lost() {
        let buf: Arc<ParallelBuffer<u64>> = Arc::new(ParallelBuffer::new(8));
        let threads = 8;
        let per_thread = 5_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let buf = Arc::clone(&buf);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        buf.push(t, t as u64 * per_thread + i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let (items, _) = buf.flush();
        assert_eq!(items.len(), (threads as u64 * per_thread) as usize);
        let distinct: std::collections::BTreeSet<u64> = items.into_iter().collect();
        assert_eq!(distinct.len(), (threads as u64 * per_thread) as usize);
    }

    #[test]
    fn concurrent_pushes_with_concurrent_flushes() {
        // Producers race a flushing combiner; across all flushes every item
        // must appear exactly once.
        let buf: Arc<ParallelBuffer<u64>> = Arc::new(ParallelBuffer::new(4));
        let threads = 4;
        let per_thread = 5_000u64;
        let producers: Vec<_> = (0..threads)
            .map(|t| {
                let buf = Arc::clone(&buf);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        buf.push(t, t as u64 * per_thread + i);
                    }
                })
            })
            .collect();
        let mut collected = Vec::new();
        loop {
            let (items, _) = buf.flush();
            collected.extend(items);
            if collected.len() as u64 == threads as u64 * per_thread {
                break;
            }
            std::thread::yield_now();
        }
        for h in producers {
            h.join().unwrap();
        }
        let distinct: std::collections::BTreeSet<u64> = collected.iter().copied().collect();
        assert_eq!(distinct.len(), (threads as u64 * per_thread) as usize);
    }

    #[test]
    fn activation_runs_exclusively() {
        let buf: ParallelBuffer<u64> = ParallelBuffer::new(2);
        buf.push(0, 1);
        let runs = buf.activate(|| true, || false);
        assert_eq!(runs, 1);
    }
}
