//! The parallel buffer for implicit batching (Appendix A.1, Theorem 26).
//!
//! Every call a program makes to the map is first deposited into the map's
//! parallel buffer; when the map becomes ready it *flushes* the buffer and
//! receives the accumulated calls as one input batch.  The paper implements
//! the buffer as a static balanced tree of per-processor sub-buffers with
//! test-and-set flags on the internal nodes; here each submitting thread owns
//! a *shard* (a mutex-protected vector that is effectively uncontended) and
//! the flush swaps all shards out and concatenates them — the flat-combining
//! realisation described in DESIGN.md substitution #4.  The analytic cost per
//! flushed batch of size `b` is `O(p + b)` work and `O(log p + log b)` span,
//! matching Theorem 26's requirements.

use parking_lot::Mutex;
use std::sync::atomic::{AtomicUsize, Ordering};
use wsm_model::{ceil_log2, Cost};
use wsm_sync::Activation;

/// A sharded buffer of pending calls plus the activation interface used to
/// wake the data structure when work arrives.
#[derive(Debug)]
pub struct ParallelBuffer<T> {
    shards: Vec<Mutex<Vec<T>>>,
    pending: AtomicUsize,
    activation: Activation,
}

impl<T> ParallelBuffer<T> {
    /// Creates a buffer with one shard per expected submitting processor.
    pub fn new(shards: usize) -> Self {
        let shards = shards.max(1);
        ParallelBuffer {
            shards: (0..shards).map(|_| Mutex::new(Vec::new())).collect(),
            pending: AtomicUsize::new(0),
            activation: Activation::new(),
        }
    }

    /// Number of shards (`p` in the paper's construction).
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Number of operations currently buffered (racy under concurrency; exact
    /// when used single-threaded).
    pub fn len(&self) -> usize {
        self.pending.load(Ordering::Acquire)
    }

    /// True if no operations are buffered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Deposits one call into the shard `shard_hint % shards`.  Constant time;
    /// uncontended when each thread uses its own hint.
    pub fn push(&self, shard_hint: usize, item: T) {
        let shard = &self.shards[shard_hint % self.shards.len()];
        shard.lock().push(item);
        self.pending.fetch_add(1, Ordering::AcqRel);
    }

    /// Deposits a pre-built batch of calls into one shard.
    pub fn push_batch(&self, shard_hint: usize, items: Vec<T>) {
        if items.is_empty() {
            return;
        }
        let shard = &self.shards[shard_hint % self.shards.len()];
        let n = items.len();
        shard.lock().extend(items);
        self.pending.fetch_add(n, Ordering::AcqRel);
    }

    /// Flushes every shard, returning the accumulated input batch and the
    /// analytic cost of the flush (`O(p + b)` work, `O(log p + log b)` span).
    pub fn flush(&self) -> (Vec<T>, Cost) {
        let mut out = Vec::new();
        for shard in &self.shards {
            let mut guard = shard.lock();
            if !guard.is_empty() {
                out.append(&mut guard);
            }
        }
        self.pending.fetch_sub(out.len(), Ordering::AcqRel);
        let cost = Self::flush_cost(self.shards.len() as u64, out.len() as u64);
        (out, cost)
    }

    /// The analytic flush cost for `p` shards and a batch of `b` operations.
    pub fn flush_cost(p: u64, b: u64) -> Cost {
        let span = u64::from(ceil_log2(p + 1)) + u64::from(ceil_log2(b + 1)) + 1;
        Cost::new((p + b).max(span), span)
    }

    /// Runs `process` under the buffer's activation interface: the closure is
    /// executed only if no other activation is running and `ready()` holds,
    /// and it may request reactivation by returning `true` (Definition 36).
    /// Returns the number of runs performed by this call.
    pub fn activate<C, P>(&self, ready: C, process: P) -> usize
    where
        C: FnMut() -> bool,
        P: FnMut() -> bool,
    {
        self.activation.activate(ready, process)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn push_and_flush_roundtrip() {
        let buf: ParallelBuffer<u64> = ParallelBuffer::new(4);
        assert!(buf.is_empty());
        for i in 0..20 {
            buf.push(i as usize, i);
        }
        assert_eq!(buf.len(), 20);
        let (mut items, cost) = buf.flush();
        items.sort_unstable();
        assert_eq!(items, (0..20).collect::<Vec<_>>());
        assert!(buf.is_empty());
        assert!(cost.work >= 20);
        assert!(cost.span <= 12);
    }

    #[test]
    fn push_batch_counts_items() {
        let buf: ParallelBuffer<u64> = ParallelBuffer::new(2);
        buf.push_batch(0, vec![1, 2, 3]);
        buf.push_batch(1, Vec::new());
        assert_eq!(buf.len(), 3);
    }

    #[test]
    fn flush_cost_shape() {
        // Work linear in p + b, span logarithmic.
        let c = ParallelBuffer::<u64>::flush_cost(64, 1 << 16);
        assert!(c.work >= (1 << 16) + 64);
        assert!(c.span <= 26);
    }

    #[test]
    fn concurrent_pushes_are_not_lost() {
        let buf: Arc<ParallelBuffer<u64>> = Arc::new(ParallelBuffer::new(8));
        let threads = 8;
        let per_thread = 5_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let buf = Arc::clone(&buf);
                std::thread::spawn(move || {
                    for i in 0..per_thread {
                        buf.push(t, t as u64 * per_thread + i);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let (items, _) = buf.flush();
        assert_eq!(items.len(), (threads as u64 * per_thread) as usize);
        let distinct: std::collections::BTreeSet<u64> = items.into_iter().collect();
        assert_eq!(distinct.len(), (threads as u64 * per_thread) as usize);
    }

    #[test]
    fn activation_runs_exclusively() {
        let buf: ParallelBuffer<u64> = ParallelBuffer::new(2);
        buf.push(0, 1);
        let runs = buf.activate(|| true, || false);
        assert_eq!(runs, 1);
    }
}
