//! M2 — the pipelined parallel working-set map (paper Section 7).
//!
//! M2 splits the segment cascade into a **first slab** (the first
//! `m = ⌈log log 2p²⌉ + 1` segments, processed batch-at-a-time exactly like
//! M1) and a **final slab** (the remaining segments), which is *pipelined*:
//! every final-slab segment has an input buffer of in-flight items, and a
//! **filter** in front of the final slab guarantees that all in-flight
//! final-slab operations are on distinct items — later operations on an item
//! that is already in flight are simply appended to that item's filter entry
//! and resolved together with it.  Accessed items are shifted to the front of
//! the final slab (`S[m]`, or `S[m-1]` when found in `S[m]` itself) rather
//! than all the way to the front, and excess items cascade lazily when later
//! batches pass.
//!
//! In the paper the pipeline stages are driven by activation interfaces and
//! guarded by neighbour-locks and front-locks (Figures 2 and 3) under a
//! weak-priority scheduler.  This reproduction keeps the identical data
//! movement and drives the stages with an explicit two-priority activation
//! queue (final-slab runs are the high-priority queue `Q1`, interface runs the
//! low-priority queue `Q2`); per-stage virtual clocks reproduce the pipeline
//! timing so that per-operation latency can be measured (Theorem 25 /
//! experiments E6 and E13).  See DESIGN.md substitution #2.
//!
//! Hole refills are **eager** (the paper's tagged-deletion pass): every
//! interface run restores the whole first slab so deletion holes land in
//! `S[m-1]`, then schedules a dedicated maintenance cascade down the final
//! slab — token-free segment runs that rebalance each boundary, propagate
//! unconditionally, re-run a boundary whose refill ran its segment dry, and
//! carry their own pipeline-clock accounting.  This keeps the Lemma 16
//! prefix deficit at `2p²` between runs (asserted by [`M2::check_invariants`];
//! a `3p²` transient is tolerated only mid-cascade, in debug builds).

use crate::feed::FeedBuffer;
use crate::ops::{BatchedMap, GroupOp, OpId, OpResult, Operation, TaggedOp};
use std::collections::VecDeque;
use wsm_model::{ceil_log2, Cost, CostMeter};
use wsm_seq::segment_capacity;
use wsm_sort::{pesort_group_into, GroupedBatch, SortScratch};
use wsm_twothree::cost::{self as tcost, Charge};
use wsm_twothree::{RecencyMap, Tree23};

/// The fanout of the segment trees and the filter (all built at the process
/// default, which reads `WSM_TREE_FANOUT`), threaded into every measured
/// charge so the Lemma bounds are the ones of the tree actually running —
/// `2` reproduces the closed-form Appendix A.2 reference.
fn tree_fanout() -> u64 {
    wsm_twothree::default_fanout() as u64
}

/// Latency record for one operation: virtual submit and finish times in the
/// pipeline simulation.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct LatencyRecord {
    /// The operation's identifier.
    pub id: OpId,
    /// Virtual time at which the operation was enqueued.
    pub submit: u64,
    /// Virtual time at which its result was produced.
    pub finish: u64,
}

impl LatencyRecord {
    /// The simulated latency of the operation.
    pub fn latency(&self) -> u64 {
        self.finish.saturating_sub(self.submit)
    }
}

/// A token travelling through the final slab: one in-flight distinct item.
#[derive(Clone, Debug)]
struct Token<K> {
    key: K,
}

/// What the two-priority activation queue can schedule.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Target {
    Interface,
    Segment(usize),
}

/// The pipelined parallel working-set map.
#[derive(Debug)]
pub struct M2<K, V> {
    p: usize,
    /// Index of the first final-slab segment (`m` in the paper).
    m: usize,
    feed: FeedBuffer<TaggedOp<K, V>>,
    staged: Vec<TaggedOp<K, V>>,
    segments: Vec<RecencyMap<K, V>>,
    /// Input buffer of each final-slab segment, indexed by `segment - m`.
    buffers: Vec<VecDeque<Token<K>>>,
    /// Virtual time at which each final-slab buffer last received input.
    buffer_ready: Vec<u64>,
    /// The filter: key → operations pending on that key in the final slab.
    filter: Tree23<K, Vec<TaggedOp<K, V>>>,
    size: usize,
    meter: CostMeter,
    /// Worst-case (Lemma A.2) work the processed batches would have been
    /// charged; the meter holds the measured work actually paid (see
    /// [`M2::analytic_bound_work`]).
    bound_work: u64,
    /// Number of dedicated maintenance runs (hole-refill cascade steps with
    /// no tokens to process) executed so far.
    maintenance_runs: u64,
    next_id: OpId,
    /// Two-priority activation queues: final-slab segments (Q1) and the
    /// interface (Q2).
    q1: VecDeque<Target>,
    q2: VecDeque<Target>,
    results: Vec<(OpId, OpResult<V>)>,
    /// Pipeline virtual clocks: when the interface / each segment last
    /// finished a run.
    interface_clock: u64,
    segment_clocks: Vec<u64>,
    /// Virtual submit time of every pending operation.
    submit_times: Vec<(OpId, u64)>,
    latencies: Vec<LatencyRecord>,
    /// Reusable sort/group buffers: after the first few batches the
    /// sort-and-combine step allocates nothing (see `pesort_group_into`).
    key_buf: Vec<K>,
    scratch: SortScratch,
    grouped: GroupedBatch<K>,
}

impl<K: Ord + Clone + Send + Sync + std::fmt::Debug, V: Clone> M2<K, V> {
    /// Creates an empty M2 configured for `p` processors (`p ≥ 2`).
    pub fn new(p: usize) -> Self {
        let p = p.max(2);
        let m = (ceil_log2(u64::from(ceil_log2(2 * (p * p) as u64))) + 1) as usize;
        M2 {
            p,
            m,
            feed: FeedBuffer::new(p * p),
            staged: Vec::new(),
            segments: Vec::new(),
            buffers: Vec::new(),
            buffer_ready: Vec::new(),
            filter: Tree23::new(),
            size: 0,
            meter: CostMeter::new(),
            bound_work: 0,
            maintenance_runs: 0,
            next_id: 0,
            q1: VecDeque::new(),
            q2: VecDeque::new(),
            results: Vec::new(),
            interface_clock: 0,
            segment_clocks: Vec::new(),
            submit_times: Vec::new(),
            latencies: Vec::new(),
            key_buf: Vec::new(),
            scratch: SortScratch::default(),
            grouped: GroupedBatch::default(),
        }
    }

    /// The processor count this instance is configured for.
    pub fn processors(&self) -> usize {
        self.p
    }

    /// The first final-slab segment index `m = ⌈log log 2p²⌉ + 1`.
    pub fn first_slab_len(&self) -> usize {
        self.m
    }

    /// Number of items currently stored (items travelling through the final
    /// slab with a pending net-insert are not yet counted).
    pub fn size(&self) -> usize {
        self.size
    }

    /// Number of segments currently allocated.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Sizes of the segments, front to back.
    pub fn segment_sizes(&self) -> Vec<usize> {
        self.segments.iter().map(RecencyMap::len).collect()
    }

    /// Number of distinct items currently held by the filter.
    pub fn filter_size(&self) -> usize {
        self.filter.len()
    }

    /// Latency records of all completed operations.
    pub fn latencies(&self) -> &[LatencyRecord] {
        &self.latencies
    }

    /// Total worst-case work (the closed-form Appendix A.2 bounds) for every
    /// charge this map has paid; [`BatchedMap::effective_work`] reports the
    /// measured touched-node work, which is at most this (up to
    /// [`tcost::measured_ceiling`], asserted in debug builds).
    pub fn analytic_bound_work(&self) -> u64 {
        self.bound_work
    }

    /// Number of dedicated maintenance runs (token-free hole-refill cascade
    /// steps down the final slab) executed so far.
    pub fn maintenance_runs(&self) -> u64 {
        self.maintenance_runs
    }

    /// Index of the segment currently holding `key` (tests/probing only).
    pub fn segment_of(&self, key: &K) -> Option<usize> {
        self.segments.iter().position(|s| s.contains(key))
    }
    /// Non-adjusting lookup for tests (does not see values still in flight in
    /// the filter).
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.segments.iter().find_map(|s| s.get(key))
    }

    /// The current virtual pipeline time (maximum over all stage clocks).
    pub fn virtual_now(&self) -> u64 {
        self.segment_clocks
            .iter()
            .copied()
            .chain([self.interface_clock])
            .max()
            .unwrap_or(0)
    }

    /// Stages a single operation and returns the identifier of its result.
    pub fn submit(&mut self, op: Operation<K, V>) -> OpId {
        let id = self.next_id;
        self.next_id += 1;
        self.staged.push(TaggedOp { id, op });
        id
    }

    /// Enqueues an input batch, as if flushed from the parallel buffer.
    pub fn enqueue_batch(&mut self, batch: Vec<TaggedOp<K, V>>) {
        let now = self.virtual_now();
        for t in &batch {
            self.next_id = self.next_id.max(t.id + 1);
            self.submit_times.push((t.id, now));
        }
        let cost = self.feed.push_input(batch);
        self.bound_work += cost.work;
        self.meter.charge(cost);
        self.activate(Target::Interface);
    }

    /// Number of operations not yet resolved (buffered, staged, or waiting in
    /// the filter; already-resolved results awaiting pickup do not count).
    pub fn pending(&self) -> usize {
        self.feed.len() + self.staged.len() + self.filter_pending_ops()
    }

    fn filter_pending_ops(&self) -> usize {
        let mut n = 0;
        self.filter.for_each(|_, ops| n += ops.len());
        n
    }

    fn activate(&mut self, target: Target) {
        let q = match target {
            Target::Interface => &mut self.q2,
            Target::Segment(_) => &mut self.q1,
        };
        if !q.contains(&target) {
            q.push_back(target);
        }
    }

    /// Runs one activation from the two-priority queues (final-slab segments
    /// first, then the interface) — one "step" of the weak-priority scheduler.
    /// Returns `false` when nothing was ready to run.
    pub fn step(&mut self) -> bool {
        // Q1 (final slab) has weak priority over Q2 (interface).
        if let Some(target) = self.q1.pop_front() {
            match target {
                Target::Segment(k) => self.run_segment(k),
                Target::Interface => unreachable!("interface never queued on Q1"),
            }
            return true;
        }
        if let Some(target) = self.q2.pop_front() {
            match target {
                Target::Interface => self.run_interface(),
                Target::Segment(_) => unreachable!("segments never queued on Q2"),
            }
            return true;
        }
        false
    }

    /// Drives the pipeline until all pending operations have resolved, then
    /// returns their results.
    pub fn process_all(&mut self) -> Vec<(OpId, OpResult<V>)> {
        if !self.staged.is_empty() {
            let staged = std::mem::take(&mut self.staged);
            self.enqueue_batch(staged);
        }
        loop {
            if self.q1.is_empty() && self.q2.is_empty() {
                // Re-arm: any final-slab segment with buffered tokens, and the
                // interface whenever input is waiting and the filter has room.
                for i in 0..self.buffers.len() {
                    if !self.buffers[i].is_empty() {
                        self.activate(Target::Segment(self.m + i));
                    }
                }
                if self.interface_ready() {
                    self.activate(Target::Interface);
                }
            }
            if !self.step() {
                break;
            }
        }
        std::mem::take(&mut self.results)
    }

    /// Convenience wrapper mirroring [`crate::M1::run_ops`].
    pub fn run_ops(&mut self, ops: Vec<Operation<K, V>>) -> Vec<OpResult<V>> {
        let base = self.next_id;
        let batch: Vec<TaggedOp<K, V>> = ops
            .into_iter()
            .enumerate()
            .map(|(i, op)| TaggedOp {
                id: base + i as OpId,
                op,
            })
            .collect();
        self.next_id = base + batch.len() as OpId;
        let n = batch.len();
        self.enqueue_batch(batch);
        let mut results: Vec<Option<OpResult<V>>> = vec![None; n];
        for (id, r) in self.process_all() {
            if id >= base && ((id - base) as usize) < n {
                results[(id - base) as usize] = Some(r);
            }
        }
        results
            .into_iter()
            .map(|r| r.expect("every operation produces a result"))
            .collect()
    }

    /// The full contents, segment by segment, each segment's items in
    /// recency order (most recent first).  Only meaningful at a batch
    /// boundary: [`M2::run_batch`](crate::ops::BatchedMap::run_batch) drives
    /// the pipeline until every pending operation resolves, so the feed,
    /// staging area, filter and final-slab buffers are all empty there and
    /// the segments alone are the semantic state (the
    /// `filter_stays_bounded_and_empties` test pins this).
    pub fn snapshot_segments(&self) -> Vec<Vec<(K, V)>> {
        assert!(
            self.pending() == 0,
            "snapshot_segments requires a batch boundary (no in-flight operations)"
        );
        self.segments
            .iter()
            .map(RecencyMap::items_in_recency_order)
            .collect()
    }

    /// Rebuilds the map's contents from a [`M2::snapshot_segments`] image.
    /// Only valid on a fresh map (clocks, meters and latency logs restart —
    /// durability restores *state*, not accounting history).
    pub fn restore_segments(&mut self, segments: Vec<Vec<(K, V)>>) {
        assert!(
            self.size == 0 && self.segments.is_empty() && self.pending() == 0,
            "restore_segments requires a fresh map"
        );
        self.size = segments.iter().map(Vec::len).sum();
        self.segments = segments
            .into_iter()
            .map(RecencyMap::from_recency_items)
            .collect();
        // Re-create the per-segment buffers and clocks for the final slab
        // (all empty/zero: nothing is in flight at a boundary), then trim
        // exactly as a normal batch run would.
        self.ensure_final_slab_state();
        self.drop_empty_tail();
    }

    // ------------------------------------------------------------------
    // Interface run (Section 7.1, M2 interface steps 1-6)
    // ------------------------------------------------------------------

    /// The interface is ready iff input is waiting and the filter is small.
    fn interface_ready(&self) -> bool {
        !self.feed.is_empty() && self.filter.len() <= self.p * self.p
    }

    fn run_interface(&mut self) {
        if !self.interface_ready() {
            return;
        }
        let mut cost = Charge::ZERO;
        // Step 1: take exactly one bunch as the cut batch.
        let (batch, form_cost) = self.feed.pop_cut_batch(1);
        cost += Charge::exact(form_cost);
        if batch.is_empty() {
            return;
        }
        // Step 2: entropy-sort and combine duplicates, through the reusable
        // scratch buffers.
        self.key_buf.clear();
        self.key_buf
            .extend(batch.iter().map(|t| t.op.key().clone()));
        cost += Charge::exact(pesort_group_into(
            &self.key_buf,
            &mut self.scratch,
            &mut self.grouped,
        ));
        let mut groups: Vec<GroupOp<K, V>> = self
            .grouped
            .iter()
            .map(|(key, idxs)| GroupOp {
                key: key.clone(),
                ops: idxs.iter().map(|&i| batch[i as usize].clone()).collect(),
            })
            .collect();

        // Step 3: pass through the first slab (segments 0..m-1), as in M1.
        let first_slab_end = self.m.min(self.segments.len());
        let mut finish_now: Vec<(OpId, OpResult<V>)> = Vec::new();
        let mut k = 0;
        while k < first_slab_end && !groups.is_empty() {
            let seg_len = self.segments[k].len() as u64;
            self.key_buf.clear();
            self.key_buf.extend(groups.iter().map(|g| g.key.clone()));
            let seg = &mut self.segments[k];
            let keys: &[K] = &self.key_buf;
            let (removed, touched) = tcost::metered(|| seg.remove_batch(keys));
            cost += tcost::batch_op_charge(touched, keys.len() as u64, seg_len, tree_fanout());
            let mut shift: Vec<(K, V)> = Vec::new();
            let mut remaining: Vec<GroupOp<K, V>> = Vec::new();
            for (group, found) in groups.into_iter().zip(removed) {
                match found {
                    Some(v) => {
                        let (rs, fin) = group.resolve(Some(v));
                        finish_now.extend(rs);
                        match fin {
                            Some(v2) => shift.push((group.key.clone(), v2)),
                            None => self.size -= 1,
                        }
                    }
                    None => remaining.push(group),
                }
            }
            let dest = k.saturating_sub(1);
            if !shift.is_empty() {
                let shift_len = shift.len() as u64;
                // Insert bound on the final size: the tree grows to
                // dest_len + shift_len during the batch.
                let dest_len = self.segments[dest].len() as u64 + shift_len;
                let dest_seg = &mut self.segments[dest];
                let ((), touched) = tcost::metered(|| dest_seg.push_front_batch(shift));
                cost += tcost::batch_op_charge(touched, shift_len, dest_len, tree_fanout());
            }
            // Restore the prefix capacity invariant inside the first slab only
            // (holes accumulate in S[m-1]; S[m]'s maintenance run refills
            // them).
            cost += self.restore_range(k.min(first_slab_end.saturating_sub(1)));
            groups = remaining;
            k += 1;
        }

        let has_final_slab = self.segments.len() > self.m;
        if has_final_slab && first_slab_end > 0 {
            // Deletion-heavy batches can resolve entirely inside the first
            // slab; the in-loop restores above stop at the deepest segment
            // the batch reached, so holes in front of that boundary would
            // strand (for p=3 the strandable mass 2+4+16 = 22 exceeds the
            // 2p² = 18 allowance).  Restore the whole first slab so every
            // hole lands in S[m-1], where the eager S[m] maintenance cascade
            // scheduled below refills it — the hand-off Lemma 16's bound
            // depends on.
            cost += self.restore_range(first_slab_end - 1);
        }
        if !has_final_slab {
            // Step 4 (degenerate): no final slab — finish everything here, as
            // in M1.
            let mut inserts: Vec<(K, V)> = Vec::new();
            for group in groups {
                let (rs, fin) = group.resolve(None);
                finish_now.extend(rs);
                if let Some(v) = fin {
                    inserts.push((group.key.clone(), v));
                }
            }
            if !inserts.is_empty() {
                cost += self.append_inserts(inserts);
            }
            cost += self.restore_range(self.segments.len().saturating_sub(1));
            self.drop_empty_tail();
        } else if !groups.is_empty() {
            // Step 4: pass the unfinished operations through the filter.
            // Insert bound on the final size: the filter can gain up to one
            // entry per group during the pass.
            let filter_len = self.filter.len() as u64 + groups.len() as u64;
            let group_count = groups.len() as u64;
            let filter = &mut self.filter;
            let (new_tokens, touched) = tcost::metered(|| {
                let mut new_tokens: Vec<Token<K>> = Vec::new();
                for group in groups {
                    match filter.get_mut(&group.key) {
                        Some(entry) => entry.extend(group.ops),
                        None => {
                            filter.insert(group.key.clone(), group.ops);
                            new_tokens.push(Token { key: group.key });
                        }
                    }
                }
                new_tokens
            });
            cost += tcost::batch_op_charge(touched, group_count, filter_len, tree_fanout());
            if !new_tokens.is_empty() {
                self.ensure_final_slab_state();
                let ready_at = self.interface_clock.max(self.virtual_now());
                self.buffer_ready[0] = self.buffer_ready[0].max(ready_at);
                self.buffers[0].extend(new_tokens);
            }
            // Activate S[m] even when every operation was absorbed by the
            // filter or finished in the first slab: its (possibly maintenance)
            // run refills any holes that first-slab deletions left in S[m-1]
            // (Invariant 2 of Lemma 16).
            self.activate(Target::Segment(self.m));
        }

        // Whenever a final slab exists, schedule the eager maintenance
        // cascade at S[m]: its run (a dedicated maintenance run when it has
        // no tokens) refills the holes this batch punched into S[m-1] and
        // propagates unconditionally down the final slab (see
        // `run_segment`), so the Lemma 16 prefix deficit is back under 2p²
        // before the next interface run instead of piggybacking on the next
        // token-carrying batch.
        if self.segments.len() > self.m {
            self.ensure_final_slab_state();
            self.activate(Target::Segment(self.m));
        }

        // Advance the interface clock by the span of this run and stamp the
        // operations that finished in the first slab.
        self.interface_clock =
            self.interface_clock.max(self.virtual_now_feed()) + cost.measured.span;
        let finish_time = self.interface_clock;
        self.record_finishes(&finish_now, finish_time);
        self.results.extend(finish_now);
        self.bound_work += cost.bound.work;
        self.meter.charge_in_batch(cost.measured);
        self.meter.end_batch();
        self.debug_check_transient_deficit();

        // Step 6: reactivate ourselves if more input is waiting and the filter
        // has room.
        if self.interface_ready() {
            self.activate(Target::Interface);
        }
    }

    /// Lower bound on when the interface can start (input was enqueued at this
    /// virtual time); the feed buffer itself does not track times, so use the
    /// latest recorded submit time.
    fn virtual_now_feed(&self) -> u64 {
        self.submit_times.iter().map(|&(_, t)| t).max().unwrap_or(0)
    }

    // ------------------------------------------------------------------
    // Final-slab segment run (Section 7.1, segment steps 1-7)
    // ------------------------------------------------------------------

    fn ensure_final_slab_state(&mut self) {
        while self.segments.len() <= self.m {
            self.segments.push(RecencyMap::new());
        }
        while self.buffers.len() < self.segments.len() - self.m {
            self.buffers.push(VecDeque::new());
            self.buffer_ready.push(0);
        }
        while self.segment_clocks.len() < self.segments.len() {
            self.segment_clocks.push(0);
        }
    }

    fn run_segment(&mut self, k: usize) {
        self.ensure_final_slab_state();
        let buf_idx = k - self.m;
        if buf_idx >= self.buffers.len() || k >= self.segments.len() {
            return;
        }
        if self.buffers[buf_idx].is_empty() {
            // Dedicated maintenance run (the paper's tagged-deletion pass):
            // no tokens to process, but earlier runs may have left holes —
            // rebalance the boundary with the previous segment (steps 4g/4h)
            // and cascade *unconditionally* down the final slab.  The old
            // conditional cascade (propagate only if something moved) let
            // deficits survive behind a balanced boundary, which is why
            // `check_invariants` used to need a 3p² allowance; the eager
            // cascade restores Lemma 16's 2p² bound between runs.
            let (charge, clamped) = self.balance_with_previous(k);
            // Count only runs that did (or still have) refill work — an
            // activation that found every boundary balanced is not a
            // maintenance run, and counting it would make the E17 metric
            // track batch count instead of hole-refill work.
            if !charge.measured.is_zero() || clamped {
                self.maintenance_runs += 1;
            }
            if !charge.measured.is_zero() {
                self.bound_work += charge.bound.work;
                self.meter.charge(charge.measured);
            }
            // Pipeline-clock accounting: the refill occupies this segment
            // from its previous availability for the span of the transfer.
            self.segment_clocks[k] += charge.measured.span;
            if k + 1 < self.segments.len() {
                self.activate(Target::Segment(k + 1));
                // If the refill ran S[k] dry before the deficit was cleared,
                // re-run this boundary after S[k+1]'s run has refilled S[k].
                if clamped {
                    self.activate(Target::Segment(k));
                }
            }
            self.drop_empty_final_tail();
            self.debug_check_transient_deficit();
            return;
        }
        let mut cost = Charge::ZERO;

        // Step 3: extend the structure if the terminal segment is overflowing.
        let is_terminal = k + 1 == self.segments.len();
        if is_terminal {
            let total: u64 = self.segments[k - 1].len() as u64 + self.segments[k].len() as u64;
            let cap = segment_capacity((k - 1) as u32).saturating_add(segment_capacity(k as u32));
            if total > cap {
                self.segments.push(RecencyMap::new());
                self.ensure_final_slab_state();
            }
        }
        let is_terminal = k + 1 == self.segments.len();

        // Step 4: flush the buffer and process its tokens.
        let mut tokens: Vec<Token<K>> = self.buffers[buf_idx].drain(..).collect();
        tokens.sort_by(|a, b| a.key.cmp(&b.key));
        let keys: Vec<K> = tokens.iter().map(|t| t.key.clone()).collect();
        let seg_len = self.segments[k].len() as u64;
        let seg = &mut self.segments[k];
        let (removed, touched) = tcost::metered(|| seg.remove_batch(&keys));
        cost += tcost::batch_op_charge(touched, keys.len() as u64, seg_len, tree_fanout());

        // m' = min(k-1, m): where accessed (and newly inserted) items go.
        let dest = (k - 1).min(self.m);
        let mut front_inserts: Vec<(K, V)> = Vec::new();
        let mut finish_now: Vec<(OpId, OpResult<V>)> = Vec::new();
        let mut pass_on: Vec<Token<K>> = Vec::new();
        for (token, found) in tokens.into_iter().zip(removed) {
            match found {
                Some(v) => {
                    let filter = &mut self.filter;
                    let (ops, touched) = tcost::metered(|| filter.remove(&token.key));
                    let ops = ops.expect("in-flight item must have a filter entry");
                    cost += tcost::single_op_charge(
                        touched,
                        self.filter.len() as u64 + 1,
                        tree_fanout(),
                    );
                    let group = GroupOp {
                        key: token.key.clone(),
                        ops,
                    };
                    let (rs, fin) = group.resolve(Some(v));
                    finish_now.extend(rs);
                    match fin {
                        Some(v2) => front_inserts.push((token.key, v2)),
                        None => self.size -= 1,
                    }
                }
                None if is_terminal => {
                    // The item is nowhere in the map: resolve against absence.
                    let filter = &mut self.filter;
                    let (ops, touched) = tcost::metered(|| filter.remove(&token.key));
                    let ops = ops.expect("in-flight item must have a filter entry");
                    cost += tcost::single_op_charge(
                        touched,
                        self.filter.len() as u64 + 1,
                        tree_fanout(),
                    );
                    let group = GroupOp {
                        key: token.key.clone(),
                        ops,
                    };
                    let (rs, fin) = group.resolve(None);
                    finish_now.extend(rs);
                    if let Some(v) = fin {
                        front_inserts.push((token.key, v));
                        self.size += 1;
                    }
                }
                None => pass_on.push(token),
            }
        }

        // Step 4d: shift accessed / newly inserted items to the front of
        // S[m'].
        if !front_inserts.is_empty() {
            let front_len = front_inserts.len() as u64;
            // Insert bound on the final size (the tree grows by front_len).
            let dest_len = self.segments[dest].len() as u64 + front_len;
            let dest_seg = &mut self.segments[dest];
            let ((), touched) = tcost::metered(|| dest_seg.push_front_batch(front_inserts));
            cost += tcost::batch_op_charge(touched, front_len, dest_len, tree_fanout());
        }

        // Steps 4g/4h: rebalance with the previous segment.
        let (balance_charge, clamped) = self.balance_with_previous(k);
        cost += balance_charge;

        // Step 4i: pass unfinished tokens to the next segment.
        if !pass_on.is_empty() {
            debug_assert!(!is_terminal, "terminal segment must finish every token");
            let next_idx = buf_idx + 1;
            self.buffers[next_idx].extend(pass_on);
        }
        // Always let the next segment run (with tokens, or as a dedicated
        // maintenance run — the role of the paper's tagged deletions
        // travelling the final slab), and re-run this boundary afterwards if
        // the refill ran S[k] dry before the deficit was cleared.
        if k + 1 < self.segments.len() {
            self.activate(Target::Segment(k + 1));
            if clamped {
                self.activate(Target::Segment(k));
            }
        }

        // Pipeline timing: this run starts when both the segment is free and
        // its input buffer was ready.
        let start = self.segment_clocks[k].max(self.buffer_ready[buf_idx]);
        let end = start + cost.measured.span;
        self.segment_clocks[k] = end;
        if buf_idx + 1 < self.buffer_ready.len() {
            self.buffer_ready[buf_idx + 1] = self.buffer_ready[buf_idx + 1].max(end);
        }
        self.record_finishes(&finish_now, end);
        self.results.extend(finish_now);
        self.bound_work += cost.bound.work;
        self.meter.charge_in_batch(cost.measured);
        self.meter.end_batch();
        self.debug_check_transient_deficit();

        // Step 5: drop an empty terminal segment (only if it has no pending
        // input).
        self.drop_empty_final_tail();

        // Step 4e / 6: wake the interface if the filter has room, and
        // reactivate ourselves if more input arrived.
        if self.interface_ready() {
            self.activate(Target::Interface);
        }
        if self.buffers.get(buf_idx).is_some_and(|b| !b.is_empty()) {
            self.activate(Target::Segment(k));
        }
    }

    /// Steps 4g/4h: if `S[k-1]` is over-full push its back into `S[k]`; if it
    /// is under-full pull from the front of `S[k]`.
    ///
    /// Returns the transfer charge plus whether the refill was *clamped* —
    /// `S[k]` ran dry before the deficit was cleared while deeper segments
    /// still hold items.  A clamped refill means the cascade must revisit
    /// this boundary once `S[k+1]`'s run has refilled `S[k]`.
    fn balance_with_previous(&mut self, k: usize) -> (Charge, bool) {
        let cap_prev = segment_capacity((k - 1) as u32);
        let prev_len = self.segments[k - 1].len() as u64;
        let larger = (self.segments[k - 1].len()).max(self.segments[k].len()) as u64;
        if prev_len > cap_prev {
            let x = (prev_len - cap_prev) as usize;
            let charge = self.metered_transfer(k, x, larger, |prev, next, x| {
                let moved = prev.take_back(x);
                next.push_front_batch(moved);
            });
            (charge, false)
        } else if prev_len < cap_prev && !self.segments[k].is_empty() {
            // Only refill holes left by deletions; never drain the suffix just
            // because the structure is small overall.
            let deficit = (cap_prev - prev_len) as usize;
            let x = deficit.min(self.segments[k].len());
            let clamped = x < deficit && self.segments[k + 1..].iter().any(|s| !s.is_empty());
            let charge = self.metered_transfer(k, x, larger, |prev, next, x| {
                let moved = next.take_front(x);
                prev.push_back_batch(moved);
            });
            (charge, clamped)
        } else {
            let deficit = cap_prev.saturating_sub(prev_len);
            let clamped = deficit > 0 && self.segments[k + 1..].iter().any(|s| !s.is_empty());
            (Charge::ZERO, clamped)
        }
    }

    /// Moves `count` items across the boundary between `S[k-1]` and `S[k]`
    /// with `mv`, metering the touched nodes into a transfer charge.
    fn metered_transfer(
        &mut self,
        k: usize,
        count: usize,
        larger: u64,
        mv: impl FnOnce(&mut RecencyMap<K, V>, &mut RecencyMap<K, V>, usize),
    ) -> Charge {
        if count == 0 {
            return Charge::ZERO;
        }
        let (left, right) = self.segments.split_at_mut(k);
        let prev = &mut left[k - 1];
        let next = &mut right[0];
        let ((), touched) = tcost::metered(|| mv(prev, next, count));
        // The receiving segment grows to its size + count during the insert
        // half of the transfer, so the bound covers the final size.
        tcost::transfer_charge(touched, count as u64, larger + count as u64, tree_fanout())
    }

    // ------------------------------------------------------------------
    // Shared helpers (same roles as in M1)
    // ------------------------------------------------------------------

    fn prefix_capacity(i: usize) -> u64 {
        (0..i).fold(0u64, |acc, j| {
            acc.saturating_add(segment_capacity(j as u32))
        })
    }

    fn prefix_size(&self, i: usize) -> u64 {
        self.segments[..i].iter().map(|s| s.len() as u64).sum()
    }

    fn balance_boundary(&mut self, i: usize) -> Charge {
        let target = Self::prefix_capacity(i);
        let current = self.prefix_size(i);
        let larger = self.segments[i - 1].len().max(self.segments[i].len()) as u64;
        if current > target {
            let x = (current - target) as usize;
            self.metered_transfer(i, x, larger, |prev, next, x| {
                let moved = prev.take_back(x);
                next.push_front_batch(moved);
            })
        } else if current < target && !self.segments[i].is_empty() {
            let x = ((target - current) as usize).min(self.segments[i].len());
            self.metered_transfer(i, x, larger, |prev, next, x| {
                let moved = next.take_front(x);
                prev.push_back_batch(moved);
            })
        } else {
            Charge::ZERO
        }
    }

    /// Balances boundaries `1..=k` from back to front (within the given
    /// range only — the interface never reaches past the first slab).
    fn restore_range(&mut self, k: usize) -> Charge {
        let mut cost = Charge::ZERO;
        for i in (1..=k.min(self.segments.len().saturating_sub(1))).rev() {
            cost += self.balance_boundary(i);
        }
        cost
    }

    fn append_inserts(&mut self, items: Vec<(K, V)>) -> Charge {
        let mut cost = Charge::ZERO;
        if self.segments.is_empty() {
            self.segments.push(RecencyMap::new());
        }
        self.size += items.len();
        let mut l = self.segments.len() - 1;
        let items_len = items.len() as u64;
        // Insert bound on the final size (the tree grows during the batch).
        let seg_len = self.segments[l].len() as u64 + items_len;
        let seg = &mut self.segments[l];
        let ((), touched) = tcost::metered(|| seg.push_back_batch(items));
        cost += tcost::batch_op_charge(touched, items_len, seg_len, tree_fanout());
        while self.segments[l].len() as u64 > segment_capacity(l as u32) {
            let excess = (self.segments[l].len() as u64 - segment_capacity(l as u32)) as usize;
            let larger = self.segments[l].len() as u64;
            self.segments.push(RecencyMap::new());
            l += 1;
            cost += self.metered_transfer(l, excess, larger, |prev, next, x| {
                let moved = prev.take_back(x);
                next.push_front_batch(moved);
            });
        }
        self.ensure_final_slab_state();
        cost
    }

    fn drop_empty_tail(&mut self) {
        while matches!(self.segments.last(), Some(s) if s.is_empty())
            && self.segments.len() > self.m
        {
            // Never drop a final-slab segment whose buffer still has tokens.
            let idx = self.segments.len() - 1 - self.m;
            if self.buffers.get(idx).is_some_and(|b| !b.is_empty()) {
                break;
            }
            self.segments.pop();
            if self.buffers.len() > idx {
                self.buffers.pop();
                self.buffer_ready.pop();
            }
        }
        while matches!(self.segments.last(), Some(s) if s.is_empty())
            && self.segments.len() <= self.m
        {
            self.segments.pop();
        }
    }

    fn drop_empty_final_tail(&mut self) {
        self.drop_empty_tail();
    }

    fn record_finishes(&mut self, finished: &[(OpId, OpResult<V>)], time: u64) {
        if finished.is_empty() {
            return;
        }
        let ids: std::collections::BTreeSet<OpId> = finished.iter().map(|(id, _)| *id).collect();
        let mut remaining = Vec::with_capacity(self.submit_times.len());
        for &(id, submit) in &self.submit_times {
            if ids.contains(&id) {
                self.latencies.push(LatencyRecord {
                    id,
                    submit,
                    finish: time,
                });
            } else {
                remaining.push((id, submit));
            }
        }
        self.submit_times = remaining;
    }

    /// Checks structural invariants in the spirit of Lemma 16: internal tree
    /// consistency, cached size, filter bound, final-slab segments within
    /// `3 · 2^(2^k)`, and prefixes at most `2p²` below capacity.
    pub fn check_invariants(&self) {
        let mut total = 0usize;
        for (k, seg) in self.segments.iter().enumerate() {
            seg.check_invariants();
            total += seg.len();
            let cap = segment_capacity(k as u32);
            if k >= self.m {
                assert!(
                    (seg.len() as u64) <= cap.saturating_mul(3),
                    "final-slab segment {k} exceeds 3x capacity: {}",
                    seg.len()
                );
            } else {
                assert!(
                    (seg.len() as u64) <= cap.saturating_mul(2),
                    "first-slab segment {k} exceeds 2x capacity: {}",
                    seg.len()
                );
            }
        }
        assert_eq!(total, self.size, "cached size out of date");
        // Filter bound (Section 7.1, steps 1 and 6): the interface only runs
        // while at most p² keys are resident, and one run adds at most one
        // p²-operation cut batch of new keys — 2p² distinct in-flight items.
        let filter_bound = 2 * self.p * self.p;
        assert!(
            self.filter.len() <= filter_bound,
            "filter exceeded its 2p² bound (Section 7.1): {} > {filter_bound}",
            self.filter.len()
        );
        // Invariant 4 of Lemma 16: prefixes of the final slab are at most 2p²
        // below capacity, unless the whole suffix is empty.  The eager
        // maintenance cascade scheduled by every interface run clears refill
        // deficits before the next batch, so only genuinely in-flight items
        // (bounded by the 2p² filter) may be missing from a prefix between
        // runs; the transient 3p² allowance lives in
        // `debug_check_transient_deficit`, which runs mid-cascade only.
        self.check_prefix_deficits(self.resting_slack());
    }

    /// Lemma 16's resting prefix-deficit allowance: `2p²`, the most that can
    /// legitimately be in flight (the filter bound) once every scheduled
    /// maintenance run has executed.
    fn resting_slack(&self) -> u64 {
        (2 * self.p * self.p) as u64
    }

    /// Asserts that every final-slab prefix `S[0..k]` is at most `slack`
    /// items below its capacity, unless the suffix from `S[k]` on is empty
    /// (the structure simply ends early).
    fn check_prefix_deficits(&self, slack: u64) {
        for k in self.m..self.segments.len() {
            let suffix: usize = self.segments[k..].iter().map(RecencyMap::len).sum();
            if suffix == 0 {
                continue;
            }
            let prefix = self.prefix_size(k);
            let cap = Self::prefix_capacity(k);
            assert!(
                prefix.saturating_add(slack) >= cap.min(prefix + suffix as u64),
                "prefix S[0..{k}] more than {slack} below capacity: {prefix} vs {cap}"
            );
        }
    }

    /// Debug-only transient deficit check, run at the end of every interface
    /// and segment run: while a maintenance cascade is still queued, one
    /// extra cut batch of first-slab holes (≤ p² operations) may be awaiting
    /// the cascade that was scheduled together with it, on top of the 2p²
    /// resting allowance — never more.
    #[cfg(debug_assertions)]
    fn debug_check_transient_deficit(&self) {
        self.check_prefix_deficits(self.resting_slack() + (self.p * self.p) as u64);
    }

    #[cfg(not(debug_assertions))]
    fn debug_check_transient_deficit(&self) {}
}

impl<K: Ord + Clone + Send + Sync + std::fmt::Debug, V: Clone> BatchedMap<K, V> for M2<K, V> {
    fn run_batch(&mut self, batch: Vec<TaggedOp<K, V>>) -> (Vec<(OpId, OpResult<V>)>, Cost) {
        let before = self.meter.total();
        self.enqueue_batch(batch);
        let results = self.process_all();
        let after = self.meter.total();
        (
            results,
            Cost {
                work: after.work - before.work,
                span: after.span - before.span,
            },
        )
    }

    fn len(&self) -> usize {
        self.size
    }

    fn effective_work(&self) -> u64 {
        self.meter.work()
    }

    fn effective_span(&self) -> u64 {
        self.meter.span()
    }

    fn maintenance_runs(&self) -> u64 {
        M2::maintenance_runs(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    fn search(k: u64) -> Operation<u64, u64> {
        Operation::Search(k)
    }
    fn insert(k: u64, v: u64) -> Operation<u64, u64> {
        Operation::Insert(k, v)
    }
    fn delete(k: u64) -> Operation<u64, u64> {
        Operation::Delete(k)
    }

    #[test]
    fn m_is_loglog_of_p_squared() {
        assert_eq!(M2::<u64, u64>::new(2).first_slab_len(), 3);
        assert_eq!(M2::<u64, u64>::new(4).first_slab_len(), 4);
        assert_eq!(M2::<u64, u64>::new(8).first_slab_len(), 4);
        assert_eq!(M2::<u64, u64>::new(64).first_slab_len(), 5);
    }

    #[test]
    fn basic_insert_search_delete() {
        let mut m = M2::new(4);
        let results = m.run_ops(vec![insert(1, 10), insert(2, 20), insert(3, 30)]);
        assert!(results.iter().all(|r| matches!(r, OpResult::Insert(None))));
        assert_eq!(m.size(), 3);
        m.check_invariants();

        let results = m.run_ops(vec![search(1), search(9), delete(2), search(2)]);
        assert_eq!(results[0], OpResult::Search(Some(10)));
        assert_eq!(results[1], OpResult::Search(None));
        assert_eq!(results[2], OpResult::Delete(Some(20)));
        assert_eq!(results[3], OpResult::Search(None));
        assert_eq!(m.size(), 2);
        m.check_invariants();
    }

    #[test]
    fn builds_final_slab_for_large_maps() {
        let n = 3000u64;
        let mut m = M2::new(2);
        m.run_ops((0..n).map(|i| insert(i, i)).collect());
        assert_eq!(m.size(), n as usize);
        assert!(
            m.num_segments() > m.first_slab_len(),
            "expected a final slab for n={n}: segments={:?}",
            m.segment_sizes()
        );
        m.check_invariants();
        // Everything is still reachable.
        let results = m.run_ops((0..n).step_by(97).map(search).collect());
        assert!(results.iter().all(|r| r.was_present()));
        m.check_invariants();
    }

    #[test]
    fn matches_btreemap_model_on_random_batches() {
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        let mut m = M2::new(4);
        let mut state = 0xDEADBEEF;
        for round in 0..40 {
            let b = 1 + (xorshift(&mut state) % 80) as usize;
            let key_space = if round < 20 { 48 } else { 1 << 14 };
            let mut ops = Vec::with_capacity(b);
            for _ in 0..b {
                let key = xorshift(&mut state) % key_space;
                match xorshift(&mut state) % 4 {
                    0 | 1 => ops.push(search(key)),
                    2 => ops.push(insert(key, xorshift(&mut state))),
                    _ => ops.push(delete(key)),
                }
            }
            let expected: Vec<OpResult<u64>> = ops
                .iter()
                .map(|op| match op {
                    Operation::Search(k) => OpResult::Search(model.get(k).copied()),
                    Operation::Insert(k, v) => OpResult::Insert(model.insert(*k, *v)),
                    Operation::Delete(k) => OpResult::Delete(model.remove(k)),
                })
                .collect();
            let got = m.run_ops(ops);
            assert_eq!(got, expected, "round {round}");
            assert_eq!(m.size(), model.len(), "round {round}");
            m.check_invariants();
        }
    }

    #[test]
    fn duplicate_heavy_batches_are_cheap() {
        let n: u64 = 1 << 13;
        let b: usize = 1 << 10;
        let mut m = M2::new(8);
        m.run_ops((0..n).map(|i| insert(i, i)).collect());
        let work_before = m.effective_work();
        m.run_ops(std::iter::repeat_n(search(n / 2), b).collect());
        let dup_work = m.effective_work() - work_before;
        let log_n = (n as f64).log2();
        assert!(
            (dup_work as f64) < 0.8 * (b as f64) * log_n,
            "duplicate batch work {dup_work} looks like Ω(b log n)"
        );
    }

    #[test]
    fn hot_accesses_have_lower_latency_than_cold() {
        // Theorem 25 shape: per-operation pipeline latency grows with the
        // access rank, so repeatedly touched items finish much faster than
        // long-untouched ones.
        let n = 1 << 14;
        let mut m = M2::new(4);
        m.run_ops((0..n).map(|i| insert(i, i)).collect());
        // Prime a hot item near the front.
        m.run_ops(vec![search(5), search(5)]);
        let before = m.latencies().len();
        m.run_ops(vec![search(5)]);
        let hot: u64 = m.latencies()[before..].iter().map(|l| l.latency()).sum();
        let before = m.latencies().len();
        m.run_ops(vec![search(n - 3)]);
        let cold: u64 = m.latencies()[before..].iter().map(|l| l.latency()).sum();
        assert!(
            hot < cold,
            "hot access latency {hot} should be below cold access latency {cold}"
        );
    }

    #[test]
    fn effective_work_tracks_working_set_bound() {
        use wsm_model::{working_set_bound, MapOpKind};
        let n: u64 = 1 << 12;
        let mut m = M2::new(8);
        let mut state = 3;
        m.run_ops((0..n).map(|i| insert(i, i)).collect());
        let mut ops = Vec::new();
        let mut kinds: Vec<MapOpKind<u64>> = (0..n).map(MapOpKind::Insert).collect();
        for _ in 0..(4 * n) {
            let key = if xorshift(&mut state) % 10 < 9 {
                xorshift(&mut state) % 8
            } else {
                xorshift(&mut state) % n
            };
            ops.push(search(key));
            kinds.push(MapOpKind::Search(key));
        }
        let work_before = m.effective_work();
        m.run_ops(ops);
        let measured = m.effective_work() - work_before;
        let wl = working_set_bound(&kinds) as f64;
        assert!(
            (measured as f64) < 80.0 * wl,
            "M2 work {measured} not within constant factor of W_L {wl}"
        );
    }

    #[test]
    fn filter_stays_bounded_and_empties() {
        let mut m = M2::new(2);
        let mut state = 31;
        m.run_ops((0..2000u64).map(|i| insert(i, i)).collect());
        for _ in 0..10 {
            let ops: Vec<Operation<u64, u64>> = (0..200)
                .map(|_| search(xorshift(&mut state) % 2000))
                .collect();
            m.run_ops(ops);
            assert_eq!(m.filter_size(), 0, "filter must drain between rounds");
            m.check_invariants();
        }
    }

    #[test]
    fn operations_on_in_flight_items_linearize_correctly() {
        // Two batches touching the same key, enqueued before any processing:
        // the second batch's operations must observe the first batch's effect.
        let mut m = M2::new(2);
        m.run_ops((0..1000u64).map(|i| insert(i, i)).collect());
        let id_a = m.submit(insert(500, 777));
        let id_b = m.submit(delete(500));
        let id_c = m.submit(search(500));
        let results: BTreeMap<OpId, OpResult<u64>> = m.process_all().into_iter().collect();
        assert_eq!(results[&id_a], OpResult::Insert(Some(500)));
        assert_eq!(results[&id_b], OpResult::Delete(Some(777)));
        assert_eq!(results[&id_c], OpResult::Search(None));
        m.check_invariants();
    }

    #[test]
    fn empty_and_missing_key_operations() {
        let mut m: M2<u64, u64> = M2::new(4);
        let results = m.run_ops(vec![search(3), delete(4)]);
        assert_eq!(results[0], OpResult::Search(None));
        assert_eq!(results[1], OpResult::Delete(None));
        assert_eq!(m.size(), 0);
        assert!(!m.step(), "nothing should remain scheduled");
    }

    #[test]
    fn snapshot_restore_round_trip_preserves_state_and_order() {
        let mut m = M2::new(2);
        let mut state = 99;
        m.run_ops((0..3000u64).map(|i| insert(i, i + 7)).collect());
        for _ in 0..5 {
            let ops: Vec<Operation<u64, u64>> = (0..150)
                .map(|_| match xorshift(&mut state) % 3 {
                    0 => search(xorshift(&mut state) % 3000),
                    1 => insert(xorshift(&mut state) % 3000, xorshift(&mut state)),
                    _ => delete(xorshift(&mut state) % 3000),
                })
                .collect();
            m.run_ops(ops);
        }
        let image = m.snapshot_segments();
        let mut r = M2::new(2);
        r.restore_segments(image.clone());
        r.check_invariants();
        assert_eq!(r.size(), m.size());
        assert_eq!(r.segment_sizes(), m.segment_sizes());
        assert_eq!(r.snapshot_segments(), image);
        // The restored pipeline keeps running and stays consistent.
        for k in (0..3000u64).step_by(457) {
            assert_eq!(r.peek(&k).copied(), m.peek(&k).copied());
        }
        r.run_ops((0..200u64).map(|i| insert(100_000 + i, i)).collect());
        r.check_invariants();
    }
}
