//! Caller-context tracking: is the current thread an async service task?
//!
//! The blocking wait paths of [`crate::ConcurrentMap`] (doorbell park, cell
//! spin) assume the calling thread is an ordinary OS thread that can afford
//! to sleep.  A *service task* — a future polled by the `wsm-svc` executor —
//! must never park the executor worker it happens to be running on: with a
//! single worker the park is a deadlock (the parked worker is the only
//! thread that could poll the task whose combine would ring the doorbell),
//! and with several it silently removes a worker from the executor for the
//! whole wait.
//!
//! The executor therefore brackets every poll with [`ServiceTaskGuard`], and
//! the blocking paths consult [`in_service_task`]:
//!
//! * `ConcurrentMap::call`/`call_batch` in doorbell mode fall back to the
//!   never-parking bounded-backoff loop (the cell-mode wait) instead of
//!   parking;
//! * `ShardedMap::run_batch` routes every sub-batch through the dedicated
//!   router pool instead of running one inline on the caller, so the
//!   blocking combiner election happens on a router worker that is allowed
//!   to block (see the `wsm-shard` crate docs).
//!
//! The flag is a plain thread-local — it needs no atomicity (a thread only
//! consults its own flag) and it nests (a service task that itself polls a
//! nested future stays "in service").

use std::cell::Cell;

thread_local! {
    /// Depth of service-task polls on this thread (0 = ordinary thread).
    static SERVICE_DEPTH: Cell<u32> = const { Cell::new(0) };
}

/// True while the current thread is polling an async service task (an
/// executor worker inside a poll, including `block_on` on a caller thread).
pub fn in_service_task() -> bool {
    SERVICE_DEPTH.with(|d| d.get() > 0)
}

/// RAII marker: the current thread is polling a service task until the guard
/// drops.  Nests safely.
#[must_use = "the context flag clears when the guard drops"]
pub struct ServiceTaskGuard(());

impl Default for ServiceTaskGuard {
    fn default() -> Self {
        Self::new()
    }
}

impl ServiceTaskGuard {
    /// Marks the current thread as a service task context.
    pub fn new() -> Self {
        SERVICE_DEPTH.with(|d| d.set(d.get() + 1));
        ServiceTaskGuard(())
    }
}

impl Drop for ServiceTaskGuard {
    fn drop(&mut self) {
        SERVICE_DEPTH.with(|d| d.set(d.get() - 1));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_is_scoped_and_nests() {
        assert!(!in_service_task());
        {
            let _outer = ServiceTaskGuard::new();
            assert!(in_service_task());
            {
                let _inner = ServiceTaskGuard::new();
                assert!(in_service_task());
            }
            assert!(in_service_task());
        }
        assert!(!in_service_task());
    }

    #[test]
    fn flag_is_per_thread() {
        let _guard = ServiceTaskGuard::new();
        assert!(in_service_task());
        std::thread::spawn(|| assert!(!in_service_task()))
            .join()
            .unwrap();
    }
}
