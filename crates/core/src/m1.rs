//! M1 — the simple batched parallel working-set map (paper Section 6).
//!
//! Operations enter through the parallel buffer (owned by the concurrent
//! front-end) or directly as input batches, are cut into bounded-size batches
//! by the feed buffer, entropy-sorted so that duplicate accesses combine into
//! [`GroupOp`]s, and then passed through the segment cascade
//! `S[0] → S[1] → …` exactly as in the paper:
//!
//! * at segment `S[k]` the remaining group-operations are looked up; groups
//!   whose item is found resolve immediately, the surviving items are shifted
//!   to the front of `S[k-1]`, and the capacity invariant of the prefix
//!   `S[0..k-1]` is restored by transfers across segment boundaries;
//! * groups that reach the end resolve against an absent item; net insertions
//!   are appended at the back of the terminal segment, which is split when it
//!   overflows.
//!
//! Theorem 12 (effective work `O(W_L + e_L log p)`) and Theorem 13 (effective
//! span `O(N/p + d((log p)² + log n))`) are validated empirically by
//! experiments E3/E4 in EXPERIMENTS.md.

use crate::feed::FeedBuffer;
use crate::ops::{BatchedMap, GroupOp, OpId, OpResult, Operation, TaggedOp};
use wsm_model::{ceil_log2, Cost, CostMeter};
use wsm_seq::segment_capacity;
use wsm_sort::{pesort_group_into, GroupedBatch, SortScratch};
use wsm_twothree::cost::{self as tcost, Charge};
use wsm_twothree::RecencyMap;

/// The fanout of the segment trees (all segments are built through
/// [`RecencyMap::new`], which reads `WSM_TREE_FANOUT`), threaded into every
/// measured charge so the Lemma bounds are the ones of the tree actually
/// running — `2` reproduces the closed-form Appendix A.2 reference.
fn tree_fanout() -> u64 {
    wsm_twothree::default_fanout() as u64
}

/// Statistics recorded for every cut batch M1 processes.
#[derive(Clone, Copy, Debug, Default)]
pub struct BatchStats {
    /// Number of operations in the cut batch.
    pub batch_size: usize,
    /// Map size just before the batch.
    pub map_size_before: usize,
    /// Effective cost charged for the batch (sorting + segments + transfers).
    pub cost: Cost,
}

/// The simple batched parallel working-set map.
#[derive(Debug)]
pub struct M1<K, V> {
    p: usize,
    feed: FeedBuffer<TaggedOp<K, V>>,
    staged: Vec<TaggedOp<K, V>>,
    segments: Vec<RecencyMap<K, V>>,
    size: usize,
    meter: CostMeter,
    /// Worst-case (Lemma A.2) work the processed batches *would* have been
    /// charged before the measured/bound split; the meter holds the measured
    /// work actually paid.  `analytic_bound_work / effective_work` is the
    /// constant factor E17 tracks.
    bound_work: u64,
    next_id: OpId,
    batch_log: Vec<BatchStats>,
    /// Reusable sort/group buffers: after the first few batches the
    /// sort-and-combine step allocates nothing (see `pesort_group_into`).
    key_buf: Vec<K>,
    scratch: SortScratch,
    grouped: GroupedBatch<K>,
    /// Recycled group-op machinery: the group vector and the per-group
    /// member vectors live across batches instead of being reallocated.
    groups_buf: Vec<GroupOp<K, V>>,
    ops_pool: Vec<Vec<TaggedOp<K, V>>>,
}

impl<K: Ord + Clone + Send + Sync, V: Clone> M1<K, V> {
    /// Creates an empty M1 configured for `p` processors (`p ≥ 2`); the feed
    /// buffer uses bunches of size `p²`.
    pub fn new(p: usize) -> Self {
        let p = p.max(2);
        M1 {
            p,
            feed: FeedBuffer::new(p * p),
            staged: Vec::new(),
            segments: Vec::new(),
            size: 0,
            meter: CostMeter::new(),
            bound_work: 0,
            next_id: 0,
            batch_log: Vec::new(),
            key_buf: Vec::new(),
            scratch: SortScratch::default(),
            grouped: GroupedBatch::default(),
            groups_buf: Vec::new(),
            ops_pool: Vec::new(),
        }
    }

    /// The processor count this instance is configured for.
    pub fn processors(&self) -> usize {
        self.p
    }

    /// Number of items currently in the map.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Number of segments currently allocated.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Sizes of the segments, front to back.
    pub fn segment_sizes(&self) -> Vec<usize> {
        self.segments.iter().map(RecencyMap::len).collect()
    }

    /// Per-cut-batch statistics recorded so far.
    pub fn batch_log(&self) -> &[BatchStats] {
        &self.batch_log
    }

    /// Total worst-case work (the closed-form Appendix A.2 bounds) for every
    /// charge this map has paid.  [`BatchedMap::effective_work`] reports the
    /// measured touched-node work, which is at most this (up to
    /// [`tcost::measured_ceiling`], asserted in debug builds).
    pub fn analytic_bound_work(&self) -> u64 {
        self.bound_work
    }

    /// Non-adjusting lookup for tests: scans the segments without charging
    /// cost or restructuring.
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.segments.iter().find_map(|s| s.get(key))
    }

    /// Stages a single operation for the next processing round and returns the
    /// identifier its result will carry.
    pub fn submit(&mut self, op: Operation<K, V>) -> OpId {
        let id = self.next_id;
        self.next_id += 1;
        self.staged.push(TaggedOp { id, op });
        id
    }

    /// Pushes an input batch (already tagged) into the feed buffer, as if it
    /// had just been flushed from the parallel buffer.
    pub fn enqueue_batch(&mut self, batch: Vec<TaggedOp<K, V>>) {
        for t in &batch {
            self.next_id = self.next_id.max(t.id + 1);
        }
        let cost = self.feed.push_input(batch);
        self.bound_work += cost.work;
        self.meter.charge(cost);
    }

    /// Number of operations waiting in the feed buffer or staging area.
    pub fn pending(&self) -> usize {
        self.feed.len() + self.staged.len()
    }

    /// How many bunches form the next cut batch: `⌈log n / p⌉`, at least one
    /// (Section 6.1).
    fn cut_bunch_count(&self) -> usize {
        let logn = ceil_log2(self.size as u64 + 2) as usize;
        logn.div_ceil(self.p).max(1)
    }

    /// Processes one cut batch if any operations are pending.  Returns the
    /// results of the operations that completed in this batch.
    #[allow(clippy::type_complexity)]
    pub fn process_next_batch(&mut self) -> Option<(Vec<(OpId, OpResult<V>)>, Cost)> {
        if !self.staged.is_empty() {
            let staged = std::mem::take(&mut self.staged);
            self.enqueue_batch(staged);
        }
        if self.feed.is_empty() {
            return None;
        }
        let (batch, form_cost) = self.feed.pop_cut_batch(self.cut_bunch_count());
        let stats_before = self.size;
        let batch_size = batch.len();
        let (results, charge) = self.process_cut_batch(batch);
        let cost = form_cost.then(charge.measured);
        self.bound_work += form_cost.work + charge.bound.work;
        self.meter.charge_in_batch(cost);
        self.meter.end_batch();
        self.batch_log.push(BatchStats {
            batch_size,
            map_size_before: stats_before,
            cost,
        });
        Some((results, cost))
    }

    /// Processes everything that is pending, returning all results.
    pub fn process_all(&mut self) -> Vec<(OpId, OpResult<V>)> {
        let mut out = Vec::new();
        while let Some((results, _)) = self.process_next_batch() {
            out.extend(results);
        }
        out
    }

    /// The core of Section 6.1: sort + combine, pass through the segments,
    /// then append net insertions.
    fn process_cut_batch(
        &mut self,
        batch: Vec<TaggedOp<K, V>>,
    ) -> (Vec<(OpId, OpResult<V>)>, Charge) {
        let b = batch.len();
        if b == 0 {
            return (Vec::new(), Charge::ZERO);
        }
        let mut cost = Charge::ZERO;

        // Entropy-sort the batch by key and combine duplicates into
        // group-operations, through the reusable scratch buffers.
        self.key_buf.clear();
        self.key_buf
            .extend(batch.iter().map(|t| t.op.key().clone()));
        cost += Charge::exact(pesort_group_into(
            &self.key_buf,
            &mut self.scratch,
            &mut self.grouped,
        ));
        let mut groups: Vec<GroupOp<K, V>> = std::mem::take(&mut self.groups_buf);
        debug_assert!(groups.is_empty());
        for (key, idxs) in self.grouped.iter() {
            let mut ops = self.ops_pool.pop().unwrap_or_default();
            ops.extend(idxs.iter().map(|&i| batch[i as usize].clone()));
            groups.push(GroupOp {
                key: key.clone(),
                ops,
            });
        }

        let mut results: Vec<(OpId, OpResult<V>)> = Vec::with_capacity(b);

        // Pass the group-operations through the segments.  `key_buf` (free
        // again after the grouping above) carries the surviving keys, and
        // resolved groups are compacted out of `groups` in place, so the
        // cascade allocates no per-segment vectors.
        let mut k = 0;
        while k < self.segments.len() && !groups.is_empty() {
            let seg_len = self.segments[k].len() as u64;
            self.key_buf.clear();
            self.key_buf.extend(groups.iter().map(|g| g.key.clone()));
            let seg = &mut self.segments[k];
            let keys: &[K] = &self.key_buf;
            let (removed, touched) = tcost::metered(|| seg.remove_batch(keys));
            cost += tcost::batch_op_charge(touched, keys.len() as u64, seg_len, tree_fanout());

            let mut shift: Vec<(K, V)> = Vec::new();
            let mut write = 0;
            for (read, found) in removed.into_iter().enumerate() {
                match found {
                    Some(v) => {
                        let group = &mut groups[read];
                        let (rs, fin) = group.resolve(Some(v));
                        results.extend(rs);
                        match fin {
                            Some(v2) => shift.push((group.key.clone(), v2)),
                            None => self.size -= 1,
                        }
                        let mut ops = std::mem::take(&mut group.ops);
                        ops.clear();
                        self.ops_pool.push(ops);
                    }
                    None => {
                        groups.swap(write, read);
                        write += 1;
                    }
                }
            }
            groups.truncate(write);
            let dest = k.saturating_sub(1);
            if !shift.is_empty() {
                let shift_len = shift.len() as u64;
                // Insert bound on the final size: the tree grows to
                // dest_len + shift_len during the batch.
                let dest_len = self.segments[dest].len() as u64 + shift_len;
                let dest_seg = &mut self.segments[dest];
                let ((), touched) = tcost::metered(|| dest_seg.push_front_batch(shift));
                cost += tcost::batch_op_charge(touched, shift_len, dest_len, tree_fanout());
            }
            cost += self.restore_prefixes(k);
            k += 1;
        }

        // Remaining groups reached the end of the structure: they resolve
        // against an absent item; net insertions go to the back.
        let mut inserts: Vec<(K, V)> = Vec::new();
        for group in &mut groups {
            let (rs, fin) = group.resolve(None);
            results.extend(rs);
            if let Some(v) = fin {
                inserts.push((group.key.clone(), v));
            }
            let mut ops = std::mem::take(&mut group.ops);
            ops.clear();
            self.ops_pool.push(ops);
        }
        groups.clear();
        self.groups_buf = groups;
        if !inserts.is_empty() {
            cost += self.append_inserts(inserts);
        }

        // Refill any deletion holes and drop empty trailing segments so the
        // Section 5/6 structural invariant holds after every batch.
        cost += self.restore_all();
        self.drop_empty_tail();

        (results, cost)
    }

    /// Moves `count` items across the boundary between `S[i-1]` and `S[i]`
    /// with `mv`, metering the touched nodes into a transfer charge.
    fn metered_transfer(
        &mut self,
        i: usize,
        count: usize,
        larger: u64,
        mv: impl FnOnce(&mut RecencyMap<K, V>, &mut RecencyMap<K, V>, usize),
    ) -> Charge {
        let (left, right) = self.segments.split_at_mut(i);
        let prev = &mut left[i - 1];
        let next = &mut right[0];
        let ((), touched) = tcost::metered(|| mv(prev, next, count));
        // The receiving segment grows to its size + count during the insert
        // half of the transfer, so the bound covers the final size.
        tcost::transfer_charge(touched, count as u64, larger + count as u64, tree_fanout())
    }

    /// Total capacity of segments `S[0..i-1]` (saturating).
    fn prefix_capacity(i: usize) -> u64 {
        (0..i).fold(0u64, |acc, j| {
            acc.saturating_add(segment_capacity(j as u32))
        })
    }

    /// Total size of segments `S[0..i-1]`.
    fn prefix_size(&self, i: usize) -> u64 {
        self.segments[..i].iter().map(|s| s.len() as u64).sum()
    }

    /// Balances the boundary between `S[i-1]` and `S[i]` so that the prefix
    /// `S[0..i-1]` is exactly full, or `S[i]` is empty.  Returns the charge.
    fn balance_boundary(&mut self, i: usize) -> Charge {
        let target = Self::prefix_capacity(i);
        let current = self.prefix_size(i);
        let larger = self.segments[i - 1].len().max(self.segments[i].len()) as u64;
        if current > target {
            let x = (current - target) as usize;
            self.metered_transfer(i, x, larger, |prev, next, x| {
                let moved = prev.take_back(x);
                next.push_front_batch(moved);
            })
        } else if current < target && !self.segments[i].is_empty() {
            let x = ((target - current) as usize).min(self.segments[i].len());
            self.metered_transfer(i, x, larger, |prev, next, x| {
                let moved = next.take_front(x);
                prev.push_back_batch(moved);
            })
        } else {
            Charge::ZERO
        }
    }

    /// Restores the capacity invariant for all prefixes up to segment `k`
    /// (the step-3 restoration of Section 6.1).
    fn restore_prefixes(&mut self, k: usize) -> Charge {
        let mut cost = Charge::ZERO;
        for i in (1..=k.min(self.segments.len().saturating_sub(1))).rev() {
            cost += self.balance_boundary(i);
        }
        cost
    }

    /// Restores the capacity invariant across the whole structure.
    fn restore_all(&mut self) -> Charge {
        let last = self.segments.len().saturating_sub(1);
        self.restore_prefixes(last)
    }

    /// Appends net insertions at the back of the terminal segment, carving new
    /// terminal segments when it overflows (end of Section 6.1).
    fn append_inserts(&mut self, items: Vec<(K, V)>) -> Charge {
        let mut cost = Charge::ZERO;
        if self.segments.is_empty() {
            self.segments.push(RecencyMap::new());
        }
        self.size += items.len();
        let mut l = self.segments.len() - 1;
        let items_len = items.len() as u64;
        // Insert bound on the final size (the tree grows during the batch).
        let seg_len = self.segments[l].len() as u64 + items_len;
        let seg = &mut self.segments[l];
        let ((), touched) = tcost::metered(|| seg.push_back_batch(items));
        cost += tcost::batch_op_charge(touched, items_len, seg_len, tree_fanout());
        while self.segments[l].len() as u64 > segment_capacity(l as u32) {
            let excess = (self.segments[l].len() as u64 - segment_capacity(l as u32)) as usize;
            let larger = self.segments[l].len() as u64;
            self.segments.push(RecencyMap::new());
            l += 1;
            cost += self.metered_transfer(l, excess, larger, |prev, next, x| {
                let moved = prev.take_back(x);
                next.push_front_batch(moved);
            });
        }
        cost
    }

    fn drop_empty_tail(&mut self) {
        while matches!(self.segments.last(), Some(s) if s.is_empty()) {
            self.segments.pop();
        }
    }

    /// Checks the structural invariants: internal tree consistency, cached
    /// size, and that every segment except the terminal one is exactly full.
    pub fn check_invariants(&self)
    where
        K: std::fmt::Debug,
    {
        let mut total = 0usize;
        for (k, seg) in self.segments.iter().enumerate() {
            seg.check_invariants();
            total += seg.len();
            if k + 1 < self.segments.len() {
                assert_eq!(
                    seg.len() as u64,
                    segment_capacity(k as u32),
                    "segment {k} must be exactly full"
                );
            } else {
                assert!(seg.len() as u64 <= segment_capacity(k as u32));
            }
        }
        assert_eq!(total, self.size, "cached size out of date");
    }

    /// The items of the map in working-set order (segment order, recency
    /// within each segment) — the abstract list `R` of Lemma 6.
    pub fn items_in_working_set_order(&self) -> Vec<K> {
        let mut out = Vec::with_capacity(self.size);
        for seg in &self.segments {
            out.extend(seg.items_in_recency_order().into_iter().map(|(k, _)| k));
        }
        out
    }

    /// The full contents, segment by segment, each segment's items in
    /// recency order (most recent first) — everything a checkpoint needs:
    /// rebuilding each segment from its item list reproduces both the key
    /// set and the working-set order exactly.  Meant to be taken at a batch
    /// boundary (the only observable state for `wsm-wal`).
    pub fn snapshot_segments(&self) -> Vec<Vec<(K, V)>> {
        self.segments
            .iter()
            .map(RecencyMap::items_in_recency_order)
            .collect()
    }

    /// Rebuilds the map's contents from a [`M1::snapshot_segments`] image.
    /// Only valid on a fresh map (cost meters and batch logs restart from
    /// zero — durability restores *state*, not accounting history).
    pub fn restore_segments(&mut self, segments: Vec<Vec<(K, V)>>) {
        assert!(
            self.size == 0 && self.segments.is_empty() && self.pending() == 0,
            "restore_segments requires a fresh map"
        );
        self.size = segments.iter().map(Vec::len).sum();
        self.segments = segments
            .into_iter()
            .map(RecencyMap::from_recency_items)
            .collect();
        self.drop_empty_tail();
    }

    /// Convenience: runs a sequence of untagged operations as one input batch
    /// and returns the results in operation order.
    pub fn run_ops(&mut self, ops: Vec<Operation<K, V>>) -> Vec<OpResult<V>> {
        let base = self.next_id;
        let batch: Vec<TaggedOp<K, V>> = ops
            .into_iter()
            .enumerate()
            .map(|(i, op)| TaggedOp {
                id: base + i as OpId,
                op,
            })
            .collect();
        self.next_id = base + batch.len() as OpId;
        let n = batch.len();
        self.enqueue_batch(batch);
        let mut results: Vec<Option<OpResult<V>>> = vec![None; n];
        for (id, r) in self.process_all() {
            let idx = (id - base) as usize;
            results[idx] = Some(r);
        }
        results
            .into_iter()
            .map(|r| r.expect("every operation produces a result"))
            .collect()
    }
}

impl<K: Ord + Clone + Send + Sync, V: Clone> BatchedMap<K, V> for M1<K, V> {
    fn run_batch(&mut self, batch: Vec<TaggedOp<K, V>>) -> (Vec<(OpId, OpResult<V>)>, Cost) {
        let before = self.meter.total();
        self.enqueue_batch(batch);
        let mut results = Vec::new();
        while let Some((rs, _)) = self.process_next_batch() {
            results.extend(rs);
        }
        let after = self.meter.total();
        (
            results,
            Cost {
                work: after.work - before.work,
                span: after.span - before.span,
            },
        )
    }

    fn len(&self) -> usize {
        self.size
    }

    fn effective_work(&self) -> u64 {
        self.meter.work()
    }

    fn effective_span(&self) -> u64 {
        self.meter.span()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn xorshift(state: &mut u64) -> u64 {
        *state ^= *state << 13;
        *state ^= *state >> 7;
        *state ^= *state << 17;
        *state
    }

    fn search(k: u64) -> Operation<u64, u64> {
        Operation::Search(k)
    }
    fn insert(k: u64, v: u64) -> Operation<u64, u64> {
        Operation::Insert(k, v)
    }
    fn delete(k: u64) -> Operation<u64, u64> {
        Operation::Delete(k)
    }

    #[test]
    fn basic_insert_search_delete() {
        let mut m = M1::new(4);
        let results = m.run_ops(vec![insert(1, 10), insert(2, 20), insert(3, 30)]);
        assert!(results.iter().all(|r| matches!(r, OpResult::Insert(None))));
        assert_eq!(m.size(), 3);
        m.check_invariants();

        let results = m.run_ops(vec![search(1), search(2), search(9)]);
        assert_eq!(results[0], OpResult::Search(Some(10)));
        assert_eq!(results[1], OpResult::Search(Some(20)));
        assert_eq!(results[2], OpResult::Search(None));

        let results = m.run_ops(vec![delete(2), search(2)]);
        assert_eq!(results[0], OpResult::Delete(Some(20)));
        assert_eq!(results[1], OpResult::Search(None));
        assert_eq!(m.size(), 2);
        m.check_invariants();
    }

    #[test]
    fn duplicate_operations_in_one_batch_combine() {
        let mut m = M1::new(4);
        m.run_ops((0..100u64).map(|i| insert(i, i)).collect());
        m.check_invariants();
        // A batch of many searches for the same key plus one insert-after.
        let ops: Vec<Operation<u64, u64>> =
            (0..50).map(|_| search(7)).chain([insert(7, 700)]).collect();
        let results = m.run_ops(ops);
        assert!(results[..50]
            .iter()
            .all(|r| *r == OpResult::Search(Some(7))));
        assert_eq!(results[50], OpResult::Insert(Some(7)));
        assert_eq!(m.peek(&7), Some(&700));
        m.check_invariants();
    }

    #[test]
    fn group_ordering_within_batch_is_linearized() {
        let mut m = M1::new(4);
        // In one batch: search (absent), insert, search (present), delete,
        // search (absent again).
        let results = m.run_ops(vec![
            search(5),
            insert(5, 50),
            search(5),
            delete(5),
            search(5),
        ]);
        assert_eq!(results[0], OpResult::Search(None));
        assert_eq!(results[1], OpResult::Insert(None));
        assert_eq!(results[2], OpResult::Search(Some(50)));
        assert_eq!(results[3], OpResult::Delete(Some(50)));
        assert_eq!(results[4], OpResult::Search(None));
        assert_eq!(m.size(), 0);
    }

    #[test]
    fn matches_btreemap_model_on_random_batches() {
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        let mut m = M1::new(4);
        let mut state = 0xC0FFEE;
        for _ in 0..40 {
            let b = 1 + (xorshift(&mut state) % 100) as usize;
            let mut ops = Vec::with_capacity(b);
            for _ in 0..b {
                let key = xorshift(&mut state) % 64;
                match xorshift(&mut state) % 4 {
                    0 | 1 => ops.push(search(key)),
                    2 => ops.push(insert(key, xorshift(&mut state))),
                    _ => ops.push(delete(key)),
                }
            }
            // Apply to the model in the same (arrival) order — M1 linearizes
            // each batch in arrival order per key, and keys are independent.
            let expected: Vec<OpResult<u64>> = ops
                .iter()
                .map(|op| match op {
                    Operation::Search(k) => OpResult::Search(model.get(k).copied()),
                    Operation::Insert(k, v) => OpResult::Insert(model.insert(*k, *v)),
                    Operation::Delete(k) => OpResult::Delete(model.remove(k)),
                })
                .collect();
            let got = m.run_ops(ops);
            assert_eq!(got, expected);
            assert_eq!(m.size(), model.len());
            m.check_invariants();
        }
    }

    #[test]
    fn hot_batches_cost_less_than_cold_batches() {
        // Theorem 12 shape: a batch of searches for recently-accessed items
        // costs far less than a batch of searches for long-untouched items.
        let n = 1 << 13;
        let mut m = M1::new(8);
        m.run_ops((0..n).map(|i| insert(i, i)).collect());
        // Touch a small hot set so it sits at the front.
        let hot: Vec<u64> = (0..16u64).collect();
        m.run_ops(hot.iter().map(|&k| search(k)).collect());
        let work_before = m.effective_work();
        m.run_ops(hot.iter().map(|&k| search(k)).collect());
        let hot_work = m.effective_work() - work_before;

        // Cold keys: spread across the last segment.
        let cold: Vec<u64> = (0..16u64).map(|i| n - 1 - i * 50).collect();
        let work_before = m.effective_work();
        m.run_ops(cold.iter().map(|&k| search(k)).collect());
        let cold_work = m.effective_work() - work_before;
        // Wide fanouts flatten every segment tree, so the absolute depth gap
        // between front and back segments shrinks with log_2(min_children).
        // Keep the strict 2x margin on the analytic B=2 instantiation and
        // require a plain gap elsewhere.
        if wsm_twothree::default_fanout() == 2 {
            assert!(
                hot_work * 2 < cold_work,
                "hot batch work {hot_work} should be well below cold batch work {cold_work}"
            );
        } else {
            assert!(
                hot_work < cold_work,
                "hot batch work {hot_work} should be below cold batch work {cold_work}"
            );
        }
    }

    #[test]
    fn repeated_hot_key_batch_is_linear_not_blogn() {
        // The Section 3 motivation: b searches for one item must cost
        // O(log n + b), not Ω(b log n).
        let n: u64 = 1 << 14;
        let b: usize = 1 << 10;
        let mut m = M1::new(8);
        m.run_ops((0..n).map(|i| insert(i, i)).collect());
        let work_before = m.effective_work();
        m.run_ops(std::iter::repeat_n(search(n / 2), b).collect());
        let dup_work = m.effective_work() - work_before;
        let log_n = (n as f64).log2();
        assert!(
            (dup_work as f64) < 40.0 * (log_n + b as f64),
            "duplicate batch work {dup_work} is not O(log n + b)"
        );
        assert!(
            (dup_work as f64) < 0.8 * (b as f64) * log_n,
            "duplicate batch work {dup_work} looks like Ω(b log n)"
        );
    }

    #[test]
    fn batches_flow_through_feed_buffer_in_order() {
        let mut m = M1::new(2);
        // Enqueue two separate input batches before processing; the first
        // batch's insert must be visible to the second batch's search.
        let id1 = m.submit(insert(1, 11));
        let ops: Vec<TaggedOp<u64, u64>> = vec![TaggedOp {
            id: 1000,
            op: search(1),
        }];
        // Process the staged insert first, then the search batch.
        let first: BTreeMap<OpId, OpResult<u64>> = m.process_all().into_iter().collect();
        assert_eq!(first[&id1], OpResult::Insert(None));
        m.enqueue_batch(ops);
        let second: BTreeMap<OpId, OpResult<u64>> = m.process_all().into_iter().collect();
        assert_eq!(second[&1000], OpResult::Search(Some(11)));
    }

    #[test]
    fn cut_batches_are_bounded_by_p_squared_times_logn() {
        let mut m = M1::new(4);
        // One huge input batch gets cut into pieces of at most
        // ceil(log n / p) * p^2 operations.
        let ops: Vec<Operation<u64, u64>> = (0..5000u64).map(|i| insert(i, i)).collect();
        m.run_ops(ops);
        let max_batch = m.batch_log().iter().map(|s| s.batch_size).max().unwrap();
        let bound = 16 * ((5000f64).log2().ceil() as usize / 4 + 1);
        assert!(
            max_batch <= bound,
            "cut batch of {max_batch} exceeds p^2 * ceil(log n / p) = {bound}"
        );
        assert!(
            m.batch_log().len() > 10,
            "large input must span many cut batches"
        );
    }

    #[test]
    fn effective_work_tracks_working_set_bound() {
        use wsm_model::{working_set_bound, MapOpKind};
        // Zipf-ish skewed accesses: W_L is small; M1's work must stay within a
        // constant factor of it.
        let n: u64 = 1 << 12;
        let mut m = M1::new(8);
        let mut state = 7;
        m.run_ops((0..n).map(|i| insert(i, i)).collect());
        let mut ops = Vec::new();
        let mut kinds = Vec::new();
        for i in 0..n {
            kinds.push(MapOpKind::Insert(i));
        }
        for _ in 0..(4 * n) {
            // 90% of accesses hit a set of 8 keys.
            let key = if xorshift(&mut state) % 10 < 9 {
                xorshift(&mut state) % 8
            } else {
                xorshift(&mut state) % n
            };
            ops.push(search(key));
            kinds.push(MapOpKind::Search(key));
        }
        let work_before = m.effective_work();
        m.run_ops(ops);
        let measured = m.effective_work() - work_before;
        let wl = working_set_bound(&kinds) as f64;
        assert!(
            (measured as f64) < 60.0 * wl,
            "M1 work {measured} not within constant factor of W_L {wl}"
        );
    }

    #[test]
    fn snapshot_restore_round_trip_preserves_state_and_order() {
        let mut m = M1::new(4);
        m.run_ops((0..500u64).map(|i| insert(i, i * 2)).collect());
        // Touch a hot set so the working-set order is non-trivial.
        m.run_ops([3u64, 99, 3, 250, 7].iter().map(|&k| search(k)).collect());
        m.run_ops(vec![delete(10), delete(499)]);
        let image = m.snapshot_segments();
        let mut r = M1::new(4);
        r.restore_segments(image);
        r.check_invariants();
        assert_eq!(r.size(), m.size());
        assert_eq!(r.segment_sizes(), m.segment_sizes());
        assert_eq!(
            r.items_in_working_set_order(),
            m.items_in_working_set_order()
        );
        // The restored map keeps answering correctly.
        let results = r.run_ops(vec![search(3), search(10), search(250)]);
        assert_eq!(results[0], OpResult::Search(Some(6)));
        assert_eq!(results[1], OpResult::Search(None));
        assert_eq!(results[2], OpResult::Search(Some(500)));
        r.check_invariants();
        // Empty round trip.
        let mut e = M1::<u64, u64>::new(4);
        e.restore_segments(M1::<u64, u64>::new(4).snapshot_segments());
        assert_eq!(e.size(), 0);
    }

    #[test]
    fn empty_batches_and_empty_map() {
        let mut m: M1<u64, u64> = M1::new(4);
        assert!(m.process_next_batch().is_none());
        let results = m.run_ops(vec![search(1), delete(2)]);
        assert_eq!(results[0], OpResult::Search(None));
        assert_eq!(results[1], OpResult::Delete(None));
        assert_eq!(m.size(), 0);
        assert_eq!(m.num_segments(), 0);
    }
}
