//! The feed buffer and bunches (Section 6.1).
//!
//! The feed buffer decouples the (arbitrarily large) input batches flushed
//! from the parallel buffer from the (size-controlled) *cut batches* the map
//! actually processes.  It is a queue of *bunches*, each of size `p²` except
//! possibly the last.  A bunch supports `O(1)` addition of a batch and
//! `O(log b)`-span conversion to a batch of size `b` (the paper implements it
//! as a complete binary tree of batches threaded with per-level lists; a
//! vector of batches has the same work profile, see DESIGN.md).

use wsm_model::{ceil_log2, Cost};

/// A set of batches supporting `O(1)` addition of a batch and conversion to a
/// single batch.
#[derive(Clone, Debug, Default)]
pub struct Bunch<T> {
    batches: Vec<Vec<T>>,
    len: usize,
}

impl<T> Bunch<T> {
    /// Creates an empty bunch.
    pub fn new() -> Self {
        Bunch {
            batches: Vec::new(),
            len: 0,
        }
    }

    /// Number of operations across all contained batches.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the bunch holds no operations.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Adds a batch in `O(1)`.
    pub fn add_batch(&mut self, batch: Vec<T>) {
        self.len += batch.len();
        if !batch.is_empty() {
            self.batches.push(batch);
        }
    }

    /// Converts the bunch into a single batch; `O(b)` work, `O(log b)` span
    /// (returned as the second component).
    pub fn into_batch(mut self) -> (Vec<T>, Cost) {
        let b = self.len as u64;
        let out = if self.batches.len() == 1 {
            // The common single-input case: hand the batch back as-is.
            self.batches.pop().expect("one batch")
        } else {
            let mut out = Vec::with_capacity(self.len);
            for batch in self.batches {
                out.extend(batch);
            }
            out
        };
        let span = u64::from(ceil_log2(b + 1)) + 1;
        let cost = Cost::new(b.max(span), span);
        (out, cost)
    }
}

/// The feed buffer: a FIFO queue of bunches, each of capacity `bunch_capacity`
/// (`p²` in the paper) except possibly the last.
#[derive(Clone, Debug)]
pub struct FeedBuffer<T> {
    bunches: std::collections::VecDeque<Bunch<T>>,
    bunch_capacity: usize,
    len: usize,
}

impl<T> FeedBuffer<T> {
    /// Creates an empty feed buffer with the given bunch capacity (`p²`).
    pub fn new(bunch_capacity: usize) -> Self {
        assert!(bunch_capacity > 0, "bunch capacity must be positive");
        FeedBuffer {
            bunches: std::collections::VecDeque::new(),
            bunch_capacity,
            len: 0,
        }
    }

    /// Bunch capacity (`p²`).
    pub fn bunch_capacity(&self) -> usize {
        self.bunch_capacity
    }

    /// Total number of buffered operations.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if no operations are buffered.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Number of bunches currently queued.
    pub fn num_bunches(&self) -> usize {
        self.bunches.len()
    }

    /// Cuts an input batch into small batches and appends them (Section 6.1):
    /// the first small batch tops up the last bunch to capacity, the rest are
    /// appended as new bunches of exactly `bunch_capacity` (except the last).
    /// Returns the cost charged (`O(1)` per operation, `O(log b)` span).
    pub fn push_input(&mut self, mut input: Vec<T>) -> Cost {
        let b = input.len() as u64;
        if input.is_empty() {
            return Cost::ZERO;
        }
        self.len += input.len();
        // Top up the last bunch.
        let room = match self.bunches.back() {
            Some(last) if last.len() < self.bunch_capacity => self.bunch_capacity - last.len(),
            _ => 0,
        };
        if room > 0 {
            let take = room.min(input.len());
            let rest = input.split_off(take);
            self.bunches
                .back_mut()
                .expect("checked non-empty")
                .add_batch(input);
            input = rest;
        }
        // Append the remainder as fresh bunches.
        while !input.is_empty() {
            let take = self.bunch_capacity.min(input.len());
            let rest = input.split_off(take);
            let mut bunch = Bunch::new();
            bunch.add_batch(input);
            self.bunches.push_back(bunch);
            input = rest;
        }
        let span = u64::from(ceil_log2(b + 1)) + 1;
        Cost::new(b.max(span), span)
    }

    /// Removes up to `count` bunches from the front and merges them into one
    /// cut batch.  Returns the batch and the cost of forming it.
    pub fn pop_cut_batch(&mut self, count: usize) -> (Vec<T>, Cost) {
        let mut out = Vec::new();
        let mut cost = Cost::ZERO;
        for _ in 0..count {
            let Some(bunch) = self.bunches.pop_front() else {
                break;
            };
            let (batch, c) = bunch.into_batch();
            cost = cost.par(c);
            if out.is_empty() {
                out = batch; // common case: one bunch, no copy
            } else {
                out.extend(batch);
            }
        }
        self.len -= out.len();
        // Merging `count` converted bunches is a parallel concatenation.
        let merge_span = u64::from(ceil_log2(count.max(1) as u64)) + 1;
        let merge = Cost::new((out.len() as u64).max(merge_span), merge_span);
        (out, cost.then(merge))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bunch_accumulates_batches() {
        let mut b = Bunch::new();
        assert!(b.is_empty());
        b.add_batch(vec![1, 2, 3]);
        b.add_batch(Vec::new());
        b.add_batch(vec![4]);
        assert_eq!(b.len(), 4);
        let (batch, cost) = b.into_batch();
        assert_eq!(batch, vec![1, 2, 3, 4]);
        assert!(cost.span <= 4);
    }

    #[test]
    fn feed_buffer_cuts_into_bunches_of_capacity() {
        let mut f: FeedBuffer<u64> = FeedBuffer::new(4);
        f.push_input((0..10).collect());
        // 10 items with capacity 4: bunches of 4, 4, 2.
        assert_eq!(f.num_bunches(), 3);
        assert_eq!(f.len(), 10);
        // Pushing 3 more: first tops up the last bunch (2 -> 4), rest forms a
        // new bunch of 1.
        f.push_input((10..13).collect());
        assert_eq!(f.num_bunches(), 4);
        assert_eq!(f.len(), 13);
    }

    #[test]
    fn pop_cut_batch_merges_in_fifo_order() {
        let mut f: FeedBuffer<u64> = FeedBuffer::new(3);
        f.push_input((0..8).collect());
        let (batch, _) = f.pop_cut_batch(2);
        assert_eq!(batch, vec![0, 1, 2, 3, 4, 5]);
        assert_eq!(f.len(), 2);
        let (batch, _) = f.pop_cut_batch(5);
        assert_eq!(batch, vec![6, 7]);
        assert!(f.is_empty());
        let (batch, _) = f.pop_cut_batch(1);
        assert!(batch.is_empty());
    }

    #[test]
    fn empty_push_is_free() {
        let mut f: FeedBuffer<u64> = FeedBuffer::new(3);
        assert_eq!(f.push_input(Vec::new()), Cost::ZERO);
        assert!(f.is_empty());
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn zero_capacity_panics() {
        let _: FeedBuffer<u64> = FeedBuffer::new(0);
    }
}
