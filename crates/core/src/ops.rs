//! Map operations, group-operations and result types shared by M1 and M2.
//!
//! A *group-operation* (Section 6.1) is the combination of every operation of
//! a batch that touches the same item: the group is treated as one operation
//! whose effect is that of applying its members in order.  Combining is what
//! lets a batch of `b` searches for one hot item cost `O(log n + b)` instead
//! of `Ω(b log n)` (Section 3).

use wsm_model::Cost;

/// Identifier that ties a result back to the call that produced it.
pub type OpId = u64;

/// A map operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Operation<K, V> {
    /// Search for (access) a key.
    Search(K),
    /// Insert or update a key.
    Insert(K, V),
    /// Delete a key.
    Delete(K),
}

impl<K, V> Operation<K, V> {
    /// The key this operation touches.
    pub fn key(&self) -> &K {
        match self {
            Operation::Search(k) | Operation::Insert(k, _) | Operation::Delete(k) => k,
        }
    }

    /// True for searches.
    pub fn is_search(&self) -> bool {
        matches!(self, Operation::Search(_))
    }
}

/// The result of a map operation.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum OpResult<V> {
    /// Result of a search: the value if the key was present.
    Search(Option<V>),
    /// Result of an insert: the previously stored value, if any.
    Insert(Option<V>),
    /// Result of a delete: the removed value, if any.
    Delete(Option<V>),
}

impl<V> OpResult<V> {
    /// The value carried by the result, whatever the operation kind.
    pub fn value(&self) -> Option<&V> {
        match self {
            OpResult::Search(v) | OpResult::Insert(v) | OpResult::Delete(v) => v.as_ref(),
        }
    }

    /// True if the operation found / affected an existing item.
    pub fn was_present(&self) -> bool {
        self.value().is_some()
    }
}

/// An operation tagged with the identifier of its originating call.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TaggedOp<K, V> {
    /// Identifier used to route the result back to the caller.
    pub id: OpId,
    /// The operation itself.
    pub op: Operation<K, V>,
}

/// A group-operation: every operation of one batch that touches `key`, in
/// arrival order.
#[derive(Clone, Debug)]
pub struct GroupOp<K, V> {
    /// The common key.
    pub key: K,
    /// The member operations in their original (linearization) order.
    pub ops: Vec<TaggedOp<K, V>>,
}

impl<K: Clone, V: Clone> GroupOp<K, V> {
    /// Number of member operations.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// True if the group has no member operations (never produced by the
    /// batching pipeline, but kept total for safety).
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// True if every member is a search (the group cannot change the map).
    pub fn is_read_only(&self) -> bool {
        self.ops.iter().all(|t| t.op.is_search())
    }

    /// Resolves the whole group given the value currently stored under the
    /// key (`None` if absent): returns one result per member operation plus
    /// the final value the map should hold for the key (`None` = absent).
    ///
    /// This is the "single operation with the same effect as the whole group
    /// of operations in the given order" of Section 6.1.
    pub fn resolve(&self, current: Option<V>) -> (Vec<(OpId, OpResult<V>)>, Option<V>) {
        let mut state = current;
        let mut results = Vec::with_capacity(self.ops.len());
        for tagged in &self.ops {
            match &tagged.op {
                Operation::Search(_) => {
                    results.push((tagged.id, OpResult::Search(state.clone())));
                }
                Operation::Insert(_, v) => {
                    let prev = state.replace(v.clone());
                    results.push((tagged.id, OpResult::Insert(prev)));
                }
                Operation::Delete(_) => {
                    let prev = state.take();
                    results.push((tagged.id, OpResult::Delete(prev)));
                }
            }
        }
        (results, state)
    }
}

/// A map that consumes whole batches of tagged operations.
///
/// Both M1 and M2 implement this; the concurrent front-end
/// ([`crate::ConcurrentMap`]) and the experiment harness are written against
/// it.  The returned results may be in any order (they are routed by
/// [`OpId`]); the cost is the effective work/span charged for the batch.
pub trait BatchedMap<K, V> {
    /// Executes a batch of operations, returning the per-call results and the
    /// effective cost charged for the batch.
    fn run_batch(&mut self, batch: Vec<TaggedOp<K, V>>) -> (Vec<(OpId, OpResult<V>)>, Cost);

    /// Number of items currently stored.
    fn len(&self) -> usize;

    /// True if the map is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total effective work charged since construction.
    fn effective_work(&self) -> u64;

    /// Total effective span charged since construction.
    fn effective_span(&self) -> u64;

    /// Number of background maintenance runs executed since construction.
    /// Defaults to 0: only maps with a dedicated maintenance cascade (M2's
    /// token-free hole-refill runs) override this.  Exposed on the trait so
    /// generic front-ends (`ConcurrentMap`, the `wsm-shard` router's
    /// per-shard stats) can report it without knowing the concrete map.
    fn maintenance_runs(&self) -> u64 {
        0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn group(ops: Vec<Operation<u64, u64>>) -> GroupOp<u64, u64> {
        GroupOp {
            key: *ops[0].key(),
            ops: ops
                .into_iter()
                .enumerate()
                .map(|(i, op)| TaggedOp { id: i as OpId, op })
                .collect(),
        }
    }

    #[test]
    fn resolve_search_only_group() {
        let g = group(vec![Operation::Search(5), Operation::Search(5)]);
        let (results, fin) = g.resolve(Some(7));
        assert_eq!(fin, Some(7));
        assert!(results
            .iter()
            .all(|(_, r)| matches!(r, OpResult::Search(Some(7)))));
        let (results, fin) = g.resolve(None);
        assert_eq!(fin, None);
        assert!(results
            .iter()
            .all(|(_, r)| matches!(r, OpResult::Search(None))));
        assert!(g.is_read_only());
    }

    #[test]
    fn resolve_insert_then_search() {
        let g = group(vec![Operation::Insert(3, 30), Operation::Search(3)]);
        let (results, fin) = g.resolve(None);
        assert_eq!(fin, Some(30));
        assert_eq!(results[0].1, OpResult::Insert(None));
        assert_eq!(results[1].1, OpResult::Search(Some(30)));
    }

    #[test]
    fn resolve_delete_then_insert() {
        let g = group(vec![
            Operation::Delete(3),
            Operation::Search(3),
            Operation::Insert(3, 99),
        ]);
        let (results, fin) = g.resolve(Some(1));
        assert_eq!(fin, Some(99));
        assert_eq!(results[0].1, OpResult::Delete(Some(1)));
        assert_eq!(results[1].1, OpResult::Search(None));
        assert_eq!(results[2].1, OpResult::Insert(None));
    }

    #[test]
    fn resolve_net_delete() {
        let g = group(vec![Operation::Insert(3, 1), Operation::Delete(3)]);
        let (_, fin) = g.resolve(Some(0));
        assert_eq!(fin, None);
    }

    #[test]
    fn op_result_accessors() {
        let r: OpResult<u64> = OpResult::Search(Some(4));
        assert!(r.was_present());
        assert_eq!(r.value(), Some(&4));
        let r: OpResult<u64> = OpResult::Delete(None);
        assert!(!r.was_present());
    }
}
