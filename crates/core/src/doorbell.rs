//! Generation-counting park/notify doorbell for the combiner hand-off.
//!
//! A [`Doorbell`] is a generation-counting condvar: waiters record the
//! generation they observed and sleep until it moves past it.  Ringing after
//! every combiner activation makes lost wake-ups impossible: any activation
//! that could have consumed a waiter's operation (or raced with its
//! activation attempt) finishes with a ring that happens after the waiter
//! captured its generation.
//!
//! The generation itself is an atomic so the caller-side fast path
//! ([`Doorbell::current`]) is a plain load; the mutex exists only to pair
//! sleeps with rings (the ring bumps the generation *under the mutex*, which
//! is what makes a concurrent [`Doorbell::wait_past`] either see the new
//! generation or get the notification).
//!
//! The protocol is model-checked end to end in
//! `crates/check/tests/model_doorbell.rs` (no missed wake-up, single
//! combiner), and the intentionally broken variant that bumps the generation
//! *outside* the gate mutex — PR 2's original bug — is a seeded fixture that
//! `wsm-check` must catch (`wsm_check::fixtures::BuggyDoorbell`).  The
//! orderings below are the weakest the model accepts; see
//! `docs/ORDERINGS.md`.

use wsm_check::sync::{AtomicU64, Condvar, Mutex, Ordering};

/// A generation-counting condvar (see the module docs for the protocol).
#[derive(Default)]
pub struct Doorbell {
    generation: AtomicU64,
    gate: Mutex<()>,
    cv: Condvar,
}

impl Doorbell {
    /// Creates a doorbell at generation zero.
    pub const fn new() -> Self {
        Doorbell {
            generation: AtomicU64::new(0),
            gate: Mutex::new(()),
            cv: Condvar::new(),
        }
    }

    /// The current generation.  Capture this *before* attempting the
    /// activation whose completion the subsequent [`Doorbell::wait_past`]
    /// should bound.
    pub fn current(&self) -> u64 {
        // ord: Relaxed — the generation is a wake-up *counter*, not a data
        // publication: waiters re-check real state (their result slot, the
        // activation) after every wake, and the sleep/ring pairing that
        // prevents lost wake-ups is carried entirely by the gate mutex in
        // ring/wait_past (model: tests/model_doorbell.rs).
        self.generation.load(Ordering::Relaxed)
    }

    /// Bumps the generation (under the gate mutex) and wakes every waiter.
    ///
    /// The bump MUST happen while the gate is held: a waiter inside
    /// [`Doorbell::wait_past`] holds the gate from its re-check of
    /// [`Doorbell::current`] until it is parked on the condvar, so a ring
    /// either happens before the re-check (the waiter sees the new
    /// generation and returns) or after the park (the notification wakes
    /// it).  Bumping outside the gate re-introduces the missed-wakeup
    /// window fixed in PR 2 — kept alive as the `BuggyDoorbell` fixture.
    pub fn ring(&self) {
        let gate = self.gate.lock();
        // ord: Relaxed — the gate mutex acquired above synchronizes this
        // RMW with every waiter's re-check; no payload rides on the counter
        // (model: tests/model_doorbell.rs).
        self.generation.fetch_add(1, Ordering::Relaxed);
        drop(gate);
        self.cv.notify_all();
    }

    /// Parks until the generation moves past `seen`.
    pub fn wait_past(&self, seen: u64) {
        let mut gate = self.gate.lock();
        while self.current() == seen {
            self.cv.wait(&mut gate);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn ring_advances_generation() {
        let d = Doorbell::new();
        let g = d.current();
        d.ring();
        assert_eq!(d.current(), g + 1);
    }

    #[test]
    fn wait_past_returns_after_ring() {
        let d = Arc::new(Doorbell::new());
        let seen = d.current();
        let waiter = {
            let d = Arc::clone(&d);
            std::thread::spawn(move || d.wait_past(seen))
        };
        // The ring is pairwise-safe no matter when the waiter parks.
        d.ring();
        waiter.join().unwrap();
        assert!(d.current() > seen);
    }

    #[test]
    fn wait_past_old_generation_returns_immediately() {
        let d = Doorbell::new();
        d.ring();
        d.ring();
        // Generation already moved past 0: must not block.
        d.wait_past(0);
    }
}
