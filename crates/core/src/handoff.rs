//! Sequence-stamped result cells: the slot-free hand-off between a combiner
//! and a waiting caller.
//!
//! Every [`crate::ConcurrentMap`] call deposits its operation together with a
//! [`ResultCell`].  The combiner fills the cell; the caller takes from it.
//! The cell is *sequence-stamped* in the style of the Vyukov MPSC ring cells
//! (`wsm_sync::MpscShard`): a single atomic stamp moves `EMPTY → FILLED`
//! exactly once, and the payload mutex is only ever locked on the two sides
//! of that transition — by the combiner before the stamp is released, and by
//! the caller after it is acquired — so the mutex is uncontended by
//! construction and the *waiting* caller's probe is a read-only atomic load
//! on the cell it owns, not a lock acquisition.
//!
//! This enables the `WSM_HANDOFF=cell` waiting mode: instead of parking on
//! the map's shared [`crate::doorbell::Doorbell`] (one futex word that every
//! waiter of every batch contends on, and whose park/wake round trip costs
//! more than a small combine cycle), a caller spins with yields on its own
//! cell's stamp.  The doorbell mode keeps using the same cell — its fast-path
//! probe benefits from the stamp too — and still parks after the spin window.
//!
//! The cell also carries the third, *await-able* hand-off
//! (`WSM_HANDOFF=waker`): an async caller registers its task
//! [`Waker`](std::task::Waker) with [`ResultCell::set_waker`], and
//! [`ResultCell::fill`] wakes it after publishing the stamp.  The
//! registration/fill race is closed by the waker mutex: `set_waker` stores
//! the waker and then re-probes the stamp, so either `fill`'s take (ordered
//! after its Release stamp store by the same mutex) sees the waker and wakes
//! it, or the re-probe sees `FILLED` and the caller harvests immediately —
//! a wake can never be lost between the two.  See `docs/ORDERINGS.md`
//! ("waker hand-off") for the full happens-before argument.
//!
//! Model harness: `crates/check/tests/model_handoff.rs` drives this cell
//! through the full combiner election under the deterministic scheduler (and
//! its TSO store-buffer mode), asserting delivery is exactly-once, the
//! spin-only waiting loop cannot lose a result, and the waker registration
//! race cannot lose a wake.  See `docs/ORDERINGS.md`.

use std::task::Waker;
use wsm_check::sync::{AtomicUsize, Mutex, Ordering};

/// Stamp value of a cell whose result has not been deposited yet.
const EMPTY: usize = 0;
/// Stamp value of a cell whose result is deposited and visible.
const FILLED: usize = 1;

/// A single-use result cell: stamped `EMPTY → FILLED` by the combiner when
/// the payload is in place; probed (read-only) and then emptied by the one
/// caller that owns it.
pub struct ResultCell<T> {
    stamp: AtomicUsize,
    value: Mutex<Option<T>>,
    /// Waker of an async caller awaiting this cell (`WSM_HANDOFF=waker`);
    /// empty for blocking callers.  Taken (and woken) at most once per
    /// registration by [`ResultCell::fill`].
    waker: Mutex<Option<Waker>>,
}

impl<T> Default for ResultCell<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> ResultCell<T> {
    /// An empty cell.
    pub fn new() -> Self {
        ResultCell {
            stamp: AtomicUsize::new(EMPTY),
            value: Mutex::new(None),
            waker: Mutex::new(None),
        }
    }

    /// Deposits the result and publishes it.  Called once, by the combiner
    /// that executed the cell's operation.  If an async caller registered a
    /// waker, it is woken *after* the stamp is released, so the woken task's
    /// probe observes `FILLED`.
    pub fn fill(&self, value: T) {
        *self.value.lock() = Some(value);
        // ord: Release — the publication stamp.  Pairs with the Acquire load
        // in `is_filled`: the payload write above (and the batch execution
        // that produced it) happens-before any probe that observes FILLED.
        // Model: model_handoff.rs (SC + TSO store-buffer mode).
        self.stamp.store(FILLED, Ordering::Release);
        // Waker hand-off: the take below is ordered after the stamp store on
        // this thread, and `set_waker`'s store + re-probe are ordered by the
        // same mutex — so a registration either lands before this take (we
        // wake it) or after the stamp was visible (the caller's re-probe
        // harvests without needing the wake).  Model: model_handoff.rs
        // (`waker_registration_never_loses_a_wake`).
        let waker = self.waker.lock().take();
        if let Some(waker) = waker {
            waker.wake();
        }
    }

    /// Registers the waker of an async caller awaiting this cell.  The
    /// caller MUST re-probe [`ResultCell::is_filled`] after registering: a
    /// fill that raced ahead of the registration has already taken (or never
    /// saw) the waker, and only the re-probe observes its stamp.  Re-registra-
    /// tion on every poll is fine — the newest waker wins.
    pub fn set_waker(&self, waker: &Waker) {
        let mut slot = self.waker.lock();
        match &mut *slot {
            Some(existing) => existing.clone_from(waker),
            none => *none = Some(waker.clone()),
        }
    }

    /// True once the result is deposited.  This is the waiter's spin probe:
    /// a read-only load on a cell only this caller owns, so cell-mode
    /// spinning touches no shared line and takes no lock.
    pub fn is_filled(&self) -> bool {
        // ord: Acquire — pairs with the Release stamp in `fill`, making the
        // payload write visible before `try_take` locks the (uncontended)
        // payload mutex.  Model: model_handoff.rs.
        self.stamp.load(Ordering::Acquire) == FILLED
    }

    /// Takes the result if it has been deposited.  Only the owning caller
    /// calls this, so a `Some` is returned exactly once.
    pub fn try_take(&self) -> Option<T> {
        if !self.is_filled() {
            return None;
        }
        self.value.lock().take()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn fill_then_take_roundtrip() {
        let cell = ResultCell::new();
        assert!(!cell.is_filled());
        assert_eq!(cell.try_take(), None);
        cell.fill(7u64);
        assert!(cell.is_filled());
        assert_eq!(cell.try_take(), Some(7));
        // Single-use: a second take sees the cell emptied (still FILLED, but
        // the payload is gone — the owner never takes twice).
        assert_eq!(cell.try_take(), None);
    }

    #[test]
    fn fill_wakes_registered_waker_once() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        use std::task::Wake;
        struct CountingWake(AtomicUsize);
        impl Wake for CountingWake {
            fn wake(self: Arc<Self>) {
                self.0.fetch_add(1, Ordering::SeqCst);
            }
        }
        let wakes = Arc::new(CountingWake(AtomicUsize::new(0)));
        let waker = std::task::Waker::from(Arc::clone(&wakes));
        let cell = ResultCell::new();
        cell.set_waker(&waker);
        // Re-registration replaces, it does not stack.
        cell.set_waker(&waker);
        cell.fill(3u64);
        assert_eq!(wakes.0.load(Ordering::SeqCst), 1);
        assert_eq!(cell.try_take(), Some(3));
        // A fill with no registered waker wakes nobody.
        let cell = ResultCell::new();
        cell.fill(4u64);
        assert_eq!(wakes.0.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn late_registration_still_observes_filled_stamp() {
        use std::task::Wake;
        struct NoopWake;
        impl Wake for NoopWake {
            fn wake(self: Arc<Self>) {}
        }
        // The protocol's race shape: fill lands first, then the caller
        // registers.  No wake comes — the mandated re-probe must see FILLED.
        let cell = ResultCell::new();
        cell.fill(9u64);
        let waker = std::task::Waker::from(Arc::new(NoopWake));
        cell.set_waker(&waker);
        assert!(cell.is_filled());
        assert_eq!(cell.try_take(), Some(9));
    }

    #[test]
    fn cross_thread_handoff_delivers_exactly_once() {
        for _ in 0..100 {
            let cell = Arc::new(ResultCell::new());
            let filler = {
                let cell = Arc::clone(&cell);
                std::thread::spawn(move || cell.fill(42u64))
            };
            let mut got = None;
            while got.is_none() {
                got = cell.try_take();
                std::thread::yield_now();
            }
            assert_eq!(got, Some(42));
            filler.join().unwrap();
        }
    }
}
