//! Thread-safe front-end: implicit batching for ordinary multithreaded code.
//!
//! In the paper, a dynamic-multithreading program simply calls the map as a
//! black box; the runtime system routes each call through the map's parallel
//! buffer, forms batches on the fly and schedules the batched data structure
//! (Section 1 "Implicit batching", Appendix A.1).  [`ConcurrentMap`] plays
//! that role for real OS threads: callers deposit their operation in the
//! parallel buffer and one of them becomes the *combiner* through the buffer's
//! activation interface (Definition 36), flushes the buffer, runs the whole
//! batch through the underlying batched map (M1 or M2) and distributes the
//! results.  This is exactly the flat-combining / work-stealing realisation
//! the paper sketches in Section 8.
//!
//! Two things make the combiner loop fast:
//!
//! * **Park/notify wake-ups.**  Waiting callers park on a single
//!   generation-counting [`Doorbell`]; the combiner rings it once per
//!   activation (after distributing a whole batch of results), so there is no
//!   fixed-timeout polling.  A caller re-attempts the activation on every
//!   wake-up, which also closes the classic flat-combining hand-off race (a
//!   combiner observing an empty buffer and exiting just as a new operation
//!   lands): the ring that follows every activation guarantees somebody
//!   re-checks.
//! * **Pool-driven batches, with a small-batch inline fast path.**  The
//!   combiner executes large batches inside the work-stealing pool
//!   (`wsm_pool`), so the parallel recursions inside the batched map (PESort,
//!   2-3 tree batch splits) actually fan out across workers.  Batches at or
//!   below a tunable threshold (env `WSM_INLINE_BATCH`, default
//!   [`DEFAULT_INLINE_BATCH`]; see [`ConcurrentMap::with_inline_threshold`])
//!   run directly on the combiner thread instead: a tiny batch has no
//!   internal parallelism to exploit, and the ship-to-pool round trip
//!   (enqueue, wake a worker, park, hand back) costs far more than the batch
//!   itself.  This is the single biggest constant-factor lever for
//!   low-concurrency callers — see experiment E16.
//!
//! One usage rule follows from the pool dispatch: do not call the map from
//! *inside* a pool task (`wsm_pool::join`/`scope` closures) — map calls block
//! on the doorbell, and a blocked worker cannot help execute the very batch
//! it is waiting on.  Ordinary OS threads (as in the tests, examples and
//! benches) are the intended callers, matching the paper's model of `p`
//! processors calling the map.

use crate::buffer::ParallelBuffer;
use crate::doorbell::Doorbell;
use crate::ops::{BatchedMap, OpId, OpResult, Operation, TaggedOp};
use std::sync::Arc;
use wsm_check::sync::Mutex;

struct ResultSlot<V> {
    result: Mutex<Option<OpResult<V>>>,
}

impl<V> ResultSlot<V> {
    fn new() -> Arc<Self> {
        Arc::new(ResultSlot {
            result: Mutex::new(None),
        })
    }

    fn fill(&self, r: OpResult<V>) {
        *self.result.lock() = Some(r);
    }

    fn try_take(&self) -> Option<OpResult<V>> {
        self.result.lock().take()
    }
}

struct Pending<K, V> {
    op: Operation<K, V>,
    slot: Arc<ResultSlot<V>>,
}

/// Default inline-batch threshold: batches of at most this many operations
/// run on the combiner thread instead of being shipped to the pool.  Chosen
/// by the E16 threshold sweep (`harness e16`); override per process with
/// `WSM_INLINE_BATCH=n` or per map with
/// [`ConcurrentMap::with_inline_threshold`].
pub const DEFAULT_INLINE_BATCH: usize = 64;

/// Default for how many yield-and-recheck rounds a waiting caller performs
/// before parking on the doorbell.  A combiner cycle for a small batch
/// completes in a few microseconds — comparable to a futex sleep/wake round
/// trip — so a few yields usually deliver the result without a park; large
/// values only burn sched_yield calls.  Override with `WSM_SPIN_WAIT`.
pub const DEFAULT_SPIN_WAIT: u32 = 4;

/// The process-wide spin count: `WSM_SPIN_WAIT` or [`DEFAULT_SPIN_WAIT`].
fn spin_wait_from_env() -> u32 {
    std::env::var("WSM_SPIN_WAIT")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_SPIN_WAIT)
}

/// The process-wide inline threshold: `WSM_INLINE_BATCH` if set to a valid
/// number (0 disables the fast path entirely), otherwise
/// [`DEFAULT_INLINE_BATCH`].
fn inline_threshold_from_env() -> usize {
    std::env::var("WSM_INLINE_BATCH")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_INLINE_BATCH)
}

/// Reusable combiner-side buffers.  Only the thread holding the buffer's
/// activation touches these, so the mutex is uncontended by construction —
/// it exists to keep the map `Sync` without `unsafe`.
struct CombineScratch<K, V> {
    pending: Vec<Pending<K, V>>,
    slots: Vec<Arc<ResultSlot<V>>>,
}

/// A concurrent map front-end that implicitly batches calls from many threads
/// into an underlying [`BatchedMap`] (M1 or M2).
///
/// Blocking semantics match the paper's model: a call blocks until the answer
/// is returned by the batch that contained it.
pub struct ConcurrentMap<K, V, M> {
    buffer: ParallelBuffer<Pending<K, V>>,
    inner: Mutex<M>,
    scratch: Mutex<CombineScratch<K, V>>,
    doorbell: Doorbell,
    /// When set, batches run on this dedicated pool instead of the global
    /// one (used by the E15 scaling experiment to pin the worker count).
    pool: Option<Arc<wsm_pool::ThreadPool>>,
    /// Batches of at most this many operations run inline on the combiner
    /// thread instead of round-tripping through the pool.
    inline_threshold: usize,
    /// Yield-and-recheck rounds before a waiting caller parks.
    spin_wait: u32,
}

impl<K, V, M> ConcurrentMap<K, V, M>
where
    K: Ord + Clone + Send,
    V: Clone + Send,
    M: BatchedMap<K, V> + Send,
{
    /// Wraps a batched map, sharding the parallel buffer for `shards`
    /// submitting threads.  Batches execute on the global work-stealing pool.
    pub fn new(inner: M, shards: usize) -> Self {
        Self::build(inner, shards, None)
    }

    /// Like [`ConcurrentMap::new`], but batch execution runs on the given
    /// dedicated pool (so experiments can fix the worker count).
    pub fn with_pool(inner: M, shards: usize, pool: Arc<wsm_pool::ThreadPool>) -> Self {
        Self::build(inner, shards, Some(pool))
    }

    fn build(inner: M, shards: usize, pool: Option<Arc<wsm_pool::ThreadPool>>) -> Self {
        ConcurrentMap {
            buffer: ParallelBuffer::new(shards),
            inner: Mutex::new(inner),
            scratch: Mutex::new(CombineScratch {
                pending: Vec::new(),
                slots: Vec::new(),
            }),
            doorbell: Doorbell::default(),
            pool,
            inline_threshold: inline_threshold_from_env(),
            spin_wait: spin_wait_from_env(),
        }
    }

    /// Overrides the inline-batch threshold for this map: batches of at most
    /// `threshold` operations execute on the combiner thread, larger ones on
    /// the pool.  `0` disables the fast path (every batch goes to the pool);
    /// `usize::MAX` forces every batch inline.  The default comes from
    /// `WSM_INLINE_BATCH` / [`DEFAULT_INLINE_BATCH`].
    #[must_use]
    pub fn with_inline_threshold(mut self, threshold: usize) -> Self {
        self.inline_threshold = threshold;
        self
    }

    /// The current inline-batch threshold.
    pub fn inline_threshold(&self) -> usize {
        self.inline_threshold
    }

    /// Consumes the wrapper, returning the underlying batched map.
    pub fn into_inner(self) -> M {
        self.inner.into_inner()
    }

    /// Current number of items (takes the combiner lock briefly).
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True if the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total effective work charged by the underlying batched map.
    pub fn effective_work(&self) -> u64 {
        self.inner.lock().effective_work()
    }

    /// Searches for a key.  `shard` should identify the calling thread (any
    /// stable small integer); it only affects contention, not correctness.
    pub fn search(&self, shard: usize, key: K) -> Option<V> {
        match self.call(shard, Operation::Search(key)) {
            OpResult::Search(v) => v,
            other => unreachable!("search returned {other:?}", other = kind(&other)),
        }
    }

    /// Inserts a key/value pair, returning the previous value if any.
    pub fn insert(&self, shard: usize, key: K, val: V) -> Option<V> {
        match self.call(shard, Operation::Insert(key, val)) {
            OpResult::Insert(v) => v,
            other => unreachable!("insert returned {other:?}", other = kind(&other)),
        }
    }

    /// Deletes a key, returning its value if it was present.
    pub fn delete(&self, shard: usize, key: K) -> Option<V> {
        match self.call(shard, Operation::Delete(key)) {
            OpResult::Delete(v) => v,
            other => unreachable!("delete returned {other:?}", other = kind(&other)),
        }
    }

    /// Deposits one call and drives combining until its result is available.
    ///
    /// The loop below is deadlock-free by a pairing argument: a caller parks
    /// only after (a) capturing the doorbell generation, then (b) attempting
    /// the activation itself.  If the attempt lost, some other thread held
    /// the activation at that moment, and that holder's activation finishes
    /// with a [`Doorbell::ring`] *after* releasing — i.e. after our capture —
    /// so our park is bounded by it.  If the attempt won, we combined until
    /// the buffer was empty and our own result was delivered (possibly by an
    /// earlier combiner).
    pub fn call(&self, shard: usize, op: Operation<K, V>) -> OpResult<V> {
        let slot = ResultSlot::new();
        self.buffer.push(
            shard,
            Pending {
                op,
                slot: Arc::clone(&slot),
            },
        );
        loop {
            let seen = self.doorbell.current();
            // Try to become the combiner; whoever wins processes everything
            // currently buffered (and re-runs while more arrives).  The
            // readiness condition is `true` so that *holding* the activation
            // always implies at least one run — and therefore a ring below —
            // even if the buffer momentarily looks empty.
            let runs = self.buffer.activate(
                || true,
                || {
                    let drained = self.combine();
                    let more = !self.buffer.is_empty();
                    if more && drained == 0 {
                        // The buffer claims an item the flush could not see:
                        // a producer is mid-publish (counted, seq stamp not
                        // yet released).  Donate the CPU so its store lands
                        // instead of respinning the activation hot; under
                        // the model checker this yield is also what lets the
                        // fair scheduler run the producer (found as a
                        // starvation livelock by tests/model_doorbell.rs).
                        wsm_check::thread::yield_now();
                    }
                    more
                },
            );
            if runs > 0 {
                // Ring once more *after releasing* the activation: anyone
                // whose activation attempt we beat re-checks against a
                // released interface, which closes the hand-off race.
                self.doorbell.ring();
            }
            if let Some(r) = slot.try_take() {
                return r;
            }
            // Another thread holds the combiner role.  Spin briefly before
            // parking: with small batches the combiner's whole cycle is
            // shorter than a futex sleep/wake round trip, so most results
            // arrive within a few yields.  The yield also donates the CPU to
            // the combiner on oversubscribed machines.
            let mut delivered = false;
            for _ in 0..self.spin_wait {
                std::thread::yield_now();
                if let Some(r) = slot.try_take() {
                    return r;
                }
                if self.doorbell.current() != seen {
                    // A hand-off happened; re-attempt the activation rather
                    // than parking on a generation that already passed.
                    delivered = true;
                    break;
                }
            }
            if !delivered {
                // Park until the next hand-off, then re-check / re-attempt.
                self.doorbell.wait_past(seen);
            }
        }
    }

    /// Flushes the buffer and runs the accumulated batch through the
    /// underlying map (inside the work-stealing pool, so the batch's internal
    /// parallelism fans out), delivering each result to its caller.  Returns
    /// the number of operations the flush actually drained.
    fn combine(&self) -> usize {
        // Uncontended by construction: only the activation holder combines.
        let mut scratch = self.scratch.lock();
        let CombineScratch { pending, slots } = &mut *scratch;
        // Clear rather than assert empty: if a previous combine unwound out
        // of `run_batch`, stale slots must not poison every later combine
        // (that batch's callers are lost either way).
        pending.clear();
        slots.clear();
        let _cost = self.buffer.flush_into(pending);
        let drained = pending.len();
        if pending.is_empty() {
            return 0;
        }
        let batch: Vec<TaggedOp<K, V>> = pending
            .drain(..)
            .enumerate()
            .map(|(i, p)| {
                slots.push(p.slot);
                TaggedOp {
                    id: i as OpId,
                    op: p.op,
                }
            })
            .collect();
        let mut inner = self.inner.lock();
        let map: &mut M = &mut inner;
        // Small batches have no internal parallelism worth a pool round trip;
        // run them right here on the combiner thread.
        let (results, _cost) = if batch.len() <= self.inline_threshold {
            map.run_batch(batch)
        } else {
            match &self.pool {
                Some(pool) => pool.install(move || map.run_batch(batch)),
                None => wsm_pool::run(move || map.run_batch(batch)),
            }
        };
        drop(inner);
        for (id, result) in results {
            slots[id as usize].fill(result);
        }
        slots.clear();
        drained
    }
}

fn kind<V>(r: &OpResult<V>) -> &'static str {
    match r {
        OpResult::Search(_) => "Search",
        OpResult::Insert(_) => "Insert",
        OpResult::Delete(_) => "Delete",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::m1::M1;
    use crate::m2::M2;
    use std::sync::Arc;

    #[test]
    fn single_threaded_roundtrip() {
        let map = ConcurrentMap::new(M1::<u64, u64>::new(4), 4);
        assert_eq!(map.insert(0, 1, 10), None);
        assert_eq!(map.insert(0, 1, 11), Some(10));
        assert_eq!(map.search(0, 1), Some(11));
        assert_eq!(map.search(0, 2), None);
        assert_eq!(map.delete(0, 1), Some(11));
        assert_eq!(map.search(0, 1), None);
        assert_eq!(map.len(), 0);
    }

    #[test]
    fn roundtrip_on_dedicated_pool() {
        let pool = Arc::new(wsm_pool::ThreadPool::new(2));
        let map = ConcurrentMap::with_pool(M1::<u64, u64>::new(4), 4, pool);
        for k in 0..500u64 {
            assert_eq!(map.insert(0, k, k + 1), None);
        }
        for k in 0..500u64 {
            assert_eq!(map.search(0, k), Some(k + 1));
        }
        assert_eq!(map.len(), 500);
    }

    #[test]
    fn inline_and_pooled_paths_agree() {
        // Force every batch down each path in turn; results must match.
        for threshold in [0usize, usize::MAX] {
            let map =
                ConcurrentMap::new(M1::<u64, u64>::new(4), 4).with_inline_threshold(threshold);
            assert_eq!(map.inline_threshold(), threshold);
            for k in 0..200u64 {
                assert_eq!(map.insert(0, k, k * 3), None);
            }
            for k in 0..200u64 {
                assert_eq!(map.search(0, k), Some(k * 3));
            }
            assert_eq!(map.delete(0, 7), Some(21));
            assert_eq!(map.search(0, 7), None);
            assert_eq!(map.len(), 199);
        }
    }

    #[test]
    fn inline_path_under_contention() {
        let map = Arc::new(
            ConcurrentMap::new(M1::<u64, u64>::new(8), 8).with_inline_threshold(usize::MAX),
        );
        let threads = 8u64;
        let per = 1_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let map = Arc::clone(&map);
                std::thread::spawn(move || {
                    for i in 0..per {
                        let key = t * per + i;
                        assert_eq!(map.insert(t as usize, key, key + 1), None);
                        assert_eq!(map.search(t as usize, key), Some(key + 1));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(map.len(), (threads * per) as usize);
    }

    #[test]
    fn many_threads_insert_disjoint_ranges() {
        let map = Arc::new(ConcurrentMap::new(M1::<u64, u64>::new(8), 8));
        let threads = 8u64;
        let per = 2_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let map = Arc::clone(&map);
                std::thread::spawn(move || {
                    for i in 0..per {
                        let key = t * per + i;
                        assert_eq!(map.insert(t as usize, key, key * 2), None);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(map.len(), (threads * per) as usize);
        // Spot check values from a different thread.
        for key in (0..threads * per).step_by(997) {
            assert_eq!(map.search(0, key), Some(key * 2));
        }
    }

    #[test]
    fn concurrent_mixed_workload_on_m2_is_consistent() {
        // Threads operate on disjoint key ranges so per-key sequential
        // semantics are checkable despite arbitrary interleaving.
        let map = Arc::new(ConcurrentMap::new(M2::<u64, u64>::new(4), 4));
        let threads = 4u64;
        let per = 1_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let map = Arc::clone(&map);
                std::thread::spawn(move || {
                    let base = t * 1_000_000;
                    for i in 0..per {
                        let key = base + i;
                        assert_eq!(map.insert(t as usize, key, i), None);
                        assert_eq!(map.search(t as usize, key), Some(i));
                        if i % 3 == 0 {
                            assert_eq!(map.delete(t as usize, key), Some(i));
                            assert_eq!(map.search(t as usize, key), None);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let expected_per_thread = per - per.div_ceil(3);
        assert_eq!(map.len(), (threads * expected_per_thread) as usize);
    }

    #[test]
    fn combiner_batches_many_callers() {
        // With many threads hammering a single hot key, the per-operation
        // effective work must stay bounded by a constant that does not depend
        // on the map size: after the first access the key sits at the front of
        // the working-set structure, and duplicates that land in the same
        // batch combine.  (How much combining happens depends on thread
        // timing, so the constant below only assumes front-of-structure
        // accesses plus per-batch overhead, not any particular batch size.)
        let n = 1u64 << 12;
        let mut inner = M1::<u64, u64>::new(8);
        inner.run_ops((0..n).map(|i| Operation::Insert(i, i)).collect());
        let warm_work = inner.effective_work();
        let map = Arc::new(ConcurrentMap::new(inner, 8));
        let threads = 8;
        let per = 500u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let map = Arc::clone(&map);
                std::thread::spawn(move || {
                    for _ in 0..per {
                        assert_eq!(map.search(t, n / 2), Some(n / 2));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total_ops = threads as u64 * per;
        let work = map.effective_work() - warm_work;
        assert!(
            work < total_ops * 60,
            "hot-key hammering must have size-independent per-op cost: {work} work for {total_ops} ops"
        );
    }
}
