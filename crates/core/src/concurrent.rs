//! Thread-safe front-end: implicit batching for ordinary multithreaded code.
//!
//! In the paper, a dynamic-multithreading program simply calls the map as a
//! black box; the runtime system routes each call through the map's parallel
//! buffer, forms batches on the fly and schedules the batched data structure
//! (Section 1 "Implicit batching", Appendix A.1).  [`ConcurrentMap`] plays
//! that role for real OS threads: callers deposit their operation in the
//! parallel buffer and one of them becomes the *combiner* through the buffer's
//! activation interface (Definition 36), flushes the buffer, runs the whole
//! batch through the underlying batched map (M1 or M2) and distributes the
//! results.  This is exactly the flat-combining / work-stealing realisation
//! the paper sketches in Section 8.

use crate::buffer::ParallelBuffer;
use crate::ops::{BatchedMap, OpId, OpResult, Operation, TaggedOp};
use parking_lot::{Condvar, Mutex};
use std::sync::Arc;
use std::time::Duration;

struct ResultSlot<V> {
    result: Mutex<Option<OpResult<V>>>,
    cv: Condvar,
}

impl<V> ResultSlot<V> {
    fn new() -> Arc<Self> {
        Arc::new(ResultSlot {
            result: Mutex::new(None),
            cv: Condvar::new(),
        })
    }

    fn fill(&self, r: OpResult<V>) {
        let mut guard = self.result.lock();
        *guard = Some(r);
        self.cv.notify_all();
    }

    fn try_take(&self) -> Option<OpResult<V>> {
        self.result.lock().take()
    }

    fn wait_for(&self, timeout: Duration) -> Option<OpResult<V>> {
        let mut guard = self.result.lock();
        if guard.is_none() {
            self.cv.wait_for(&mut guard, timeout);
        }
        guard.take()
    }
}

struct Pending<K, V> {
    op: Operation<K, V>,
    slot: Arc<ResultSlot<V>>,
}

/// A concurrent map front-end that implicitly batches calls from many threads
/// into an underlying [`BatchedMap`] (M1 or M2).
///
/// Blocking semantics match the paper's model: a call blocks until the answer
/// is returned by the batch that contained it.
pub struct ConcurrentMap<K, V, M> {
    buffer: ParallelBuffer<Pending<K, V>>,
    inner: Mutex<M>,
}

impl<K, V, M> ConcurrentMap<K, V, M>
where
    K: Ord + Clone + Send,
    V: Clone + Send,
    M: BatchedMap<K, V> + Send,
{
    /// Wraps a batched map, sharding the parallel buffer for `shards`
    /// submitting threads.
    pub fn new(inner: M, shards: usize) -> Self {
        ConcurrentMap {
            buffer: ParallelBuffer::new(shards),
            inner: Mutex::new(inner),
        }
    }

    /// Consumes the wrapper, returning the underlying batched map.
    pub fn into_inner(self) -> M {
        self.inner.into_inner()
    }

    /// Current number of items (takes the combiner lock briefly).
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True if the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total effective work charged by the underlying batched map.
    pub fn effective_work(&self) -> u64 {
        self.inner.lock().effective_work()
    }

    /// Searches for a key.  `shard` should identify the calling thread (any
    /// stable small integer); it only affects contention, not correctness.
    pub fn search(&self, shard: usize, key: K) -> Option<V> {
        match self.call(shard, Operation::Search(key)) {
            OpResult::Search(v) => v,
            other => unreachable!("search returned {other:?}", other = kind(&other)),
        }
    }

    /// Inserts a key/value pair, returning the previous value if any.
    pub fn insert(&self, shard: usize, key: K, val: V) -> Option<V> {
        match self.call(shard, Operation::Insert(key, val)) {
            OpResult::Insert(v) => v,
            other => unreachable!("insert returned {other:?}", other = kind(&other)),
        }
    }

    /// Deletes a key, returning its value if it was present.
    pub fn delete(&self, shard: usize, key: K) -> Option<V> {
        match self.call(shard, Operation::Delete(key)) {
            OpResult::Delete(v) => v,
            other => unreachable!("delete returned {other:?}", other = kind(&other)),
        }
    }

    /// Deposits one call and drives combining until its result is available.
    pub fn call(&self, shard: usize, op: Operation<K, V>) -> OpResult<V> {
        let slot = ResultSlot::new();
        self.buffer.push(
            shard,
            Pending {
                op,
                slot: Arc::clone(&slot),
            },
        );
        loop {
            // Try to become the combiner; whoever wins processes everything
            // currently buffered (and re-runs while more arrives).
            self.buffer.activate(
                || !self.buffer.is_empty(),
                || {
                    self.combine();
                    !self.buffer.is_empty()
                },
            );
            if let Some(r) = slot.try_take() {
                return r;
            }
            // Another thread is combining; wait briefly for our result, then
            // retry (the retry covers the race where the combiner finished
            // just before our push became visible).
            if let Some(r) = slot.wait_for(Duration::from_micros(200)) {
                return r;
            }
        }
    }

    /// Flushes the buffer and runs the accumulated batch through the
    /// underlying map, delivering each result to its caller.
    fn combine(&self) {
        let (pending, _cost) = self.buffer.flush();
        if pending.is_empty() {
            return;
        }
        let mut slots: Vec<Arc<ResultSlot<V>>> = Vec::with_capacity(pending.len());
        let batch: Vec<TaggedOp<K, V>> = pending
            .into_iter()
            .enumerate()
            .map(|(i, p)| {
                slots.push(p.slot);
                TaggedOp {
                    id: i as OpId,
                    op: p.op,
                }
            })
            .collect();
        let mut inner = self.inner.lock();
        let (results, _cost) = inner.run_batch(batch);
        drop(inner);
        for (id, result) in results {
            slots[id as usize].fill(result);
        }
    }
}

fn kind<V>(r: &OpResult<V>) -> &'static str {
    match r {
        OpResult::Search(_) => "Search",
        OpResult::Insert(_) => "Insert",
        OpResult::Delete(_) => "Delete",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::m1::M1;
    use crate::m2::M2;
    use std::sync::Arc;

    #[test]
    fn single_threaded_roundtrip() {
        let map = ConcurrentMap::new(M1::<u64, u64>::new(4), 4);
        assert_eq!(map.insert(0, 1, 10), None);
        assert_eq!(map.insert(0, 1, 11), Some(10));
        assert_eq!(map.search(0, 1), Some(11));
        assert_eq!(map.search(0, 2), None);
        assert_eq!(map.delete(0, 1), Some(11));
        assert_eq!(map.search(0, 1), None);
        assert_eq!(map.len(), 0);
    }

    #[test]
    fn many_threads_insert_disjoint_ranges() {
        let map = Arc::new(ConcurrentMap::new(M1::<u64, u64>::new(8), 8));
        let threads = 8u64;
        let per = 2_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let map = Arc::clone(&map);
                std::thread::spawn(move || {
                    for i in 0..per {
                        let key = t * per + i;
                        assert_eq!(map.insert(t as usize, key, key * 2), None);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(map.len(), (threads * per) as usize);
        // Spot check values from a different thread.
        for key in (0..threads * per).step_by(997) {
            assert_eq!(map.search(0, key), Some(key * 2));
        }
    }

    #[test]
    fn concurrent_mixed_workload_on_m2_is_consistent() {
        // Threads operate on disjoint key ranges so per-key sequential
        // semantics are checkable despite arbitrary interleaving.
        let map = Arc::new(ConcurrentMap::new(M2::<u64, u64>::new(4), 4));
        let threads = 4u64;
        let per = 1_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let map = Arc::clone(&map);
                std::thread::spawn(move || {
                    let base = t * 1_000_000;
                    for i in 0..per {
                        let key = base + i;
                        assert_eq!(map.insert(t as usize, key, i), None);
                        assert_eq!(map.search(t as usize, key), Some(i));
                        if i % 3 == 0 {
                            assert_eq!(map.delete(t as usize, key), Some(i));
                            assert_eq!(map.search(t as usize, key), None);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let expected_per_thread = per - per.div_ceil(3);
        assert_eq!(map.len(), (threads * expected_per_thread) as usize);
    }

    #[test]
    fn combiner_batches_many_callers() {
        // With many threads hammering a single hot key, the per-operation
        // effective work must stay bounded by a constant that does not depend
        // on the map size: after the first access the key sits at the front of
        // the working-set structure, and duplicates that land in the same
        // batch combine.  (How much combining happens depends on thread
        // timing, so the constant below only assumes front-of-structure
        // accesses plus per-batch overhead, not any particular batch size.)
        let n = 1u64 << 12;
        let mut inner = M1::<u64, u64>::new(8);
        inner.run_ops((0..n).map(|i| Operation::Insert(i, i)).collect());
        let warm_work = inner.effective_work();
        let map = Arc::new(ConcurrentMap::new(inner, 8));
        let threads = 8;
        let per = 500u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let map = Arc::clone(&map);
                std::thread::spawn(move || {
                    for _ in 0..per {
                        assert_eq!(map.search(t, n / 2), Some(n / 2));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total_ops = threads as u64 * per;
        let work = map.effective_work() - warm_work;
        assert!(
            work < total_ops * 60,
            "hot-key hammering must have size-independent per-op cost: {work} work for {total_ops} ops"
        );
    }
}
