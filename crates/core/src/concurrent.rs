//! Thread-safe front-end: implicit batching for ordinary multithreaded code.
//!
//! In the paper, a dynamic-multithreading program simply calls the map as a
//! black box; the runtime system routes each call through the map's parallel
//! buffer, forms batches on the fly and schedules the batched data structure
//! (Section 1 "Implicit batching", Appendix A.1).  [`ConcurrentMap`] plays
//! that role for real OS threads: callers deposit their operation in the
//! parallel buffer and one of them becomes the *combiner* through the buffer's
//! activation interface (Definition 36), flushes the buffer, runs the whole
//! batch through the underlying batched map (M1 or M2) and distributes the
//! results.  This is exactly the flat-combining / work-stealing realisation
//! the paper sketches in Section 8.
//!
//! Two things make the combiner loop fast:
//!
//! * **Park/notify wake-ups.**  Waiting callers park on a single
//!   generation-counting [`Doorbell`]; the combiner rings it once per
//!   activation (after distributing a whole batch of results), so there is no
//!   fixed-timeout polling.  A caller re-attempts the activation on every
//!   wake-up, which also closes the classic flat-combining hand-off race (a
//!   combiner observing an empty buffer and exiting just as a new operation
//!   lands): the ring that follows every activation guarantees somebody
//!   re-checks.  Alternatively, `WSM_HANDOFF=cell` (or
//!   [`ConcurrentMap::with_handoff`]) selects the *slot-free* hand-off: a
//!   waiter spins on its own sequence-stamped
//!   [`crate::handoff::ResultCell`] with yields escalating into a bounded
//!   exponential backoff, and never parks — removing the park/wake futex
//!   round trip entirely — see [`Handoff`] and experiment E16's A/B rows.
//!   `WSM_HANDOFF=waker` is the third, *await-able* hand-off for async
//!   callers: [`ConcurrentMap::submit_batch`] deposits operations without
//!   waiting at all, and the combiner's `fill` wakes the task
//!   [`Waker`](std::task::Waker) registered on each cell (the `wsm-svc`
//!   front-end and experiment E21's latency rows).
//! * **Pool-driven batches, with a small-batch inline fast path.**  The
//!   combiner executes large batches inside the work-stealing pool
//!   (`wsm_pool`), so the parallel recursions inside the batched map (PESort,
//!   2-3 tree batch splits) actually fan out across workers.  Batches at or
//!   below a tunable threshold (env `WSM_INLINE_BATCH`, default
//!   [`DEFAULT_INLINE_BATCH`]; see [`ConcurrentMap::with_inline_threshold`])
//!   run directly on the combiner thread instead: a tiny batch has no
//!   internal parallelism to exploit, and the ship-to-pool round trip
//!   (enqueue, wake a worker, park, hand back) costs far more than the batch
//!   itself.  This is the single biggest constant-factor lever for
//!   low-concurrency callers — see experiment E16.
//!
//! One usage rule follows from the pool dispatch: do not call the map from
//! *inside* a task of the pool that executes its batches
//! (`wsm_pool::join`/`scope` closures) — map calls block on the doorbell,
//! and a blocked worker cannot help execute the very batch it is waiting on.
//! Ordinary OS threads (as in the tests, examples and benches) are the
//! intended callers, matching the paper's model of `p` processors calling
//! the map.  The `wsm-shard` router respects this rule by dispatching its
//! blocking [`ConcurrentMap::call_batch`] calls on a *dedicated* router pool
//! (never the batch-execution pool): a router worker that wins a shard's
//! combiner election runs the batch inline on itself (`wsm_pool::run` is
//! inline on a worker, and un-stolen `join` halves execute on the caller),
//! so its progress never depends on another blocked router worker.

use crate::buffer::ParallelBuffer;
use crate::doorbell::Doorbell;
use crate::handoff::ResultCell;
use crate::ops::{BatchedMap, OpId, OpResult, Operation, TaggedOp};
use std::sync::Arc;
use wsm_check::sync::Mutex;

struct Pending<K, V> {
    op: Operation<K, V>,
    slot: Arc<ResultCell<OpResult<V>>>,
}

/// How a waiting caller learns that its result has been deposited.
///
/// Either way the result itself travels through the caller's own
/// sequence-stamped [`ResultCell`]; the mode only selects what the caller
/// does when the cell is still empty after its spin window.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Handoff {
    /// Park on the map's shared generation-counting [`Doorbell`] (the
    /// default).  One futex word serves every waiter; the combiner rings it
    /// once per activation.
    Doorbell,
    /// Never park: keep spinning on the caller's own result cell,
    /// re-attempting the combiner activation between spin windows, with
    /// yields escalating into a bounded exponential backoff (so a long wait
    /// stops burning a core — see [`Backoff`]).  Removes the park/wake futex
    /// round trip from the hand-off — a good trade when combine cycles are
    /// short (small batches) or cores outnumber runnable threads.  Selected
    /// per process with `WSM_HANDOFF=cell`.
    Cell,
    /// Await instead of waiting: completed operations wake the
    /// [`Waker`](std::task::Waker) an async caller registered on its result
    /// cell, so no thread blocks anywhere in the hand-off.  This is the mode
    /// the `wsm-svc` async front-end uses via
    /// [`ConcurrentMap::submit_batch`] + [`ConcurrentMap::pump`]; a
    /// *blocking* call on a waker-mode map waits like [`Handoff::Cell`]
    /// (there is no task to wake).  Selected per process with
    /// `WSM_HANDOFF=waker`.
    Waker,
}

/// The process-wide hand-off mode: `WSM_HANDOFF=cell`, `waker` or (default)
/// `doorbell`.  Any other value warns once and keeps the default.
fn handoff_from_env() -> Handoff {
    crate::env::parse_with(
        "WSM_HANDOFF",
        "cell|doorbell|waker",
        Handoff::Doorbell,
        |raw| match raw {
            "cell" => Some(Handoff::Cell),
            "doorbell" => Some(Handoff::Doorbell),
            "waker" => Some(Handoff::Waker),
            _ => None,
        },
    )
}

/// Default inline-batch threshold: batches of at most this many operations
/// run on the combiner thread instead of being shipped to the pool.  Chosen
/// by the E16 threshold sweep (`harness e16`); override per process with
/// `WSM_INLINE_BATCH=n` or per map with
/// [`ConcurrentMap::with_inline_threshold`].
pub const DEFAULT_INLINE_BATCH: usize = 64;

/// Default for how many yield-and-recheck rounds a waiting caller performs
/// before parking on the doorbell.  A combiner cycle for a small batch
/// completes in a few microseconds — comparable to a futex sleep/wake round
/// trip — so a few yields usually deliver the result without a park; large
/// values only burn sched_yield calls.  Override with `WSM_SPIN_WAIT`.
pub const DEFAULT_SPIN_WAIT: u32 = 4;

/// The process-wide spin count: `WSM_SPIN_WAIT` or [`DEFAULT_SPIN_WAIT`].
/// Garbage values warn once and keep the default.
fn spin_wait_from_env() -> u32 {
    crate::env::parse(
        "WSM_SPIN_WAIT",
        "a yield count (non-negative integer)",
        DEFAULT_SPIN_WAIT,
        |_| true,
    )
}

/// The process-wide inline threshold: `WSM_INLINE_BATCH` if set to a valid
/// number (0 disables the fast path entirely), otherwise
/// [`DEFAULT_INLINE_BATCH`].  Garbage values warn once and keep the default.
fn inline_threshold_from_env() -> usize {
    crate::env::parse(
        "WSM_INLINE_BATCH",
        "a batch size (non-negative integer; 0 disables the inline path)",
        DEFAULT_INLINE_BATCH,
        |_| true,
    )
}

/// Longest single backoff sleep of a never-parking waiter, in microseconds.
/// The cap keeps the hand-off latency bounded (a result deposited while the
/// waiter sleeps is harvested at most this much later) while a long wait —
/// e.g. a huge batch combining ahead of us — costs sleeps instead of a
/// pegged core.
pub const BACKOFF_CAP_US: u64 = 256;

/// Bounded exponential backoff for the never-parking wait loops (cell and
/// waker hand-offs, and the doorbell path when parking is forbidden because
/// the caller is a service task — see [`crate::context`]).
///
/// The first few pauses are plain yields (a small-batch combine finishes in
/// microseconds, and the yield donates the CPU to the combiner on
/// oversubscribed machines); after that each pause sleeps, doubling from
/// 1µs up to [`BACKOFF_CAP_US`].  The pre-backoff spin burned yields
/// forever — under a cooperative executor or on a single busy core that
/// pegs a CPU for the whole wait, which is the blocking-hand-off bug class
/// this bound fixes (the waiting loops stay correct without any pause at
/// all; the backoff only shapes *where* the waiting time goes).
struct Backoff {
    /// Completed pause rounds.
    round: u32,
}

impl Backoff {
    /// Pauses 0..YIELD_ROUNDS are yields; later ones sleep.
    const YIELD_ROUNDS: u32 = 4;

    fn new() -> Self {
        Backoff { round: 0 }
    }

    /// One wait step: yield while young, then sleep with doubling duration
    /// up to the cap.
    fn pause(&mut self) {
        if self.round < Self::YIELD_ROUNDS {
            std::thread::yield_now();
        } else {
            let exp = (self.round - Self::YIELD_ROUNDS).min(63);
            let us = (1u64 << exp.min(8)).min(BACKOFF_CAP_US);
            // lint: allow(thread_sleep) — bounded backoff, not
            // synchronization: the surrounding loop re-probes the result
            // cell and re-attempts the combiner election on every
            // iteration, so correctness never depends on this sleep; it
            // only stops a long never-parking wait from pegging a core.
            std::thread::sleep(std::time::Duration::from_micros(us));
        }
        self.round = self.round.saturating_add(1);
    }
}

/// Reusable combiner-side buffers.  Only the thread holding the buffer's
/// activation touches these, so the mutex is uncontended by construction —
/// it exists to keep the map `Sync` without `unsafe`.
struct CombineScratch<K, V> {
    pending: Vec<Pending<K, V>>,
    slots: Vec<Arc<ResultCell<OpResult<V>>>>,
}

/// A commit-point observer: called by the combiner with each batch, under
/// the inner-map lock, immediately *before* the batch is applied (and
/// therefore before any caller receives a result).  `wsm-wal` hooks its
/// write-ahead log here.
pub type CommitHook<K, V> = Box<dyn Fn(&[TaggedOp<K, V>]) + Send + Sync>;

/// A concurrent map front-end that implicitly batches calls from many threads
/// into an underlying [`BatchedMap`] (M1 or M2).
///
/// Blocking semantics match the paper's model: a call blocks until the answer
/// is returned by the batch that contained it.
pub struct ConcurrentMap<K, V, M> {
    buffer: ParallelBuffer<Pending<K, V>>,
    inner: Mutex<M>,
    scratch: Mutex<CombineScratch<K, V>>,
    doorbell: Doorbell,
    /// When set, batches run on this dedicated pool instead of the global
    /// one (used by the E15 scaling experiment to pin the worker count).
    pool: Option<Arc<wsm_pool::ThreadPool>>,
    /// Batches of at most this many operations run inline on the combiner
    /// thread instead of round-tripping through the pool.
    inline_threshold: usize,
    /// Yield-and-recheck rounds before a waiting caller parks (doorbell
    /// mode) or re-attempts the activation (cell mode).
    spin_wait: u32,
    /// How waiting callers learn their result arrived.
    handoff: Handoff,
    /// Commit-point observer (see [`CommitHook`]); `None` for ordinary maps.
    commit_hook: Option<CommitHook<K, V>>,
}

impl<K, V, M> ConcurrentMap<K, V, M>
where
    K: Ord + Clone + Send,
    V: Clone + Send,
    M: BatchedMap<K, V> + Send,
{
    /// Wraps a batched map, sharding the parallel buffer for `shards`
    /// submitting threads.  Batches execute on the global work-stealing pool.
    pub fn new(inner: M, shards: usize) -> Self {
        Self::build(inner, shards, None)
    }

    /// Like [`ConcurrentMap::new`], but batch execution runs on the given
    /// dedicated pool (so experiments can fix the worker count).
    pub fn with_pool(inner: M, shards: usize, pool: Arc<wsm_pool::ThreadPool>) -> Self {
        Self::build(inner, shards, Some(pool))
    }

    fn build(inner: M, shards: usize, pool: Option<Arc<wsm_pool::ThreadPool>>) -> Self {
        ConcurrentMap {
            buffer: ParallelBuffer::new(shards),
            inner: Mutex::new(inner),
            scratch: Mutex::new(CombineScratch {
                pending: Vec::new(),
                slots: Vec::new(),
            }),
            doorbell: Doorbell::default(),
            pool,
            inline_threshold: inline_threshold_from_env(),
            spin_wait: spin_wait_from_env(),
            handoff: handoff_from_env(),
            commit_hook: None,
        }
    }

    /// Overrides the inline-batch threshold for this map: batches of at most
    /// `threshold` operations execute on the combiner thread, larger ones on
    /// the pool.  `0` disables the fast path (every batch goes to the pool);
    /// `usize::MAX` forces every batch inline.  The default comes from
    /// `WSM_INLINE_BATCH` / [`DEFAULT_INLINE_BATCH`].
    #[must_use]
    pub fn with_inline_threshold(mut self, threshold: usize) -> Self {
        self.inline_threshold = threshold;
        self
    }

    /// The current inline-batch threshold.
    pub fn inline_threshold(&self) -> usize {
        self.inline_threshold
    }

    /// Overrides the waiter hand-off mode for this map (the default comes
    /// from `WSM_HANDOFF`): [`Handoff::Cell`] waiters never park on the
    /// doorbell, they spin on their own sequence-stamped result cell.
    #[must_use]
    pub fn with_handoff(mut self, handoff: Handoff) -> Self {
        self.handoff = handoff;
        self
    }

    /// The current waiter hand-off mode.
    pub fn handoff(&self) -> Handoff {
        self.handoff
    }

    /// Installs a commit-point observer: `hook` runs on the combiner thread
    /// with each batch, *under the inner-map lock and before the batch is
    /// applied* — so no caller can observe a result whose batch the hook has
    /// not yet seen, and an observer that itself takes the inner lock (via
    /// [`ConcurrentMap::with_inner`], as the `wsm-wal` checkpointer does)
    /// always sees hook-side effects exactly consistent with applied state.
    /// The hook must not call back into this map.
    #[must_use]
    pub fn with_commit_hook(
        mut self,
        hook: impl Fn(&[TaggedOp<K, V>]) + Send + Sync + 'static,
    ) -> Self {
        self.commit_hook = Some(Box::new(hook));
        self
    }

    /// Runs `f` with exclusive access to the underlying batched map.  The
    /// same lock serializes the combiner's batch application (and its commit
    /// hook), so everything `f` observes is consistent with a batch
    /// boundary.  Do not call back into this map from `f`.
    pub fn with_inner<R>(&self, f: impl FnOnce(&mut M) -> R) -> R {
        f(&mut self.inner.lock())
    }

    /// Consumes the wrapper, returning the underlying batched map.
    pub fn into_inner(self) -> M {
        self.inner.into_inner()
    }

    /// Current number of items (takes the combiner lock briefly).
    pub fn len(&self) -> usize {
        self.inner.lock().len()
    }

    /// True if the map is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total effective work charged by the underlying batched map.
    pub fn effective_work(&self) -> u64 {
        self.inner.lock().effective_work()
    }

    /// Number of background maintenance runs the underlying map has executed
    /// (0 for maps without a maintenance cascade — see
    /// [`BatchedMap::maintenance_runs`]).
    pub fn maintenance_runs(&self) -> u64 {
        self.inner.lock().maintenance_runs()
    }

    /// Searches for a key.  `shard` should identify the calling thread (any
    /// stable small integer); it only affects contention, not correctness.
    pub fn search(&self, shard: usize, key: K) -> Option<V> {
        match self.call(shard, Operation::Search(key)) {
            OpResult::Search(v) => v,
            other => unreachable!("search returned {other:?}", other = kind(&other)),
        }
    }

    /// Inserts a key/value pair, returning the previous value if any.
    pub fn insert(&self, shard: usize, key: K, val: V) -> Option<V> {
        match self.call(shard, Operation::Insert(key, val)) {
            OpResult::Insert(v) => v,
            other => unreachable!("insert returned {other:?}", other = kind(&other)),
        }
    }

    /// Deletes a key, returning its value if it was present.
    pub fn delete(&self, shard: usize, key: K) -> Option<V> {
        match self.call(shard, Operation::Delete(key)) {
            OpResult::Delete(v) => v,
            other => unreachable!("delete returned {other:?}", other = kind(&other)),
        }
    }

    /// True when the current caller must never park on the doorbell: the
    /// map's hand-off is slot-free ([`Handoff::Cell`]) or await-able
    /// ([`Handoff::Waker`] — a *blocking* call has no task to wake, so it
    /// waits cell-style), or the calling thread is polling an async service
    /// task ([`crate::context::in_service_task`]).  In the latter case a
    /// park could deadlock the executor — the parked worker may be the only
    /// thread that would ever poll the task whose combine rings the bell —
    /// so the doorbell path degrades, panic- and deadlock-free, to the
    /// bounded-backoff wait instead of parking.
    fn never_park(&self) -> bool {
        matches!(self.handoff, Handoff::Cell | Handoff::Waker) || crate::context::in_service_task()
    }

    /// Deposits one call and drives combining until its result is available.
    ///
    /// The loop below is deadlock-free by a pairing argument: a caller parks
    /// only after (a) capturing the doorbell generation, then (b) attempting
    /// the activation itself.  If the attempt lost, some other thread held
    /// the activation at that moment, and that holder's activation finishes
    /// with a [`Doorbell::ring`] *after* releasing — i.e. after our capture —
    /// so our park is bounded by it.  If the attempt won, we combined until
    /// the buffer was empty and our own result was delivered (possibly by an
    /// earlier combiner).
    pub fn call(&self, shard: usize, op: Operation<K, V>) -> OpResult<V> {
        let slot = Arc::new(ResultCell::new());
        self.buffer.push(
            shard,
            Pending {
                op,
                slot: Arc::clone(&slot),
            },
        );
        let never_park = self.never_park();
        let mut backoff = Backoff::new();
        loop {
            let seen = self.doorbell.current();
            self.drive();
            if let Some(r) = slot.try_take() {
                return r;
            }
            // Another thread holds the combiner role.  Spin briefly before
            // pausing: with small batches the combiner's whole cycle is
            // shorter than a futex sleep/wake round trip, so most results
            // arrive within a few yields.  The yield also donates the CPU to
            // the combiner on oversubscribed machines.
            if never_park {
                // Slot-free hand-off: never park.  Spin on our own
                // sequence-stamped cell, then loop back to re-attempt the
                // activation (if our op is still buffered, we will
                // eventually win the election and combine it ourselves).
                // The pauses escalate into the bounded backoff, so a long
                // wait costs capped sleeps rather than a pegged core.
                for _ in 0..self.spin_wait.max(1) {
                    std::thread::yield_now();
                    if let Some(r) = slot.try_take() {
                        return r;
                    }
                }
                backoff.pause();
            } else {
                let mut delivered = false;
                for _ in 0..self.spin_wait {
                    std::thread::yield_now();
                    if let Some(r) = slot.try_take() {
                        return r;
                    }
                    if self.doorbell.current() != seen {
                        // A hand-off happened; re-attempt the activation
                        // rather than parking on a generation that
                        // already passed.
                        delivered = true;
                        break;
                    }
                }
                if !delivered {
                    // Park until the next hand-off, then re-check /
                    // re-attempt.
                    self.doorbell.wait_past(seen);
                }
            }
        }
    }

    /// Deposits a whole sub-batch of operations (sharing one buffer shard)
    /// and drives combining until every result is available, returning them
    /// in operation order.  This is the batch entry point the `wsm-shard`
    /// router uses: one publication-ring pass and one waiting loop for the
    /// entire sub-batch instead of a blocking round trip per operation.
    ///
    /// The deposited operations need not execute in a single combine — a
    /// concurrent combiner may drain a prefix of the publication while the
    /// rest is still in flight — so the waiting loop harvests cells
    /// incrementally until all have been filled.  Deadlock-freedom follows
    /// from the same pairing argument as [`ConcurrentMap::call`].
    pub fn call_batch(&self, shard: usize, ops: Vec<Operation<K, V>>) -> Vec<OpResult<V>> {
        let n = ops.len();
        if n == 0 {
            return Vec::new();
        }
        let cells = self.submit_batch(shard, ops);
        let mut results: Vec<Option<OpResult<V>>> = (0..n).map(|_| None).collect();
        let mut remaining = n;
        let harvest = |results: &mut Vec<Option<OpResult<V>>>, remaining: &mut usize| {
            for (cell, out) in cells.iter().zip(results.iter_mut()) {
                if out.is_none() {
                    if let Some(r) = cell.try_take() {
                        *out = Some(r);
                        *remaining -= 1;
                    }
                }
            }
            *remaining == 0
        };
        let never_park = self.never_park();
        let mut backoff = Backoff::new();
        loop {
            let seen = self.doorbell.current();
            self.drive();
            if harvest(&mut results, &mut remaining) {
                break;
            }
            if never_park {
                for _ in 0..self.spin_wait.max(1) {
                    std::thread::yield_now();
                    if harvest(&mut results, &mut remaining) {
                        return finish(results);
                    }
                }
                backoff.pause();
            } else {
                let mut delivered = false;
                for _ in 0..self.spin_wait {
                    std::thread::yield_now();
                    if harvest(&mut results, &mut remaining) {
                        return finish(results);
                    }
                    if self.doorbell.current() != seen {
                        delivered = true;
                        break;
                    }
                }
                if !delivered {
                    self.doorbell.wait_past(seen);
                }
            }
        }
        finish(results)
    }

    /// Deposits a sub-batch of operations *without waiting*, returning each
    /// operation's sequence-stamped result cell in operation order.  This is
    /// the async entry point: an `await`-able caller (the `wsm-svc`
    /// front-end) registers its task waker on each still-empty cell
    /// ([`ResultCell::set_waker`]) and is woken by the combiner's fill —
    /// [`Handoff::Waker`] — instead of blocking here.
    ///
    /// The deposit alone does not guarantee execution: some context must
    /// drive the combiner election.  Callers either follow up with
    /// [`ConcurrentMap::pump`] (a non-blocking election attempt — the async
    /// future does this on every poll) or rely on a concurrent combiner,
    /// whose activation keeps re-running while the buffer is non-empty.
    pub fn submit_batch(
        &self,
        shard: usize,
        ops: Vec<Operation<K, V>>,
    ) -> Vec<Arc<ResultCell<OpResult<V>>>> {
        let cells: Vec<Arc<ResultCell<OpResult<V>>>> = (0..ops.len())
            .map(|_| Arc::new(ResultCell::new()))
            .collect();
        let items: Vec<Pending<K, V>> = ops
            .into_iter()
            .zip(&cells)
            .map(|(op, cell)| Pending {
                op,
                slot: Arc::clone(cell),
            })
            .collect();
        if !items.is_empty() {
            self.buffer.push_batch(shard, items);
        }
        cells
    }

    /// One non-blocking combiner election attempt: if the activation is free
    /// and work is buffered, the calling thread combines it (filling — and
    /// in waker mode waking — the affected cells); if another thread holds
    /// the activation, returns immediately.  Never parks and never waits.
    /// This is how async callers donate their poll time to the combiner —
    /// flat combining's "whoever shows up does the work" — without any
    /// thread blocking.
    pub fn pump(&self) {
        self.drive();
    }

    /// True while any deposited operation is still in the publication
    /// buffer (i.e. not yet flushed into a combiner's batch).  An async
    /// caller whose cells are empty while this is `false` knows its
    /// operations are in some in-flight batch whose fill will wake it, so it
    /// can safely suspend; while `true` it must keep pumping (or yield and
    /// re-poll) because the combiner election may be unheld.
    pub fn buffered(&self) -> bool {
        !self.buffer.is_empty()
    }

    /// One pass of the combiner election: attempt the activation (combining
    /// everything buffered while we hold it) and ring the doorbell after
    /// releasing it.
    fn drive(&self) {
        // Try to become the combiner; whoever wins processes everything
        // currently buffered (and re-runs while more arrives).  The
        // readiness condition is `true` so that *holding* the activation
        // always implies at least one run — and therefore a ring below —
        // even if the buffer momentarily looks empty.
        let runs = self.buffer.activate(
            || true,
            || {
                let drained = self.combine();
                let more = !self.buffer.is_empty();
                if more && drained == 0 {
                    // The buffer claims an item the flush could not see:
                    // a producer is mid-publish (counted, seq stamp not
                    // yet released).  Donate the CPU so its store lands
                    // instead of respinning the activation hot; under
                    // the model checker this yield is also what lets the
                    // fair scheduler run the producer (found as a
                    // starvation livelock by tests/model_doorbell.rs).
                    wsm_check::thread::yield_now();
                }
                more
            },
        );
        if runs > 0 {
            // Ring once more *after releasing* the activation: anyone
            // whose activation attempt we beat re-checks against a
            // released interface, which closes the hand-off race.  In cell
            // mode nobody parks, so the ring is a cheap uncontended bump
            // that keeps mixed-mode callers (and `len` observers) correct.
            self.doorbell.ring();
        }
    }

    /// Flushes the buffer and runs the accumulated batch through the
    /// underlying map (inside the work-stealing pool, so the batch's internal
    /// parallelism fans out), delivering each result to its caller.  Returns
    /// the number of operations the flush actually drained.
    fn combine(&self) -> usize {
        // Uncontended by construction: only the activation holder combines.
        let mut scratch = self.scratch.lock();
        let CombineScratch { pending, slots } = &mut *scratch;
        // Clear rather than assert empty: if a previous combine unwound out
        // of `run_batch`, stale slots must not poison every later combine
        // (that batch's callers are lost either way).
        pending.clear();
        slots.clear();
        let _cost = self.buffer.flush_into(pending);
        let drained = pending.len();
        if pending.is_empty() {
            return 0;
        }
        let batch: Vec<TaggedOp<K, V>> = pending
            .drain(..)
            .enumerate()
            .map(|(i, p)| {
                slots.push(p.slot);
                TaggedOp {
                    id: i as OpId,
                    op: p.op,
                }
            })
            .collect();
        let mut inner = self.inner.lock();
        // Commit point: the WAL (or any other observer) must see the batch
        // before it mutates the map — and under the same lock, so a
        // checkpointer holding `inner` can never observe applied state the
        // hook has not logged.  If the hook panics (e.g. the log device
        // died), the batch is neither logged nor applied.
        if let Some(hook) = &self.commit_hook {
            hook(&batch);
        }
        let map: &mut M = &mut inner;
        // Small batches have no internal parallelism worth a pool round trip;
        // run them right here on the combiner thread.
        let (results, _cost) = if batch.len() <= self.inline_threshold {
            map.run_batch(batch)
        } else {
            match &self.pool {
                Some(pool) => pool.install(move || map.run_batch(batch)),
                None => wsm_pool::run(move || map.run_batch(batch)),
            }
        };
        drop(inner);
        for (id, result) in results {
            slots[id as usize].fill(result);
        }
        slots.clear();
        drained
    }
}

/// Unwraps a fully harvested result vector (every cell was taken).
fn finish<V>(results: Vec<Option<OpResult<V>>>) -> Vec<OpResult<V>> {
    results
        .into_iter()
        .map(|r| r.expect("call_batch returned with an unharvested cell"))
        .collect()
}

fn kind<V>(r: &OpResult<V>) -> &'static str {
    match r {
        OpResult::Search(_) => "Search",
        OpResult::Insert(_) => "Insert",
        OpResult::Delete(_) => "Delete",
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::m1::M1;
    use crate::m2::M2;
    use std::sync::Arc;

    #[test]
    fn single_threaded_roundtrip() {
        let map = ConcurrentMap::new(M1::<u64, u64>::new(4), 4);
        assert_eq!(map.insert(0, 1, 10), None);
        assert_eq!(map.insert(0, 1, 11), Some(10));
        assert_eq!(map.search(0, 1), Some(11));
        assert_eq!(map.search(0, 2), None);
        assert_eq!(map.delete(0, 1), Some(11));
        assert_eq!(map.search(0, 1), None);
        assert_eq!(map.len(), 0);
    }

    #[test]
    fn roundtrip_on_dedicated_pool() {
        let pool = Arc::new(wsm_pool::ThreadPool::new(2));
        let map = ConcurrentMap::with_pool(M1::<u64, u64>::new(4), 4, pool);
        for k in 0..500u64 {
            assert_eq!(map.insert(0, k, k + 1), None);
        }
        for k in 0..500u64 {
            assert_eq!(map.search(0, k), Some(k + 1));
        }
        assert_eq!(map.len(), 500);
    }

    #[test]
    fn inline_and_pooled_paths_agree() {
        // Force every batch down each path in turn; results must match.
        for threshold in [0usize, usize::MAX] {
            let map =
                ConcurrentMap::new(M1::<u64, u64>::new(4), 4).with_inline_threshold(threshold);
            assert_eq!(map.inline_threshold(), threshold);
            for k in 0..200u64 {
                assert_eq!(map.insert(0, k, k * 3), None);
            }
            for k in 0..200u64 {
                assert_eq!(map.search(0, k), Some(k * 3));
            }
            assert_eq!(map.delete(0, 7), Some(21));
            assert_eq!(map.search(0, 7), None);
            assert_eq!(map.len(), 199);
        }
    }

    #[test]
    fn inline_path_under_contention() {
        let map = Arc::new(
            ConcurrentMap::new(M1::<u64, u64>::new(8), 8).with_inline_threshold(usize::MAX),
        );
        let threads = 8u64;
        let per = 1_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let map = Arc::clone(&map);
                std::thread::spawn(move || {
                    for i in 0..per {
                        let key = t * per + i;
                        assert_eq!(map.insert(t as usize, key, key + 1), None);
                        assert_eq!(map.search(t as usize, key), Some(key + 1));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(map.len(), (threads * per) as usize);
    }

    #[test]
    fn many_threads_insert_disjoint_ranges() {
        let map = Arc::new(ConcurrentMap::new(M1::<u64, u64>::new(8), 8));
        let threads = 8u64;
        let per = 2_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let map = Arc::clone(&map);
                std::thread::spawn(move || {
                    for i in 0..per {
                        let key = t * per + i;
                        assert_eq!(map.insert(t as usize, key, key * 2), None);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(map.len(), (threads * per) as usize);
        // Spot check values from a different thread.
        for key in (0..threads * per).step_by(997) {
            assert_eq!(map.search(0, key), Some(key * 2));
        }
    }

    #[test]
    fn concurrent_mixed_workload_on_m2_is_consistent() {
        // Threads operate on disjoint key ranges so per-key sequential
        // semantics are checkable despite arbitrary interleaving.
        let map = Arc::new(ConcurrentMap::new(M2::<u64, u64>::new(4), 4));
        let threads = 4u64;
        let per = 1_000u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let map = Arc::clone(&map);
                std::thread::spawn(move || {
                    let base = t * 1_000_000;
                    for i in 0..per {
                        let key = base + i;
                        assert_eq!(map.insert(t as usize, key, i), None);
                        assert_eq!(map.search(t as usize, key), Some(i));
                        if i % 3 == 0 {
                            assert_eq!(map.delete(t as usize, key), Some(i));
                            assert_eq!(map.search(t as usize, key), None);
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let expected_per_thread = per - per.div_ceil(3);
        assert_eq!(map.len(), (threads * expected_per_thread) as usize);
    }

    #[test]
    fn call_batch_returns_results_in_operation_order() {
        let map = ConcurrentMap::new(M1::<u64, u64>::new(4), 4);
        assert!(map.call_batch(0, Vec::new()).is_empty());
        let ops: Vec<Operation<u64, u64>> = (0..100)
            .map(|k| Operation::Insert(k, k * 2))
            .chain((0..100).map(Operation::Search))
            .chain([Operation::Delete(7), Operation::Search(7)])
            .collect();
        let results = map.call_batch(0, ops);
        assert_eq!(results.len(), 202);
        for k in 0..100u64 {
            assert_eq!(results[k as usize], OpResult::Insert(None));
            assert_eq!(results[100 + k as usize], OpResult::Search(Some(k * 2)));
        }
        assert_eq!(results[200], OpResult::Delete(Some(14)));
        assert_eq!(results[201], OpResult::Search(None));
        assert_eq!(map.len(), 99);
    }

    #[test]
    fn call_batch_under_contention_from_many_threads() {
        for handoff in [Handoff::Doorbell, Handoff::Cell] {
            let map = Arc::new(ConcurrentMap::new(M1::<u64, u64>::new(8), 8).with_handoff(handoff));
            let threads = 6u64;
            let per = 400u64;
            let handles: Vec<_> = (0..threads)
                .map(|t| {
                    let map = Arc::clone(&map);
                    std::thread::spawn(move || {
                        let base = t * 1_000_000;
                        for chunk in 0..4 {
                            let ops: Vec<Operation<u64, u64>> = (0..per / 4)
                                .map(|i| {
                                    let k = base + chunk * (per / 4) + i;
                                    Operation::Insert(k, k + 1)
                                })
                                .collect();
                            let keys: Vec<u64> = ops.iter().map(|o| *o.key()).collect();
                            for r in map.call_batch(t as usize, ops) {
                                assert_eq!(r, OpResult::Insert(None));
                            }
                            let results = map.call_batch(
                                t as usize,
                                keys.iter().copied().map(Operation::Search).collect(),
                            );
                            for (k, r) in keys.iter().zip(results) {
                                assert_eq!(r, OpResult::Search(Some(k + 1)));
                            }
                        }
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            assert_eq!(map.len(), (threads * per) as usize);
        }
    }

    #[test]
    fn cell_handoff_point_ops_under_contention() {
        let map =
            Arc::new(ConcurrentMap::new(M1::<u64, u64>::new(8), 8).with_handoff(Handoff::Cell));
        assert_eq!(map.handoff(), Handoff::Cell);
        let threads = 8u64;
        let per = 500u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let map = Arc::clone(&map);
                std::thread::spawn(move || {
                    for i in 0..per {
                        let key = t * per + i;
                        assert_eq!(map.insert(t as usize, key, key + 1), None);
                        assert_eq!(map.search(t as usize, key), Some(key + 1));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(map.len(), (threads * per) as usize);
    }

    #[test]
    fn maintenance_runs_visible_through_front_end() {
        let map = ConcurrentMap::new(M2::<u64, u64>::new(4), 4);
        for k in 0..4_000u64 {
            map.insert(0, k, k);
        }
        // Deletions punch holes into the cascade, which the dedicated
        // maintenance runs refill.  M1 has no cascade.
        for k in 0..2_000u64 {
            map.delete(0, k * 2);
        }
        assert!(map.maintenance_runs() > 0);
        let m1 = ConcurrentMap::new(M1::<u64, u64>::new(4), 4);
        m1.insert(0, 1, 1);
        assert_eq!(m1.maintenance_runs(), 0);
    }

    #[test]
    fn combiner_batches_many_callers() {
        // With many threads hammering a single hot key, the per-operation
        // effective work must stay bounded by a constant that does not depend
        // on the map size: after the first access the key sits at the front of
        // the working-set structure, and duplicates that land in the same
        // batch combine.  (How much combining happens depends on thread
        // timing, so the constant below only assumes front-of-structure
        // accesses plus per-batch overhead, not any particular batch size.)
        let n = 1u64 << 12;
        let mut inner = M1::<u64, u64>::new(8);
        inner.run_ops((0..n).map(|i| Operation::Insert(i, i)).collect());
        let warm_work = inner.effective_work();
        let map = Arc::new(ConcurrentMap::new(inner, 8));
        let threads = 8;
        let per = 500u64;
        let handles: Vec<_> = (0..threads)
            .map(|t| {
                let map = Arc::clone(&map);
                std::thread::spawn(move || {
                    for _ in 0..per {
                        assert_eq!(map.search(t, n / 2), Some(n / 2));
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let total_ops = threads as u64 * per;
        let work = map.effective_work() - warm_work;
        assert!(
            work < total_ops * 60,
            "hot-key hammering must have size-independent per-op cost: {work} work for {total_ops} ops"
        );
    }
}
