//! # wsm-core — the parallel working-set maps M1 and M2
//!
//! This crate is the primary contribution of the reproduced paper:
//!
//! * [`M1`] — the *simple* batched parallel working-set map (Section 6).
//!   Operations arrive through a parallel buffer, are cut into bounded-size
//!   batches, entropy-sorted so duplicate accesses combine into
//!   group-operations, and then passed through the segment cascade
//!   `S[0] → S[1] → …`.  Theorems 12/13: effective work `O(W_L + e_L log p)`
//!   and effective span `O(N/p + d((log p)² + log n))`.
//! * [`M2`] — the *pipelined* parallel working-set map (Section 7).  The first
//!   `m = ⌈log log 2p²⌉ + 1` segments form the first slab (processed like M1);
//!   the remaining segments form the final slab, a pipeline of segments
//!   separated by buffers and guarded by neighbour-locks and front-locks, fed
//!   through a *filter* that guarantees all in-flight final-slab operations
//!   are on distinct items.  Theorems 22/25: effective work `O(W_L + e_L log
//!   p)` and effective span `O(W_L/p + d(log p)² + s_L)` under a weak-priority
//!   scheduler.
//! * [`buffer::ParallelBuffer`] — the implicit-batching parallel buffer
//!   (Appendix A.1, Theorem 26).
//! * [`concurrent::ConcurrentMap`] — a thread-safe front-end that lets an
//!   ordinary multithreaded program call `search`/`insert`/`delete` and have
//!   the calls implicitly batched into M1 or M2 (the role the runtime system
//!   plays in the paper's model, realised as flat combining per Section 8's
//!   practical-scheduler discussion).
//!
//! Every structure charges analytic costs (effective work/span in the QRMW
//! model) to a [`wsm_model::CostMeter`]; the experiment harness in `wsm-bench`
//! compares those against the working-set bound `W_L`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use wsm_check::env;

pub mod buffer;
pub mod concurrent;
pub mod context;
pub mod doorbell;
pub mod feed;
pub mod handoff;
pub mod m1;
pub mod m2;
pub mod ops;

pub use buffer::ParallelBuffer;
pub use concurrent::{CommitHook, ConcurrentMap, Handoff, BACKOFF_CAP_US, DEFAULT_INLINE_BATCH};
pub use context::{in_service_task, ServiceTaskGuard};
pub use feed::{Bunch, FeedBuffer};
pub use handoff::ResultCell;
pub use m1::M1;
pub use m2::M2;
pub use ops::{BatchedMap, GroupOp, OpId, OpResult, Operation, TaggedOp};
