//! # wsm-shard — sharded `ConcurrentMap` front-end
//!
//! A single [`ConcurrentMap`] funnels every operation through one flat
//! combiner, so past a handful of threads the combiner — not the batched map
//! underneath — becomes the bottleneck.  [`ShardedMap`] scales past that
//! point by partitioning the keyspace across `S` *independent* shards, each a
//! full `ConcurrentMap` with its own combiner, publication rings and recency
//! clock, behind a thin router:
//!
//! ```text
//!             caller batch [op, op, op, …]
//!                          │ split by Partitioner::shard_of
//!             ┌────────────┼────────────┐
//!             ▼            ▼            ▼
//!        shard 0       shard 1   …  shard S-1        (each: ParallelBuffer →
//!      call_batch     call_batch    call_batch        combiner → M1/M2)
//!             │            │            │
//!             └────────────┼────────────┘
//!                          ▼ stitch by route map
//!             results in caller order
//! ```
//!
//! Per-key operation order is preserved: the partitioner is a pure function
//! of the key, so every operation on a key flows through exactly one shard,
//! and within a caller's batch the shard's group resolution applies same-key
//! operations in sub-batch order.  Cross-key (cross-shard) operations carry
//! no ordering obligation — each shard is independently linearizable, which
//! is exactly the per-key guarantee the property suite checks.
//!
//! ## Dispatch discipline (deadlock freedom)
//!
//! Routing a batch to several busy shards means making several *blocking*
//! [`ConcurrentMap::call_batch`] calls.  Running those on the global
//! work-stealing pool could deadlock: every worker could end up parked
//! waiting on some shard's doorbell while the batch job that would ring it
//! sits unclaimed in the injector.  The router therefore owns a **dedicated**
//! pool, used for nothing but dispatch.  A router worker that wins a shard's
//! combiner election executes the batch *inline on itself* (`wsm_pool::run`
//! is inline on any pool worker, and un-stolen `join` halves run on the
//! caller), so its progress never depends on another — possibly blocked —
//! router worker.  When only one shard has work (or `S == 1`) the router
//! pool is bypassed and the call runs inline on the caller.
//!
//! **Service-task callers never run sub-batches inline.**  The
//! inline-on-caller shortcut assumes the caller is an ordinary OS thread
//! that may block in `call_batch`'s waiting loop.  A caller that is an
//! *async service task* (an executor worker polling a `wsm-svc` future —
//! [`wsm_core::in_service_task`]) must not: the combiner election it would
//! wait on can depend on other tasks of the same executor being polled, and
//! with a single executor worker that wait is a deadlock.  When the caller
//! context is a service task, [`ShardedMap::run_batch`] therefore routes
//! *every* sub-batch — including a single busy shard, and including `S == 1`
//! (whose router pool is created lazily on first need) — through the
//! dedicated router pool: the blocking election runs on a router worker
//! that is allowed to block, and the service task's wait shrinks to a
//! bounded join on work actually in progress.  (The genuinely non-blocking
//! surface for async callers is [`ShardedMap::submit_batch`] +
//! [`ShardedMap::pump`], which never waits at all — `run_batch` from a
//! service task is the degraded-but-safe path.)
//!
//! ## Knobs
//!
//! * `WSM_SHARDS` — default shard count for [`ShardedMap::new`] (default 1).
//! * `WSM_HANDOFF` — waiter hand-off inside each shard (`doorbell` | `cell`
//!   | `waker`), see [`Handoff`]; [`ShardedMap::with_handoff`] overrides per
//!   map.
//! * [`Partitioner`] — pluggable placement: [`HashPartitioner`] (default,
//!   multiplicative hashing) or [`RangePartitioner`] for ordered workloads.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod partition;

pub use partition::{HashPartitioner, Partitioner, RangePartitioner};

use std::cell::Cell;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use wsm_core::{BatchedMap, ConcurrentMap, Handoff, OpResult, Operation, ResultCell};

/// Submitter-ring count for each shard's parallel buffer (the same default a
/// standalone front-end would pick for a handful of threads).
const BUFFER_SHARDS: usize = 8;

/// Router dispatch job: `(shard index, take-once slot with its sub-batch)`.
type DispatchJob<K, V> = (usize, Mutex<Option<Vec<Operation<K, V>>>>);

/// Shard count from `WSM_SHARDS`, default 1 (unsharded).  `WSM_SHARDS=0` or
/// garbage warns once on stderr instead of silently running unsharded.
fn shards_from_env() -> usize {
    wsm_core::env::parse("WSM_SHARDS", "a shard count >= 1", 1, |&s| s >= 1)
}

/// Distinct-per-thread submitter hint for the shards' parallel buffers.
///
/// The hint only picks which lock-free ring a deposit lands in; it affects
/// contention, never correctness, so a process-wide counter handed out once
/// per thread is all that's needed.
fn caller_hint() -> usize {
    static NEXT_HINT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static HINT: Cell<Option<usize>> = const { Cell::new(None) };
    }
    HINT.with(|hint| match hint.get() {
        Some(h) => h,
        None => {
            // ord: Relaxed — the counter only hands out distinct ring hints;
            // nothing is published through it and no other memory access
            // depends on its order.
            let h = NEXT_HINT.fetch_add(1, Ordering::Relaxed);
            hint.set(Some(h));
            h
        }
    })
}

/// Point-in-time counters for one shard, for occupancy / load-balance
/// reporting (experiment E19 aggregates these into per-shard `W/W_L` rows).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ShardStats {
    /// Index of the shard these counters describe.
    pub shard: usize,
    /// Items currently stored in the shard.
    pub len: usize,
    /// Total effective work charged by the shard's batched map.
    pub effective_work: u64,
    /// Background maintenance runs executed by the shard's map (0 for maps
    /// without a maintenance cascade).
    pub maintenance_runs: u64,
}

/// A hash- or range-partitioned family of [`ConcurrentMap`] shards behind a
/// batch router.  See the [crate docs](crate) for the architecture and the
/// dispatch discipline.
pub struct ShardedMap<K, V, M, P = HashPartitioner> {
    shards: Vec<ConcurrentMap<K, V, M>>,
    partitioner: P,
    /// Dedicated dispatch pool.  Built eagerly for multi-shard maps (whose
    /// `run_batch` fan-out always needs it) and lazily for `S == 1` maps,
    /// which only need one if a service-task caller ever shows up (see the
    /// dispatch discipline in the crate docs).
    router: OnceLock<wsm_pool::ThreadPool>,
}

impl<K, V, M> ShardedMap<K, V, M, HashPartitioner>
where
    K: Ord + Clone + Send + std::hash::Hash,
    V: Clone + Send,
    M: BatchedMap<K, V> + Send,
{
    /// Builds a sharded map with the shard count taken from `WSM_SHARDS`
    /// (default 1).  `make(i)` constructs the batched map for shard `i`.
    pub fn new(make: impl FnMut(usize) -> M) -> Self {
        Self::with_shards(shards_from_env(), make)
    }

    /// Builds a sharded map with exactly `shards` shards (at least one).
    /// `make(i)` constructs the batched map for shard `i`.
    pub fn with_shards(shards: usize, mut make: impl FnMut(usize) -> M) -> Self {
        let shards = shards.max(1);
        let router = OnceLock::new();
        if shards > 1 {
            let _ = router.set(wsm_pool::ThreadPool::new(shards));
        }
        ShardedMap {
            shards: (0..shards)
                .map(|i| ConcurrentMap::new(make(i), BUFFER_SHARDS))
                .collect(),
            partitioner: HashPartitioner,
            router,
        }
    }
}

impl<K, V, M, P> ShardedMap<K, V, M, P>
where
    K: Ord + Clone + Send,
    V: Clone + Send,
    M: BatchedMap<K, V> + Send,
    P: Partitioner<K>,
{
    /// Swaps in a different partitioner (e.g. [`RangePartitioner`] for
    /// ordered workloads).  Must be done before the map holds data routed by
    /// the old partitioner — keys do not migrate.
    #[must_use]
    pub fn with_partitioner<Q: Partitioner<K>>(self, partitioner: Q) -> ShardedMap<K, V, M, Q> {
        ShardedMap {
            shards: self.shards,
            partitioner,
            router: self.router,
        }
    }

    /// Overrides the waiter hand-off mode of every shard (the default comes
    /// from `WSM_HANDOFF`; see [`Handoff`]).
    #[must_use]
    pub fn with_handoff(mut self, handoff: Handoff) -> Self {
        self.shards = self
            .shards
            .into_iter()
            .map(|shard| shard.with_handoff(handoff))
            .collect();
        self
    }

    /// Overrides the inline-batch threshold of every shard (see
    /// [`ConcurrentMap::with_inline_threshold`]).
    #[must_use]
    pub fn with_inline_threshold(mut self, threshold: usize) -> Self {
        self.shards = self
            .shards
            .into_iter()
            .map(|shard| shard.with_inline_threshold(threshold))
            .collect();
        self
    }

    /// Rebuilds each shard's front-end through `f` (builder style).  This is
    /// how `wsm-wal` installs per-shard commit hooks: each shard's combiner
    /// is its own serialization point, so durability wraps the shard's
    /// [`ConcurrentMap`] itself rather than the router.  Must run before the
    /// map is shared — rebuilding discards nothing, but in-flight callers
    /// would race the swap.
    #[must_use]
    pub fn configure_shards(
        mut self,
        mut f: impl FnMut(usize, ConcurrentMap<K, V, M>) -> ConcurrentMap<K, V, M>,
    ) -> Self {
        self.shards = self
            .shards
            .into_iter()
            .enumerate()
            .map(|(i, shard)| f(i, shard))
            .collect();
        self
    }

    /// Runs `f` with exclusive access to one shard's underlying batched map,
    /// serialized against that shard's combiner (see
    /// [`ConcurrentMap::with_inner`]) — the `wsm-wal` checkpointer snapshots
    /// a shard here.  Panics if `shard` is out of range.
    pub fn with_shard_inner<R>(&self, shard: usize, f: impl FnOnce(&mut M) -> R) -> R {
        self.shards[shard].with_inner(f)
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The waiter hand-off mode of the shards (uniform across the map —
    /// [`ShardedMap::with_handoff`] sets all shards at once).
    pub fn handoff(&self) -> Handoff {
        self.shards[0].handoff()
    }

    /// The shard that owns `key` under this map's partitioner.
    pub fn shard_of(&self, key: &K) -> usize {
        self.partitioner.shard_of(key, self.shards.len())
    }

    /// Total number of items across all shards (takes each shard's combiner
    /// lock briefly).
    pub fn len(&self) -> usize {
        self.shards.iter().map(ConcurrentMap::len).sum()
    }

    /// True if every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Total effective work charged across all shards.
    pub fn effective_work(&self) -> u64 {
        self.shards.iter().map(ConcurrentMap::effective_work).sum()
    }

    /// Total background maintenance runs across all shards.
    pub fn maintenance_runs(&self) -> u64 {
        self.shards
            .iter()
            .map(ConcurrentMap::maintenance_runs)
            .sum()
    }

    /// Per-shard occupancy and cost counters, in shard order.
    pub fn shard_stats(&self) -> Vec<ShardStats> {
        self.shards
            .iter()
            .enumerate()
            .map(|(shard, map)| ShardStats {
                shard,
                len: map.len(),
                effective_work: map.effective_work(),
                maintenance_runs: map.maintenance_runs(),
            })
            .collect()
    }

    /// Searches for a key on its owning shard.
    pub fn get(&self, key: K) -> Option<V> {
        let shard = self.shard_of(&key);
        self.shards[shard].search(caller_hint(), key)
    }

    /// Inserts a key/value pair on the key's owning shard, returning the
    /// previous value if any.
    pub fn insert(&self, key: K, val: V) -> Option<V> {
        let shard = self.shard_of(&key);
        self.shards[shard].insert(caller_hint(), key, val)
    }

    /// Removes a key from its owning shard, returning its value if present.
    pub fn remove(&self, key: K) -> Option<V> {
        let shard = self.shard_of(&key);
        self.shards[shard].delete(caller_hint(), key)
    }

    /// The dedicated router pool, created on first need for `S == 1` maps
    /// (multi-shard maps build it eagerly in the constructor).
    fn router(&self) -> &wsm_pool::ThreadPool {
        self.router
            .get_or_init(|| wsm_pool::ThreadPool::new(self.shards.len()))
    }

    /// Runs a batch of operations, returning results in operation order.
    ///
    /// The batch is split by the partitioner into per-shard sub-batches;
    /// each sub-batch is one [`ConcurrentMap::call_batch`] on its shard.
    /// With one busy shard the call runs inline on the caller; with several,
    /// sub-batches dispatch concurrently on the router pool (see the crate
    /// docs for why that pool is dedicated).  Exception: when the caller is
    /// an async service task ([`wsm_core::in_service_task`]), *every*
    /// sub-batch — even a lone one — dispatches through the router pool, so
    /// the blocking combiner election never runs on an executor worker.
    /// Per-key order within the batch is preserved — same-key operations
    /// stay in one sub-batch, in order.
    pub fn run_batch(&self, ops: Vec<Operation<K, V>>) -> Vec<OpResult<V>> {
        let s = self.shards.len();
        if ops.is_empty() {
            return Vec::new();
        }
        // Service tasks must not run a blocking call_batch inline (see the
        // crate docs' dispatch discipline): push it onto the router pool.
        let inline_allowed = !wsm_core::in_service_task();
        if s == 1 && inline_allowed {
            return self.shards[0].call_batch(caller_hint(), ops);
        }

        // Split: route[i] = (shard, position within that shard's sub-batch).
        let mut per_shard: Vec<Vec<Operation<K, V>>> = (0..s).map(|_| Vec::new()).collect();
        let mut route = Vec::with_capacity(ops.len());
        for op in ops {
            let shard = self.partitioner.shard_of(op.key(), s);
            route.push((shard, per_shard[shard].len()));
            per_shard[shard].push(op);
        }

        let busy: Vec<usize> = (0..s).filter(|&i| !per_shard[i].is_empty()).collect();
        let hint = caller_hint();
        let mut shard_results: Vec<Vec<Option<OpResult<V>>>> = (0..s).map(|_| Vec::new()).collect();

        if busy.len() == 1 && inline_allowed {
            // One busy shard: no fan-out to pay for, run on the caller.
            let shard = busy[0];
            let results =
                self.shards[shard].call_batch(hint, std::mem::take(&mut per_shard[shard]));
            shard_results[shard] = results.into_iter().map(Some).collect();
        } else {
            // Fan out on the dedicated router pool.  Jobs hand their
            // sub-batch over through a take-once slot so nothing is cloned.
            let jobs: Vec<DispatchJob<K, V>> = busy
                .iter()
                .map(|&i| (i, Mutex::new(Some(std::mem::take(&mut per_shard[i])))))
                .collect();
            let results: Vec<(usize, Vec<OpResult<V>>)> = self.router().install(|| {
                wsm_pool::par_map(&jobs, |(shard, slot)| {
                    let ops = slot
                        .lock()
                        .expect("job slot mutex")
                        .take()
                        .expect("each dispatch job runs exactly once");
                    (*shard, self.shards[*shard].call_batch(hint, ops))
                })
            });
            for (shard, result) in results {
                shard_results[shard] = result.into_iter().map(Some).collect();
            }
        }

        // Stitch back into caller order.
        route
            .into_iter()
            .map(|(shard, idx)| {
                shard_results[shard][idx]
                    .take()
                    .expect("every routed slot is filled exactly once")
            })
            .collect()
    }

    /// Deposits a batch without waiting: the async submission surface.
    ///
    /// The batch is split by the partitioner exactly as in
    /// [`ShardedMap::run_batch`], each sub-batch is deposited into its
    /// shard's parallel buffer via [`ConcurrentMap::submit_batch`], and the
    /// returned cells are stitched back into caller order — `cells[i]` is
    /// operation `i`'s result cell.  Nothing blocks and no combiner runs;
    /// pair with [`ShardedMap::pump`] and the cells' waker registration
    /// ([`ResultCell::set_waker`]) to drive completion (this is what
    /// `wsm-svc` does).
    pub fn submit_batch(&self, ops: Vec<Operation<K, V>>) -> Vec<Arc<ResultCell<OpResult<V>>>> {
        let s = self.shards.len();
        let hint = caller_hint();
        if s == 1 {
            return self.shards[0].submit_batch(hint, ops);
        }
        let mut per_shard: Vec<Vec<Operation<K, V>>> = (0..s).map(|_| Vec::new()).collect();
        let mut route = Vec::with_capacity(ops.len());
        for op in ops {
            let shard = self.partitioner.shard_of(op.key(), s);
            route.push((shard, per_shard[shard].len()));
            per_shard[shard].push(op);
        }
        let mut shard_cells: Vec<Vec<Arc<ResultCell<OpResult<V>>>>> =
            (0..s).map(|_| Vec::new()).collect();
        for (i, sub) in per_shard.into_iter().enumerate() {
            if !sub.is_empty() {
                shard_cells[i] = self.shards[i].submit_batch(hint, sub);
            }
        }
        route
            .into_iter()
            .map(|(shard, idx)| Arc::clone(&shard_cells[shard][idx]))
            .collect()
    }

    /// Makes one non-blocking combiner-election attempt on every shard with
    /// buffered work (see [`ConcurrentMap::pump`]).  The caller may become a
    /// combiner and execute batches inline; it never waits for one.
    pub fn pump(&self) {
        for shard in &self.shards {
            if shard.buffered() {
                shard.pump();
            }
        }
    }

    /// True if any shard's parallel buffer holds operations not yet claimed
    /// by a combiner (see [`ConcurrentMap::buffered`]).
    pub fn buffered(&self) -> bool {
        self.shards.iter().any(ConcurrentMap::buffered)
    }

    /// Batch search: one result per key, in input order.
    pub fn get_batch(&self, keys: Vec<K>) -> Vec<Option<V>> {
        let results = self.run_batch(keys.into_iter().map(Operation::Search).collect());
        results.into_iter().map(unwrap_value).collect()
    }

    /// Batch insert: the previous value per pair, in input order.
    pub fn insert_batch(&self, pairs: Vec<(K, V)>) -> Vec<Option<V>> {
        let results = self.run_batch(
            pairs
                .into_iter()
                .map(|(k, v)| Operation::Insert(k, v))
                .collect(),
        );
        results.into_iter().map(unwrap_value).collect()
    }

    /// Batch remove: the removed value per key, in input order.
    pub fn remove_batch(&self, keys: Vec<K>) -> Vec<Option<V>> {
        let results = self.run_batch(keys.into_iter().map(Operation::Delete).collect());
        results.into_iter().map(unwrap_value).collect()
    }
}

/// Collapses an [`OpResult`] to its carried value, whatever the op kind.
fn unwrap_value<V>(result: OpResult<V>) -> Option<V> {
    match result {
        OpResult::Search(v) | OpResult::Insert(v) | OpResult::Delete(v) => v,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;
    use wsm_core::{M1, M2};

    fn sharded(shards: usize) -> ShardedMap<u64, u64, M1<u64, u64>> {
        ShardedMap::with_shards(shards, |_| M1::new(4))
    }

    #[test]
    fn single_shard_roundtrip() {
        let map = sharded(1);
        assert_eq!(map.insert(7, 70), None);
        assert_eq!(map.insert(7, 71), Some(70));
        assert_eq!(map.get(7), Some(71));
        assert_eq!(map.remove(7), Some(71));
        assert_eq!(map.get(7), None);
        assert!(map.is_empty());
    }

    #[test]
    fn point_ops_match_oracle_across_shard_counts() {
        for shards in [1usize, 2, 3, 4] {
            let map = sharded(shards);
            let mut oracle = BTreeMap::new();
            for i in 0u64..500 {
                let key = (i * 37) % 101;
                match i % 3 {
                    0 => assert_eq!(
                        map.insert(key, i),
                        oracle.insert(key, i),
                        "S={shards} i={i}"
                    ),
                    1 => assert_eq!(map.get(key), oracle.get(&key).copied(), "S={shards} i={i}"),
                    _ => assert_eq!(map.remove(key), oracle.remove(&key), "S={shards} i={i}"),
                }
            }
            assert_eq!(map.len(), oracle.len());
        }
    }

    #[test]
    fn batches_stitch_results_into_caller_order() {
        for shards in [1usize, 2, 4] {
            let map = sharded(shards);
            let keys: Vec<u64> = (0..256).collect();
            let prev = map.insert_batch(keys.iter().map(|&k| (k, k * 10)).collect());
            assert!(prev.iter().all(Option::is_none));

            // Mixed batch whose result order must exactly track input order.
            let ops: Vec<Operation<u64, u64>> = (0..256u64)
                .map(|k| match k % 3 {
                    0 => Operation::Search(k),
                    1 => Operation::Insert(k, k + 1),
                    _ => Operation::Delete(k),
                })
                .collect();
            let results = map.run_batch(ops);
            for (k, r) in (0..256u64).zip(&results) {
                match k % 3 {
                    0 => assert_eq!(r, &OpResult::Search(Some(k * 10)), "S={shards} k={k}"),
                    1 => assert_eq!(r, &OpResult::Insert(Some(k * 10)), "S={shards} k={k}"),
                    _ => assert_eq!(r, &OpResult::Delete(Some(k * 10)), "S={shards} k={k}"),
                }
            }

            let got = map.get_batch(keys.clone());
            for (k, v) in keys.iter().zip(got) {
                match k % 3 {
                    1 => assert_eq!(v, Some(k + 1)),
                    0 => assert_eq!(v, Some(k * 10)),
                    _ => assert_eq!(v, None),
                }
            }
        }
    }

    #[test]
    fn same_key_order_preserved_within_a_batch() {
        let map = sharded(4);
        let ops = vec![
            Operation::Insert(5, 1),
            Operation::Insert(5, 2),
            Operation::Search(5),
            Operation::Delete(5),
            Operation::Search(5),
        ];
        let results = map.run_batch(ops);
        assert_eq!(
            results,
            vec![
                OpResult::Insert(None),
                OpResult::Insert(Some(1)),
                OpResult::Search(Some(2)),
                OpResult::Delete(Some(2)),
                OpResult::Search(None),
            ]
        );
    }

    #[test]
    fn range_partitioner_places_keys_by_block() {
        let map = ShardedMap::with_shards(4, |_| M1::<u64, u64>::new(4))
            .with_partitioner(RangePartitioner::<u64>::even(400, 4));
        assert_eq!(map.shard_of(&0), 0);
        assert_eq!(map.shard_of(&150), 1);
        assert_eq!(map.shard_of(&250), 2);
        assert_eq!(map.shard_of(&399), 3);

        let keys: Vec<u64> = (0..400).collect();
        map.insert_batch(keys.iter().map(|&k| (k, k)).collect());
        let stats = map.shard_stats();
        assert_eq!(stats.len(), 4);
        for s in &stats {
            assert_eq!(s.len, 100, "uneven range placement: {stats:?}");
        }
        assert_eq!(map.get_batch(keys), (0..400).map(Some).collect::<Vec<_>>());
    }

    #[test]
    fn shard_stats_aggregate_m2_maintenance() {
        let map = ShardedMap::with_shards(2, |_| M2::<u64, u64>::new(2));
        map.insert_batch((0..2000u64).map(|k| (k, k)).collect());
        map.remove_batch((0..1000u64).map(|k| k * 2).collect());
        let stats = map.shard_stats();
        assert_eq!(stats.iter().map(|s| s.len).sum::<usize>(), map.len());
        assert_eq!(
            stats.iter().map(|s| s.maintenance_runs).sum::<u64>(),
            map.maintenance_runs()
        );
        assert!(
            map.maintenance_runs() > 0,
            "deletion holes must trigger maintenance"
        );
        assert!(map.effective_work() > 0);
    }

    #[test]
    fn concurrent_batches_from_os_threads() {
        for handoff in [Handoff::Doorbell, Handoff::Cell] {
            let map = sharded(4).with_handoff(handoff);
            let threads = 6;
            let per_thread = 300u64;
            std::thread::scope(|scope| {
                for t in 0..threads {
                    let map = &map;
                    scope.spawn(move || {
                        let base = t * per_thread;
                        let keys: Vec<u64> = (base..base + per_thread).collect();
                        let prev = map.insert_batch(keys.iter().map(|&k| (k, k + 1)).collect());
                        assert!(prev.iter().all(Option::is_none));
                        let got = map.get_batch(keys.clone());
                        for (k, v) in keys.iter().zip(got) {
                            assert_eq!(v, Some(k + 1));
                        }
                    });
                }
            });
            assert_eq!(map.len(), (threads * per_thread) as usize);
        }
    }

    #[test]
    fn submit_then_pump_fills_cells_in_caller_order() {
        for shards in [1usize, 4] {
            let map = sharded(shards).with_handoff(Handoff::Waker);
            map.insert_batch((0..64u64).map(|k| (k, k * 2)).collect());
            let ops: Vec<Operation<u64, u64>> = (0..64u64)
                .map(|k| {
                    if k % 2 == 0 {
                        Operation::Search(k)
                    } else {
                        Operation::Delete(k)
                    }
                })
                .collect();
            let cells = map.submit_batch(ops);
            assert_eq!(cells.len(), 64);
            assert!(map.buffered(), "deposit must not run the combiner");
            while cells.iter().any(|c| !c.is_filled()) {
                map.pump();
            }
            for (k, cell) in (0..64u64).zip(&cells) {
                let expect = if k % 2 == 0 {
                    OpResult::Search(Some(k * 2))
                } else {
                    OpResult::Delete(Some(k * 2))
                };
                assert_eq!(cell.try_take(), Some(expect), "S={shards} k={k}");
            }
        }
    }

    #[test]
    fn service_task_batches_route_through_router_pool() {
        // A service-task caller must get correct results through the router
        // dispatch path for every shard count — including S == 1, whose
        // router pool is created lazily by this very call.
        for shards in [1usize, 2, 4] {
            let map = sharded(shards);
            let _guard = wsm_core::ServiceTaskGuard::new();
            let prev = map.insert_batch((0..128u64).map(|k| (k, k + 7)).collect());
            assert!(prev.iter().all(Option::is_none));
            let got = map.get_batch((0..128u64).collect());
            for (k, v) in (0..128u64).zip(got) {
                assert_eq!(v, Some(k + 7), "S={shards} k={k}");
            }
        }
    }

    #[test]
    fn empty_batch_is_a_no_op() {
        let map = sharded(4);
        assert!(map.run_batch(Vec::new()).is_empty());
        assert!(map.get_batch(Vec::new()).is_empty());
    }
}
