//! Keyspace partitioners: how the router decides which shard owns a key.
//!
//! The contract is purely functional — `shard_of(key, shards)` must be
//! deterministic and depend only on the key and the shard count — so routing
//! two operations on the same key always lands them on the same shard, which
//! is what makes every per-key history a history of exactly one (sequentially
//! consistent) shard.

use std::hash::{Hash, Hasher};

/// Maps a key to the index of the shard that owns it.
///
/// Implementations must be pure: the same `(key, shards)` pair always yields
/// the same index, and the index is `< shards`.
pub trait Partitioner<K>: Send + Sync {
    /// The shard (in `0..shards`) that owns `key`.
    fn shard_of(&self, key: &K, shards: usize) -> usize;
}

/// Fibonacci golden-ratio multiplier: the classic multiplicative-hashing
/// constant `⌊2^64 / φ⌋ | 1`, whose high bits mix every input bit.
const FIB: u64 = 0x9E37_79B9_7F4A_7C15;

/// The default partitioner: multiplicative hashing over the key's `Hash`
/// image.
///
/// The key is hashed once, the digest is multiplied by the 64-bit Fibonacci
/// constant (so low-entropy digests still spread across the high bits), and
/// the high bits are mapped onto `0..shards` with a widening multiply — no
/// modulo bias, uniform for any shard count, not just powers of two.
/// Sequential keys scatter across shards, which evens out occupancy and
/// thins each shard's access sequence by ~1/S (the property experiment E19
/// measures as the per-shard `W/W_L` curve).
#[derive(Clone, Copy, Debug, Default)]
pub struct HashPartitioner;

impl<K: Hash> Partitioner<K> for HashPartitioner {
    fn shard_of(&self, key: &K, shards: usize) -> usize {
        let mut hasher = std::hash::DefaultHasher::new();
        key.hash(&mut hasher);
        let mixed = hasher.finish().wrapping_mul(FIB);
        // High-bits range reduction: (mixed / 2^64) * shards, exactly.
        ((u128::from(mixed) * shards as u128) >> 64) as usize
    }
}

/// Range partitioner for ordered workloads: shard `i` owns keys in
/// `[bounds[i-1], bounds[i])` (shard 0 owns everything below `bounds[0]`,
/// the last shard everything at or above the last bound).
///
/// Keeps key order within and across shards, so scans and range-local
/// workloads stay shard-local — at the price of skew sensitivity: a hot key
/// range all lands on one shard.  Use when the workload is partitioned by
/// construction (per-tenant key blocks, time-ordered keys).
#[derive(Clone, Debug)]
pub struct RangePartitioner<K> {
    bounds: Vec<K>,
}

impl<K: Ord> RangePartitioner<K> {
    /// Builds a range partitioner from ascending split points.  `bounds` may
    /// be empty (everything on shard 0); it is sorted and deduplicated
    /// defensively — a duplicated split point would otherwise manufacture a
    /// zero-width range, leaving one shard permanently empty while its
    /// neighbours absorb the load.
    pub fn new(mut bounds: Vec<K>) -> Self {
        bounds.sort();
        bounds.dedup();
        RangePartitioner { bounds }
    }

    /// Evenly splits the keyspace `0..keyspace` into `shards` blocks
    /// (convenience for `u64`-keyed workloads, the repo's standard shape).
    ///
    /// Bounds at or past the keyspace are dropped: with `keyspace < shards`
    /// the block size clamps to 1, and the un-clamped arithmetic used to
    /// emit split points `>= keyspace` that no key ever reaches — the
    /// trailing shards were permanently empty while still owning a slot in
    /// every routing decision.  Now each of the first `keyspace` shards owns
    /// exactly one key and the arithmetic stays exact for the normal case.
    pub fn even(keyspace: u64, shards: usize) -> RangePartitioner<u64> {
        let shards = shards.max(1) as u64;
        let block = keyspace.div_ceil(shards).max(1);
        RangePartitioner {
            bounds: (1..shards)
                .map(|i| i * block)
                .filter(|&b| b < keyspace)
                .collect(),
        }
    }
}

impl<K: Ord + Send + Sync> Partitioner<K> for RangePartitioner<K> {
    fn shard_of(&self, key: &K, shards: usize) -> usize {
        // First bound strictly greater than the key = the owning shard.
        self.bounds.partition_point(|b| b <= key).min(shards - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn hash_partitioner_is_deterministic_and_in_range() {
        for shards in [1usize, 2, 3, 4, 7, 16] {
            for key in 0u64..1000 {
                let a = HashPartitioner.shard_of(&key, shards);
                let b = HashPartitioner.shard_of(&key, shards);
                assert_eq!(a, b);
                assert!(a < shards);
            }
        }
    }

    #[test]
    fn hash_partitioner_spreads_sequential_keys() {
        let shards = 4;
        let mut counts = vec![0usize; shards];
        for key in 0u64..4000 {
            counts[HashPartitioner.shard_of(&key, shards)] += 1;
        }
        // Uniform would be 1000 per shard; allow generous slack.
        for &c in &counts {
            assert!((600..=1400).contains(&c), "skewed occupancy: {counts:?}");
        }
    }

    #[test]
    fn range_partitioner_respects_bounds() {
        let p = RangePartitioner::new(vec![10u64, 20]);
        assert_eq!(p.shard_of(&0, 3), 0);
        assert_eq!(p.shard_of(&9, 3), 0);
        assert_eq!(p.shard_of(&10, 3), 1);
        assert_eq!(p.shard_of(&19, 3), 1);
        assert_eq!(p.shard_of(&20, 3), 2);
        assert_eq!(p.shard_of(&u64::MAX, 3), 2);
        // Clamped when bounds exceed the shard count.
        assert_eq!(p.shard_of(&25, 2), 1);
    }

    #[test]
    fn even_range_partitioner_covers_the_keyspace() {
        let p = RangePartitioner::<u64>::even(100, 4);
        let mut counts = vec![0usize; 4];
        for key in 0u64..100 {
            counts[p.shard_of(&key, 4)] += 1;
        }
        assert_eq!(counts, vec![25, 25, 25, 25]);
    }

    #[test]
    fn even_with_tiny_keyspace_uses_one_shard_per_key() {
        // Regression: keyspace < shards used to emit bounds >= keyspace, so
        // keys 0..keyspace all piled onto the first shards while the
        // trailing shards could never own a key below the last bound.
        let p = RangePartitioner::<u64>::even(2, 4);
        assert_eq!(p.shard_of(&0, 4), 0);
        assert_eq!(p.shard_of(&1, 4), 1);
        // Every in-keyspace key owns its own shard for keyspace <= shards.
        for keyspace in 1u64..=8 {
            let p = RangePartitioner::<u64>::even(keyspace, 8);
            let owners: Vec<usize> = (0..keyspace).map(|k| p.shard_of(&k, 8)).collect();
            let mut distinct = owners.clone();
            distinct.dedup();
            assert_eq!(
                distinct.len(),
                keyspace as usize,
                "keyspace {keyspace}: owners {owners:?}"
            );
        }
    }

    #[test]
    fn even_bounds_never_reach_the_keyspace() {
        for keyspace in [1u64, 2, 3, 7, 64, 100, 1000] {
            for shards in [1usize, 2, 3, 4, 7, 16, 128] {
                let p = RangePartitioner::<u64>::even(keyspace, shards);
                // Every split point must be reachable by an in-keyspace key
                // (this is exactly what the un-clamped arithmetic violated),
                // which makes every one of the bounds.len()+1 ranges
                // non-empty: each split owns a distinct shard.
                assert!(
                    p.bounds.iter().all(|&b| b < keyspace),
                    "keyspace {keyspace} x shards {shards}: dead bounds {:?}",
                    p.bounds
                );
                let mut seen = std::collections::BTreeSet::new();
                for key in 0..keyspace {
                    seen.insert(p.shard_of(&key, shards));
                }
                assert_eq!(
                    seen.len(),
                    p.bounds.len() + 1,
                    "keyspace {keyspace} x shards {shards}: some range is empty"
                );
            }
        }
    }

    #[test]
    fn duplicate_split_points_are_deduplicated() {
        // Regression: `new` kept duplicates, so bounds [10, 10, 20] made
        // shard 1 a zero-width range — permanently empty — while keys in
        // [10, 20) landed on shard 2.
        let p = RangePartitioner::new(vec![10u64, 10, 20]);
        assert_eq!(p.shard_of(&9, 3), 0);
        assert_eq!(p.shard_of(&10, 3), 1);
        assert_eq!(p.shard_of(&15, 3), 1);
        assert_eq!(p.shard_of(&20, 3), 2);
        // Even fully duplicated bounds collapse to a single split point.
        let p = RangePartitioner::new(vec![5u64, 5, 5, 5]);
        assert_eq!(p.shard_of(&4, 2), 0);
        assert_eq!(p.shard_of(&5, 2), 1);
        assert_eq!(p.shard_of(&6, 2), 1);
    }
}
