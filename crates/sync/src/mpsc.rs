//! Lock-free MPSC publication shards for the parallel buffer.
//!
//! The paper's parallel buffer (Appendix A.1, Theorem 26) lets `p` processors
//! deposit calls concurrently while a combiner periodically takes everything
//! that has accumulated.  The first realisation in this repository protected
//! each shard with a mutex, which meant a producer holding the lock could
//! block the combiner (and other producers) mid-flush.  [`MpscShard`] removes
//! that coupling: producers *publish* through an atomic slot claim followed by
//! a sequence-stamped hand-off, so
//!
//! * a producer never waits for another producer or for the combiner, and
//! * the combiner never waits for a producer (at worst it leaves an
//!   in-flight item for the next drain).
//!
//! The design is a bounded ring of sequence-stamped cells (the claim/publish
//! protocol of a Vyukov-style array queue) with an overflow list for the rare
//! case where more items accumulate between two drains than the ring can
//! hold.  The crate-wide `#![forbid(unsafe_code)]` is preserved: each cell
//! stores its value in a `Mutex<Option<T>>` that is **never contended by
//! construction** — exactly one producer writes a cell (it won the slot's
//! sequence check via the tail CAS) and the consumer only locks the cell
//! after the producer's release-store of the publication stamp, so every
//! `lock()` on a cell acquires a free mutex in a single atomic operation.
//! The mutex is interior mutability with a proof obligation discharged by the
//! sequence protocol, not a lock anybody ever sleeps on.
//!
//! Ordering guarantee: items published through one shard are drained in
//! publication (FIFO) order.  Once a push overflows, subsequent pushes also
//! go to the overflow list until the next drain, so a single thread's pushes
//! are never reordered across the ring/overflow boundary.
//!
//! Counters are monotone and assumed not to wrap (a 64-bit platform would
//! need ~10^19 publications per shard; on 32-bit targets the shard must see a
//! drain every 2^32 publications).

use wsm_check::sync::{AtomicBool, AtomicUsize, Mutex, Ordering};

/// A sequence-stamped publication cell.
///
/// The stamp encodes the cell's state for ring position `t` (with capacity
/// `cap`): `t` = free for the producer claiming ticket `t`; `t + 1` =
/// published, ready for the consumer; `t + cap` = consumed, free for the
/// producer of the next lap.
#[derive(Debug)]
struct PubCell<T> {
    seq: AtomicUsize,
    slot: Mutex<Option<T>>,
}

/// A lock-free multi-producer / single-consumer publication shard.
///
/// Producers call [`MpscShard::publish`]; the (unique) combiner calls
/// [`MpscShard::drain_into`].  Concurrent drains are internally serialized so
/// misuse cannot corrupt the ring, but the intended discipline is the
/// activation interface's at-most-one-combiner guarantee.
#[derive(Debug)]
pub struct MpscShard<T> {
    cells: Box<[PubCell<T>]>,
    mask: usize,
    /// Producer claim cursor (monotone).
    tail: AtomicUsize,
    /// Consumer cursor (monotone); the mutex serializes consumers.
    head: Mutex<usize>,
    /// Sticky "route to overflow" flag, kept consistent with `overflow`'s
    /// emptiness at the overflow-lock boundaries.
    overflowed: AtomicBool,
    /// Fallback list used only when the ring is full between two drains.
    overflow: Mutex<Vec<T>>,
}

impl<T> MpscShard<T> {
    /// Creates a shard whose ring holds `capacity` items (rounded up to a
    /// power of two, at least 2).  More than `capacity` publications between
    /// two drains spill to the (mutex-protected) overflow list.
    pub fn with_capacity(capacity: usize) -> Self {
        let cap = capacity.next_power_of_two().max(2);
        MpscShard {
            cells: (0..cap)
                .map(|i| PubCell {
                    seq: AtomicUsize::new(i),
                    slot: Mutex::new(None),
                })
                .collect(),
            mask: cap - 1,
            tail: AtomicUsize::new(0),
            head: Mutex::new(0),
            overflowed: AtomicBool::new(false),
            overflow: Mutex::new(Vec::new()),
        }
    }

    /// Ring capacity (publications held without spilling to overflow).
    pub fn capacity(&self) -> usize {
        self.cells.len()
    }

    /// Publishes one item.  Lock-free on the ring path: a slot claim is one
    /// CAS on the tail cursor and the value hand-off touches only the claimed
    /// cell.  Returns `true` if the item went through the ring, `false` if it
    /// spilled to the overflow list (ring full).
    pub fn publish(&self, item: T) -> bool {
        // ord: Relaxed — advisory routing hint only; the authoritative
        // overflow state lives under the overflow mutex, and a stale read
        // merely picks the other (still-correct) publication path.
        if self.overflowed.load(Ordering::Relaxed) {
            // Keep FIFO across the overflow episode: once one push spilled,
            // later pushes spill too until a drain resets the flag.
            self.publish_overflow(item);
            return false;
        }
        // ord: Relaxed — cursor hint; the CAS below re-validates the ticket.
        let mut t = self.tail.load(Ordering::Relaxed);
        loop {
            let cell = &self.cells[t & self.mask];
            // ord: Acquire — pairs with the consumer's Release re-stamp so a
            // recycled cell's prior contents are fully released before we
            // overwrite the slot (model: tests/model_mpsc.rs).
            let seq = cell.seq.load(Ordering::Acquire);
            if seq == t {
                // ord: Relaxed — the ticket CAS only arbitrates ownership of
                // cell `t`; publication visibility is carried by the seq
                // stamp pair, not by the cursor (model: tests/model_mpsc.rs).
                match self.tail.compare_exchange_weak(
                    t,
                    t + 1,
                    Ordering::Relaxed,
                    Ordering::Relaxed,
                ) {
                    Ok(_) => {
                        // We own cell `t` exclusively until the stamp below:
                        // the lock is free by the sequence protocol.
                        *cell.slot.lock() = Some(item);
                        // ord: Release — publication stamp; pairs with the
                        // consumer's Acquire load so the slot write above
                        // happens-before the take (model: tests/model_mpsc.rs).
                        cell.seq.store(t + 1, Ordering::Release);
                        return true;
                    }
                    Err(current) => t = current,
                }
            } else if seq < t {
                // The cell still holds last lap's unconsumed item: ring full.
                self.publish_overflow(item);
                return false;
            } else {
                // Another producer claimed ticket `t`; chase the tail.
                // ord: Relaxed — cursor hint; re-validated by the next CAS.
                t = self.tail.load(Ordering::Relaxed);
            }
        }
    }

    fn publish_overflow(&self, item: T) {
        let mut overflow = self.overflow.lock();
        overflow.push(item);
        // Under the overflow lock, so the flag agrees with non-emptiness at
        // every lock release.
        // ord: Relaxed — the overflow mutex orders flag against list; the
        // flag alone is only ever a routing hint (see publish).
        self.overflowed.store(true, Ordering::Relaxed);
    }

    /// Drains every published item into `out` in publication order, returning
    /// how many were appended.
    ///
    /// Never waits for producers: a claimed-but-not-yet-published cell is
    /// given a brief bounded spin (the producer is between its CAS and its
    /// release store, a handful of instructions) and otherwise left — it and
    /// everything behind it are picked up by the next drain.  When that
    /// happens the overflow list is also left untouched, so a producer's
    /// overflowed items can never overtake its ring items still stuck behind
    /// the in-flight cell (the FIFO guarantee above).
    pub fn drain_into(&self, out: &mut Vec<T>) -> usize {
        let before = out.len();
        let mut head = self.head.lock();
        if !self.drain_ring(&mut head, out) {
            let mut overflow = self.overflow.lock();
            // Re-scan the ring *under the overflow lock* before appending:
            // between the scan above and taking the lock, producers may have
            // filled the ring and spilled — those ring items precede every
            // overflow item in publication order, so appending the overflow
            // without the re-scan would reorder a producer's pushes across
            // the ring/overflow boundary.  (Found by the model harness in
            // tests/model_mpsc.rs; every spill happens under this lock, so
            // the lock acquisition also makes the spilling producers' prior
            // ring stamps visible to the re-scan.)
            if self.drain_ring(&mut head, out) {
                // Stalled on an in-flight cell: leave the overflow list for
                // the next drain so it cannot overtake the stuck ring items.
                return out.len() - before;
            }
            out.append(&mut *overflow);
            // ord: Relaxed — reset under the overflow mutex, mirroring the
            // set in publish_overflow; hint-only outside the lock.
            self.overflowed.store(false, Ordering::Relaxed);
        }
        out.len() - before
    }

    /// Drains published ring items starting at `head` into `out`.  Returns
    /// `true` if the scan stalled on a claimed-but-unpublished cell (the
    /// producer is between its CAS and its release store); the caller must
    /// then leave the overflow list untouched to preserve FIFO.
    fn drain_ring(&self, head: &mut usize, out: &mut Vec<T>) -> bool {
        let mut spins = 0u32;
        // Under the model scheduler every spin iteration is a distinct step
        // that multiplies the explored state space; one retry is enough to
        // exercise the stall branch there.
        let spin_limit: u32 = if wsm_check::model_active() { 1 } else { 128 };
        loop {
            let h = *head;
            let cell = &self.cells[h & self.mask];
            // ord: Acquire — pairs with the producer's Release stamp; makes
            // the slot write visible before we take it (model:
            // tests/model_mpsc.rs).
            let seq = cell.seq.load(Ordering::Acquire);
            if seq == h + 1 {
                let item = cell
                    .slot
                    .lock()
                    .take()
                    .expect("published cell holds a value");
                // ord: Release — recycle stamp; pairs with the next-lap
                // producer's Acquire load so our take happens-before its
                // overwrite (model: tests/model_mpsc.rs).
                cell.seq.store(h + self.cells.len(), Ordering::Release);
                *head = h + 1;
                out.push(item);
                spins = 0;
            } else if seq == h
                // ord: Acquire — distinguishes "claimed, publication in
                // flight" from "nothing published"; pairs with producers'
                // ticket CASes on the same cursor.
                && self.tail.load(Ordering::Acquire) > h
            {
                if spins < spin_limit {
                    // Claimed, publication in flight.
                    spins += 1;
                    std::hint::spin_loop();
                } else {
                    return true;
                }
            } else {
                return false;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicU64};
    use std::sync::Arc;

    #[test]
    fn publish_then_drain_roundtrip_in_order() {
        let shard: MpscShard<u64> = MpscShard::with_capacity(8);
        for i in 0..6 {
            assert!(shard.publish(i));
        }
        let mut out = Vec::new();
        assert_eq!(shard.drain_into(&mut out), 6);
        assert_eq!(out, (0..6).collect::<Vec<_>>());
        // Drained cells are reusable.
        assert!(shard.publish(99));
        out.clear();
        assert_eq!(shard.drain_into(&mut out), 1);
        assert_eq!(out, vec![99]);
    }

    #[test]
    fn overflow_keeps_everything_in_order() {
        let shard: MpscShard<u64> = MpscShard::with_capacity(4);
        // 4 ring slots + 10 overflow items, no drain in between.
        for i in 0..14 {
            shard.publish(i);
        }
        let mut out = Vec::new();
        assert_eq!(shard.drain_into(&mut out), 14);
        assert_eq!(out, (0..14).collect::<Vec<_>>());
        // After the drain the ring path is available again.
        assert!(shard.publish(100));
    }

    #[test]
    fn capacity_rounds_up_to_power_of_two() {
        assert_eq!(MpscShard::<u64>::with_capacity(0).capacity(), 2);
        assert_eq!(MpscShard::<u64>::with_capacity(5).capacity(), 8);
        assert_eq!(MpscShard::<u64>::with_capacity(64).capacity(), 64);
    }

    #[test]
    fn wraps_around_the_ring_many_times() {
        let shard: MpscShard<u64> = MpscShard::with_capacity(4);
        let mut out = Vec::new();
        for round in 0..100u64 {
            for i in 0..3 {
                assert!(shard.publish(round * 3 + i));
            }
            shard.drain_into(&mut out);
        }
        assert_eq!(out, (0..300).collect::<Vec<_>>());
    }

    /// Many producers race a concurrently draining consumer; every published
    /// item must be drained exactly once.  The seeded yield schedule varies
    /// the interleaving between runs of the loop.
    fn producer_consumer_race(seed: u64, producers: u64, per_producer: u64) {
        let shard: Arc<MpscShard<u64>> = Arc::new(MpscShard::with_capacity(16));
        let done = Arc::new(AtomicBool::new(false));
        let drained = {
            let shard = Arc::clone(&shard);
            let done = Arc::clone(&done);
            std::thread::spawn(move || {
                let mut out = Vec::new();
                let mut schedule = seed | 1;
                while !done.load(Ordering::Acquire) {
                    shard.drain_into(&mut out);
                    // Seeded schedule: sometimes yield, sometimes spin.
                    schedule = schedule
                        .wrapping_mul(6364136223846793005)
                        .wrapping_add(1442695040888963407);
                    if schedule & 4 == 0 {
                        std::thread::yield_now();
                    }
                }
                shard.drain_into(&mut out);
                out
            })
        };
        let handles: Vec<_> = (0..producers)
            .map(|p| {
                let shard = Arc::clone(&shard);
                std::thread::spawn(move || {
                    let mut schedule = seed.wrapping_add(p.wrapping_mul(0x9E3779B97F4A7C15)) | 1;
                    for i in 0..per_producer {
                        shard.publish(p * per_producer + i);
                        schedule = schedule
                            .wrapping_mul(6364136223846793005)
                            .wrapping_add(1442695040888963407);
                        if schedule & 6 == 0 {
                            std::thread::yield_now();
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        done.store(true, Ordering::Release);
        let out = drained.join().unwrap();
        assert_eq!(out.len() as u64, producers * per_producer, "lost items");
        let distinct: std::collections::BTreeSet<u64> = out.iter().copied().collect();
        assert_eq!(
            distinct.len() as u64,
            producers * per_producer,
            "duplicated items"
        );
    }

    #[test]
    fn concurrent_producers_and_consumer_no_loss_no_dup() {
        for seed in [1, 7, 42, 0xDEAD_BEEF] {
            producer_consumer_race(seed, 4, 2_000);
        }
    }

    #[test]
    fn per_producer_fifo_is_preserved() {
        let shard: Arc<MpscShard<(u64, u64)>> = Arc::new(MpscShard::with_capacity(8));
        let total = Arc::new(AtomicU64::new(0));
        let collected = {
            let shard = Arc::clone(&shard);
            let total = Arc::clone(&total);
            std::thread::spawn(move || {
                let mut out = Vec::new();
                while total.load(Ordering::Acquire) < 3 {
                    shard.drain_into(&mut out);
                    std::thread::yield_now();
                }
                shard.drain_into(&mut out);
                out
            })
        };
        let handles: Vec<_> = (0..3u64)
            .map(|p| {
                let shard = Arc::clone(&shard);
                let total = Arc::clone(&total);
                std::thread::spawn(move || {
                    for i in 0..2_000 {
                        shard.publish((p, i));
                    }
                    total.fetch_add(1, Ordering::Release);
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        let out = collected.join().unwrap();
        assert_eq!(out.len(), 6_000);
        let mut next = [0u64; 3];
        for (p, i) in out {
            assert_eq!(i, next[p as usize], "producer {p} items out of order");
            next[p as usize] += 1;
        }
    }
}
