//! Activation interface (paper Definition 36).
//!
//! An activation interface guards a process `P` with a readiness condition
//! `C`.  `Activate()` runs `P` iff no other activation is currently running it
//! and `C` holds; `P` returns whether it wants to be re-activated immediately.
//! The paper uses this to drive the M2 interface and every final-slab segment:
//! whichever thread makes a segment ready simply activates it, and at most one
//! run of the segment is in flight at a time.

use crate::trylock::NonBlockingLock;

/// An activation interface around a guarded process.
///
/// The condition and the process are supplied per call (as closures over the
/// caller's state) rather than stored, which keeps the interface free of
/// lifetimes/`dyn` plumbing while preserving the protocol of Definition 36:
///
/// ```text
/// Activate():
///   if TryLock(active):
///     reactivate := false
///     if C(): reactivate := P()
///     Unlock(active)
///     if reactivate: Activate()
/// ```
///
/// As in the paper, any actor that makes `C` become true must call
/// [`Activation::activate`] afterwards; the interface itself does not poll.
#[derive(Debug, Default)]
pub struct Activation {
    active: NonBlockingLock,
}

impl Activation {
    /// Creates an idle activation interface.
    pub const fn new() -> Self {
        Activation {
            active: NonBlockingLock::new(),
        }
    }

    /// Attempts to run the guarded process.
    ///
    /// * `ready` is the readiness condition `C`.
    /// * `process` is the process `P`; it returns `true` to request immediate
    ///   reactivation (the paper's `reactivate` flag).
    ///
    /// Returns the number of times `process` actually ran during this call
    /// (0 if the interface was already active or not ready).
    pub fn activate<C, P>(&self, mut ready: C, mut process: P) -> usize
    where
        C: FnMut() -> bool,
        P: FnMut() -> bool,
    {
        let mut runs = 0;
        // The recursion of Definition 36 is turned into a loop: each iteration
        // is one `Activate()` call.
        loop {
            if !self.active.try_lock() {
                return runs;
            }
            let mut reactivate = false;
            if ready() {
                reactivate = process();
                runs += 1;
            }
            self.active.unlock();
            if !reactivate {
                return runs;
            }
        }
    }

    /// Whether the guarded process currently appears to be running (racy; for
    /// diagnostics only).
    pub fn is_active(&self) -> bool {
        self.active.is_held()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
    use std::sync::Arc;

    #[test]
    fn runs_only_when_ready() {
        let a = Activation::new();
        let mut ran = 0;
        assert_eq!(a.activate(|| false, || panic!("must not run")), 0);
        assert_eq!(
            a.activate(
                || true,
                || {
                    ran += 1;
                    false
                }
            ),
            1
        );
        assert_eq!(ran, 1);
    }

    #[test]
    fn reactivation_loops_until_declined() {
        let a = Activation::new();
        let remaining = std::cell::Cell::new(5);
        let runs = a.activate(
            || remaining.get() > 0,
            || {
                remaining.set(remaining.get() - 1);
                true // always ask to be reactivated; readiness stops us
            },
        );
        assert_eq!(runs, 5);
        assert_eq!(remaining.get(), 0);
    }

    #[test]
    fn at_most_one_concurrent_run() {
        let a = Arc::new(Activation::new());
        let inside = Arc::new(AtomicBool::new(false));
        let runs = Arc::new(AtomicU64::new(0));
        let handles: Vec<_> = (0..8)
            .map(|_| {
                let a = Arc::clone(&a);
                let inside = Arc::clone(&inside);
                let runs = Arc::clone(&runs);
                std::thread::spawn(move || {
                    for _ in 0..200 {
                        a.activate(
                            || true,
                            || {
                                assert!(
                                    !inside.swap(true, Ordering::SeqCst),
                                    "two concurrent runs of the guarded process"
                                );
                                // Simulate a little work.
                                std::hint::spin_loop();
                                runs.fetch_add(1, Ordering::Relaxed);
                                inside.store(false, Ordering::SeqCst);
                                false
                            },
                        );
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert!(runs.load(Ordering::Relaxed) >= 1);
    }
}
