//! Dedicated lock with keys (paper Definition 37).
//!
//! A dedicated lock is a blocking lock initialised with keys `0..k` for a
//! constant `k`; simultaneous acquisitions must use distinct keys.  The
//! release handoff scans the key slots cyclically starting from the last
//! holder's key, so when a thread attempts to acquire the lock it obtains it
//! after at most `O(1)` (at most `k - 1`) other threads that attempted to
//! acquire it at the same time or later — the bounded-overtaking property the
//! paper's delay analysis (Lemma 18, Lemma 19) relies on.
//!
//! The paper's pseudo-code stores a continuation pointer per key and resumes
//! it on release; here each key slot parks the acquiring OS thread and the
//! releasing thread unparks the next one in cyclic key order.

use parking_lot::{Condvar, Mutex};
use std::sync::atomic::{AtomicUsize, Ordering};

#[derive(Debug, Default)]
struct Slot {
    /// Whether a thread is currently parked on this key waiting for handoff.
    state: Mutex<SlotState>,
    cv: Condvar,
}

#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
enum SlotState {
    #[default]
    Empty,
    /// A thread registered on this key and is waiting to be granted the lock.
    Waiting,
    /// The releaser granted the lock to the thread parked on this key.
    Granted,
}

/// A blocking lock with `k` keys and cyclic handoff (Definition 37).
///
/// Each concurrent acquirer must use a distinct key in `0..k`; this is the
/// caller's responsibility (in M2 each arrow in Figures 2–3 is a fixed key).
/// Violating it is memory-safe but can deadlock, exactly as in the paper.
#[derive(Debug)]
pub struct DedicatedLock {
    /// Number of threads holding or waiting for the lock.
    count: AtomicUsize,
    /// Key of the current holder (only meaningful while the lock is held).
    holder: AtomicUsize,
    slots: Vec<Slot>,
}

impl DedicatedLock {
    /// Creates a dedicated lock with keys `0..keys`.
    ///
    /// # Panics
    /// Panics if `keys == 0`.
    pub fn new(keys: usize) -> Self {
        assert!(keys > 0, "a dedicated lock needs at least one key");
        DedicatedLock {
            count: AtomicUsize::new(0),
            holder: AtomicUsize::new(0),
            slots: (0..keys).map(|_| Slot::default()).collect(),
        }
    }

    /// Number of keys.
    pub fn keys(&self) -> usize {
        self.slots.len()
    }

    /// Acquires the lock using `key`, blocking (parking the thread) if the
    /// lock is currently held.
    ///
    /// # Panics
    /// Panics if `key >= keys()`.
    pub fn acquire(&self, key: usize) {
        assert!(key < self.slots.len(), "key {key} out of range");
        // ord: AcqRel — the lock-acquisition RMW: Acquire pairs with the
        // releasing fetch_sub so the previous holder's critical section
        // happens-before ours on the uncontended path; Release orders this
        // contender registration before the releaser's count read, so a
        // releaser that sees count > 1 knows a waiter is coming.
        if self.count.fetch_add(1, Ordering::AcqRel) == 0 {
            // Uncontended fast path: we now hold the lock.
            // ord: Release — publishes the holder key to the Acquire load in
            // release(), so the handoff scan starts at the current holder.
            self.holder.store(key, Ordering::Release);
            return;
        }
        // Register on our slot and wait for the handoff.
        let slot = &self.slots[key];
        let mut st = slot.state.lock();
        debug_assert_eq!(
            *st,
            SlotState::Empty,
            "dedicated-lock key {key} used by two concurrent acquirers"
        );
        *st = SlotState::Waiting;
        while *st != SlotState::Granted {
            slot.cv.wait(&mut st);
        }
        *st = SlotState::Empty;
        // ord: Release — as on the fast path: publish the new holder key for
        // the next release()'s scan start.  (The critical-section handoff
        // itself is carried by the slot mutex/condvar, not by this store.)
        self.holder.store(key, Ordering::Release);
    }

    /// Acquires the lock and returns an RAII guard that releases it on drop.
    pub fn acquire_guard(&self, key: usize) -> DedicatedGuard<'_> {
        self.acquire(key);
        DedicatedGuard { lock: self }
    }

    /// Releases the lock, handing it to the waiting thread whose key follows
    /// the current holder's key in cyclic order (if any).
    pub fn release(&self) {
        // ord: Acquire — pairs with the Release holder stores; only the
        // current holder calls release(), so this reads its own (or, via the
        // handoff mutex, the previous holder's) published key.
        let holder = self.holder.load(Ordering::Acquire);
        // ord: AcqRel — the lock-release RMW: Release publishes our critical
        // section to the next fetch_add acquirer; Acquire orders the waiter
        // slot scan below after the count observation, pairing with waiters'
        // AcqRel registration so a count > 1 means a waiter has registered
        // (or is about to — the scan loops until it appears).
        if self.count.fetch_sub(1, Ordering::AcqRel) > 1 {
            // Someone is (or is about to be) waiting: scan cyclically from the
            // key after the holder's until we find a registered waiter.  The
            // waiter may still be between its fetch_add and its registration,
            // so we keep scanning — this mirrors the `while p = null` loop of
            // the paper's pseudo-code.
            let k = self.slots.len();
            let mut j = holder;
            loop {
                j = (j + 1) % k;
                let slot = &self.slots[j];
                let mut st = slot.state.lock();
                if *st == SlotState::Waiting {
                    *st = SlotState::Granted;
                    slot.cv.notify_one();
                    return;
                }
                drop(st);
                std::hint::spin_loop();
            }
        }
    }

    /// Number of threads currently holding or waiting for the lock (racy; for
    /// diagnostics and tests).
    pub fn contenders(&self) -> usize {
        // ord: Relaxed — advisory snapshot for diagnostics; no decision that
        // affects the handoff protocol is taken on it.
        self.count.load(Ordering::Relaxed)
    }
}

/// RAII guard for [`DedicatedLock`].
#[derive(Debug)]
pub struct DedicatedGuard<'a> {
    lock: &'a DedicatedLock,
}

impl Drop for DedicatedGuard<'_> {
    fn drop(&mut self) {
        self.lock.release();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn uncontended_acquire_release() {
        let l = DedicatedLock::new(2);
        l.acquire(0);
        assert_eq!(l.contenders(), 1);
        l.release();
        assert_eq!(l.contenders(), 0);
        l.acquire(1);
        l.release();
    }

    #[test]
    fn guard_releases() {
        let l = DedicatedLock::new(1);
        {
            let _g = l.acquire_guard(0);
            assert_eq!(l.contenders(), 1);
        }
        assert_eq!(l.contenders(), 0);
    }

    #[test]
    #[should_panic(expected = "at least one key")]
    fn zero_keys_panics() {
        let _ = DedicatedLock::new(0);
    }

    #[test]
    fn mutual_exclusion_two_keys() {
        let lock = Arc::new(DedicatedLock::new(2));
        let in_cs = Arc::new(AtomicU64::new(0));
        let total = Arc::new(AtomicU64::new(0));
        let iters = 5000u64;
        let handles: Vec<_> = (0..2usize)
            .map(|key| {
                let lock = Arc::clone(&lock);
                let in_cs = Arc::clone(&in_cs);
                let total = Arc::clone(&total);
                std::thread::spawn(move || {
                    for _ in 0..iters {
                        lock.acquire(key);
                        let now = in_cs.fetch_add(1, Ordering::SeqCst);
                        assert_eq!(now, 0, "two threads in the critical section");
                        total.fetch_add(1, Ordering::Relaxed);
                        in_cs.fetch_sub(1, Ordering::SeqCst);
                        lock.release();
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(total.load(Ordering::Relaxed), 2 * iters);
    }

    #[test]
    fn mutual_exclusion_many_keys() {
        let n = 8usize;
        let lock = Arc::new(DedicatedLock::new(n));
        let in_cs = Arc::new(AtomicU64::new(0));
        let total = Arc::new(AtomicU64::new(0));
        let iters = 1000u64;
        let handles: Vec<_> = (0..n)
            .map(|key| {
                let lock = Arc::clone(&lock);
                let in_cs = Arc::clone(&in_cs);
                let total = Arc::clone(&total);
                std::thread::spawn(move || {
                    for _ in 0..iters {
                        let _g = lock.acquire_guard(key);
                        let now = in_cs.fetch_add(1, Ordering::SeqCst);
                        assert_eq!(now, 0, "two threads in the critical section");
                        total.fetch_add(1, Ordering::Relaxed);
                        in_cs.fetch_sub(1, Ordering::SeqCst);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(total.load(Ordering::Relaxed), n as u64 * iters);
    }

    #[test]
    fn handoff_is_cyclic_from_holder() {
        // With 3 keys: thread holding key 0 releases while threads wait on
        // keys 1 and 2; key 1 must be granted before key 2.
        let lock = Arc::new(DedicatedLock::new(3));
        lock.acquire(0);
        let order = Arc::new(std::sync::Mutex::new(Vec::new()));

        let mut handles = Vec::new();
        for key in [1usize, 2usize] {
            let lock = Arc::clone(&lock);
            let order = Arc::clone(&order);
            handles.push(std::thread::spawn(move || {
                lock.acquire(key);
                order.lock().unwrap().push(key);
                lock.release();
            }));
            // Give the thread time to register its wait before spawning the
            // next, so both are queued when we release (test traffic
            // shaping, not synchronization — the join below is the sync).
            // lint: allow(thread_sleep)
            std::thread::sleep(std::time::Duration::from_millis(50));
        }
        lock.release();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(&*order.lock().unwrap(), &[1, 2]);
    }
}
