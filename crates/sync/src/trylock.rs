//! Non-blocking lock (paper Definition 35).
//!
//! `TryLock(x)` is a single test-and-set; `Unlock(x)` is a store.  Acquisition
//! attempts never block: they either succeed immediately or fail.

use wsm_check::sync::{AtomicBool, Ordering};

/// A non-blocking (test-and-set) lock.
///
/// Mirrors Definition 35 of the paper: `try_lock` is `¬TestAndSet(x)` and
/// `unlock` sets the bit back to `false`.  The lock is not reentrant.
#[derive(Debug, Default)]
pub struct NonBlockingLock {
    held: AtomicBool,
}

impl NonBlockingLock {
    /// Creates an unlocked lock.
    pub const fn new() -> Self {
        NonBlockingLock {
            held: AtomicBool::new(false),
        }
    }

    /// Attempts to acquire the lock; returns `true` on success.
    ///
    /// Uses acquire ordering so that the critical section observes everything
    /// written before the previous `unlock`.
    #[inline]
    pub fn try_lock(&self) -> bool {
        // ord: Acquire — pairs with the Release in unlock so the critical
        // section observes everything written before the previous unlock
        // (model: tests/model_doorbell.rs, combiner mutual exclusion).
        !self.held.swap(true, Ordering::Acquire)
    }

    /// Releases the lock.  Calling this without holding the lock is a logic
    /// error but is memory-safe; it simply marks the lock free.
    #[inline]
    pub fn unlock(&self) {
        // ord: Release — publishes the critical section to the next
        // Acquire swap in try_lock (model: tests/model_doorbell.rs).
        self.held.store(false, Ordering::Release);
    }

    /// Attempts to acquire the lock, returning an RAII guard on success.
    #[inline]
    pub fn try_lock_guard(&self) -> Option<TryLockGuard<'_>> {
        if self.try_lock() {
            Some(TryLockGuard { lock: self })
        } else {
            None
        }
    }

    /// Whether the lock currently appears held (racy; for diagnostics only).
    #[inline]
    pub fn is_held(&self) -> bool {
        // ord: Relaxed — diagnostics only; never used to enter the
        // critical section.
        self.held.load(Ordering::Relaxed)
    }
}

/// RAII guard for [`NonBlockingLock`]; releases the lock on drop.
#[derive(Debug)]
pub struct TryLockGuard<'a> {
    lock: &'a NonBlockingLock,
}

impl Drop for TryLockGuard<'_> {
    fn drop(&mut self) {
        self.lock.unlock();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::AtomicU64;
    use std::sync::Arc;

    #[test]
    fn try_lock_succeeds_once() {
        let l = NonBlockingLock::new();
        assert!(l.try_lock());
        assert!(!l.try_lock());
        l.unlock();
        assert!(l.try_lock());
    }

    #[test]
    fn guard_releases_on_drop() {
        let l = NonBlockingLock::new();
        {
            let g = l.try_lock_guard();
            assert!(g.is_some());
            assert!(l.try_lock_guard().is_none());
        }
        assert!(l.try_lock_guard().is_some());
    }

    #[test]
    fn mutual_exclusion_under_contention() {
        // Many threads increment a counter only while holding the try-lock;
        // with a retry loop the final count equals the number of successful
        // critical sections and no increment is lost.
        let lock = Arc::new(NonBlockingLock::new());
        let counter = Arc::new(AtomicU64::new(0));
        let mut unprotected = 0u64;
        let unprotected_ptr = &mut unprotected as *mut u64 as usize;
        let _ = unprotected_ptr; // not used; kept simple and safe below.

        let threads = 8;
        let iters = 2000;
        let shared = Arc::new(std::sync::Mutex::new(0u64)); // reference model
        let handles: Vec<_> = (0..threads)
            .map(|_| {
                let lock = Arc::clone(&lock);
                let counter = Arc::clone(&counter);
                let shared = Arc::clone(&shared);
                std::thread::spawn(move || {
                    for _ in 0..iters {
                        loop {
                            if lock.try_lock() {
                                // Critical section.
                                let mut g = shared.try_lock().expect(
                                    "another thread inside the critical section: mutual exclusion violated",
                                );
                                *g += 1;
                                drop(g);
                                counter.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                                lock.unlock();
                                break;
                            }
                            std::hint::spin_loop();
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(
            counter.load(std::sync::atomic::Ordering::Relaxed),
            threads * iters
        );
        assert_eq!(*shared.lock().unwrap(), threads * iters);
    }
}
