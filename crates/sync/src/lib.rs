//! # wsm-sync — locking mechanisms from Appendix A.4 of the paper
//!
//! The QRMW pointer machine model of the paper cannot support constant-time
//! random-access blocking locks, so the paper builds all of its coordination
//! out of three primitives (Definitions 35–37):
//!
//! * a **non-blocking lock** ([`NonBlockingLock`], `TryLock`/`Unlock` on a
//!   test-and-set bit),
//! * an **activation interface** ([`Activation`]) built on the non-blocking
//!   lock: `Activate()` starts a guarded process iff it is not already running
//!   and its readiness condition holds, and the process may request its own
//!   reactivation, and
//! * a **dedicated lock** ([`DedicatedLock`]) with keys `0..k`: a blocking
//!   lock where simultaneous acquisitions use distinct keys, and a thread is
//!   guaranteed to obtain the lock after at most `O(1)` other threads that
//!   attempt to acquire it at the same time or later (the release scans the
//!   key slots cyclically).
//!
//! Beyond the paper's three primitives, [`MpscShard`] provides the lock-free
//! multi-producer/single-consumer publication cell used by the parallel
//! buffer's shards (atomic slot claim + sequence-stamped hand-off), so
//! producers depositing calls never block the combiner.
//!
//! M2 uses dedicated locks as its *neighbour-locks* and *front-locks*
//! (Section 7.1, Figures 2 and 3) and activation interfaces for its segment
//! and interface processes.  The implementations here run on real atomics and
//! thread parking rather than on the idealised QRMW machine; the behavioural
//! contract (mutual exclusion, cyclic fairness of the dedicated lock,
//! at-most-one concurrent run of an activated process) is preserved, which is
//! what the correctness arguments of the paper rely on.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod activation;
pub mod dedicated;
pub mod mpsc;
pub mod trylock;

pub use activation::Activation;
pub use dedicated::{DedicatedGuard, DedicatedLock};
pub use mpsc::MpscShard;
pub use trylock::{NonBlockingLock, TryLockGuard};
