//! The worker registry: deques, injector, sleep/wake and client hand-off.
//!
//! A [`Registry`] owns one locked deque per worker plus a shared injector
//! queue for jobs arriving from non-worker ("client") threads.  The deques
//! follow the work-stealing discipline of a Chase–Lev deque — the owner
//! pushes and pops at the back (LIFO, cache-friendly for fork-join
//! recursion), thieves steal from the front (FIFO, takes the biggest
//! subproblems) — but are realised as `Mutex<VecDeque>` so the whole crate's
//! unsafety stays confined to the job lifetime-erasure in [`crate::job`].
//! Each deque lock is touched by its owner almost always and by thieves only
//! when they have nothing else to do, so contention is negligible at fork-join
//! grain sizes.
//!
//! Two separate wake-up channels exist, both [`crate::handshake::WakeGate`]
//! Dekker handshakes (register under the mutex, re-check the condition, then
//! wait; notifiers publish the event first, read the waiter count, and take
//! the mutex before notifying):
//!
//! * **worker sleep** — idle workers park on a condvar until new work is
//!   pushed or the registry terminates;
//! * **client wake-up** — non-worker threads that injected a root job park
//!   until the job's latch is set.  Workers ring this after every executed
//!   job.  The latch itself lives on the client's stack; the condvar lives
//!   here in the registry, which is what lets the executor's final access to
//!   the job be the latch store (see [`crate::job`]).
//!
//! The handshake protocol itself is model-checked against the real
//! [`crate::handshake`] code in `crates/check/tests/model_registry.rs`.

use crate::handshake::{Latch, WakeGate};
use crate::job::JobRef;
use std::collections::VecDeque;
use std::sync::Arc;
use std::time::Duration;
use wsm_check::sync::{AtomicBool, AtomicUsize, Mutex, Ordering};

struct WorkerState {
    deque: Mutex<VecDeque<JobRef>>,
}

/// Shared state of one thread pool.
pub(crate) struct Registry {
    workers: Vec<WorkerState>,
    injector: Mutex<VecDeque<JobRef>>,
    /// Jobs queued (in any deque or the injector) but not yet taken.  A hint
    /// for the sleep path; transiently inexact is fine, the wait below has a
    /// timeout backstop.  `SeqCst` because it is the event side of the sleep
    /// gate's Dekker handshake (store pending / load parked vs store parked /
    /// load pending) — weaker orderings are refuted by the model's TSO mode.
    pending: AtomicUsize,
    terminate: AtomicBool,
    sleep: WakeGate,
    clients: WakeGate,
}

impl Registry {
    /// Creates a registry and spawns its `num_threads` worker threads.
    pub(crate) fn new(num_threads: usize) -> (Arc<Registry>, Vec<std::thread::JoinHandle<()>>) {
        let num_threads = num_threads.max(1);
        let registry = Arc::new(Registry {
            workers: (0..num_threads)
                .map(|_| WorkerState {
                    deque: Mutex::new(VecDeque::new()),
                })
                .collect(),
            injector: Mutex::new(VecDeque::new()),
            pending: AtomicUsize::new(0),
            terminate: AtomicBool::new(false),
            sleep: WakeGate::new(),
            clients: WakeGate::new(),
        });
        let handles = (0..num_threads)
            .map(|index| {
                let registry = Arc::clone(&registry);
                std::thread::Builder::new()
                    .name(format!("wsm-pool-{index}"))
                    .spawn(move || worker_main(registry, index))
                    .expect("failed to spawn pool worker thread")
            })
            .collect();
        (registry, handles)
    }

    /// Number of worker threads.
    pub(crate) fn num_threads(&self) -> usize {
        self.workers.len()
    }

    /// Queues a job from a non-worker thread (or for fair FIFO dispatch).
    pub(crate) fn inject(&self, job: JobRef) {
        self.injector.lock().push_back(job);
        self.pending.fetch_add(1, Ordering::SeqCst);
        self.sleep.notify();
    }

    /// Asks every worker to exit once it runs out of work.
    pub(crate) fn request_terminate(&self) {
        // ord: Relaxed — termination is delivered by the sleep gate's
        // notify (mutex-serialised against the sleeper's re-check), and the
        // sleep wait is timeout-backstopped anyway, so the flag needs no
        // ordering of its own (model: tests/model_registry.rs).
        self.terminate.store(true, Ordering::Relaxed);
        self.sleep.notify();
    }

    /// True once termination was requested.
    pub(crate) fn terminating(&self) -> bool {
        // ord: Relaxed — see request_terminate.
        self.terminate.load(Ordering::Relaxed)
    }

    /// Runs `f` to completion inside the pool, called from a **non-worker**
    /// thread: injects a root job and parks until it finishes.  Panics from
    /// `f` resume on the calling thread.
    pub(crate) fn in_worker<F, R>(self: &Arc<Self>, f: F) -> R
    where
        F: FnOnce() -> R + Send,
        R: Send,
    {
        use crate::job::StackJob;
        // Safety: the StackJob lives on this stack frame, and we do not leave
        // the frame until its latch is set (wait_client below), so the
        // erased reference handed to the pool stays valid for exactly as long
        // as anyone can execute it.
        unsafe {
            let job = StackJob::new(f);
            self.inject(job.as_job_ref());
            self.wait_client(&job.latch);
            match job.take_result() {
                Ok(r) => r,
                Err(payload) => std::panic::resume_unwind(payload),
            }
        }
    }

    /// Parks the calling (non-worker) thread until `latch` is set.
    fn wait_client(&self, latch: &Latch) {
        self.clients.wait_until(|| latch.probe());
    }

    /// Called by workers after executing any job: wakes parked clients so
    /// they can re-probe their latch.  (Executors must not touch job memory
    /// after the latch store, so the job itself cannot carry the condvar —
    /// the registry, which outlives all jobs, does.)
    pub(crate) fn notify_clients(&self) {
        self.clients.notify();
    }
}

/// Back-off for workers waiting on a latch they cannot help along (a stolen
/// join sibling still running on its thief): spin-yield briefly so short
/// waits stay cheap, then sleep in small slices so long waits do not burn a
/// core.  (These waiters cannot park on the sleep condvar — nothing rings it
/// when a latch is set — so a bounded sleep is the backstop.)
pub(crate) struct IdleBackoff {
    rounds: u32,
}

impl IdleBackoff {
    const SPIN_ROUNDS: u32 = 64;

    pub(crate) fn new() -> IdleBackoff {
        IdleBackoff { rounds: 0 }
    }

    /// Called when a wait loop found nothing to do.
    pub(crate) fn idle(&mut self) {
        self.rounds = self.rounds.saturating_add(1);
        if self.rounds < Self::SPIN_ROUNDS {
            std::thread::yield_now();
        } else {
            // Bounded nap, not synchronization: the waiter re-polls its
            // latch; no correctness depends on the wake-up timing.
            // lint: allow(thread_sleep)
            std::thread::sleep(Duration::from_micros(100));
        }
    }

    /// Called after making progress (a job was found and executed).
    pub(crate) fn reset(&mut self) {
        self.rounds = 0;
    }
}

thread_local! {
    static CURRENT_WORKER: std::cell::Cell<*const WorkerThread> =
        const { std::cell::Cell::new(std::ptr::null()) };
}

/// Per-thread handle of a pool worker; lives on the worker's stack for the
/// worker's whole life and is reachable through TLS.
pub(crate) struct WorkerThread {
    pub(crate) registry: Arc<Registry>,
    index: usize,
    /// Rotating start position for steal scans, so victims are probed fairly.
    steal_start: std::cell::Cell<usize>,
}

impl WorkerThread {
    /// Calls `f` with the calling thread's worker handle, if it is a pool
    /// worker.
    pub(crate) fn with_current<R>(f: impl FnOnce(Option<&WorkerThread>) -> R) -> R {
        CURRENT_WORKER.with(|cell| {
            let ptr = cell.get();
            // Safety: the pointer is set by worker_main to a WorkerThread on
            // that thread's own stack, which outlives everything the thread
            // runs; it is only ever read from the same thread.
            let current = if ptr.is_null() {
                None
            } else {
                Some(unsafe { &*ptr })
            };
            f(current)
        })
    }

    /// Pushes a job onto this worker's own deque (back / LIFO end).
    pub(crate) fn push(&self, job: JobRef) {
        self.registry.workers[self.index]
            .deque
            .lock()
            .push_back(job);
        self.registry.pending.fetch_add(1, Ordering::SeqCst);
        self.registry.sleep.notify();
    }

    /// Pops from this worker's own deque (back / LIFO end).
    pub(crate) fn pop(&self) -> Option<JobRef> {
        let job = self.registry.workers[self.index].deque.lock().pop_back();
        if job.is_some() {
            self.registry.pending.fetch_sub(1, Ordering::SeqCst);
        }
        job
    }

    /// Takes a job from the injector or steals from another worker's front.
    pub(crate) fn steal(&self) -> Option<JobRef> {
        if let Some(job) = self.registry.injector.lock().pop_front() {
            self.registry.pending.fetch_sub(1, Ordering::SeqCst);
            return Some(job);
        }
        let n = self.registry.workers.len();
        let start = self.steal_start.get();
        for k in 0..n {
            let victim = (start + k) % n;
            if victim == self.index {
                continue;
            }
            if let Some(job) = self.registry.workers[victim].deque.lock().pop_front() {
                self.registry.pending.fetch_sub(1, Ordering::SeqCst);
                self.steal_start.set(victim);
                return Some(job);
            }
        }
        self.steal_start.set((start + 1) % n);
        None
    }

    /// Own deque first, then injector / other workers.
    pub(crate) fn find_work(&self) -> Option<JobRef> {
        self.pop().or_else(|| self.steal())
    }

    /// Executes one job and rings the client doorbell (the job may have been
    /// a client's root job, or the last child a client's root transitively
    /// waits on).
    ///
    /// # Safety
    /// `job` must be live and not yet executed (guaranteed for anything taken
    /// from a deque or the injector).
    pub(crate) unsafe fn execute(&self, job: JobRef) {
        // Safety: forwarded.
        unsafe { job.execute() };
        self.registry.notify_clients();
    }
}

/// Body of every worker thread.
fn worker_main(registry: Arc<Registry>, index: usize) {
    let worker = WorkerThread {
        registry,
        index,
        steal_start: std::cell::Cell::new(index + 1),
    };
    CURRENT_WORKER.with(|cell| cell.set(&worker));
    main_loop(&worker);
    CURRENT_WORKER.with(|cell| cell.set(std::ptr::null()));
}

fn main_loop(worker: &WorkerThread) {
    let registry = &worker.registry;
    loop {
        if let Some(job) = worker.find_work() {
            // Safety: queued jobs are live and unexecuted.
            unsafe { worker.execute(job) };
            continue;
        }
        if registry.terminating() {
            // Drain before exiting: a job injected after our find_work miss
            // but before the terminate flag became visible would otherwise
            // be abandoned in the deque (the model checker caught exactly
            // this lost-work window: tests/model_registry.rs).  Seeing the
            // flag means any pre-terminate inject completed in real time,
            // so this later deque lock is ordered after it and must see
            // the job — Relaxed on the flag stays sufficient.
            while let Some(job) = worker.find_work() {
                // Safety: queued jobs are live and unexecuted.
                unsafe { worker.execute(job) };
            }
            return;
        }
        // Idle: register as a sleeper, re-check for work under the gate (the
        // Dekker handshake with inject/push), then park.  The timeout is a
        // backstop only; normal wake-ups come from notify / request_terminate.
        registry.sleep.wait_brief(
            || registry.pending.load(Ordering::SeqCst) == 0 && !registry.terminating(),
            Duration::from_millis(10),
        );
    }
}
