//! Structured fork-join scopes: `scope(|s| s.spawn(...))`.
//!
//! A [`Scope`] lets tasks borrow data from the enclosing stack frame: the
//! `scope` call does not return until every job spawned inside it (including
//! jobs spawned by other spawned jobs) has completed, so borrows of lifetime
//! `'scope` stay valid for as long as any job can run.  While waiting, the
//! scope's worker executes other pool work instead of blocking, exactly like
//! a `join` caller whose sibling was stolen.
//!
//! Panics in spawned jobs are caught, the first one is recorded, and it is
//! resumed on the `scope` caller once all jobs have settled (matching rayon's
//! semantics).

use crate::job::HeapJob;
use crate::registry::{Registry, WorkerThread};
use std::any::Any;
use std::marker::PhantomData;
use std::panic::{self, AssertUnwindSafe};
use std::sync::Arc;
use wsm_check::sync::{AtomicUsize, Mutex, Ordering};

/// A fork-join scope whose spawned jobs may borrow data of lifetime `'scope`.
pub struct Scope<'scope> {
    registry: Arc<Registry>,
    /// Spawned jobs that have not finished yet.  Incremented *before* a job
    /// is queued and decremented as that job's final action, so a nonzero
    /// count is visible for as long as any job (or descendant spawn) is
    /// outstanding.
    pending: AtomicUsize,
    /// First panic payload recorded by a spawned job.
    panic: Mutex<Option<Box<dyn Any + Send + 'static>>>,
    /// Makes `'scope` invariant, as for rayon scopes: jobs both consume and
    /// produce borrows of `'scope` data.
    marker: PhantomData<ScopeBody<'scope>>,
}

/// The erased shape of a spawned body, used only for lifetime variance.
type ScopeBody<'scope> = Box<dyn FnOnce(&Scope<'scope>) + Send + 'scope>;

/// Raw pointer to a scope, sendable to worker threads.
///
/// Safety: the `scope` call blocks until `pending` drops to zero, so the
/// pointed-to scope outlives every job that dereferences this.
struct ScopePtr(*const ());
unsafe impl Send for ScopePtr {}

impl ScopePtr {
    // A method (rather than field access) so closures capture the whole
    // `Send` wrapper, not the raw pointer field (edition-2021 disjoint
    // capture would otherwise grab the non-`Send` field directly).
    fn get(&self) -> *const () {
        self.0
    }
}

impl<'scope> Scope<'scope> {
    /// Spawns `body` into the pool.  The job may run on any worker, any time
    /// before the enclosing [`scope`] call returns.
    pub fn spawn<BODY>(&self, body: BODY)
    where
        BODY: FnOnce(&Scope<'scope>) + Send + 'scope,
    {
        // ord: Relaxed — the increment is published to executing workers by
        // the deque mutex the job is pushed under, and the scope owner reads
        // it on its own thread; only the counter's atomicity matters here.
        self.pending.fetch_add(1, Ordering::Relaxed);
        let scope_ptr = ScopePtr(self as *const Scope<'scope> as *const ());
        let job = HeapJob::new(move || {
            // Safety: see ScopePtr — the scope outlives this execution.
            let scope: &Scope<'scope> = unsafe { &*(scope_ptr.get() as *const Scope<'scope>) };
            if let Err(payload) = panic::catch_unwind(AssertUnwindSafe(|| body(scope))) {
                scope.record_panic(payload);
            }
            // Final action: only after this may the scope unblock.
            // ord: Release — pairs with the scope owner's Acquire load so
            // everything this job wrote (including `'scope` borrows)
            // happens-before the scope call returns.
            scope.pending.fetch_sub(1, Ordering::Release);
        });
        // Safety: the borrows inside `body` (lifetime 'scope) outlive the
        // job because the scope blocks until `pending` reaches zero, and the
        // ref is queued exactly once.
        let job_ref = unsafe { job.into_job_ref() };
        WorkerThread::with_current(|worker| match worker {
            Some(worker) if Arc::ptr_eq(&worker.registry, &self.registry) => worker.push(job_ref),
            _ => self.registry.inject(job_ref),
        });
    }

    fn record_panic(&self, payload: Box<dyn Any + Send + 'static>) {
        let mut slot = self.panic.lock();
        slot.get_or_insert(payload);
    }
}

/// Creates a scope on the current pool and blocks until it and every job
/// spawned into it have completed.  Runs inside the pool: if the caller is
/// not a worker thread, the whole scope is shipped to the global pool first.
pub fn scope<'scope, F, R>(f: F) -> R
where
    F: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    WorkerThread::with_current(|worker| match worker {
        Some(worker) => scope_on_worker(worker, f),
        None => crate::global_registry().in_worker(|| {
            WorkerThread::with_current(|worker| {
                scope_on_worker(worker.expect("in_worker body runs on a worker"), f)
            })
        }),
    })
}

fn scope_on_worker<'scope, F, R>(worker: &WorkerThread, f: F) -> R
where
    F: FnOnce(&Scope<'scope>) -> R + Send,
    R: Send,
{
    let scope = Scope {
        registry: Arc::clone(&worker.registry),
        pending: AtomicUsize::new(0),
        panic: Mutex::new(None),
        marker: PhantomData,
    };
    let result = panic::catch_unwind(AssertUnwindSafe(|| f(&scope)));
    // Work-stealing wait: keep the CPU busy on other jobs (often this very
    // scope's spawns) until every spawned job has settled.
    let mut backoff = crate::registry::IdleBackoff::new();
    // ord: Acquire — pairs with each job's Release decrement; once this
    // reads zero, every spawned job's effects are visible to the caller.
    while scope.pending.load(Ordering::Acquire) != 0 {
        if let Some(job) = worker.find_work() {
            // Safety: queued jobs are live and unexecuted.
            unsafe { worker.execute(job) };
            backoff.reset();
        } else {
            backoff.idle();
        }
    }
    let recorded = scope.panic.lock().take();
    match (result, recorded) {
        (Err(payload), _) => panic::resume_unwind(payload),
        (Ok(_), Some(payload)) => panic::resume_unwind(payload),
        (Ok(result), None) => result,
    }
}
