//! Type-erased units of work that can migrate between threads.
//!
//! The pool moves work around as [`JobRef`]s: a thin data pointer plus an
//! `unsafe fn` that knows how to run it.  Two concrete job kinds exist:
//!
//! * [`StackJob`] — lives on the *owner's* stack (the `join` caller).  The
//!   owner guarantees the job stays alive until either it reclaims the job
//!   from its own deque un-executed, or it observes the job's latch set.
//!   This is the standard fork-join lifetime-erasure technique (rayon,
//!   crossbeam): the reference is only ever dereferenced while the owner is
//!   provably blocked inside the frame that owns the job.
//! * [`HeapJob`] — boxed, used by [`crate::scope`] spawns.  Owns its closure;
//!   the scope blocks until every spawned job has run, which is what keeps
//!   the closure's borrows (of lifetime `'scope`) valid.
//!
//! # Safety protocol
//!
//! For a `StackJob`, exactly one of these happens:
//!
//! 1. the owner pops the job back off its own deque before anyone stole it
//!    and runs it in place ([`StackJob::run_inline`]), or
//! 2. a thief executes it via [`JobRef::execute`]; the executor's **final**
//!    access to the job memory is `latch.set()`, and the owner touches the
//!    result cell only after `latch.probe()` returns true.
//!
//! Either way there is never a concurrent access to the closure or result
//! cells, and the memory outlives every access.

use crate::handshake::Latch;
use std::cell::UnsafeCell;
use std::panic::{self, AssertUnwindSafe};
use std::thread;

/// A type-erasable unit of work.
pub(crate) trait Job {
    /// Runs the job.
    ///
    /// # Safety
    /// `this` must point to a live instance of the implementing type, and the
    /// job must be executed at most once.
    unsafe fn execute_raw(this: *const ());
}

/// A thin, `Copy` reference to a job queued in a deque or injector.
#[derive(Clone, Copy, Debug)]
pub(crate) struct JobRef {
    pointer: *const (),
    execute_fn: unsafe fn(*const ()),
}

// Safety: a JobRef is only created for jobs designed to be executed from
// another thread (see module docs); the owner keeps the pointee alive until
// the job has run or has been reclaimed.
unsafe impl Send for JobRef {}

impl JobRef {
    /// Erases a concrete job into a `JobRef`.
    ///
    /// # Safety
    /// The caller must keep `data` alive until the job has executed or has
    /// been reclaimed from every queue.
    pub(crate) unsafe fn new<T: Job>(data: *const T) -> JobRef {
        JobRef {
            pointer: data as *const (),
            execute_fn: T::execute_raw,
        }
    }

    /// Runs the job.
    ///
    /// # Safety
    /// The job must still be alive and must not have been executed before.
    pub(crate) unsafe fn execute(self) {
        // Safety: forwarded to the caller's obligations.
        unsafe { (self.execute_fn)(self.pointer) }
    }
}

impl PartialEq for JobRef {
    // Identity is the data pointer alone: distinct live jobs have distinct
    // addresses, and comparing the fn pointer too would be both redundant and
    // unreliable (identical functions may be merged or duplicated).
    fn eq(&self, other: &Self) -> bool {
        std::ptr::eq(self.pointer, other.pointer)
    }
}

impl Eq for JobRef {}

/// A fork-join job allocated on its owner's stack (see module docs).
pub(crate) struct StackJob<F, R> {
    func: UnsafeCell<Option<F>>,
    result: UnsafeCell<Option<thread::Result<R>>>,
    /// Set once the job has been executed by a thief.
    pub(crate) latch: Latch,
}

impl<F, R> StackJob<F, R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    /// Wraps a closure into a stack job.
    pub(crate) fn new(func: F) -> StackJob<F, R> {
        StackJob {
            func: UnsafeCell::new(Some(func)),
            result: UnsafeCell::new(None),
            latch: Latch::new(),
        }
    }

    /// Erases this job for queueing.
    ///
    /// # Safety
    /// The caller must uphold the stack-job protocol from the module docs.
    pub(crate) unsafe fn as_job_ref(&self) -> JobRef {
        // Safety: caller keeps `self` alive per the protocol.
        unsafe { JobRef::new(self) }
    }

    /// Owner side, case 1 of the protocol: the job was reclaimed un-stolen;
    /// run the closure in place.  Panics propagate to the caller.
    ///
    /// # Safety
    /// Only the owner may call this, and only after removing the job from its
    /// deque (so no thief can reach it).
    pub(crate) unsafe fn run_inline(&self) -> R {
        // Safety: exclusive access per the protocol.
        let func = unsafe { (*self.func.get()).take() }.expect("stack job executed twice");
        func()
    }

    /// Owner side, case 2 of the protocol: takes the thief-produced result.
    ///
    /// # Safety
    /// Only the owner may call this, and only after `latch.probe()` returned
    /// true.
    pub(crate) unsafe fn take_result(&self) -> thread::Result<R> {
        // Safety: the latch orders the executor's write before this read.
        unsafe { (*self.result.get()).take() }.expect("stack job result missing after latch set")
    }
}

impl<F, R> Job for StackJob<F, R>
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    unsafe fn execute_raw(this: *const ()) {
        // Safety: `this` points to a live StackJob (owner is blocked in the
        // owning frame) and we are the unique executor.
        let this = unsafe { &*(this as *const Self) };
        let func = unsafe { (*this.func.get()).take() }.expect("stack job executed twice");
        let result = panic::catch_unwind(AssertUnwindSafe(func));
        unsafe { *this.result.get() = Some(result) };
        // Final access to the job memory: after this the owner may free it.
        this.latch.set();
    }
}

/// A heap-allocated fire-and-forget job (used by scope spawns).
pub(crate) struct HeapJob<F>
where
    F: FnOnce() + Send,
{
    func: F,
}

impl<F> HeapJob<F>
where
    F: FnOnce() + Send,
{
    /// Boxes a closure as a heap job.
    pub(crate) fn new(func: F) -> Box<HeapJob<F>> {
        Box::new(HeapJob { func })
    }

    /// Erases the job, transferring ownership of the box into the `JobRef`.
    ///
    /// # Safety
    /// The caller must guarantee that everything the closure borrows outlives
    /// its execution (the scope blocks until all spawned jobs complete), and
    /// that the returned ref is executed exactly once (it owns the box).
    pub(crate) unsafe fn into_job_ref(self: Box<Self>) -> JobRef {
        // Safety: execute_raw re-boxes and frees the allocation.
        unsafe { JobRef::new(Box::into_raw(self)) }
    }
}

impl<F> Job for HeapJob<F>
where
    F: FnOnce() + Send,
{
    unsafe fn execute_raw(this: *const ()) {
        // Safety: `this` came from Box::into_raw in into_job_ref and is
        // executed exactly once.
        let this = unsafe { Box::from_raw(this as *mut Self) };
        (this.func)();
    }
}
