//! Missed-wakeup-free park/notify primitives (Dekker handshakes).
//!
//! Two pieces, shared by the registry's wake-up channels and exported so the
//! model-checking harness (`crates/check/tests/model_registry.rs`) can
//! exercise the *real* protocol code under the `wsm-check` scheduler:
//!
//! * [`Latch`] — a one-shot "this job has completed" flag.  It is
//!   deliberately *just* an atomic: the blocking machinery for threads that
//!   wait on a latch lives in a [`WakeGate`] that outlives every job, never
//!   in the job itself.  This is what makes the stack-allocated job protocol
//!   sound — see the safety discussion in `crate::job`.
//! * [`WakeGate`] — the parking side.  Waiters register under the gate
//!   mutex, re-check their condition, then park; notifiers publish their
//!   event *first*, then read the waiter count and take the mutex before
//!   notifying.  The mutex serialises registration/re-check against
//!   bump/notify, so a notification cannot fall between a waiter's re-check
//!   and its park (the missed-wakeup race).
//!
//! The counter/event pair on *opposite sides* of the handshake (`parked` vs
//! the latch flag or the pending-work counter) is a store-buffering (Dekker)
//! pattern: each side stores to one location and loads the other, and both
//! must not miss.  That is exactly the shape TSO store buffers break for
//! anything weaker than `SeqCst`, which is why the atomics here stay
//! `SeqCst` — `wsm-check`'s TSO mode refutes the Release/Acquire variant
//! (see `wsm_check::fixtures::relaxed_dekker_harness` and
//! `docs/ORDERINGS.md`).

use std::time::Duration;
use wsm_check::sync::{AtomicBool, AtomicUsize, Condvar, Mutex, Ordering};

/// A one-shot "this job has completed" flag.
///
/// All accesses use `SeqCst`: the client-wakeup handshake relies on a total
/// order between `set` / `probe` and the waiter-count atomics (a
/// Dekker-style pattern that weaker orderings do not guarantee — refuted
/// under the model's TSO mode).
#[derive(Debug, Default)]
pub struct Latch {
    set: AtomicBool,
}

impl Latch {
    /// Creates an unset latch.
    pub fn new() -> Latch {
        Latch {
            set: AtomicBool::new(false),
        }
    }

    /// True once [`Latch::set`] has been called.
    pub fn probe(&self) -> bool {
        self.set.load(Ordering::SeqCst)
    }

    /// Marks the latch as set.
    ///
    /// For a latch embedded in a stack job this must be the executor's
    /// **last** access to the job's memory: as soon as the store is visible,
    /// the owner may pop the stack frame that contains the job.
    pub fn set(&self) {
        self.set.store(true, Ordering::SeqCst);
    }
}

/// A park/notify gate with a Dekker waiter-count fast path.
///
/// Protocol (model-checked in `crates/check/tests/model_registry.rs`):
///
/// * **Waiter**: take the mutex, increment `parked`, re-check the condition,
///   park on the condvar (releasing the mutex atomically), decrement on the
///   way out.
/// * **Notifier**: publish the event (latch store, queue push + counter
///   bump, terminate flag) *before* calling [`WakeGate::notify`]; `notify`
///   reads `parked` and, if nonzero, takes the mutex and broadcasts.
///
/// Because the waiter's registration and re-check happen under the mutex,
/// any notifier that misses the waiter in `parked` must have read it before
/// the registration — in which case the waiter's subsequent re-check sees
/// the already-published event and never parks.
#[derive(Debug, Default)]
pub struct WakeGate {
    mutex: Mutex<()>,
    cv: Condvar,
    parked: AtomicUsize,
}

impl WakeGate {
    /// Creates a gate with no waiters.
    pub const fn new() -> WakeGate {
        WakeGate {
            mutex: Mutex::new(()),
            cv: Condvar::new(),
            parked: AtomicUsize::new(0),
        }
    }

    /// Parks the calling thread until `done()` returns true.  `done` is
    /// evaluated under the gate mutex, so it must not block on this gate.
    pub fn wait_until(&self, mut done: impl FnMut() -> bool) {
        if done() {
            return;
        }
        let mut guard = self.mutex.lock();
        self.parked.fetch_add(1, Ordering::SeqCst);
        while !done() {
            self.cv.wait(&mut guard);
        }
        self.parked.fetch_sub(1, Ordering::SeqCst);
    }

    /// Parks for at most `timeout` if `idle()` holds after registration.
    ///
    /// One bounded nap, not a loop: the caller re-evaluates the world and
    /// comes back.  The timeout is a liveness backstop for conditions whose
    /// notifiers are only best-effort; correctness never depends on it.
    pub fn wait_brief(&self, mut idle: impl FnMut() -> bool, timeout: Duration) {
        let mut guard = self.mutex.lock();
        self.parked.fetch_add(1, Ordering::SeqCst);
        if idle() {
            let _ = self.cv.wait_for(&mut guard, timeout);
        }
        self.parked.fetch_sub(1, Ordering::SeqCst);
    }

    /// Wakes every parked waiter if there are any.  Publish the event the
    /// waiters re-check *before* calling this.
    pub fn notify(&self) {
        if self.parked.load(Ordering::SeqCst) > 0 {
            // Taking the mutex serialises with the waiter's registration /
            // re-check, so the notification cannot be lost.
            let _guard = self.mutex.lock();
            self.cv.notify_all();
        }
    }

    /// Number of currently parked waiters (racy; diagnostics only).
    pub fn parked(&self) -> usize {
        // ord: Relaxed — diagnostics-only reading of the Dekker counter; the
        // handshake itself always reads it with SeqCst in notify.
        self.parked.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;

    #[test]
    fn latch_set_then_probe() {
        let l = Latch::new();
        assert!(!l.probe());
        l.set();
        assert!(l.probe());
    }

    #[test]
    fn wait_until_returns_once_condition_set() {
        let gate = Arc::new(WakeGate::new());
        let latch = Arc::new(Latch::new());
        let waiter = {
            let (gate, latch) = (Arc::clone(&gate), Arc::clone(&latch));
            std::thread::spawn(move || gate.wait_until(|| latch.probe()))
        };
        // Publish the event, then notify — the handshake order.
        latch.set();
        gate.notify();
        waiter.join().unwrap();
        assert_eq!(gate.parked(), 0);
    }

    #[test]
    fn wait_until_already_done_never_parks() {
        let gate = WakeGate::new();
        gate.wait_until(|| true);
        assert_eq!(gate.parked(), 0);
    }

    #[test]
    fn wait_brief_times_out_without_notify() {
        let gate = WakeGate::new();
        // Nobody will ever notify: must come back via the timeout.
        gate.wait_brief(|| true, Duration::from_millis(5));
        assert_eq!(gate.parked(), 0);
    }

    #[test]
    fn notify_without_waiters_is_cheap_noop() {
        let gate = WakeGate::new();
        gate.notify();
        assert_eq!(gate.parked(), 0);
    }
}
