//! # wsm-pool — a work-stealing fork-join thread pool
//!
//! The paper's headline results are parallel (`p`-processor batch operations,
//! parallel entropy sort, the concurrent working-set maps), but the build
//! environment has no registry access, so `rayon` cannot be vendored for
//! real.  This crate is the in-repo execution substrate: a fork-join pool on
//! `std::thread` with per-worker steal-from-the-front deques, against which
//! the `vendor/rayon` stand-in delegates.  Everything the workspace needs is
//! provided:
//!
//! * [`join`] — the fork-join primitive; the rayon-compatible contract
//!   (closures may borrow the caller's stack, panics propagate, the first
//!   panic wins).
//! * [`scope`] / [`Scope::spawn`] — structured spawns that may borrow data of
//!   lifetime `'scope`.
//! * [`ThreadPool`] / [`with_threads`] — explicitly sized pools for scaling
//!   experiments (`harness e15 --threads 4`).
//! * [`par_map`] / [`par_chunks`] — the slice helpers behind
//!   `par_iter().map().collect()`.
//! * [`run`] — "make sure this runs inside a pool": inline when already on a
//!   worker, shipped to the global pool otherwise (used by `ConcurrentMap`'s
//!   combiner so batch execution parallelises internally).
//!
//! ## Execution model
//!
//! Each worker owns a deque: it pushes and pops fork-join continuations at
//! the back (LIFO — the cache-hot path), while idle workers steal from the
//! front (FIFO — the biggest subproblems).  A `join(a, b)` pushes `b`, runs
//! `a`, then either pops `b` back un-stolen and runs it inline, or — if a
//! thief took it — works on other jobs until the thief's completion latch is
//! set.  Blocked external threads park on the registry's client condvar;
//! idle workers park on the sleep condvar; both are woken through
//! missed-wakeup-free Dekker handshakes (see `registry.rs`).
//!
//! ## Safety
//!
//! This is the only workspace crate that contains `unsafe`: the standard
//! fork-join lifetime erasure (jobs on the owner's stack are reachable
//! through type-erased pointers while the owner is provably blocked in the
//! owning frame).  The protocol is documented in `job.rs`; every other crate
//! keeps `#![forbid(unsafe_code)]`.
//!
//! The one usage rule: **do not block a worker on events produced outside
//! the pool** (e.g. calling `ConcurrentMap` operations from inside a pool
//! task) — workers only make progress by executing pool jobs.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

pub mod handshake;
mod job;
mod par;
mod registry;
mod scope;

pub use par::{par_chunks, par_map};
pub use scope::{scope, Scope};

use job::StackJob;
use registry::{IdleBackoff, Registry, WorkerThread};
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, OnceLock};

// ---------------------------------------------------------------------------
// Global pool
// ---------------------------------------------------------------------------

static GLOBAL: OnceLock<Arc<Registry>> = OnceLock::new();

/// The process-wide pool, created on first use with [`default_thread_count`]
/// workers.  Its threads are detached: the pool lives for the process.
pub(crate) fn global_registry() -> &'static Arc<Registry> {
    GLOBAL.get_or_init(|| {
        let (registry, handles) = Registry::new(default_thread_count());
        drop(handles); // detach
        registry
    })
}

/// Worker count for the global pool: `WSM_POOL_THREADS` if set to a positive
/// integer, otherwise the machine's available parallelism.  A garbage value
/// warns once on stderr and uses the parallelism default.
pub fn default_thread_count() -> usize {
    let fallback = std::thread::available_parallelism()
        .map(std::num::NonZeroUsize::get)
        .unwrap_or(1);
    wsm_check::env::parse(
        "WSM_POOL_THREADS",
        "a positive worker count",
        fallback,
        |&n| n > 0,
    )
}

/// Worker count of the pool the caller is running in (the current worker's
/// registry, or the global pool for non-worker threads).
pub fn current_num_threads() -> usize {
    WorkerThread::with_current(|worker| match worker {
        Some(worker) => worker.registry.num_threads(),
        None => global_registry().num_threads(),
    })
}

/// Runs `f` inside a pool: inline if the caller is already a pool worker,
/// otherwise as a root job on the global pool.  Nested [`join`]s inside `f`
/// therefore always have a work-stealing context.
pub fn run<F, R>(f: F) -> R
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    WorkerThread::with_current(|worker| match worker {
        Some(_) => f(),
        None => global_registry().in_worker(f),
    })
}

// ---------------------------------------------------------------------------
// Explicitly sized pools
// ---------------------------------------------------------------------------

/// An owned pool with a fixed number of worker threads.
///
/// Dropping the pool terminates and joins its workers (all installed work has
/// completed by then — [`ThreadPool::install`] blocks until `f` returns).
pub struct ThreadPool {
    registry: Arc<Registry>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl ThreadPool {
    /// Creates a pool with `num_threads` workers (at least one).
    pub fn new(num_threads: usize) -> ThreadPool {
        let (registry, handles) = Registry::new(num_threads);
        ThreadPool { registry, handles }
    }

    /// Number of worker threads.
    pub fn num_threads(&self) -> usize {
        self.registry.num_threads()
    }

    /// Runs `f` on this pool and returns its result.  [`join`]s, scopes and
    /// `par_*` calls made inside `f` execute on this pool's workers.
    pub fn install<F, R>(&self, f: F) -> R
    where
        F: FnOnce() -> R + Send,
        R: Send,
    {
        WorkerThread::with_current(|worker| match worker {
            Some(worker) if Arc::ptr_eq(&worker.registry, &self.registry) => f(),
            _ => self.registry.in_worker(f),
        })
    }
}

impl Drop for ThreadPool {
    fn drop(&mut self) {
        self.registry.request_terminate();
        for handle in self.handles.drain(..) {
            let _ = handle.join();
        }
    }
}

/// Runs `f` on a freshly created `num_threads`-worker pool, tearing the pool
/// down afterwards.  The runner for scaling experiments: everything `f` does
/// through [`join`] / `par_*` / the rayon stand-in uses exactly `num_threads`
/// workers.
pub fn with_threads<F, R>(num_threads: usize, f: F) -> R
where
    F: FnOnce() -> R + Send,
    R: Send,
{
    ThreadPool::new(num_threads).install(f)
}

// ---------------------------------------------------------------------------
// join
// ---------------------------------------------------------------------------

/// Runs both closures, potentially in parallel, and returns both results.
///
/// Semantics match rayon's `join`: `a` runs on the calling context while `b`
/// is made available for stealing; if nobody steals it, the caller runs it
/// inline (so a pool of one worker degenerates to sequential execution with
/// negligible overhead).  If either closure panics, the panic is propagated
/// to the caller — but never before both closures have settled, so borrows
/// held by the sibling stay sound.
pub fn join<A, B, RA, RB>(oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    WorkerThread::with_current(|worker| match worker {
        Some(worker) => join_on_worker(worker, oper_a, oper_b),
        None => global_registry().in_worker(move || join(oper_a, oper_b)),
    })
}

fn join_on_worker<A, B, RA, RB>(worker: &WorkerThread, oper_a: A, oper_b: B) -> (RA, RB)
where
    A: FnOnce() -> RA + Send,
    B: FnOnce() -> RB + Send,
    RA: Send,
    RB: Send,
{
    // Safety: job_b lives on this frame; we do not leave the frame until the
    // job has either been reclaimed from our deque un-executed or its latch
    // is set (the loops below), so the erased reference stays valid.
    unsafe {
        let job_b = StackJob::new(oper_b);
        let job_b_ref = job_b.as_job_ref();
        worker.push(job_b_ref);

        let result_a = panic::catch_unwind(AssertUnwindSafe(oper_a));
        if let Err(payload) = result_a {
            // `a` panicked while `b` may be queued or already running on a
            // thief.  Settle `b` first (reclaim-and-drop, or wait for the
            // thief), then resume `a`'s panic; `b`'s outcome is discarded —
            // the first panic wins, as in rayon.
            settle_job_b_for_unwind(worker, &job_b, job_b_ref);
            panic::resume_unwind(payload);
        }
        let ra = match result_a {
            Ok(ra) => ra,
            Err(_) => unreachable!("handled above"),
        };

        let mut backoff = IdleBackoff::new();
        let rb = loop {
            if let Some(job) = worker.pop() {
                if job == job_b_ref {
                    // Not stolen: run it right here; a panic propagates
                    // naturally (no sibling left to settle).
                    break job_b.run_inline();
                }
                // A job pushed after ours (a scope spawn from `oper_a`, or a
                // descendant): execute it and keep looking.
                worker.execute(job);
                backoff.reset();
            } else if job_b.latch.probe() {
                break match job_b.take_result() {
                    Ok(rb) => rb,
                    Err(payload) => panic::resume_unwind(payload),
                };
            } else if let Some(job) = worker.steal() {
                // `b` is being executed by a thief: make ourselves useful on
                // other work instead of spinning.
                worker.execute(job);
                backoff.reset();
            } else {
                backoff.idle();
            }
        };
        (ra, rb)
    }
}

/// Settles `job_b` without running it if possible: reclaims it from the local
/// deque (dropping it), or — if stolen — executes other work until the thief
/// finishes.  Used on the unwind path of `join`.
///
/// # Safety
/// Caller must own `job_b` (same contract as the main join loop).
unsafe fn settle_job_b_for_unwind<F, R>(
    worker: &WorkerThread,
    job_b: &StackJob<F, R>,
    job_b_ref: job::JobRef,
) where
    F: FnOnce() -> R + Send,
    R: Send,
{
    let mut backoff = IdleBackoff::new();
    loop {
        if let Some(job) = worker.pop() {
            if job == job_b_ref {
                return; // reclaimed un-run; the closure is simply dropped
            }
            // Safety: queued jobs are live and unexecuted.
            unsafe { worker.execute(job) };
            backoff.reset();
        } else if job_b.latch.probe() {
            // Safety: latch set — the thief is done with the job memory.
            let _ = unsafe { job_b.take_result() }; // drop b's result or panic
            return;
        } else if let Some(job) = worker.steal() {
            // Safety: queued jobs are live and unexecuted.
            unsafe { worker.execute(job) };
            backoff.reset();
        } else {
            backoff.idle();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::Mutex;

    fn fib(n: u64) -> u64 {
        if n < 2 {
            return n;
        }
        let (a, b) = join(|| fib(n - 1), || fib(n - 2));
        a + b
    }

    #[test]
    fn nested_joins_compute_correctly() {
        assert_eq!(fib(20), 6765);
    }

    #[test]
    fn join_borrows_caller_stack() {
        let data: Vec<u64> = (0..1000).collect();
        let (left, right) = join(
            || data[..500].iter().sum::<u64>(),
            || data[500..].iter().sum::<u64>(),
        );
        assert_eq!(left + right, data.iter().sum::<u64>());
    }

    #[test]
    fn join_propagates_panic_from_a() {
        let result = std::panic::catch_unwind(|| {
            join(|| panic!("boom-a"), || 2 + 2);
        });
        let payload = result.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "boom-a");
    }

    #[test]
    fn join_propagates_panic_from_b() {
        let result = std::panic::catch_unwind(|| {
            join(|| 2 + 2, || panic!("boom-b"));
        });
        let payload = result.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "boom-b");
    }

    #[test]
    fn join_first_panic_wins_when_both_panic() {
        let result = std::panic::catch_unwind(|| {
            join(|| panic!("first"), || panic!("second"));
        });
        let payload = result.expect_err("panic must propagate");
        let msg = payload.downcast_ref::<&str>().copied().unwrap_or_default();
        assert_eq!(msg, "first");
    }

    #[test]
    fn pool_survives_panics_and_keeps_working() {
        for _ in 0..10 {
            let _ = std::panic::catch_unwind(|| join(|| panic!("x"), || fib(10)));
        }
        assert_eq!(fib(15), 610);
    }

    #[test]
    fn scope_spawns_borrow_and_complete() {
        let counter = AtomicUsize::new(0);
        let data: Vec<usize> = (0..64).collect();
        scope(|s| {
            for chunk in data.chunks(8) {
                s.spawn(|_| {
                    counter.fetch_add(chunk.iter().sum::<usize>(), Ordering::SeqCst);
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), data.iter().sum::<usize>());
    }

    #[test]
    fn scope_nested_spawns() {
        let counter = AtomicUsize::new(0);
        scope(|s| {
            for _ in 0..4 {
                s.spawn(|s| {
                    for _ in 0..4 {
                        s.spawn(|_| {
                            counter.fetch_add(1, Ordering::SeqCst);
                        });
                    }
                });
            }
        });
        assert_eq!(counter.load(Ordering::SeqCst), 16);
    }

    #[test]
    fn scope_propagates_spawn_panic_after_all_settle() {
        let finished = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            scope(|s| {
                s.spawn(|_| panic!("spawned panic"));
                for _ in 0..8 {
                    s.spawn(|_| {
                        finished.fetch_add(1, Ordering::SeqCst);
                    });
                }
            });
        }));
        assert!(result.is_err(), "scope must re-raise the spawned panic");
        // The panic is only re-raised after every job settled.
        assert_eq!(finished.load(Ordering::SeqCst), 8);
    }

    #[test]
    fn with_threads_runs_on_requested_pool_size() {
        for n in [1, 2, 4] {
            let seen = with_threads(n, current_num_threads);
            assert_eq!(seen, n);
            // And real work completes there.
            let sum = with_threads(n, || {
                let v: Vec<u64> = (0..10_000).collect();
                par_map(&v, |x| x + 1).into_iter().sum::<u64>()
            });
            assert_eq!(sum, (0..10_000u64).map(|x| x + 1).sum());
        }
    }

    #[test]
    fn threadpool_drop_terminates_workers() {
        let pool = ThreadPool::new(3);
        assert_eq!(pool.install(|| 41 + 1), 42);
        drop(pool); // must not hang
    }

    #[test]
    fn concurrent_external_callers_share_the_global_pool() {
        let results = Mutex::new(Vec::new());
        std::thread::scope(|s| {
            for t in 0..8u64 {
                let results = &results;
                s.spawn(move || {
                    let r = fib(12 + (t % 3));
                    results.lock().unwrap().push(r);
                });
            }
        });
        let got = results.lock().unwrap();
        assert_eq!(got.len(), 8);
        for &r in got.iter() {
            assert!([144, 233, 377].contains(&r));
        }
    }

    #[test]
    fn join_stress_many_iterations() {
        // Shake out queue/latch races: lots of small joins back to back.
        for i in 0..200u64 {
            let (a, b) = join(move || i * 2, move || i * 3);
            assert_eq!((a, b), (i * 2, i * 3));
        }
    }
}
