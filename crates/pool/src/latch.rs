//! One-shot completion latches.
//!
//! A [`Latch`] marks a job as finished.  It is deliberately *just* an atomic
//! flag: the blocking machinery for threads that wait on a latch lives in the
//! [`crate::registry::Registry`] (which outlives every job), never in the job
//! itself.  This is what makes the stack-allocated job protocol sound — see
//! the safety discussion in [`crate::job`].

use std::sync::atomic::{AtomicBool, Ordering};

/// A one-shot "this job has completed" flag.
///
/// All accesses use `SeqCst`: the client-wakeup handshake in the registry
/// relies on a total order between `set` / `probe` and the waiter-count
/// atomics (a Dekker-style pattern that weaker orderings do not guarantee).
#[derive(Debug, Default)]
pub(crate) struct Latch {
    set: AtomicBool,
}

impl Latch {
    /// Creates an unset latch.
    pub(crate) fn new() -> Latch {
        Latch {
            set: AtomicBool::new(false),
        }
    }

    /// True once [`Latch::set`] has been called.
    pub(crate) fn probe(&self) -> bool {
        self.set.load(Ordering::SeqCst)
    }

    /// Marks the latch as set.
    ///
    /// For a latch embedded in a stack job this must be the executor's **last**
    /// access to the job's memory: as soon as the store is visible, the owner
    /// may pop the stack frame that contains the job.
    pub(crate) fn set(&self) {
        self.set.store(true, Ordering::SeqCst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn set_then_probe() {
        let l = Latch::new();
        assert!(!l.probe());
        l.set();
        assert!(l.probe());
    }
}
