//! Slice helpers: `par_map` and `par_chunks`, the data-parallel layer the
//! vendored rayon prelude delegates to.
//!
//! Both are plain `join` recursions over slice halves with an automatic grain
//! size (a few tasks per worker), so they inherit the pool's work-stealing
//! load balance without any per-element task overhead.

/// Grain size: aim for ~4 leaf tasks per worker, never below 1 element.
fn grain_for(len: usize) -> usize {
    let tasks = 4 * crate::current_num_threads();
    len.div_ceil(tasks.max(1)).max(1)
}

/// Maps `f` over every element of `items` in parallel, preserving order.
///
/// `f` takes references tied to the input slice's lifetime, so results may
/// borrow from long-lived data reachable through the elements (as
/// `par_iter().map(|k| tree.get(k))` does).
pub fn par_map<'a, T, R, F>(items: &'a [T], f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    map_rec(items, &f, grain_for(items.len()))
}

fn map_rec<'a, T, R, F>(items: &'a [T], f: &F, grain: usize) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a T) -> R + Sync,
{
    if items.len() <= grain {
        return items.iter().map(f).collect();
    }
    let mid = items.len() / 2;
    let (left, right) = items.split_at(mid);
    let (mut left, right) = crate::join(|| map_rec(left, f, grain), || map_rec(right, f, grain));
    left.extend(right);
    left
}

/// Applies `f` to consecutive chunks of `chunk_size` elements in parallel,
/// returning one result per chunk in order.  The final chunk may be shorter.
///
/// # Panics
/// Panics if `chunk_size` is zero.
pub fn par_chunks<'a, T, R, F>(items: &'a [T], chunk_size: usize, f: F) -> Vec<R>
where
    T: Sync,
    R: Send,
    F: Fn(&'a [T]) -> R + Sync,
{
    assert!(chunk_size > 0, "par_chunks requires a nonzero chunk size");
    let chunks: Vec<&'a [T]> = items.chunks(chunk_size).collect();
    par_map(&chunks, |chunk| f(chunk))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn par_map_matches_sequential_map() {
        let input: Vec<u64> = (0..10_000).collect();
        let expected: Vec<u64> = input.iter().map(|x| x * 3 + 1).collect();
        assert_eq!(par_map(&input, |x| x * 3 + 1), expected);
    }

    #[test]
    fn par_map_empty_and_tiny() {
        let empty: Vec<u32> = Vec::new();
        assert!(par_map(&empty, |x| *x).is_empty());
        assert_eq!(par_map(&[7u32], |x| x + 1), vec![8]);
    }

    #[test]
    fn par_map_results_can_borrow_input_context() {
        let data: Vec<String> = (0..100).map(|i| i.to_string()).collect();
        let lens: Vec<(usize, &str)> = par_map(&data, |s| (s.len(), s.as_str()));
        assert_eq!(lens.len(), 100);
        assert_eq!(lens[42], (2, "42"));
    }

    #[test]
    fn par_chunks_sums() {
        let input: Vec<u64> = (0..1000).collect();
        let sums = par_chunks(&input, 64, |c| c.iter().sum::<u64>());
        assert_eq!(sums.len(), input.len().div_ceil(64));
        assert_eq!(sums.iter().sum::<u64>(), input.iter().sum::<u64>());
        // Order is preserved: first chunk is 0..64.
        assert_eq!(sums[0], (0..64).sum::<u64>());
    }

    #[test]
    #[should_panic(expected = "nonzero chunk size")]
    fn par_chunks_rejects_zero() {
        let _ = par_chunks(&[1u8], 0, |c| c.len());
    }
}
