//! # wsm-twothree — batched parallel 2-3 tree
//!
//! The working-set maps of the paper store every segment in a pair of
//! balanced search trees (a *key-map* sorted by key and a *recency-map*
//! sorted by recency), realised as **batched parallel 2-3 trees** in the style
//! of Paul, Vishkin and Wagener (paper Appendix A.2).  A batched parallel 2-3
//! tree supports, for an item-sorted batch of `b` operations on a tree of `n`
//! items:
//!
//! * a *normal batch operation* (searches / insertions / deletions) in
//!   `Θ(b · log n)` work and `O(log b + log n)` span, and
//! * a *reverse-indexing operation* that converts direct pointers back into an
//!   item-sorted batch within the same bounds.
//!
//! This crate provides:
//!
//! * [`Tree23`] — a leaf-based 2-3 tree with join/split based single and batch
//!   operations (batch get / insert / remove, split by rank, take-front/back),
//!   parallelised with rayon above a grain size;
//! * [`RecencyMap`] — the arena-fused key/recency map used by every segment
//!   of M0, M1 and M2: one key-ordered [`Tree23`] over a slab arena whose
//!   slots carry an intrusive doubly-linked recency list, realising the
//!   paper's cross-linked direct pointers without `unsafe`.  Every segment
//!   operation drives **one** tree — half the tree passes of the old
//!   stamp-keyed two-tree substitution on every path (one D&C sweep per
//!   large batch, one point traversal per item on the small-batch point
//!   loop) — within the same `Θ(b log n)` work / `O(log b + log n)` span
//!   contract;
//! * [`cost`] — the analytic cost formulas of Appendix A.2 used by the
//!   instrumented map structures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod batch;
pub mod cost;
mod node;
pub mod recency;
pub mod tree;

pub use recency::RecencyMap;
pub use tree::Tree23;
