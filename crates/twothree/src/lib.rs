//! # wsm-twothree — batched parallel fanout-B arena tree
//!
//! The working-set maps of the paper store every segment in a pair of
//! balanced search trees (a *key-map* sorted by key and a *recency-map*
//! sorted by recency), realised as **batched parallel balanced trees** in the
//! style of Paul, Vishkin and Wagener (paper Appendix A.2).  Such a tree
//! supports, for an item-sorted batch of `b` operations on a tree of `n`
//! items:
//!
//! * a *normal batch operation* (searches / insertions / deletions) in
//!   `Θ(b · log n)` work and `O(log b + log n)` span, and
//! * a *reverse-indexing operation* that converts direct pointers back into an
//!   item-sorted batch within the same bounds.
//!
//! # Cache-conscious core
//!
//! The paper states its bounds for 2-3 trees, but nothing in the analysis
//! forbids a wider node: any (a,b)-tree with `b >= 2a - 1` supports the same
//! split/join/borrow/merge algebra.  Since the fanout generalization the tree
//! here is [`BTree`]: nodes hold up to `B` children (`B = 16` by default,
//! `WSM_TREE_FANOUT` to override), each internal node carries a **contiguous
//! routing-key array** scanned linearly, and all nodes live in a slab arena
//! (`Vec` + intrusive free list — the `recency.rs` arena idiom applied to
//! tree nodes), so descending a level is an index hop into a dense slab
//! rather than a pointer chase.  Height shrinks from `log₂ n` to
//! `log_{B/2} n`, and with it every measured touched-node count and tree
//! pass in the stack (E18 shows the drop; E17 re-checks the Lemma ceilings).
//!
//! `B = 2` instantiates exactly the 2-3 tree of Appendix A.2 (2..=3 children
//! per node) and stays the **analytic reference**: the closed-form bounds in
//! [`cost`] ([`cost::single_op`], [`cost::batch_op`], [`cost::transfer`]) are
//! the paper's `B = 2` formulas, the fanout-parameterized `*_b` variants
//! reduce to them at `B = 2`, and the Lemma-ceiling assertions are checked
//! against the bound of whatever fanout a tree actually runs.
//!
//! This crate provides:
//!
//! * [`BTree`] (alias [`Tree23`]) — the leaf-based fanout-B arena tree with
//!   join/split based single and batch operations (batch get / insert /
//!   remove, split by rank, take-front/back), parallelised with rayon above
//!   a grain size;
//! * [`RecencyMap`] — the arena-fused key/recency map used by every segment
//!   of M0, M1 and M2: one key-ordered [`BTree`] over a slab arena whose
//!   slots carry an intrusive doubly-linked recency list, realising the
//!   paper's cross-linked direct pointers without `unsafe`.  Every segment
//!   operation drives **one** tree — half the tree passes of the old
//!   stamp-keyed two-tree substitution on every path — within the same
//!   `Θ(b log n)` work / `O(log b + log n)` span contract;
//! * [`cost`] — the analytic cost formulas of Appendix A.2 (closed-form
//!   `B = 2` plus the fanout-parameterized generalizations) used by the
//!   instrumented map structures.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

use std::sync::OnceLock;

pub mod batch;
pub mod cost;
mod node;
pub mod recency;
pub mod tree;

pub use recency::RecencyMap;
pub use tree::{BTree, Tree23};

/// The process-wide default tree fanout: `WSM_TREE_FANOUT` if set and valid
/// (2..=64; warn-once on bad values), else 16.
///
/// `2` selects the 2-3 reference instantiation of paper Appendix A.2; the
/// default `16` is the cache-conscious wide node (8..=16 children, one
/// routing-key array per cache line or two).  Read once and cached for the
/// lifetime of the process, like the other `WSM_*` knobs; per-tree overrides
/// go through [`BTree::with_fanout`].
pub fn default_fanout() -> usize {
    static FANOUT: OnceLock<usize> = OnceLock::new();
    *FANOUT.get_or_init(|| {
        wsm_check::env::parse(
            "WSM_TREE_FANOUT",
            "a node fanout in 2..=64",
            16usize,
            |&b| (2..=64).contains(&b),
        )
    })
}
