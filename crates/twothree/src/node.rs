//! Internal node representation and the join/split primitives of the 2-3 tree.
//!
//! The tree is leaf-based: every item lives in a leaf, internal nodes have two
//! or three children of equal height and cache the subtree size and maximum
//! key for routing.  All structural operations are expressed through `join`
//! (concatenate two trees whose key ranges do not interleave) and `split`
//! (cut a tree at a key or at a rank), the classic building blocks for batch
//! parallel operations on balanced trees.
//!
//! Every recursion step of the structural operations calls
//! [`crate::cost::touch`] once, so [`crate::cost::metered`] observes the
//! number of nodes an operation *actually* visited — the measured side of the
//! measured-vs-bound charge split in [`crate::cost`].  Whole root-originating
//! traversals are counted separately as *passes* at the [`crate::Tree23`]
//! entry points (`cost::tree_passes`), which is how E18 witnesses that the
//! arena-fused recency map drives one pass per segment op.  Read-only
//! diagnostic traversals (`for_each`, invariant checks) are deliberately
//! uncounted by either counter.

use crate::cost::touch;

/// A node of the 2-3 tree: either a leaf holding an item or an internal node
/// with 2–3 children of equal height.
#[derive(Clone, Debug)]
pub(crate) enum Node<K, V> {
    Leaf { key: K, val: V },
    Internal(Internal<K, V>),
}

#[derive(Clone, Debug)]
pub(crate) struct Internal<K, V> {
    pub height: usize,
    pub size: usize,
    /// Maximum key in the subtree (used for routing searches and splits).
    pub max: K,
    pub children: Vec<Node<K, V>>,
}

impl<K: Ord + Clone, V> Node<K, V> {
    pub fn leaf(key: K, val: V) -> Self {
        Node::Leaf { key, val }
    }

    pub fn height(&self) -> usize {
        match self {
            Node::Leaf { .. } => 0,
            Node::Internal(i) => i.height,
        }
    }

    pub fn size(&self) -> usize {
        match self {
            Node::Leaf { .. } => 1,
            Node::Internal(i) => i.size,
        }
    }

    pub fn max_key(&self) -> &K {
        match self {
            Node::Leaf { key, .. } => key,
            Node::Internal(i) => &i.max,
        }
    }

    /// Builds an internal node from 2–3 children of equal height.
    pub fn internal(children: Vec<Node<K, V>>) -> Self {
        debug_assert!((2..=3).contains(&children.len()));
        debug_assert!(children.windows(2).all(|w| w[0].height() == w[1].height()));
        let height = children[0].height() + 1;
        let size = children.iter().map(Node::size).sum();
        let max = children.last().expect("non-empty").max_key().clone();
        Node::Internal(Internal {
            height,
            size,
            max,
            children,
        })
    }

    /// Builds one or two nodes from 2–4 children of equal height.
    fn from_children(mut children: Vec<Node<K, V>>) -> (Node<K, V>, Option<Node<K, V>>) {
        debug_assert!((2..=4).contains(&children.len()));
        if children.len() <= 3 {
            (Node::internal(children), None)
        } else {
            let right = children.split_off(2);
            (Node::internal(children), Some(Node::internal(right)))
        }
    }

    /// Attaches tree `r` (strictly smaller height, keys all greater) to the
    /// right spine of `l`.  Returns one or two nodes of `l`'s height.
    fn attach_right(l: Node<K, V>, r: Node<K, V>) -> (Node<K, V>, Option<Node<K, V>>) {
        debug_assert!(l.height() > r.height());
        touch(1);
        let Node::Internal(int) = l else {
            unreachable!("attach_right target must be internal")
        };
        let mut children = int.children;
        if int.height == r.height() + 1 {
            children.push(r);
        } else {
            let last = children.pop().expect("internal node has children");
            let (a, b) = Node::attach_right(last, r);
            children.push(a);
            if let Some(b) = b {
                children.push(b);
            }
        }
        Node::from_children(children)
    }

    /// Attaches tree `l` (strictly smaller height, keys all smaller) to the
    /// left spine of `r`.  Returns one or two nodes of `r`'s height.
    fn attach_left(l: Node<K, V>, r: Node<K, V>) -> (Node<K, V>, Option<Node<K, V>>) {
        debug_assert!(r.height() > l.height());
        touch(1);
        let Node::Internal(int) = r else {
            unreachable!("attach_left target must be internal")
        };
        let mut children = int.children;
        if int.height == l.height() + 1 {
            children.insert(0, l);
        } else {
            let first = children.remove(0);
            let (a, b) = Node::attach_left(l, first);
            if let Some(b) = b {
                children.insert(0, b);
            }
            children.insert(0, a);
        }
        Node::from_children(children)
    }

    /// Joins two trees whose key ranges satisfy `max(l) <= min(r)` (callers
    /// guarantee strict ordering for distinct keys).
    pub fn join(l: Node<K, V>, r: Node<K, V>) -> Node<K, V> {
        use std::cmp::Ordering::*;
        touch(1);
        match l.height().cmp(&r.height()) {
            Equal => Node::internal(vec![l, r]),
            Greater => {
                let (a, b) = Node::attach_right(l, r);
                match b {
                    None => a,
                    Some(b) => Node::internal(vec![a, b]),
                }
            }
            Less => {
                let (a, b) = Node::attach_left(l, r);
                match b {
                    None => a,
                    Some(b) => Node::internal(vec![a, b]),
                }
            }
        }
    }

    /// Joins two optional trees.
    pub fn join_opt(l: Option<Node<K, V>>, r: Option<Node<K, V>>) -> Option<Node<K, V>> {
        match (l, r) {
            (None, r) => r,
            (l, None) => l,
            (Some(l), Some(r)) => Some(Node::join(l, r)),
        }
    }

    /// Splits the tree at `key`: everything with key `< key` goes left, an
    /// exact match is returned separately, everything with key `> key` goes
    /// right.
    #[allow(clippy::type_complexity)]
    pub fn split_at_key(self, key: &K) -> (Option<Node<K, V>>, Option<(K, V)>, Option<Node<K, V>>) {
        touch(1);
        match self {
            Node::Leaf { key: k, val } => match key.cmp(&k) {
                std::cmp::Ordering::Equal => (None, Some((k, val)), None),
                std::cmp::Ordering::Less => (None, None, Some(Node::Leaf { key: k, val })),
                std::cmp::Ordering::Greater => (Some(Node::Leaf { key: k, val }), None, None),
            },
            Node::Internal(int) => {
                let children = int.children;
                // Find the first child whose max key is >= key; if none, the
                // key is larger than everything and the whole tree goes left.
                let idx = children
                    .iter()
                    .position(|c| key <= c.max_key())
                    .unwrap_or(children.len() - 1);
                let mut left: Option<Node<K, V>> = None;
                let mut right: Option<Node<K, V>> = None;
                let mut found = None;
                for (i, child) in children.into_iter().enumerate() {
                    if i < idx {
                        left = Node::join_opt(left, Some(child));
                    } else if i == idx {
                        let (l, f, r) = child.split_at_key(key);
                        left = Node::join_opt(left, l);
                        found = f;
                        right = r;
                    } else {
                        right = Node::join_opt(right, Some(child));
                    }
                }
                (left, found, right)
            }
        }
    }

    /// Splits the tree by rank: the first `rank` items (in key order) go left,
    /// the rest go right.
    #[allow(clippy::type_complexity)]
    pub fn split_at_rank(self, rank: usize) -> (Option<Node<K, V>>, Option<Node<K, V>>) {
        touch(1);
        if rank == 0 {
            return (None, Some(self));
        }
        if rank >= self.size() {
            return (Some(self), None);
        }
        match self {
            Node::Leaf { .. } => unreachable!("rank split inside a leaf is handled above"),
            Node::Internal(int) => {
                let mut remaining = rank;
                let mut left: Option<Node<K, V>> = None;
                let mut right: Option<Node<K, V>> = None;
                for child in int.children {
                    if remaining == 0 {
                        right = Node::join_opt(right, Some(child));
                    } else if remaining >= child.size() {
                        remaining -= child.size();
                        left = Node::join_opt(left, Some(child));
                    } else {
                        let (l, r) = child.split_at_rank(remaining);
                        remaining = 0;
                        left = Node::join_opt(left, l);
                        right = Node::join_opt(right, r);
                    }
                }
                (left, right)
            }
        }
    }

    /// Recomputes the cached size/max/height of an internal node from its
    /// children (all ≤ 3 of them, so this is O(1)).
    fn refresh(int: &mut Internal<K, V>) {
        int.height = int.children[0].height() + 1;
        int.size = int.children.iter().map(Node::size).sum();
        int.max = int
            .children
            .last()
            .expect("internal node has children")
            .max_key()
            .clone();
    }

    /// In-place point insertion: a single root-to-leaf traversal that splits
    /// overfull nodes on the way back up.  Returns the previous value for the
    /// key (if any) and, when this node overflowed, a new right sibling of
    /// the same height that the caller must adopt.
    ///
    /// This is the constant-factor fast path behind [`crate::Tree23::insert`]:
    /// unlike the split/join route it touches only the nodes on one spine and
    /// allocates at most one child vector per split.
    pub fn insert_point(&mut self, key: K, val: V) -> (Option<V>, Option<Node<K, V>>) {
        touch(1);
        match self {
            Node::Leaf { key: k, val: v } => match key.cmp(k) {
                std::cmp::Ordering::Equal => (Some(std::mem::replace(v, val)), None),
                std::cmp::Ordering::Less => {
                    // The new leaf takes this position; the old leaf becomes
                    // the right sibling the parent adopts.
                    let old = std::mem::replace(self, Node::Leaf { key, val });
                    (None, Some(old))
                }
                std::cmp::Ordering::Greater => (None, Some(Node::Leaf { key, val })),
            },
            Node::Internal(int) => {
                let idx = int
                    .children
                    .iter()
                    .position(|c| &key <= c.max_key())
                    .unwrap_or(int.children.len() - 1);
                let (prev, overflow) = int.children[idx].insert_point(key, val);
                if let Some(sibling) = overflow {
                    int.children.insert(idx + 1, sibling);
                }
                if int.children.len() > 3 {
                    let right = int.children.split_off(2);
                    Node::refresh(int);
                    (prev, Some(Node::internal(right)))
                } else {
                    Node::refresh(int);
                    (prev, None)
                }
            }
        }
    }

    /// In-place point removal from an internal node: a single root-to-leaf
    /// traversal that repairs underfull children (borrow from or merge with a
    /// sibling) on the way back up.  Returns the removed item.
    ///
    /// After the call this node may itself be left with a single child —
    /// only the caller (the parent, or [`crate::Tree23::remove`] at the
    /// root) can repair that, exactly as with the overflow of
    /// [`Node::insert_point`].
    pub fn remove_point(int: &mut Internal<K, V>, key: &K) -> Option<(K, V)> {
        touch(1);
        let idx = int.children.iter().position(|c| key <= c.max_key())?;
        let removed = if matches!(&int.children[idx], Node::Leaf { .. }) {
            match &int.children[idx] {
                Node::Leaf { key: k, .. } if k == key => match int.children.remove(idx) {
                    Node::Leaf { key, val } => Some((key, val)),
                    Node::Internal(_) => unreachable!("matched a leaf"),
                },
                _ => None,
            }
        } else {
            let Node::Internal(child) = &mut int.children[idx] else {
                unreachable!("non-leaf child is internal")
            };
            let removed = Node::remove_point(child, key);
            if removed.is_some() && child.children.len() < 2 {
                Node::fix_underflow(int, idx);
            }
            removed
        };
        if removed.is_some() && !int.children.is_empty() {
            Node::refresh(int);
        }
        removed
    }

    /// Repairs `int.children[idx]`, an internal child left with exactly one
    /// grandchild: borrow a grandchild from an adjacent 3-child sibling, or
    /// merge the lone grandchild into a 2-child sibling (dropping the child).
    fn fix_underflow(int: &mut Internal<K, V>, idx: usize) {
        touch(1);
        let sib_idx = if idx > 0 { idx - 1 } else { idx + 1 };
        let lone = match &mut int.children[idx] {
            Node::Internal(c) => c.children.pop().expect("underflowing child has one child"),
            Node::Leaf { .. } => unreachable!("underflow is defined on internal children"),
        };
        let sibling_has_spare = match &int.children[sib_idx] {
            Node::Internal(s) => s.children.len() == 3,
            Node::Leaf { .. } => unreachable!("siblings have equal height"),
        };
        if sibling_has_spare {
            let moved = match &mut int.children[sib_idx] {
                Node::Internal(s) => {
                    let moved = if sib_idx < idx {
                        s.children.pop().expect("3 children")
                    } else {
                        s.children.remove(0)
                    };
                    Node::refresh(s);
                    moved
                }
                Node::Leaf { .. } => unreachable!(),
            };
            match &mut int.children[idx] {
                Node::Internal(c) => {
                    debug_assert!(c.children.is_empty());
                    if sib_idx < idx {
                        c.children.push(moved);
                        c.children.push(lone);
                    } else {
                        c.children.push(lone);
                        c.children.push(moved);
                    }
                    Node::refresh(c);
                }
                Node::Leaf { .. } => unreachable!(),
            }
        } else {
            match &mut int.children[sib_idx] {
                Node::Internal(s) => {
                    if sib_idx < idx {
                        s.children.push(lone);
                    } else {
                        s.children.insert(0, lone);
                    }
                    Node::refresh(s);
                }
                Node::Leaf { .. } => unreachable!(),
            }
            int.children.remove(idx);
        }
    }

    /// Looks up `key`, returning a reference to its value.
    pub fn get<'a>(&'a self, key: &K) -> Option<&'a V> {
        touch(1);
        match self {
            Node::Leaf { key: k, val } => (k == key).then_some(val),
            Node::Internal(int) => {
                let child = int.children.iter().find(|c| key <= c.max_key())?;
                child.get(key)
            }
        }
    }

    /// Looks up `key`, returning a mutable reference to its value.
    pub fn get_mut<'a>(&'a mut self, key: &K) -> Option<&'a mut V> {
        touch(1);
        match self {
            Node::Leaf { key: k, val } => (k == key).then_some(val),
            Node::Internal(int) => {
                let child = int.children.iter_mut().find(|c| key <= c.max_key())?;
                child.get_mut(key)
            }
        }
    }

    /// The item with rank `idx` (0-based, in key order).
    pub fn select(&self, idx: usize) -> Option<(&K, &V)> {
        touch(1);
        if idx >= self.size() {
            return None;
        }
        match self {
            Node::Leaf { key, val } => Some((key, val)),
            Node::Internal(int) => {
                let mut idx = idx;
                for child in &int.children {
                    if idx < child.size() {
                        return child.select(idx);
                    }
                    idx -= child.size();
                }
                None
            }
        }
    }

    /// In-order traversal into `out`.
    pub fn collect_into(self, out: &mut Vec<(K, V)>) {
        touch(1);
        match self {
            Node::Leaf { key, val } => out.push((key, val)),
            Node::Internal(int) => {
                for child in int.children {
                    child.collect_into(out);
                }
            }
        }
    }

    /// In-order traversal by reference.
    pub fn for_each<'a, F: FnMut(&'a K, &'a V)>(&'a self, f: &mut F) {
        match self {
            Node::Leaf { key, val } => f(key, val),
            Node::Internal(int) => {
                for child in &int.children {
                    child.for_each(f);
                }
            }
        }
    }

    /// Builds a balanced tree from sorted, deduplicated items in O(n).
    pub fn from_sorted(items: Vec<(K, V)>) -> Option<Node<K, V>> {
        if items.is_empty() {
            return None;
        }
        // A linear build touches every created leaf (internal nodes are a
        // constant fraction on top, folded into the ceiling).
        touch(items.len() as u64);
        let mut level: Vec<Node<K, V>> = items.into_iter().map(|(k, v)| Node::leaf(k, v)).collect();
        while level.len() > 1 {
            let mut next = Vec::with_capacity(level.len() / 2 + 1);
            let mut iter = level.into_iter().peekable();
            let mut pending: Vec<Node<K, V>> = Vec::with_capacity(3);
            while let Some(node) = iter.next() {
                pending.push(node);
                let remaining_after = iter.len();
                // Flush groups of 2, unless exactly one node would be left
                // over (then hold out for a group of 3, keeping 2-3 children
                // everywhere).
                if (pending.len() == 2 && remaining_after != 1) || pending.len() == 3 {
                    next.push(Node::internal(std::mem::take(&mut pending)));
                }
            }
            debug_assert!(pending.is_empty(), "grouping left a dangling child");
            level = next;
        }
        level.pop()
    }

    /// Validates the structural invariants of the 2-3 tree (used by tests).
    /// Returns the height.
    pub fn check_invariants(&self) -> usize
    where
        K: std::fmt::Debug,
    {
        match self {
            Node::Leaf { .. } => 0,
            Node::Internal(int) => {
                assert!(
                    (2..=3).contains(&int.children.len()),
                    "internal node must have 2-3 children, has {}",
                    int.children.len()
                );
                let heights: Vec<usize> =
                    int.children.iter().map(|c| c.check_invariants()).collect();
                assert!(
                    heights.windows(2).all(|w| w[0] == w[1]),
                    "children heights differ: {heights:?}"
                );
                assert_eq!(int.height, heights[0] + 1, "cached height wrong");
                assert_eq!(
                    int.size,
                    int.children.iter().map(Node::size).sum::<usize>(),
                    "cached size wrong"
                );
                assert_eq!(
                    &int.max,
                    int.children.last().unwrap().max_key(),
                    "cached max wrong"
                );
                // Keys are ordered across children.
                for w in int.children.windows(2) {
                    assert!(
                        w[0].max_key() <= w[1].max_key(),
                        "child key ranges out of order"
                    );
                }
                int.height
            }
        }
    }
}
