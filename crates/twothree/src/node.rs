//! Arena-backed node layer of the fanout-B tree and its join/split primitives.
//!
//! The tree is leaf-based: every item lives in a leaf, internal nodes hold
//! `min_children..=max_children` children of equal height together with a
//! **contiguous routing-key array** (`keys[i]` is the maximum key of
//! `children[i]`), so descending one level is a linear scan of one small key
//! array instead of a pointer chase per comparison.  Nodes live in a slab
//! [`Arena`] (the `recency.rs` arena idiom applied to tree nodes): a
//! `Vec<Slot>` with an intrusive free list, and `usize` indices instead of
//! owned boxes — structural operations move indices, not allocations.
//!
//! The occupancy bounds derive from the configured fanout `B`:
//! `min_children = max(2, B/2)`, `max_children = max(3, B)`.  `B = 2` gives
//! exactly the 2-3 tree of paper Appendix A.2 (2..=3 children), which stays
//! as the analytic reference instantiation; `B = 8` gives 4..=8, `B = 16`
//! (the default) gives 8..=16.  For every such pair `2·min - 1 <= max`, so
//! the split/join/borrow/merge algebra is the classic (a,b)-tree algebra and
//! underflow repair always terminates.  The root is exempt from the minimum
//! (any root may have 2 children); every other internal node keeps
//! `min..=max`.
//!
//! All structural operations are expressed through `join` (concatenate two
//! trees whose key ranges do not interleave) and `split` (cut a tree at a key
//! or at a rank), the classic building blocks for batch parallel operations
//! on balanced trees.  Equal-height joins merge or evenly redistribute
//! top-level children so no under-occupied node is ever buried inside a tree.
//!
//! Every recursion step of the structural operations calls
//! [`crate::cost::touch`] once **per node visited** — in-node work is O(B)
//! and is the point of the layout (one cache-friendly sweep), while the
//! measured cost model counts node visits, which is what shrinks by
//! `~log₂ B` at wide fanouts.  Whole root-originating traversals are counted
//! separately as *passes* at the [`crate::BTree`] entry points
//! (`cost::tree_passes`).  Read-only diagnostic traversals (`for_each`,
//! invariant checks) are deliberately uncounted by either counter.

use crate::cost::touch;

/// Null arena index: "no node" (empty tree, end of the free list).
pub(crate) const NIL: usize = usize::MAX;

/// One arena slot: a leaf item, an internal node, or a free-list link.
#[derive(Clone, Debug)]
pub(crate) enum Slot<K, V> {
    Free { next: usize },
    Leaf { key: K, val: V },
    Internal(Internal<K>),
}

/// An internal node: children indices plus the contiguous routing-key array
/// (`keys[i]` = max key under `children[i]`), with cached height and size.
#[derive(Clone, Debug)]
pub(crate) struct Internal<K> {
    pub height: usize,
    pub size: usize,
    pub keys: Vec<K>,
    pub children: Vec<usize>,
}

/// The node slab: every node of one tree lives here, free slots are threaded
/// into an intrusive free list, and the occupancy bounds of the configured
/// fanout are carried alongside so structural ops can repair against them.
#[derive(Clone, Debug)]
pub(crate) struct Arena<K, V> {
    slots: Vec<Slot<K, V>>,
    free: usize,
    min_c: usize,
    max_c: usize,
}

impl<K: Ord + Clone, V> Arena<K, V> {
    pub fn new(fanout: usize) -> Self {
        Arena {
            slots: Vec::new(),
            free: NIL,
            min_c: (fanout / 2).max(2),
            max_c: fanout.max(3),
        }
    }

    /// The fanout this arena was configured with (`max_children`, with the
    /// 2-3 instantiation reporting 2).
    pub fn fanout(&self) -> usize {
        if self.max_c == 3 && self.min_c == 2 {
            2
        } else {
            self.max_c
        }
    }

    // ------------------------------------------------------------------
    // Slab primitives
    // ------------------------------------------------------------------

    fn alloc(&mut self, slot: Slot<K, V>) -> usize {
        match self.free {
            NIL => {
                self.slots.push(slot);
                self.slots.len() - 1
            }
            idx => {
                let Slot::Free { next } = self.slots[idx] else {
                    unreachable!("free list visits a live slot")
                };
                self.free = next;
                self.slots[idx] = slot;
                idx
            }
        }
    }

    /// Vacates a slot onto the free list, returning what it held.
    fn take_slot(&mut self, idx: usize) -> Slot<K, V> {
        let slot = std::mem::replace(&mut self.slots[idx], Slot::Free { next: self.free });
        debug_assert!(!matches!(slot, Slot::Free { .. }), "double free of a slot");
        self.free = idx;
        slot
    }

    /// Allocates a new leaf.
    pub fn leaf(&mut self, key: K, val: V) -> usize {
        touch(1);
        self.alloc(Slot::Leaf { key, val })
    }

    /// Frees a leaf slot, returning its item.
    pub fn take_leaf(&mut self, idx: usize) -> (K, V) {
        match self.take_slot(idx) {
            Slot::Leaf { key, val } => (key, val),
            _ => unreachable!("expected a leaf slot"),
        }
    }

    /// Frees an internal slot, returning its node.
    pub fn take_internal(&mut self, idx: usize) -> Internal<K> {
        match self.take_slot(idx) {
            Slot::Internal(int) => int,
            _ => unreachable!("expected an internal slot"),
        }
    }

    pub fn is_leaf(&self, idx: usize) -> bool {
        matches!(self.slots[idx], Slot::Leaf { .. })
    }

    fn internal(&self, idx: usize) -> &Internal<K> {
        match &self.slots[idx] {
            Slot::Internal(int) => int,
            _ => unreachable!("expected an internal node"),
        }
    }

    fn internal_mut(&mut self, idx: usize) -> &mut Internal<K> {
        match &mut self.slots[idx] {
            Slot::Internal(int) => int,
            _ => unreachable!("expected an internal node"),
        }
    }

    pub fn height(&self, idx: usize) -> usize {
        match &self.slots[idx] {
            Slot::Leaf { .. } => 0,
            Slot::Internal(int) => int.height,
            Slot::Free { .. } => unreachable!("height of a free slot"),
        }
    }

    pub fn size(&self, idx: usize) -> usize {
        match &self.slots[idx] {
            Slot::Leaf { .. } => 1,
            Slot::Internal(int) => int.size,
            Slot::Free { .. } => unreachable!("size of a free slot"),
        }
    }

    pub fn max_key(&self, idx: usize) -> &K {
        match &self.slots[idx] {
            Slot::Leaf { key, .. } => key,
            Slot::Internal(int) => int.keys.last().expect("internal node has children"),
            Slot::Free { .. } => unreachable!("max_key of a free slot"),
        }
    }

    pub fn children_len(&self, idx: usize) -> usize {
        self.internal(idx).children.len()
    }

    /// Builds an internal node over `children` (equal heights, 2..=max).  A
    /// node below `min_children` is permitted here because every node built
    /// this way is (transiently) a root; attachment into a larger tree
    /// repairs occupancy (see [`Arena::join`]).
    pub fn make_internal(&mut self, children: Vec<usize>) -> usize {
        touch(1);
        debug_assert!((2..=self.max_c).contains(&children.len()));
        let idx = self.alloc(Slot::Internal(Internal {
            height: 0,
            size: 0,
            keys: Vec::new(),
            children,
        }));
        self.refresh(idx);
        idx
    }

    /// Recomputes the cached height/size and rebuilds the routing-key array
    /// of an internal node from its children — O(B) per call, the in-node
    /// cost unit of the wide layout.
    fn refresh(&mut self, idx: usize) {
        let children = std::mem::take(&mut self.internal_mut(idx).children);
        debug_assert!(!children.is_empty());
        let height = self.height(children[0]) + 1;
        let size = children.iter().map(|&c| self.size(c)).sum();
        let keys: Vec<K> = children.iter().map(|&c| self.max_key(c).clone()).collect();
        let int = self.internal_mut(idx);
        int.children = children;
        int.height = height;
        int.size = size;
        int.keys = keys;
    }

    // ------------------------------------------------------------------
    // Point operations
    // ------------------------------------------------------------------

    /// Descends from `idx` to the leaf holding `key`, if present.  Linear
    /// in-node routing scan; one touch per node visited.
    fn find_leaf(&self, mut idx: usize, key: &K) -> Option<usize> {
        loop {
            touch(1);
            match &self.slots[idx] {
                Slot::Leaf { key: k, .. } => return (k == key).then_some(idx),
                Slot::Internal(int) => {
                    let pos = int.keys.iter().position(|m| key <= m)?;
                    idx = int.children[pos];
                }
                Slot::Free { .. } => unreachable!("search reached a free slot"),
            }
        }
    }

    pub fn get(&self, idx: usize, key: &K) -> Option<&V> {
        let leaf = self.find_leaf(idx, key)?;
        match &self.slots[leaf] {
            Slot::Leaf { val, .. } => Some(val),
            _ => unreachable!("find_leaf returns leaves"),
        }
    }

    pub fn get_mut(&mut self, idx: usize, key: &K) -> Option<&mut V> {
        let leaf = self.find_leaf(idx, key)?;
        match &mut self.slots[leaf] {
            Slot::Leaf { val, .. } => Some(val),
            _ => unreachable!("find_leaf returns leaves"),
        }
    }

    /// The item with rank `rank` (0-based, key order) under `idx`.
    pub fn select(&self, mut idx: usize, mut rank: usize) -> Option<(&K, &V)> {
        if rank >= self.size(idx) {
            return None;
        }
        loop {
            touch(1);
            match &self.slots[idx] {
                Slot::Leaf { key, val } => return Some((key, val)),
                Slot::Internal(int) => {
                    let mut next = NIL;
                    for &c in &int.children {
                        let sz = self.size(c);
                        if rank < sz {
                            next = c;
                            break;
                        }
                        rank -= sz;
                    }
                    debug_assert_ne!(next, NIL, "rank under size must land in a child");
                    idx = next;
                }
                Slot::Free { .. } => unreachable!("select reached a free slot"),
            }
        }
    }

    /// In-place point insertion: one root-to-leaf traversal that splits
    /// overfull nodes on the way back up.  Returns the previous value for
    /// the key (if any) and, when this node overflowed, a new right sibling
    /// of the same height that the caller must adopt.
    pub fn insert_point(&mut self, idx: usize, key: K, val: V) -> (Option<V>, Option<usize>) {
        touch(1);
        match &mut self.slots[idx] {
            Slot::Leaf { key: k, val: v } => match key.cmp(k) {
                std::cmp::Ordering::Equal => (Some(std::mem::replace(v, val)), None),
                std::cmp::Ordering::Less => {
                    // The new leaf takes this slot; the old item becomes the
                    // right sibling the parent adopts.
                    let old_key = std::mem::replace(k, key);
                    let old_val = std::mem::replace(v, val);
                    let sib = self.alloc(Slot::Leaf {
                        key: old_key,
                        val: old_val,
                    });
                    (None, Some(sib))
                }
                std::cmp::Ordering::Greater => (None, Some(self.alloc(Slot::Leaf { key, val }))),
            },
            Slot::Internal(int) => {
                let pos = int
                    .keys
                    .iter()
                    .position(|m| &key <= m)
                    .unwrap_or(int.children.len() - 1);
                let child = int.children[pos];
                let (prev, overflow) = self.insert_point(child, key, val);
                if prev.is_some() {
                    // Pure value replacement: no structural or key change
                    // anywhere on the path, so the cached metadata is intact.
                    debug_assert!(overflow.is_none());
                    return (prev, None);
                }
                if let Some(sib) = overflow {
                    self.internal_mut(idx).children.insert(pos + 1, sib);
                }
                let overflow = if self.children_len(idx) > self.max_c {
                    let keep = self.max_c.div_ceil(2);
                    let right = self.internal_mut(idx).children.split_off(keep);
                    let right = self.make_internal(right);
                    Some(right)
                } else {
                    None
                };
                self.refresh(idx);
                (prev, overflow)
            }
            Slot::Free { .. } => unreachable!("insert reached a free slot"),
        }
    }

    /// In-place point removal from the internal node `idx`: one root-to-leaf
    /// traversal that repairs underfull children (borrow from or merge with
    /// a sibling) on the way back up.  Returns the removed item.
    ///
    /// After the call `idx` may itself be below `min_children` — only the
    /// caller (the parent, or [`crate::BTree::remove`] at the root) can
    /// repair that, exactly as with the overflow of [`Arena::insert_point`].
    pub fn remove_point(&mut self, idx: usize, key: &K) -> Option<(K, V)> {
        touch(1);
        let int = self.internal(idx);
        let pos = int.keys.iter().position(|m| key <= m)?;
        let child = int.children[pos];
        let removed = if self.is_leaf(child) {
            if self.max_key(child) == key {
                let int = self.internal_mut(idx);
                int.children.remove(pos);
                int.keys.remove(pos);
                Some(self.take_leaf(child))
            } else {
                None
            }
        } else {
            let removed = self.remove_point(child, key);
            if removed.is_some() && self.children_len(child) < self.min_c {
                self.fix_underflow(idx, pos);
            }
            removed
        };
        if removed.is_some() && !self.internal(idx).children.is_empty() {
            self.refresh(idx);
        }
        removed
    }

    /// Repairs `children[pos]` of `idx`, an internal child one below
    /// `min_children`: borrow a grandchild from an adjacent sibling with
    /// spare occupancy, or merge into that sibling (dropping the child).
    /// `2·min - 1 <= max` for every fanout, so the merge never overflows.
    fn fix_underflow(&mut self, idx: usize, pos: usize) {
        touch(1);
        let sib_pos = if pos > 0 { pos - 1 } else { pos + 1 };
        let (child, sib) = {
            let int = self.internal(idx);
            (int.children[pos], int.children[sib_pos])
        };
        if self.children_len(sib) > self.min_c {
            // Borrow the adjacent grandchild.
            let moved = if sib_pos < pos {
                self.internal_mut(sib).children.pop().expect("spare child")
            } else {
                self.internal_mut(sib).children.remove(0)
            };
            self.refresh(sib);
            let c = self.internal_mut(child);
            if sib_pos < pos {
                c.children.insert(0, moved);
            } else {
                c.children.push(moved);
            }
            self.refresh(child);
        } else {
            // Merge the underfull child into the sibling.
            let orphans = self.take_internal(child).children;
            let s = self.internal_mut(sib);
            if sib_pos < pos {
                s.children.extend(orphans);
            } else {
                s.children.splice(0..0, orphans);
            }
            self.refresh(sib);
            let int = self.internal_mut(idx);
            int.children.remove(pos);
            int.keys.remove(pos);
        }
    }

    // ------------------------------------------------------------------
    // Join
    // ------------------------------------------------------------------

    /// Joins two trees whose key ranges satisfy `max(l) <= min(r)` (callers
    /// guarantee strict ordering for distinct keys).  Returns the new root.
    pub fn join(&mut self, l: usize, r: usize) -> usize {
        use std::cmp::Ordering::*;
        touch(1);
        match self.height(l).cmp(&self.height(r)) {
            Equal => self.join_equal(l, r),
            Greater => match self.attach_right(l, r) {
                None => l,
                Some(b) => self.make_internal(vec![l, b]),
            },
            Less => match self.attach_left(l, r) {
                None => r,
                Some(a) => self.make_internal(vec![a, r]),
            },
        }
    }

    /// Joins two optional trees (NIL = empty).
    pub fn join_opt(&mut self, l: usize, r: usize) -> usize {
        if l == NIL {
            return r;
        }
        if r == NIL {
            return l;
        }
        self.join(l, r)
    }

    /// Equal-height join.  Merging the two top-level child lists (or evenly
    /// redistributing when they exceed `max`) keeps every buried node at
    /// `min..=max`; only the returned root may sit below `min`.
    fn join_equal(&mut self, l: usize, r: usize) -> usize {
        if self.is_leaf(l) {
            return self.make_internal(vec![l, r]);
        }
        let total = self.children_len(l) + self.children_len(r);
        if total <= self.max_c {
            let orphans = self.take_internal(r).children;
            self.internal_mut(l).children.extend(orphans);
            self.refresh(l);
            l
        } else if self.children_len(l) < self.min_c || self.children_len(r) < self.min_c {
            // total > max >= 2·min - 1, so an even split puts both halves at
            // or above min.
            let mut all = std::mem::take(&mut self.internal_mut(l).children);
            let orphans = self.take_internal(r).children;
            all.extend(orphans);
            let right = all.split_off(total / 2);
            self.internal_mut(l).children = all;
            self.refresh(l);
            let right = self.make_internal(right);
            self.make_internal(vec![l, right])
        } else {
            self.make_internal(vec![l, r])
        }
    }

    /// Attaches tree `r` (strictly smaller height, keys all greater) onto the
    /// right spine of `l`.  Returns `l`'s overflow sibling, if it split.
    fn attach_right(&mut self, l: usize, r: usize) -> Option<usize> {
        touch(1);
        debug_assert!(self.height(l) > self.height(r));
        if self.height(l) == self.height(r) + 1 {
            self.internal_mut(l).children.push(r);
            if !self.is_leaf(r) && self.children_len(r) < self.min_c {
                self.balance_edge(l, false);
            }
        } else {
            let last = *self.internal(l).children.last().expect("internal node");
            if let Some(b) = self.attach_right(last, r) {
                self.internal_mut(l).children.push(b);
            }
        }
        let overflow = if self.children_len(l) > self.max_c {
            let keep = self.max_c.div_ceil(2);
            let right = self.internal_mut(l).children.split_off(keep);
            Some(self.make_internal(right))
        } else {
            None
        };
        self.refresh(l);
        overflow
    }

    /// Attaches tree `l` (strictly smaller height, keys all smaller) onto the
    /// left spine of `r`.  Returns `r`'s overflow *left* sibling, if it split.
    fn attach_left(&mut self, l: usize, r: usize) -> Option<usize> {
        touch(1);
        debug_assert!(self.height(r) > self.height(l));
        if self.height(r) == self.height(l) + 1 {
            self.internal_mut(r).children.insert(0, l);
            if !self.is_leaf(l) && self.children_len(l) < self.min_c {
                self.balance_edge(r, true);
            }
        } else {
            let first = self.internal(r).children[0];
            if let Some(a) = self.attach_left(l, first) {
                self.internal_mut(r).children.insert(0, a);
            }
        }
        let overflow = if self.children_len(r) > self.max_c {
            let keep = self.max_c.div_ceil(2);
            // Keep the *right* part in place so `r` stays the spine node; the
            // split-off left half becomes the overflow sibling.
            let split_at = self.children_len(r) - keep;
            let mut left = std::mem::take(&mut self.internal_mut(r).children);
            let right = left.split_off(split_at);
            self.internal_mut(r).children = right;
            Some(self.make_internal(left))
        } else {
            None
        };
        self.refresh(r);
        overflow
    }

    /// Repairs the just-attached edge child of `idx` (`children[0]` when
    /// `front`, else the last child), which may be an internal node below
    /// `min_children`: merge it with its inner neighbour when they fit in
    /// one node, otherwise redistribute evenly (both halves end `>= min`).
    fn balance_edge(&mut self, idx: usize, front: bool) {
        touch(1);
        let n = self.children_len(idx);
        debug_assert!(n >= 2, "attachment target keeps at least two children");
        let (inner_pos, edge_pos) = if front { (1, 0) } else { (n - 2, n - 1) };
        let (inner, edge) = {
            let int = self.internal(idx);
            (int.children[inner_pos], int.children[edge_pos])
        };
        let total = self.children_len(inner) + self.children_len(edge);
        if total <= self.max_c {
            let orphans = self.take_internal(edge).children;
            let s = self.internal_mut(inner);
            if front {
                s.children.splice(0..0, orphans);
            } else {
                s.children.extend(orphans);
            }
            self.refresh(inner);
            self.internal_mut(idx).children.remove(edge_pos);
        } else {
            // Even redistribution across the pair; total > max >= 2·min - 1.
            let give = total / 2 - self.children_len(edge);
            for _ in 0..give {
                let moved = if front {
                    self.internal_mut(inner).children.remove(0)
                } else {
                    self.internal_mut(inner).children.pop().expect("spare")
                };
                let e = self.internal_mut(edge);
                if front {
                    e.children.push(moved);
                } else {
                    e.children.insert(0, moved);
                }
            }
            self.refresh(inner);
            self.refresh(edge);
        }
    }

    // ------------------------------------------------------------------
    // Split
    // ------------------------------------------------------------------

    /// Groups a run of same-height siblings into a single (transient-root)
    /// node: NIL for none, the child itself for one, else one internal node.
    fn sub_node(&mut self, children: Vec<usize>) -> usize {
        match children.len() {
            0 => NIL,
            1 => children[0],
            _ => self.make_internal(children),
        }
    }

    /// Splits the tree at `key`: everything `< key` goes left, an exact
    /// match is returned separately, everything `> key` goes right.
    pub fn split_at_key(&mut self, idx: usize, key: &K) -> (usize, Option<(K, V)>, usize) {
        touch(1);
        if self.is_leaf(idx) {
            return match key.cmp(self.max_key(idx)) {
                std::cmp::Ordering::Equal => {
                    let item = self.take_leaf(idx);
                    (NIL, Some(item), NIL)
                }
                std::cmp::Ordering::Less => (NIL, None, idx),
                std::cmp::Ordering::Greater => (idx, None, NIL),
            };
        }
        let int = self.take_internal(idx);
        let pos = int
            .keys
            .iter()
            .position(|m| key <= m)
            .unwrap_or(int.children.len() - 1);
        let mut children = int.children;
        let suffix = children.split_off(pos + 1);
        let at = children.pop().expect("pos is in range");
        let left = self.sub_node(children);
        let right_tail = self.sub_node(suffix);
        let (l, found, r) = self.split_at_key(at, key);
        let left = self.join_opt(left, l);
        let right = self.join_opt(r, right_tail);
        (left, found, right)
    }

    /// Splits the tree by rank: the first `rank` items (key order) go left,
    /// the rest right.
    pub fn split_at_rank(&mut self, idx: usize, rank: usize) -> (usize, usize) {
        touch(1);
        if rank == 0 {
            return (NIL, idx);
        }
        if rank >= self.size(idx) {
            return (idx, NIL);
        }
        // Neither 0 nor the full size, so idx cannot be a leaf.
        let int = self.take_internal(idx);
        let mut children = int.children;
        let mut remaining = rank;
        let mut pos = 0;
        for (i, &c) in children.iter().enumerate() {
            let sz = self.size(c);
            if remaining < sz {
                pos = i;
                break;
            }
            remaining -= sz;
        }
        let suffix = children.split_off(pos + 1);
        let at = children.pop().expect("pos is in range");
        let left = self.sub_node(children);
        let right_tail = self.sub_node(suffix);
        let (l, r) = self.split_at_rank(at, remaining);
        let left = self.join_opt(left, l);
        let right = self.join_opt(r, right_tail);
        (left, right)
    }

    // ------------------------------------------------------------------
    // Bulk build / drain / move
    // ------------------------------------------------------------------

    /// Builds a balanced tree from sorted, deduplicated items in O(n),
    /// distributing each level's nodes evenly so every group lands in
    /// `min..=max` (a single undersized group can only be the root).
    pub fn build_sorted(&mut self, items: Vec<(K, V)>) -> usize {
        if items.is_empty() {
            return NIL;
        }
        // A linear build touches every created leaf (internal nodes are a
        // constant fraction on top, folded into the ceiling).
        touch(items.len() as u64);
        let mut level: Vec<usize> = items
            .into_iter()
            .map(|(k, v)| self.alloc(Slot::Leaf { key: k, val: v }))
            .collect();
        while level.len() > 1 {
            let groups = level.len().div_ceil(self.max_c);
            let base = level.len() / groups;
            let extra = level.len() % groups;
            let mut next = Vec::with_capacity(groups);
            let mut iter = level.into_iter();
            for g in 0..groups {
                let take = base + usize::from(g < extra);
                let children: Vec<usize> = iter.by_ref().take(take).collect();
                next.push(self.make_internal(children));
            }
            debug_assert!(iter.next().is_none(), "grouping left a dangling child");
            level = next;
        }
        level.pop().expect("non-empty level")
    }

    /// In-order traversal into `out`, freeing the visited slots.
    pub fn collect_into(&mut self, idx: usize, out: &mut Vec<(K, V)>) {
        touch(1);
        match self.take_slot(idx) {
            Slot::Leaf { key, val } => out.push((key, val)),
            Slot::Internal(int) => {
                for child in int.children {
                    self.collect_into(child, out);
                }
            }
            Slot::Free { .. } => unreachable!("collect reached a free slot"),
        }
    }

    /// In-order traversal by reference (diagnostic; uncounted).
    pub fn for_each<'a, F: FnMut(&'a K, &'a V)>(&'a self, idx: usize, f: &mut F) {
        match &self.slots[idx] {
            Slot::Leaf { key, val } => f(key, val),
            Slot::Internal(int) => {
                for &child in &int.children {
                    self.for_each(child, f);
                }
            }
            Slot::Free { .. } => unreachable!("for_each reached a free slot"),
        }
    }

    /// Moves the subtree under `idx` into `dst` (freeing the source slots),
    /// returning its root index in `dst`.  O(subtree size); this is the
    /// repartition primitive behind the owned-split surface and the parallel
    /// bulk paths, not an analytically charged operation.
    pub fn extract(&mut self, idx: usize, dst: &mut Arena<K, V>) -> usize {
        match self.take_slot(idx) {
            Slot::Leaf { key, val } => dst.alloc(Slot::Leaf { key, val }),
            Slot::Internal(int) => {
                let children = int.children.iter().map(|&c| self.extract(c, dst)).collect();
                dst.alloc(Slot::Internal(Internal {
                    height: int.height,
                    size: int.size,
                    keys: int.keys,
                    children,
                }))
            }
            Slot::Free { .. } => unreachable!("extract reached a free slot"),
        }
    }

    /// Appends every slot of `other` (live and free) into this arena with a
    /// uniform index offset, returning `other_root` rebased.  O(slots of
    /// `other`); both arenas must share a fanout.
    pub fn absorb(&mut self, other: Arena<K, V>, other_root: usize) -> usize {
        debug_assert_eq!(self.min_c, other.min_c, "fanout mismatch in absorb");
        debug_assert_eq!(self.max_c, other.max_c, "fanout mismatch in absorb");
        let offset = self.slots.len();
        for mut slot in other.slots {
            match &mut slot {
                Slot::Free { next } => {
                    if *next != NIL {
                        *next += offset;
                    }
                }
                Slot::Internal(int) => {
                    for c in &mut int.children {
                        *c += offset;
                    }
                }
                Slot::Leaf { .. } => {}
            }
            self.slots.push(slot);
        }
        if other.free != NIL {
            // Chain the rebased free list in front of ours.
            let mut cur = other.free + offset;
            loop {
                let Slot::Free { next } = &mut self.slots[cur] else {
                    unreachable!("free list visits a live slot")
                };
                if *next == NIL {
                    *next = self.free;
                    break;
                }
                cur = *next;
            }
            self.free = other.free + offset;
        }
        if other_root == NIL {
            NIL
        } else {
            other_root + offset
        }
    }

    // ------------------------------------------------------------------
    // Invariants
    // ------------------------------------------------------------------

    /// Validates the structural invariants under `idx` (occupancy bounds,
    /// routing keys, cached height/size, key order).  Returns `(height,
    /// live node count)` so the caller can close the free-list accounting.
    pub fn check_subtree(&self, idx: usize, is_root: bool) -> (usize, usize)
    where
        K: std::fmt::Debug,
    {
        match &self.slots[idx] {
            Slot::Leaf { .. } => (0, 1),
            Slot::Internal(int) => {
                let lo = if is_root { 2 } else { self.min_c };
                assert!(
                    (lo..=self.max_c).contains(&int.children.len()),
                    "internal node must have {lo}..={} children, has {}",
                    self.max_c,
                    int.children.len()
                );
                assert_eq!(
                    int.keys.len(),
                    int.children.len(),
                    "routing-key array out of step with children"
                );
                let mut nodes = 1usize;
                let mut heights = Vec::with_capacity(int.children.len());
                for (&c, k) in int.children.iter().zip(&int.keys) {
                    let (h, n) = self.check_subtree(c, false);
                    heights.push(h);
                    nodes += n;
                    assert_eq!(k, self.max_key(c), "routing key is not the child max");
                }
                assert!(
                    heights.windows(2).all(|w| w[0] == w[1]),
                    "children heights differ: {heights:?}"
                );
                assert_eq!(int.height, heights[0] + 1, "cached height wrong");
                assert_eq!(
                    int.size,
                    int.children.iter().map(|&c| self.size(c)).sum::<usize>(),
                    "cached size wrong"
                );
                assert!(
                    int.keys.windows(2).all(|w| w[0] < w[1]),
                    "routing keys out of order"
                );
                (int.height, nodes)
            }
            Slot::Free { .. } => panic!("tree references free slot {idx}"),
        }
    }

    /// Validates the slab itself: every slot is reachable either from the
    /// tree (`live` live nodes, counted by [`Arena::check_subtree`]) or from
    /// the free list — no leaks, no cycles.
    pub fn check_slab(&self, live: usize) {
        let mut free_count = 0usize;
        let mut cur = self.free;
        while cur != NIL {
            assert!(
                free_count <= self.slots.len(),
                "free list cycle at slot {cur}"
            );
            let Slot::Free { next } = &self.slots[cur] else {
                panic!("free list visits live slot {cur}")
            };
            cur = *next;
            free_count += 1;
        }
        assert_eq!(
            live + free_count,
            self.slots.len(),
            "arena slot leak: {live} live + {free_count} free != {} slots",
            self.slots.len()
        );
    }
}
