//! Batch operations on [`Tree23`] (the "normal batch operation" of Appendix
//! A.2).
//!
//! All batch operations take an *item-sorted* batch of distinct keys, exactly
//! as the paper requires (the working-set maps entropy-sort and combine each
//! batch before it reaches the trees).  The divide-and-conquer over the batch
//! performs `Θ(b log n)` work; the recursion is parallelised with
//! `rayon::join` above a grain size in the `par_*` variants, which the
//! concurrent front-ends use for wall-clock throughput.
//!
//! Both the point-loop and the divide-and-conquer paths count every node they
//! visit through [`crate::cost::metered`], so the maps can charge measured
//! work instead of the closed-form worst case.  The `par_*` variants count on
//! whichever worker thread performs each half, so only the sequential paths
//! (the ones the analytic charging uses) have exact per-call counts.
//!
//! Since the arena rewrite a tree owns its node slab, so the parallel
//! variants cannot hand two halves of one arena to two threads.  They
//! *partition* instead: split the tree at the batch midpoint, move the right
//! part into its own fresh arena (`Arena::extract`, O(size of that part)),
//! recurse on the now-independent trees, and splice the right arena back
//! (`Arena::absorb`) on the way out.  That repartitioning costs
//! `O(n log(b / grain))` slab moves on top of the D&C itself — these are the
//! bulk-throughput entry points used above `PAR_GRAIN`, not the analytically
//! charged paths, which all go through the sequential variants.

use crate::cost::pass;
use crate::node::{Arena, NIL};
use crate::tree::Tree23;

/// Minimum batch size before the parallel variants split work across rayon.
pub const PAR_GRAIN: usize = 256;

/// Batches at or below this size are executed as a loop of in-place point
/// operations instead of the divide-and-conquer split/join recursion.  Both
/// cost `Θ(b log n)` work, but the point loop touches only the search paths
/// and allocates only on actual node splits, where split/join rebuilds entire
/// spines — a large constant factor on the small batches that dominate the
/// working-set maps' segment cascade (ROADMAP "`tcost::batch_op` constants").
pub const POINT_BATCH: usize = 32;

impl<K: Ord + Clone, V> Tree23<K, V> {
    /// Looks up each key of a sorted batch; returns one result per key in the
    /// same order.
    pub fn batch_get(&self, keys: &[K]) -> Vec<Option<&V>> {
        debug_assert!(keys.windows(2).all(|w| w[0] < w[1]), "batch must be sorted");
        keys.iter().map(|k| self.get(k)).collect()
    }

    /// Like [`Tree23::batch_remove`] but discards the stored keys, returning
    /// only the removed values.  The arena-fused recency map uses this on its
    /// take paths, where the caller already owns the keys (they came off the
    /// intrusive recency list) and the per-item key clone of the point-loop
    /// path would be pure waste.
    pub fn batch_remove_values(&mut self, keys: &[K]) -> Vec<Option<V>> {
        debug_assert!(keys.windows(2).all(|w| w[0] < w[1]), "batch must be sorted");
        if keys.len() <= POINT_BATCH {
            return keys.iter().map(|k| self.remove(k)).collect();
        }
        pass();
        let (root, removed) = batch_remove_node(&mut self.arena, self.root, keys);
        self.root = root;
        removed.into_iter().map(|r| r.map(|(_, v)| v)).collect()
    }

    /// Inserts a sorted batch of distinct keys.  Returns, per item, the value
    /// previously stored under that key (if any).
    pub fn batch_insert(&mut self, items: Vec<(K, V)>) -> Vec<Option<V>> {
        debug_assert!(
            items.windows(2).all(|w| w[0].0 < w[1].0),
            "batch must be sorted with distinct keys"
        );
        if items.len() <= POINT_BATCH {
            return items.into_iter().map(|(k, v)| self.insert(k, v)).collect();
        }
        pass();
        let (root, replaced) = batch_insert_node(&mut self.arena, self.root, items);
        self.root = root;
        replaced
    }

    /// Removes a sorted batch of distinct keys.  Returns, per key, the removed
    /// item (if it was present).
    pub fn batch_remove(&mut self, keys: &[K]) -> Vec<Option<(K, V)>> {
        debug_assert!(keys.windows(2).all(|w| w[0] < w[1]), "batch must be sorted");
        if keys.len() <= POINT_BATCH {
            return keys
                .iter()
                .map(|k| self.remove(k).map(|v| (k.clone(), v)))
                .collect();
        }
        pass();
        let (root, removed) = batch_remove_node(&mut self.arena, self.root, keys);
        self.root = root;
        removed
    }

    /// Detaches everything with key `>= key` into its own tree (exact match
    /// included), without registering a pass — internal partition primitive
    /// of the parallel paths; the public entry points charge the pass.
    fn partition_at(&mut self, key: &K) -> Tree23<K, V> {
        let mut right = Self::with_fanout(self.arena.fanout());
        if self.root == NIL {
            return right;
        }
        let (l, found, r) = self.arena.split_at_key(self.root, key);
        self.root = l;
        let mut right_root = if r == NIL {
            NIL
        } else {
            self.arena.extract(r, &mut right.arena)
        };
        if let Some((k, v)) = found {
            // The boundary item belongs to the right part, whose recursion
            // owns (and reports) the boundary key.
            let leaf = right.arena.leaf(k, v);
            right_root = right.arena.join_opt(leaf, right_root);
        }
        right.root = right_root;
        right
    }

    /// Splices a partitioned-off greater tree back, without a pass.
    fn reabsorb(&mut self, greater: Tree23<K, V>) {
        let Tree23 { arena, root } = greater;
        let r = self.arena.absorb(arena, root);
        self.root = self.arena.join_opt(self.root, r);
    }
}

impl<K: Ord + Clone + Send + Sync, V: Send + Sync> Tree23<K, V> {
    /// Parallel variant of [`Tree23::batch_get`].
    pub fn par_batch_get(&self, keys: &[K]) -> Vec<Option<&V>> {
        use rayon::prelude::*;
        if keys.len() < PAR_GRAIN {
            return self.batch_get(keys);
        }
        keys.par_iter().map(|k| self.get(k)).collect()
    }

    /// Parallel variant of [`Tree23::batch_insert`].
    pub fn par_batch_insert(&mut self, items: Vec<(K, V)>) -> Vec<Option<V>> {
        debug_assert!(
            items.windows(2).all(|w| w[0].0 < w[1].0),
            "batch must be sorted with distinct keys"
        );
        pass();
        par_batch_insert_tree(self, items)
    }

    /// Parallel variant of [`Tree23::batch_remove`].
    pub fn par_batch_remove(&mut self, keys: &[K]) -> Vec<Option<(K, V)>> {
        debug_assert!(keys.windows(2).all(|w| w[0] < w[1]), "batch must be sorted");
        pass();
        par_batch_remove_tree(self, keys)
    }
}

type InsertOut<V> = (usize, Vec<Option<V>>);
type RemoveOut<K, V> = (usize, Vec<Option<(K, V)>>);

fn batch_insert_node<K: Ord + Clone, V>(
    arena: &mut Arena<K, V>,
    t: usize,
    mut items: Vec<(K, V)>,
) -> InsertOut<V> {
    match items.len() {
        0 => (t, Vec::new()),
        1 => {
            let (k, v) = items.pop().expect("one item");
            let (left, found, right) = if t == NIL {
                (NIL, None, NIL)
            } else {
                arena.split_at_key(t, &k)
            };
            let leaf = arena.leaf(k, v);
            let left = arena.join_opt(left, leaf);
            let joined = arena.join_opt(left, right);
            (joined, vec![found.map(|(_, v)| v)])
        }
        len => {
            let mid = len / 2;
            let mut right_items = items.split_off(mid);
            let (mid_k, mid_v) = right_items.remove(0);
            let (left_t, found, right_t) = if t == NIL {
                (NIL, None, NIL)
            } else {
                arena.split_at_key(t, &mid_k)
            };
            let (left_t, mut out) = batch_insert_node(arena, left_t, items);
            out.push(found.map(|(_, v)| v));
            let (right_t, right_out) = batch_insert_node(arena, right_t, right_items);
            out.extend(right_out);
            let leaf = arena.leaf(mid_k, mid_v);
            let left_t = arena.join_opt(left_t, leaf);
            let joined = arena.join_opt(left_t, right_t);
            (joined, out)
        }
    }
}

fn batch_remove_node<K: Ord + Clone, V>(
    arena: &mut Arena<K, V>,
    t: usize,
    keys: &[K],
) -> RemoveOut<K, V> {
    match keys.len() {
        0 => (t, Vec::new()),
        1 => {
            let k = &keys[0];
            let (left, found, right) = if t == NIL {
                (NIL, None, NIL)
            } else {
                arena.split_at_key(t, k)
            };
            (arena.join_opt(left, right), vec![found])
        }
        len => {
            let mid = len / 2;
            let mid_k = &keys[mid];
            let (left_t, found, right_t) = if t == NIL {
                (NIL, None, NIL)
            } else {
                arena.split_at_key(t, mid_k)
            };
            let (left_t, mut out) = batch_remove_node(arena, left_t, &keys[..mid]);
            out.push(found);
            let (right_t, right_out) = batch_remove_node(arena, right_t, &keys[mid + 1..]);
            out.extend(right_out);
            (arena.join_opt(left_t, right_t), out)
        }
    }
}

fn par_batch_insert_tree<K: Ord + Clone + Send + Sync, V: Send + Sync>(
    tree: &mut Tree23<K, V>,
    items: Vec<(K, V)>,
) -> Vec<Option<V>> {
    let len = items.len();
    if len < PAR_GRAIN {
        let (root, out) = batch_insert_node(&mut tree.arena, tree.root, items);
        tree.root = root;
        return out;
    }
    let mut items = items;
    let right_items = items.split_off(len / 2);
    // Partition at the right half's first key; the boundary item (exact
    // match included) lands in the right tree, whose recursion reports it.
    let mut right_tree = tree.partition_at(&right_items[0].0);
    let (mut out, right_out) = rayon::join(
        || par_batch_insert_tree(tree, items),
        || {
            let out = par_batch_insert_tree(&mut right_tree, right_items);
            (right_tree, out)
        },
    );
    let (right_tree, right_out) = right_out;
    out.extend(right_out);
    tree.reabsorb(right_tree);
    out
}

fn par_batch_remove_tree<K: Ord + Clone + Send + Sync, V: Send + Sync>(
    tree: &mut Tree23<K, V>,
    keys: &[K],
) -> Vec<Option<(K, V)>> {
    let len = keys.len();
    if len < PAR_GRAIN {
        let (root, out) = batch_remove_node(&mut tree.arena, tree.root, keys);
        tree.root = root;
        return out;
    }
    let (left_keys, right_keys) = keys.split_at(len / 2);
    let mut right_tree = tree.partition_at(&right_keys[0]);
    let (mut out, right_out) = rayon::join(
        || par_batch_remove_tree(tree, left_keys),
        || {
            let out = par_batch_remove_tree(&mut right_tree, right_keys);
            (right_tree, out)
        },
    );
    let (right_tree, right_out) = right_out;
    out.extend(right_out);
    tree.reabsorb(right_tree);
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    fn sorted_distinct(mut v: Vec<u64>) -> Vec<u64> {
        v.sort_unstable();
        v.dedup();
        v
    }

    #[test]
    fn batch_insert_into_empty() {
        for fanout in [2usize, 8, 16] {
            let mut t: Tree23<u64, u64> = Tree23::with_fanout(fanout);
            let items: Vec<(u64, u64)> = (0..100).map(|i| (i, i + 1000)).collect();
            let replaced = t.batch_insert(items);
            assert!(replaced.iter().all(Option::is_none));
            assert_eq!(t.len(), 100);
            t.check_invariants();
            for i in 0..100u64 {
                assert_eq!(t.get(&i), Some(&(i + 1000)));
            }
        }
    }

    #[test]
    fn batch_insert_reports_replacements() {
        let mut t: Tree23<u64, u64> = (0..50u64).map(|i| (i * 2, i)).collect();
        // Insert keys 0..100: even keys replace, odd keys are new.
        let items: Vec<(u64, u64)> = (0..100).map(|i| (i, 7)).collect();
        let replaced = t.batch_insert(items);
        assert_eq!(t.len(), 100);
        for (i, r) in replaced.iter().enumerate() {
            if i % 2 == 0 {
                assert_eq!(*r, Some(i as u64 / 2), "even key {i} should replace");
            } else {
                assert_eq!(*r, None, "odd key {i} should be fresh");
            }
        }
        t.check_invariants();
    }

    #[test]
    fn batch_remove_mixed_presence() {
        for fanout in [2usize, 8, 16] {
            let mut t: Tree23<u64, u64> =
                Tree23::from_sorted_with_fanout((0..100u64).map(|i| (i, i)).collect(), fanout);
            let keys = sorted_distinct((0..200).step_by(3).collect());
            let removed = t.batch_remove(&keys);
            for (k, r) in keys.iter().zip(&removed) {
                if *k < 100 {
                    assert_eq!(*r, Some((*k, *k)));
                } else {
                    assert_eq!(*r, None);
                }
            }
            t.check_invariants();
            assert_eq!(t.len(), 100 - keys.iter().filter(|&&k| k < 100).count());
        }
    }

    #[test]
    fn batch_get_matches_single_get() {
        let t: Tree23<u64, u64> = (0..100u64).filter(|i| i % 3 == 0).map(|i| (i, i)).collect();
        let keys: Vec<u64> = (0..100).collect();
        let got = t.batch_get(&keys);
        for (k, g) in keys.iter().zip(got) {
            assert_eq!(g, t.get(k));
        }
    }

    #[test]
    fn batch_ops_match_btreemap_model() {
        // Deterministic pseudo-random mixed batches compared against BTreeMap.
        for fanout in [2usize, 8, 16] {
            let mut model: BTreeMap<u64, u64> = BTreeMap::new();
            let mut tree: Tree23<u64, u64> = Tree23::with_fanout(fanout);
            let mut state = 0x9E3779B97F4A7C15u64;
            let mut next = || {
                state ^= state << 13;
                state ^= state >> 7;
                state ^= state << 17;
                state
            };
            for round in 0..30 {
                let b = 1 + (next() % 64) as usize;
                if round % 3 == 2 {
                    let keys = sorted_distinct((0..b).map(|_| next() % 256).collect());
                    let removed = tree.batch_remove(&keys);
                    for (k, r) in keys.iter().zip(removed) {
                        assert_eq!(r.map(|(_, v)| v), model.remove(k));
                    }
                } else {
                    let keys = sorted_distinct((0..b).map(|_| next() % 256).collect());
                    let items: Vec<(u64, u64)> = keys.iter().map(|&k| (k, next())).collect();
                    let replaced = tree.batch_insert(items.clone());
                    for ((k, v), r) in items.iter().zip(replaced) {
                        assert_eq!(r, model.insert(*k, *v));
                    }
                }
                tree.check_invariants();
                assert_eq!(tree.len(), model.len());
            }
            // Final content check.
            for (k, v) in &model {
                assert_eq!(tree.get(k), Some(v));
            }
        }
    }

    #[test]
    fn par_variants_match_sequential() {
        for fanout in [2usize, 16] {
            let items: Vec<(u64, u64)> = (0..5000u64).map(|i| (i * 2, i)).collect();
            let mut seq_tree: Tree23<u64, u64> = Tree23::with_fanout(fanout);
            let mut par_tree: Tree23<u64, u64> = Tree23::with_fanout(fanout);
            assert_eq!(
                seq_tree.batch_insert(items.clone()),
                par_tree.par_batch_insert(items)
            );
            seq_tree.check_invariants();
            par_tree.check_invariants();

            let keys: Vec<u64> = (0..10000u64).collect();
            assert_eq!(seq_tree.batch_get(&keys), par_tree.par_batch_get(&keys));

            let remove_keys: Vec<u64> = (0..10000u64).step_by(3).collect();
            assert_eq!(
                seq_tree.batch_remove(&remove_keys),
                par_tree.par_batch_remove(&remove_keys)
            );
            assert_eq!(seq_tree.len(), par_tree.len());
            par_tree.check_invariants();
        }
    }

    #[test]
    fn par_inserts_report_replacements_across_the_partition_boundary() {
        // Regression for the partition-extract-merge path: an existing item
        // that falls exactly on a partition boundary must still be reported
        // as replaced by the chunk that owns it.
        let mut t: Tree23<u64, u64> = (0..4096u64).map(|i| (i, i)).collect();
        let items: Vec<(u64, u64)> = (0..4096u64).map(|i| (i, i + 1)).collect();
        let replaced = t.par_batch_insert(items);
        assert!(replaced
            .iter()
            .enumerate()
            .all(|(i, r)| *r == Some(i as u64)));
        t.check_invariants();
    }

    #[test]
    fn metered_counts_track_batch_locality() {
        use crate::cost::{batch_op, metered, MEASURED_CEILING};
        let t: Tree23<u64, u64> = (0..4096u64).map(|i| (i, i)).collect();
        // A clustered batch touches one subtree; a spread batch walks many
        // paths — the measured counts must reflect that, and both must stay
        // under the Lemma ceiling.
        let clustered: Vec<u64> = (0..64u64).collect();
        let spread: Vec<u64> = (0..64u64).map(|i| i * 64).collect();
        let (_, clustered_touched) = metered(|| {
            let mut t = t.clone();
            t.batch_remove(&clustered)
        });
        let (_, spread_touched) = metered(|| {
            let mut t = t.clone();
            t.batch_remove(&spread)
        });
        assert!(
            clustered_touched < spread_touched,
            "clustered {clustered_touched} should touch fewer nodes than spread {spread_touched}"
        );
        let bound = batch_op(64, 4096).work;
        assert!(clustered_touched <= MEASURED_CEILING * bound);
        assert!(spread_touched <= MEASURED_CEILING * bound);
        // The clustered case is where the measurement beats the closed form.
        assert!(
            clustered_touched < bound,
            "clustered batch: measured {clustered_touched} should beat the bound {bound}"
        );
    }

    #[test]
    fn empty_batches_are_noops() {
        let mut t: Tree23<u64, u64> = (0..10u64).map(|i| (i, i)).collect();
        assert!(t.batch_insert(Vec::new()).is_empty());
        assert!(t.batch_remove(&[]).is_empty());
        assert!(t.batch_get(&[]).is_empty());
        assert_eq!(t.len(), 10);
    }
}
