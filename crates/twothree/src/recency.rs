//! The key-map / recency-map pair that backs every segment of the working-set
//! maps.
//!
//! In the paper (Sections 5 and 6.1) every segment stores its items in two
//! balanced trees — one sorted by key and one sorted by recency — whose leaves
//! are cross-linked by direct pointers so that a batch found in one map can be
//! located in the other by reverse indexing.  [`RecencyMap`] realises the same
//! interface by tagging every item with a monotone *recency stamp*: the
//! key-map stores `key -> (stamp, value)` and the recency-map stores
//! `stamp -> key`.  Smaller stamps are more recent ("closer to the front" of
//! the segment).  See DESIGN.md substitution #3 for why this preserves the
//! paper's cost bounds.

use crate::tree::Tree23;

/// Batch insertions at or below this size go through the single-item
/// (point-update) path instead of building stamped vectors for the tree
/// batch machinery; see `batch::POINT_BATCH` for the underlying trade-off.
const POINT_INSERT_BATCH: usize = 8;

/// Value entry of the key-map: the item's value plus its recency stamp.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Entry<V> {
    /// Recency stamp; smaller means more recent (closer to the front).
    pub stamp: i64,
    /// The stored value.
    pub val: V,
}

/// An ordered-by-key and ordered-by-recency map: the building block of every
/// segment in M0, M1 and M2.
///
/// "Front" always means *most recent*; "back" means *least recent*.  Items
/// taken from one `RecencyMap` and pushed to the front or back of another keep
/// their relative recency order, which is what the segment cascade of the
/// working-set maps requires.
#[derive(Clone, Debug)]
pub struct RecencyMap<K, V> {
    key_map: Tree23<K, Entry<V>>,
    rec_map: Tree23<i64, K>,
    /// Next (unused) stamp for front insertion; strictly smaller than every
    /// stamp in use.
    front_next: i64,
    /// Next (unused) stamp for back insertion; strictly larger than every
    /// stamp in use.
    back_next: i64,
}

impl<K: Ord + Clone, V: Clone> Default for RecencyMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord + Clone, V: Clone> RecencyMap<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        RecencyMap {
            key_map: Tree23::new(),
            rec_map: Tree23::new(),
            front_next: -1,
            back_next: 0,
        }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        debug_assert_eq!(self.key_map.len(), self.rec_map.len());
        self.key_map.len()
    }

    /// True if the map holds no items.
    pub fn is_empty(&self) -> bool {
        self.key_map.is_empty()
    }

    /// Looks up a key.
    pub fn get(&self, key: &K) -> Option<&V> {
        self.key_map.get(key).map(|e| &e.val)
    }

    /// Looks up a key, returning a mutable reference to its value.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        self.key_map.get_mut(key).map(|e| &mut e.val)
    }

    /// True if the key is present.
    pub fn contains(&self, key: &K) -> bool {
        self.key_map.contains(key)
    }

    /// Looks up a sorted batch of keys.
    pub fn get_batch(&self, keys: &[K]) -> Vec<Option<&V>> {
        self.key_map
            .batch_get(keys)
            .into_iter()
            .map(|e| e.map(|e| &e.val))
            .collect()
    }

    /// The recency rank of a key: 0 for the most recent item, `len - 1` for
    /// the least recent.  `None` if absent.  (Linear scan of the recency map
    /// is avoided by splitting at the item's stamp.)
    pub fn recency_rank(&self, key: &K) -> Option<usize> {
        let stamp = self.key_map.get(key)?.stamp;
        // Count items with a strictly smaller stamp.
        let mut rank = 0usize;
        self.rec_map.for_each(|s, _| {
            if *s < stamp {
                rank += 1;
            }
        });
        Some(rank)
    }

    fn next_front_stamps(&mut self, m: usize) -> std::ops::Range<i64> {
        let m = m as i64;
        let start = self.front_next - (m - 1);
        self.front_next -= m;
        start..(start + m)
    }

    fn next_back_stamps(&mut self, m: usize) -> std::ops::Range<i64> {
        let m = m as i64;
        let start = self.back_next;
        self.back_next += m;
        start..(start + m)
    }

    /// Inserts (or replaces) one item as the most recent.
    ///
    /// Single-pass update: the key-map traversal that finds the previous
    /// entry *is* the traversal that writes the new one (`Tree23::insert`
    /// replaces in place), so a fresh insert costs two tree operations and a
    /// re-insert three — down from three/four with the old
    /// remove-then-insert sequence.
    pub fn insert_front(&mut self, key: K, val: V) -> Option<V> {
        let stamp = self.next_front_stamps(1).start;
        self.fused_insert(key, stamp, val)
    }

    /// Inserts (or replaces) one item as the least recent.  Single-pass, like
    /// [`RecencyMap::insert_front`].
    pub fn insert_back(&mut self, key: K, val: V) -> Option<V> {
        let stamp = self.next_back_stamps(1).start;
        self.fused_insert(key, stamp, val)
    }

    fn fused_insert(&mut self, key: K, stamp: i64, val: V) -> Option<V> {
        self.rec_map.insert(stamp, key.clone());
        let prev = self.key_map.insert(key, Entry { stamp, val });
        prev.map(|old| {
            let removed = self.rec_map.remove(&old.stamp);
            debug_assert!(removed.is_some(), "recency map out of sync");
            old.val
        })
    }

    /// Inserts a batch of items at the front, preserving their given order
    /// (`items[0]` ends up the most recent).  Keys may be in any order but
    /// must be distinct and must not already be present (the working-set maps
    /// always remove before re-inserting).
    pub fn insert_front_batch(&mut self, items: Vec<(K, V)>) {
        if items.is_empty() {
            return;
        }
        debug_assert!(items.iter().all(|(k, _)| !self.contains(k)));
        if items.len() <= POINT_INSERT_BATCH {
            // Point inserts, most-recent item last so it ends up frontmost.
            for (k, v) in items.into_iter().rev() {
                self.insert_front(k, v);
            }
            return;
        }
        let stamps = self.next_front_stamps(items.len());
        let mut rec_items: Vec<(i64, K)> = Vec::with_capacity(items.len());
        let mut key_items: Vec<(K, Entry<V>)> = Vec::with_capacity(items.len());
        for (stamp, (k, v)) in stamps.zip(items) {
            rec_items.push((stamp, k.clone()));
            key_items.push((k, Entry { stamp, val: v }));
        }
        // Recency stamps are already increasing; keys need sorting.
        self.rec_map.batch_insert(rec_items);
        key_items.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        self.key_map.batch_insert(key_items);
    }

    /// Inserts a batch of items at the back, preserving their given order
    /// (`items[0]` is the most recent of the inserted group, i.e. closest to
    /// the front).  Keys must be distinct and absent.
    pub fn insert_back_batch(&mut self, items: Vec<(K, V)>) {
        if items.is_empty() {
            return;
        }
        debug_assert!(items.iter().all(|(k, _)| !self.contains(k)));
        if items.len() <= POINT_INSERT_BATCH {
            // Point inserts in order: each lands behind the previous one.
            for (k, v) in items {
                self.insert_back(k, v);
            }
            return;
        }
        let stamps = self.next_back_stamps(items.len());
        let mut rec_items: Vec<(i64, K)> = Vec::with_capacity(items.len());
        let mut key_items: Vec<(K, Entry<V>)> = Vec::with_capacity(items.len());
        for (stamp, (k, v)) in stamps.zip(items) {
            rec_items.push((stamp, k.clone()));
            key_items.push((k, Entry { stamp, val: v }));
        }
        self.rec_map.batch_insert(rec_items);
        key_items.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        self.key_map.batch_insert(key_items);
    }

    /// Removes one key; returns its value if present.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let entry = self.key_map.remove(key)?;
        let removed = self.rec_map.remove(&entry.stamp);
        debug_assert!(removed.is_some(), "recency map out of sync");
        Some(entry.val)
    }

    /// Removes a sorted batch of distinct keys; returns per key the removed
    /// value (if it was present).
    pub fn remove_batch(&mut self, keys: &[K]) -> Vec<Option<V>> {
        let removed = self.key_map.batch_remove(keys);
        let mut stamps: Vec<i64> = removed.iter().flatten().map(|(_, e)| e.stamp).collect();
        stamps.sort_unstable();
        self.rec_map.batch_remove(&stamps);
        removed.into_iter().map(|r| r.map(|(_, e)| e.val)).collect()
    }

    /// Removes and returns the `k` most recent items, most recent first.
    pub fn pop_front(&mut self, k: usize) -> Vec<(K, V)> {
        let taken = self.rec_map.take_front(k);
        self.remove_taken(taken)
    }

    /// Removes and returns the `k` least recent items, *most recent of them
    /// first* (so they can be re-inserted with [`RecencyMap::insert_front_batch`]
    /// or [`RecencyMap::insert_back_batch`] preserving relative order).
    pub fn pop_back(&mut self, k: usize) -> Vec<(K, V)> {
        let taken = self.rec_map.take_back(k);
        self.remove_taken(taken)
    }

    fn remove_taken(&mut self, taken: Vec<(i64, K)>) -> Vec<(K, V)> {
        if taken.is_empty() {
            return Vec::new();
        }
        // Sort a permutation of positions by key (keys are distinct — they
        // come from the recency map), batch-remove, then scatter the removed
        // values straight back to their recency positions.  No intermediate
        // BTreeMap and no per-item tree lookups.
        let mut order: Vec<u32> = (0..taken.len() as u32).collect();
        order.sort_unstable_by(|&a, &b| taken[a as usize].1.cmp(&taken[b as usize].1));
        let keys: Vec<K> = order.iter().map(|&i| taken[i as usize].1.clone()).collect();
        let removed = self.key_map.batch_remove(&keys);
        let mut vals: Vec<Option<V>> = std::iter::repeat_with(|| None).take(taken.len()).collect();
        for (&pos, entry) in order.iter().zip(removed) {
            let (_, e) = entry.expect("key-map and recency-map in sync");
            vals[pos as usize] = Some(e.val);
        }
        taken
            .into_iter()
            .zip(vals)
            .map(|((_, k), v)| (k, v.expect("every taken key was removed")))
            .collect()
    }

    /// The most recent item without removing it.
    pub fn peek_front(&self) -> Option<(&K, &V)> {
        let (_, key) = self.rec_map.first()?;
        let entry = self.key_map.get(key)?;
        Some((key, &entry.val))
    }

    /// The least recent item without removing it.
    pub fn peek_back(&self) -> Option<(&K, &V)> {
        let (_, key) = self.rec_map.last()?;
        let entry = self.key_map.get(key)?;
        Some((key, &entry.val))
    }

    /// All items in recency order (most recent first).  `O(n log n)`; intended
    /// for tests, invariant checks and the cost-lemma simulations.
    pub fn items_in_recency_order(&self) -> Vec<(K, V)> {
        let mut out = Vec::with_capacity(self.len());
        self.rec_map.for_each(|_, key| {
            let entry = self.key_map.get(key).expect("maps in sync");
            out.push((key.clone(), entry.val.clone()));
        });
        out
    }

    /// All keys in key order.
    pub fn keys_sorted(&self) -> Vec<K> {
        self.key_map.keys()
    }

    /// Validates that the two internal trees are consistent.
    pub fn check_invariants(&self)
    where
        K: std::fmt::Debug,
    {
        self.key_map.check_invariants();
        self.rec_map.check_invariants();
        assert_eq!(self.key_map.len(), self.rec_map.len());
        self.rec_map.for_each(|stamp, key| {
            let e = self
                .key_map
                .get(key)
                .unwrap_or_else(|| panic!("key {key:?} in recency map but not key map"));
            assert_eq!(e.stamp, *stamp, "stamp mismatch for key {key:?}");
        });
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_map() {
        let m: RecencyMap<u64, u64> = RecencyMap::new();
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
        assert_eq!(m.peek_front(), None);
        assert_eq!(m.peek_back(), None);
    }

    #[test]
    fn front_and_back_insertion_order() {
        let mut m = RecencyMap::new();
        m.insert_back(1u64, "a");
        m.insert_back(2, "b");
        m.insert_front(3, "c");
        m.insert_front(4, "d");
        // Recency order (most recent first): 4, 3, 1, 2.
        let order: Vec<u64> = m
            .items_in_recency_order()
            .into_iter()
            .map(|x| x.0)
            .collect();
        assert_eq!(order, vec![4, 3, 1, 2]);
        assert_eq!(m.peek_front().map(|x| *x.0), Some(4));
        assert_eq!(m.peek_back().map(|x| *x.0), Some(2));
        m.check_invariants();
    }

    #[test]
    fn reinsert_moves_to_front() {
        let mut m = RecencyMap::new();
        for i in 0..5u64 {
            m.insert_back(i, i);
        }
        assert_eq!(m.insert_front(3, 33), Some(3));
        let order: Vec<u64> = m
            .items_in_recency_order()
            .into_iter()
            .map(|x| x.0)
            .collect();
        assert_eq!(order, vec![3, 0, 1, 2, 4]);
        assert_eq!(m.get(&3), Some(&33));
        assert_eq!(m.len(), 5);
        m.check_invariants();
    }

    #[test]
    fn batch_front_insert_preserves_given_order() {
        let mut m = RecencyMap::new();
        m.insert_back(100u64, 0u64);
        m.insert_front_batch(vec![(7, 7), (3, 3), (9, 9)]);
        let order: Vec<u64> = m
            .items_in_recency_order()
            .into_iter()
            .map(|x| x.0)
            .collect();
        assert_eq!(order, vec![7, 3, 9, 100]);
        m.check_invariants();
    }

    #[test]
    fn batch_back_insert_preserves_given_order() {
        let mut m = RecencyMap::new();
        m.insert_front(100u64, 0u64);
        m.insert_back_batch(vec![(7, 7), (3, 3), (9, 9)]);
        let order: Vec<u64> = m
            .items_in_recency_order()
            .into_iter()
            .map(|x| x.0)
            .collect();
        assert_eq!(order, vec![100, 7, 3, 9]);
        m.check_invariants();
    }

    #[test]
    fn pop_front_and_back_return_recency_order() {
        let mut m = RecencyMap::new();
        for i in 0..10u64 {
            m.insert_back(i, i * 10);
        }
        // Most recent = 0, least recent = 9.
        let front = m.pop_front(3);
        assert_eq!(front.iter().map(|x| x.0).collect::<Vec<_>>(), vec![0, 1, 2]);
        let back = m.pop_back(3);
        assert_eq!(back.iter().map(|x| x.0).collect::<Vec<_>>(), vec![7, 8, 9]);
        assert_eq!(m.len(), 4);
        m.check_invariants();

        // Popping more than present drains the map.
        let rest = m.pop_front(100);
        assert_eq!(rest.len(), 4);
        assert!(m.is_empty());
    }

    #[test]
    fn pop_back_then_push_front_preserves_relative_order() {
        // This mimics the segment-overflow cascade: the k least recent items
        // of one segment become the k most recent of the next.
        let mut a = RecencyMap::new();
        for i in 0..6u64 {
            a.insert_back(i, i);
        }
        let mut b = RecencyMap::new();
        b.insert_back(100u64, 100u64);
        let moved = a.pop_back(3); // items 3,4,5 in recency order
        b.insert_front_batch(moved);
        let order: Vec<u64> = b
            .items_in_recency_order()
            .into_iter()
            .map(|x| x.0)
            .collect();
        assert_eq!(order, vec![3, 4, 5, 100]);
    }

    #[test]
    fn remove_batch_mixed() {
        let mut m = RecencyMap::new();
        for i in 0..10u64 {
            m.insert_back(i, i);
        }
        let removed = m.remove_batch(&[2, 5, 11]);
        assert_eq!(removed, vec![Some(2), Some(5), None]);
        assert_eq!(m.len(), 8);
        m.check_invariants();
    }

    #[test]
    fn recency_rank_counts_more_recent_items() {
        let mut m = RecencyMap::new();
        for i in 0..5u64 {
            m.insert_back(i, i);
        }
        assert_eq!(m.recency_rank(&0), Some(0));
        assert_eq!(m.recency_rank(&4), Some(4));
        assert_eq!(m.recency_rank(&99), None);
    }

    #[test]
    fn metered_segment_transfers_stay_under_the_transfer_bound() {
        use crate::cost::{metered, transfer, MEASURED_CEILING};
        // The segment-cascade transfer shape: pop k off one map's back and
        // push them onto another's front; the measured node visits must stay
        // under the ceiling on the transfer bound the maps charge.
        let mut a: RecencyMap<u64, u64> = RecencyMap::new();
        let mut b: RecencyMap<u64, u64> = RecencyMap::new();
        for i in 0..512u64 {
            a.insert_back(i, i);
        }
        for i in 1000..1256u64 {
            b.insert_back(i, i);
        }
        for k in [1usize, 4, 16, 64] {
            let larger = a.len().max(b.len()) as u64;
            let ((), touched) = metered(|| {
                let moved = a.pop_back(k);
                b.insert_front_batch(moved);
            });
            let bound = transfer(k as u64, larger).work;
            assert!(
                touched <= MEASURED_CEILING * bound,
                "transfer of {k}: touched {touched} exceeds ceiling on bound {bound}"
            );
        }
        a.check_invariants();
        b.check_invariants();
    }

    #[test]
    fn get_batch_matches_get() {
        let mut m = RecencyMap::new();
        for i in (0..20u64).step_by(2) {
            m.insert_back(i, i);
        }
        let keys: Vec<u64> = (0..20).collect();
        let got = m.get_batch(&keys);
        for (k, g) in keys.iter().zip(got) {
            assert_eq!(g, m.get(k));
        }
    }
}
