//! The arena-fused key/recency map that backs every segment of the
//! working-set maps.
//!
//! In the paper (Sections 5 and 6.1) every segment stores its items in two
//! balanced trees — one sorted by key and one sorted by recency — whose
//! leaves are cross-linked by direct pointers so that a batch located in one
//! order can be updated in the other at O(1) per item.  Earlier revisions of
//! this crate substituted a monotone *recency stamp* for the cross-links
//! (key-map `key → (stamp, value)`, recency-map `stamp → key`), which
//! preserved the asymptotic bounds but made every segment operation pay
//! **two** full tree passes — one per tree.
//!
//! [`RecencyMap`] now realises the paper's pointer design directly, without
//! `unsafe`: items live in a slab **arena** (`Vec<Slot>`), the single
//! key-ordered [`Tree23`] stores *arena indices*, and the recency order is an
//! intrusive doubly-linked list threaded through the arena slots via `usize`
//! links.  Locating an item by key therefore yields its recency position for
//! free — exactly the paper's direct pointer:
//!
//! * move-to-front and unlink-on-remove are O(1) splices,
//! * [`RecencyMap::push_front_batch`] / [`RecencyMap::push_back_batch`] are
//!   O(b) chain splices plus **one** key-map pass,
//! * [`RecencyMap::take_front`] / [`RecencyMap::take_back`] walk the list
//!   instead of searching a stamp tree, then clear the keys with one
//!   key-ordered batch removal.
//!
//! Every segment operation thus drives **one** tree where the stamp design
//! drove two — its tree passes are halved on every path: one
//! divide-and-conquer sweep per batch above `batch::POINT_BATCH`, one point
//! traversal per item below it (the stamp design paid the same shape on
//! *both* trees).  The O(1)-per-item list work is metered as one
//! [`crate::cost::touch`] per splice so measured charges stay honest.  The
//! measured effect is tracked by experiment E18 (tree-passes-per-op) and the
//! E17 constants (`BENCH_e17*.json`).

use crate::cost::touch;
use crate::tree::Tree23;

/// Null arena index: end of the recency list / free list.
const NIL: usize = usize::MAX;

/// One arena slot: the intrusive recency links plus the item.  A free slot
/// holds `None` and reuses `next` as its free-list link.
#[derive(Clone, Debug)]
struct Slot<K, V> {
    prev: usize,
    next: usize,
    item: Option<(K, V)>,
}

/// An ordered-by-key and ordered-by-recency map: the building block of every
/// segment in M0, M1 and M2.
///
/// "Front" always means *most recent*; "back" means *least recent*.  Items
/// taken from one `RecencyMap` and pushed to the front or back of another
/// keep their relative recency order, which is what the segment cascade of
/// the working-set maps requires.
#[derive(Clone, Debug)]
pub struct RecencyMap<K, V> {
    /// Key order: `key → arena index`, one balanced tree — the only tree.
    key_map: Tree23<K, usize>,
    /// The arena.  Live slots are threaded into the recency list; free slots
    /// are threaded into the free list.
    slots: Vec<Slot<K, V>>,
    /// Most recent item (list head), `NIL` when empty.
    head: usize,
    /// Least recent item (list tail), `NIL` when empty.
    tail: usize,
    /// Head of the free-slot list, `NIL` when none.
    free: usize,
    /// Number of live items.
    len: usize,
}

impl<K: Ord + Clone, V: Clone> Default for RecencyMap<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord + Clone, V: Clone> RecencyMap<K, V> {
    /// Creates an empty map at the process-default tree fanout
    /// (`WSM_TREE_FANOUT`, default 16).
    // lint: allow(unmetered) — trivial constructor, no nodes exist to charge
    pub fn new() -> Self {
        Self::with_fanout(crate::default_fanout())
    }

    /// Creates an empty map whose key tree uses an explicit fanout (`2` is
    /// the 2-3 reference instantiation; the property suites sweep this).
    // lint: allow(unmetered) — trivial constructor, no nodes exist to charge
    pub fn with_fanout(fanout: usize) -> Self {
        RecencyMap {
            key_map: Tree23::with_fanout(fanout),
            slots: Vec::new(),
            head: NIL,
            tail: NIL,
            free: NIL,
            len: 0,
        }
    }

    /// The key tree's fanout.
    // lint: allow(unmetered) — O(1) configuration accessor, no traversal
    pub fn fanout(&self) -> usize {
        self.key_map.fanout()
    }

    /// Number of items.
    // lint: allow(unmetered) — O(1) cached arena count, no traversal
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if the map holds no items.
    // lint: allow(unmetered) — O(1) counter probe, no traversal
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    fn slot_item(&self, idx: usize) -> &(K, V) {
        self.slots[idx]
            .item
            .as_ref()
            .expect("key-map points at a live arena slot")
    }

    fn slot_key(&self, idx: usize) -> &K {
        &self.slot_item(idx).0
    }

    /// Looks up a key.
    pub fn get(&self, key: &K) -> Option<&V> {
        let idx = *self.key_map.get(key)?;
        Some(&self.slot_item(idx).1)
    }

    /// Looks up a key, returning a mutable reference to its value.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        let idx = *self.key_map.get(key)?;
        let (_, val) = self.slots[idx]
            .item
            .as_mut()
            .expect("key-map points at a live arena slot");
        Some(val)
    }

    /// True if the key is present.
    pub fn contains(&self, key: &K) -> bool {
        self.key_map.contains(key)
    }

    /// Looks up a sorted batch of keys.
    pub fn get_batch(&self, keys: &[K]) -> Vec<Option<&V>> {
        self.key_map
            .batch_get(keys)
            .into_iter()
            .map(|idx| idx.map(|&idx| &self.slot_item(idx).1))
            .collect()
    }

    /// The recency rank of a key: 0 for the most recent item, `len - 1` for
    /// the least recent.  `None` if absent.  Costs O(log n + rank): the
    /// key-map lookup yields the arena slot, then the list is walked from the
    /// front until the slot is reached.
    pub fn recency_rank(&self, key: &K) -> Option<usize> {
        let idx = *self.key_map.get(key)?;
        let mut rank = 0usize;
        let mut cur = self.head;
        while cur != idx {
            touch(1);
            rank += 1;
            cur = self.slots[cur].next;
            debug_assert!(cur != NIL, "keyed slot must be on the recency list");
        }
        Some(rank)
    }

    // ------------------------------------------------------------------
    // Arena + intrusive-list primitives (all O(1), metered one touch per
    // splice so measured segment charges include the list work)
    // ------------------------------------------------------------------

    /// Takes a slot off the free list (or grows the arena) and fills it.
    /// The returned slot is *not* linked into the recency list.
    fn alloc(&mut self, key: K, val: V) -> usize {
        match self.free {
            NIL => {
                self.slots.push(Slot {
                    prev: NIL,
                    next: NIL,
                    item: Some((key, val)),
                });
                self.slots.len() - 1
            }
            idx => {
                self.free = self.slots[idx].next;
                let slot = &mut self.slots[idx];
                slot.prev = NIL;
                slot.next = NIL;
                slot.item = Some((key, val));
                idx
            }
        }
    }

    /// Vacates a slot (which must already be unlinked from the recency list)
    /// onto the free list, returning its item.
    fn release(&mut self, idx: usize) -> (K, V) {
        let item = self.slots[idx].item.take().expect("releasing a live slot");
        self.slots[idx].prev = NIL;
        self.slots[idx].next = self.free;
        self.free = idx;
        item
    }

    /// Splices `idx` out of the recency list.
    fn unlink(&mut self, idx: usize) {
        touch(1);
        let Slot { prev, next, .. } = self.slots[idx];
        match prev {
            NIL => self.head = next,
            p => self.slots[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slots[n].prev = prev,
        }
    }

    /// Links `idx` (currently unlinked) at the front of the recency list.
    fn link_front(&mut self, idx: usize) {
        touch(1);
        self.slots[idx].prev = NIL;
        self.slots[idx].next = self.head;
        match self.head {
            NIL => self.tail = idx,
            h => self.slots[h].prev = idx,
        }
        self.head = idx;
    }

    /// Links `idx` (currently unlinked) at the back of the recency list.
    fn link_back(&mut self, idx: usize) {
        touch(1);
        self.slots[idx].next = NIL;
        self.slots[idx].prev = self.tail;
        match self.tail {
            NIL => self.head = idx,
            t => self.slots[t].next = idx,
        }
        self.tail = idx;
    }

    /// Allocates slots for `items` and chains them together in the given
    /// order, returning `(first, last)` of the chain and pushing
    /// `(key, index)` pairs (in item order) into `tree_items`.
    fn alloc_chain(
        &mut self,
        items: Vec<(K, V)>,
        tree_items: &mut Vec<(K, usize)>,
    ) -> (usize, usize) {
        let mut first = NIL;
        let mut last = NIL;
        for (k, v) in items {
            let idx = self.alloc(k.clone(), v);
            touch(1);
            tree_items.push((k, idx));
            if first == NIL {
                first = idx;
            } else {
                self.slots[last].next = idx;
                self.slots[idx].prev = last;
            }
            last = idx;
        }
        (first, last)
    }

    /// Splices a prepared chain (`first..last`, already internally linked)
    /// before the current head.
    fn splice_chain_front(&mut self, first: usize, last: usize) {
        self.slots[last].next = self.head;
        match self.head {
            NIL => self.tail = last,
            h => self.slots[h].prev = last,
        }
        self.head = first;
    }

    /// Splices a prepared chain (`first..last`) after the current tail.
    fn splice_chain_back(&mut self, first: usize, last: usize) {
        self.slots[first].prev = self.tail;
        match self.tail {
            NIL => self.head = first,
            t => self.slots[t].next = first,
        }
        self.tail = last;
    }

    // ------------------------------------------------------------------
    // Insertion
    // ------------------------------------------------------------------

    /// Inserts (or replaces) one item as the most recent.
    ///
    /// Single fused pass: the key-map insertion that writes the new arena
    /// index *is* the traversal that finds a previous entry, whose slot is
    /// then unlinked in O(1) — the paper's cross-link, not a second tree
    /// operation.
    pub fn insert_front(&mut self, key: K, val: V) -> Option<V> {
        self.fused_insert(key, val, true)
    }

    /// Inserts (or replaces) one item as the least recent.  Single-pass, like
    /// [`RecencyMap::insert_front`].
    pub fn insert_back(&mut self, key: K, val: V) -> Option<V> {
        self.fused_insert(key, val, false)
    }

    fn fused_insert(&mut self, key: K, val: V, at_front: bool) -> Option<V> {
        let idx = self.alloc(key.clone(), val);
        let old = self.key_map.insert(key, idx).map(|old_idx| {
            self.unlink(old_idx);
            self.release(old_idx).1
        });
        if old.is_none() {
            self.len += 1;
        }
        if at_front {
            self.link_front(idx);
        } else {
            self.link_back(idx);
        }
        old
    }

    /// Inserts a batch of items at the front, preserving their given order
    /// (`items[0]` ends up the most recent).  Keys may be in any order but
    /// must be distinct and must not already be present — this is the
    /// inter-segment *push* of the cascade (the working-set maps always
    /// remove before re-inserting).  One key-map pass; the recency splice is
    /// O(b).
    pub fn push_front_batch(&mut self, items: Vec<(K, V)>) {
        if items.is_empty() {
            return;
        }
        let n = items.len();
        let mut tree_items: Vec<(K, usize)> = Vec::with_capacity(n);
        let (first, last) = self.alloc_chain(items, &mut tree_items);
        self.splice_chain_front(first, last);
        self.len += n;
        tree_items.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        let replaced = self.key_map.batch_insert(tree_items);
        debug_assert!(
            replaced.iter().all(Option::is_none),
            "push_front_batch requires absent keys"
        );
    }

    /// Inserts a batch of items at the back, preserving their given order
    /// (`items[0]` is the most recent of the inserted group, i.e. closest to
    /// the front).  Keys must be distinct and absent.
    pub fn push_back_batch(&mut self, items: Vec<(K, V)>) {
        if items.is_empty() {
            return;
        }
        let n = items.len();
        let mut tree_items: Vec<(K, usize)> = Vec::with_capacity(n);
        let (first, last) = self.alloc_chain(items, &mut tree_items);
        self.splice_chain_back(first, last);
        self.len += n;
        tree_items.sort_unstable_by(|a, b| a.0.cmp(&b.0));
        let replaced = self.key_map.batch_insert(tree_items);
        debug_assert!(
            replaced.iter().all(Option::is_none),
            "push_back_batch requires absent keys"
        );
    }

    /// Batch upsert at the front: inserts every item as most-recent in the
    /// given order (`items[0]` frontmost), *replacing* items whose key is
    /// already present (their old slot is unlinked in O(1)).  Returns the
    /// previous value per item, in item order.  Keys must be distinct within
    /// the batch.  One key-map pass regardless of how many keys were present
    /// — the capability the arena cross-links buy over the stamp design.
    ///
    /// The working-set cascades themselves never need this: they
    /// entropy-sort and *combine* every cut batch before it reaches a
    /// segment, so their pushes are always of absent keys
    /// ([`RecencyMap::push_front_batch`]).  `insert_batch` is the map's
    /// direct-use surface (e.g. an LRU cache bulk-refreshing entries), and
    /// the oracle-differential property suite drives it alongside the
    /// cascade ops.
    pub fn insert_batch(&mut self, items: Vec<(K, V)>) -> Vec<Option<V>> {
        let n = items.len();
        if n == 0 {
            return Vec::new();
        }
        let mut entries: Vec<(K, usize)> = Vec::with_capacity(n);
        let (first, last) = self.alloc_chain(items, &mut entries);
        self.splice_chain_front(first, last);
        // Sort a position permutation so replaced values can be scattered
        // back to item order after the single key-map pass.
        let mut order: Vec<u32> = (0..n as u32).collect();
        order.sort_unstable_by(|&a, &b| entries[a as usize].0.cmp(&entries[b as usize].0));
        debug_assert!(
            order
                .windows(2)
                .all(|w| entries[w[0] as usize].0 < entries[w[1] as usize].0),
            "insert_batch requires distinct keys"
        );
        let mut tree_items: Vec<(K, usize)> = Vec::with_capacity(n);
        let mut entries_opt: Vec<Option<(K, usize)>> = entries.into_iter().map(Some).collect();
        for &pos in &order {
            tree_items.push(entries_opt[pos as usize].take().expect("permutation"));
        }
        let replaced = self.key_map.batch_insert(tree_items);
        let mut out: Vec<Option<V>> = std::iter::repeat_with(|| None).take(n).collect();
        let mut fresh = n;
        for (&pos, old_idx) in order.iter().zip(replaced) {
            if let Some(old_idx) = old_idx {
                self.unlink(old_idx);
                out[pos as usize] = Some(self.release(old_idx).1);
                fresh -= 1;
            }
        }
        self.len += fresh;
        out
    }

    // ------------------------------------------------------------------
    // Removal
    // ------------------------------------------------------------------

    /// Removes one key; returns its value if present.  One tree pass plus an
    /// O(1) unlink.
    pub fn remove(&mut self, key: &K) -> Option<V> {
        let idx = self.key_map.remove(key)?;
        self.unlink(idx);
        self.len -= 1;
        Some(self.release(idx).1)
    }

    /// Removes a sorted batch of distinct keys; returns per key the removed
    /// value (if it was present).  One tree pass; each located item is
    /// unlinked from the recency list in O(1).
    pub fn remove_batch(&mut self, keys: &[K]) -> Vec<Option<V>> {
        let removed = self.key_map.batch_remove_values(keys);
        removed
            .into_iter()
            .map(|idx| {
                idx.map(|idx| {
                    self.unlink(idx);
                    self.len -= 1;
                    self.release(idx).1
                })
            })
            .collect()
    }

    /// Removes and returns the `k` most recent items, most recent first.
    /// Walks the recency list (no stamp-tree search), then clears the keys
    /// with one key-ordered batch removal.
    pub fn take_front(&mut self, k: usize) -> Vec<(K, V)> {
        let k = k.min(self.len);
        if k == 0 {
            return Vec::new();
        }
        let mut idxs = Vec::with_capacity(k);
        let mut cur = self.head;
        for _ in 0..k {
            touch(1);
            idxs.push(cur);
            cur = self.slots[cur].next;
        }
        // Detach the whole prefix in O(1).
        self.head = cur;
        match cur {
            NIL => self.tail = NIL,
            h => self.slots[h].prev = NIL,
        }
        self.len -= k;
        self.remove_taken_keys(&idxs);
        idxs.into_iter().map(|idx| self.release(idx)).collect()
    }

    /// Removes and returns the `k` least recent items, *most recent of them
    /// first* (so they can be re-inserted with
    /// [`RecencyMap::push_front_batch`] or [`RecencyMap::push_back_batch`]
    /// preserving relative order).
    pub fn take_back(&mut self, k: usize) -> Vec<(K, V)> {
        let k = k.min(self.len);
        if k == 0 {
            return Vec::new();
        }
        let mut idxs = Vec::with_capacity(k);
        let mut cur = self.tail;
        for _ in 0..k {
            touch(1);
            idxs.push(cur);
            cur = self.slots[cur].prev;
        }
        // Detach the whole suffix in O(1); walk order was back-to-front, so
        // reverse for the most-recent-first return order.
        self.tail = cur;
        match cur {
            NIL => self.head = NIL,
            t => self.slots[t].next = NIL,
        }
        self.len -= k;
        idxs.reverse();
        self.remove_taken_keys(&idxs);
        idxs.into_iter().map(|idx| self.release(idx)).collect()
    }

    /// Clears the key-map entries of already-detached slots with one sorted
    /// batch removal (the reverse-indexing operation of Appendix A.2: the
    /// arena indices *are* the direct pointers).
    fn remove_taken_keys(&mut self, idxs: &[usize]) {
        let mut order: Vec<u32> = (0..idxs.len() as u32).collect();
        order.sort_unstable_by(|&a, &b| {
            self.slot_key(idxs[a as usize])
                .cmp(self.slot_key(idxs[b as usize]))
        });
        let keys: Vec<K> = order
            .iter()
            .map(|&i| self.slot_key(idxs[i as usize]).clone())
            .collect();
        let removed = self.key_map.batch_remove_values(&keys);
        debug_assert!(
            order
                .iter()
                .zip(&removed)
                .all(|(&i, r)| *r == Some(idxs[i as usize])),
            "key-map and recency list out of sync"
        );
        let _ = removed;
    }

    // ------------------------------------------------------------------
    // Inspection
    // ------------------------------------------------------------------

    /// The most recent item without removing it.  O(1): the list head.
    // lint: allow(unmetered) — O(1) list-head read, touches no tree node
    pub fn peek_front(&self) -> Option<(&K, &V)> {
        (self.head != NIL).then(|| {
            let (k, v) = self.slot_item(self.head);
            (k, v)
        })
    }

    /// The least recent item without removing it.  O(1): the list tail.
    // lint: allow(unmetered) — O(1) list-tail read, touches no tree node
    pub fn peek_back(&self) -> Option<(&K, &V)> {
        (self.tail != NIL).then(|| {
            let (k, v) = self.slot_item(self.tail);
            (k, v)
        })
    }

    /// All items in recency order (most recent first).  O(n) list walk;
    /// intended for tests, invariant checks and the cost-lemma simulations.
    // lint: allow(unmetered) — diagnostic whole-list walk over the arena, not a map operation
    pub fn items_in_recency_order(&self) -> Vec<(K, V)> {
        let mut out = Vec::with_capacity(self.len);
        let mut cur = self.head;
        while cur != NIL {
            out.push(self.slot_item(cur).clone());
            cur = self.slots[cur].next;
        }
        out
    }

    /// All keys in key order.
    // lint: allow(unmetered) — whole-tree dump via Tree23::keys, same exemption as for_each
    pub fn keys_sorted(&self) -> Vec<K> {
        self.key_map.keys()
    }

    /// Rebuilds a map from an [`RecencyMap::items_in_recency_order`] image
    /// (most recent first; keys must be distinct).  The round trip
    /// `from_recency_items(m.items_in_recency_order())` reproduces both the
    /// key set and the exact recency order — this pair is the
    /// encode/decode surface the `wsm-wal` checkpointer snapshots segments
    /// through.
    // lint: allow(unmetered) — checkpoint restore, not a map operation
    pub fn from_recency_items(items: Vec<(K, V)>) -> Self {
        let mut m = RecencyMap::new();
        m.push_back_batch(items);
        m
    }

    /// Validates that the key-map, the arena and the intrusive lists are
    /// mutually consistent.
    pub fn check_invariants(&self)
    where
        K: std::fmt::Debug,
    {
        self.key_map.check_invariants();
        assert_eq!(self.key_map.len(), self.len, "key-map and arena disagree");
        // The recency list is a well-formed doubly-linked chain over exactly
        // the live slots.
        let mut count = 0usize;
        let mut prev = NIL;
        let mut cur = self.head;
        while cur != NIL {
            assert!(
                count < self.len + 1,
                "recency list longer than len (cycle?)"
            );
            let slot = &self.slots[cur];
            assert!(slot.item.is_some(), "recency list visits free slot {cur}");
            assert_eq!(slot.prev, prev, "broken prev link at slot {cur}");
            prev = cur;
            cur = slot.next;
            count += 1;
        }
        assert_eq!(count, self.len, "recency list length mismatch");
        assert_eq!(self.tail, prev, "tail does not end the recency list");
        // Every key-map entry points at a live slot holding the same key.
        self.key_map.for_each(|key, &idx| {
            let (slot_key, _) = self.slots[idx]
                .item
                .as_ref()
                .unwrap_or_else(|| panic!("key {key:?} maps to free slot {idx}"));
            assert_eq!(slot_key, key, "key-map entry points at the wrong slot");
        });
        // The free list accounts for every vacant slot, with no leaks.
        let mut free_count = 0usize;
        let mut cur = self.free;
        while cur != NIL {
            assert!(
                free_count < self.slots.len() + 1,
                "free list cycle at slot {cur}"
            );
            assert!(self.slots[cur].item.is_none(), "free list visits live slot");
            cur = self.slots[cur].next;
            free_count += 1;
        }
        assert_eq!(self.len + free_count, self.slots.len(), "arena slot leak");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_map() {
        let m: RecencyMap<u64, u64> = RecencyMap::new();
        assert!(m.is_empty());
        assert_eq!(m.len(), 0);
        assert_eq!(m.peek_front(), None);
        assert_eq!(m.peek_back(), None);
        m.check_invariants();
    }

    #[test]
    fn recency_items_round_trip_exactly() {
        // Build a map with a non-trivial recency order (inserts, touches,
        // removals), snapshot it, rebuild, and compare the full order.
        let mut m = RecencyMap::new();
        for k in 0..64u64 {
            m.insert_back(k, k * 10);
        }
        for k in [7u64, 3, 7, 40, 0] {
            m.insert_front(k, k * 10 + 1);
        }
        m.remove(&10);
        m.remove(&63);
        let image = m.items_in_recency_order();
        let rebuilt = RecencyMap::from_recency_items(image.clone());
        rebuilt.check_invariants();
        assert_eq!(rebuilt.len(), m.len());
        assert_eq!(rebuilt.items_in_recency_order(), image);
        assert_eq!(rebuilt.keys_sorted(), m.keys_sorted());
        // Empty round trip.
        let empty: RecencyMap<u64, u64> = RecencyMap::from_recency_items(Vec::new());
        assert!(empty.is_empty());
        empty.check_invariants();
    }

    #[test]
    fn front_and_back_insertion_order() {
        let mut m = RecencyMap::new();
        m.insert_back(1u64, "a");
        m.insert_back(2, "b");
        m.insert_front(3, "c");
        m.insert_front(4, "d");
        // Recency order (most recent first): 4, 3, 1, 2.
        let order: Vec<u64> = m
            .items_in_recency_order()
            .into_iter()
            .map(|x| x.0)
            .collect();
        assert_eq!(order, vec![4, 3, 1, 2]);
        assert_eq!(m.peek_front().map(|x| *x.0), Some(4));
        assert_eq!(m.peek_back().map(|x| *x.0), Some(2));
        m.check_invariants();
    }

    #[test]
    fn reinsert_moves_to_front() {
        let mut m = RecencyMap::new();
        for i in 0..5u64 {
            m.insert_back(i, i);
        }
        assert_eq!(m.insert_front(3, 33), Some(3));
        let order: Vec<u64> = m
            .items_in_recency_order()
            .into_iter()
            .map(|x| x.0)
            .collect();
        assert_eq!(order, vec![3, 0, 1, 2, 4]);
        assert_eq!(m.get(&3), Some(&33));
        assert_eq!(m.len(), 5);
        m.check_invariants();
    }

    #[test]
    fn batch_front_push_preserves_given_order() {
        let mut m = RecencyMap::new();
        m.insert_back(100u64, 0u64);
        m.push_front_batch(vec![(7, 7), (3, 3), (9, 9)]);
        let order: Vec<u64> = m
            .items_in_recency_order()
            .into_iter()
            .map(|x| x.0)
            .collect();
        assert_eq!(order, vec![7, 3, 9, 100]);
        m.check_invariants();
    }

    #[test]
    fn batch_back_push_preserves_given_order() {
        let mut m = RecencyMap::new();
        m.insert_front(100u64, 0u64);
        m.push_back_batch(vec![(7, 7), (3, 3), (9, 9)]);
        let order: Vec<u64> = m
            .items_in_recency_order()
            .into_iter()
            .map(|x| x.0)
            .collect();
        assert_eq!(order, vec![100, 7, 3, 9]);
        m.check_invariants();
    }

    #[test]
    fn insert_batch_upserts_and_reports_previous_values() {
        let mut m = RecencyMap::new();
        for i in 0..6u64 {
            m.insert_back(i, i * 10);
        }
        // Mixed batch: 4 and 1 are present (replaced + moved to front), 77
        // and 88 are fresh.
        let prev = m.insert_batch(vec![(4, 400), (77, 700), (1, 100), (88, 800)]);
        assert_eq!(prev, vec![Some(40), None, Some(10), None]);
        assert_eq!(m.len(), 8);
        let order: Vec<u64> = m
            .items_in_recency_order()
            .into_iter()
            .map(|x| x.0)
            .collect();
        assert_eq!(order, vec![4, 77, 1, 88, 0, 2, 3, 5]);
        assert_eq!(m.get(&4), Some(&400));
        assert_eq!(m.get(&1), Some(&100));
        m.check_invariants();
    }

    #[test]
    fn take_front_and_back_return_recency_order() {
        let mut m = RecencyMap::new();
        for i in 0..10u64 {
            m.insert_back(i, i * 10);
        }
        // Most recent = 0, least recent = 9.
        let front = m.take_front(3);
        assert_eq!(front.iter().map(|x| x.0).collect::<Vec<_>>(), vec![0, 1, 2]);
        let back = m.take_back(3);
        assert_eq!(back.iter().map(|x| x.0).collect::<Vec<_>>(), vec![7, 8, 9]);
        assert_eq!(m.len(), 4);
        m.check_invariants();

        // Taking more than present drains the map.
        let rest = m.take_front(100);
        assert_eq!(rest.len(), 4);
        assert!(m.is_empty());
        m.check_invariants();
    }

    #[test]
    fn take_back_then_push_front_preserves_relative_order() {
        // This mimics the segment-overflow cascade: the k least recent items
        // of one segment become the k most recent of the next.
        let mut a = RecencyMap::new();
        for i in 0..6u64 {
            a.insert_back(i, i);
        }
        let mut b = RecencyMap::new();
        b.insert_back(100u64, 100u64);
        let moved = a.take_back(3); // items 3,4,5 in recency order
        b.push_front_batch(moved);
        let order: Vec<u64> = b
            .items_in_recency_order()
            .into_iter()
            .map(|x| x.0)
            .collect();
        assert_eq!(order, vec![3, 4, 5, 100]);
        a.check_invariants();
        b.check_invariants();
    }

    #[test]
    fn remove_batch_mixed() {
        let mut m = RecencyMap::new();
        for i in 0..10u64 {
            m.insert_back(i, i);
        }
        let removed = m.remove_batch(&[2, 5, 11]);
        assert_eq!(removed, vec![Some(2), Some(5), None]);
        assert_eq!(m.len(), 8);
        m.check_invariants();
    }

    #[test]
    fn recency_rank_counts_more_recent_items() {
        let mut m = RecencyMap::new();
        for i in 0..5u64 {
            m.insert_back(i, i);
        }
        assert_eq!(m.recency_rank(&0), Some(0));
        assert_eq!(m.recency_rank(&4), Some(4));
        assert_eq!(m.recency_rank(&99), None);
    }

    #[test]
    fn arena_slots_are_reused_after_removal() {
        let mut m = RecencyMap::new();
        for i in 0..64u64 {
            m.insert_back(i, i);
        }
        let arena_size = m.slots.len();
        // Churn: remove and re-insert repeatedly; the arena must not grow.
        for round in 0..10u64 {
            let taken = m.take_back(16);
            assert_eq!(taken.len(), 16);
            m.push_front_batch(taken);
            m.remove(&(round % 64));
            m.insert_front(round % 64, round);
            m.check_invariants();
        }
        assert_eq!(m.slots.len(), arena_size, "arena grew despite free list");
        assert_eq!(m.len(), 64);
    }

    #[test]
    fn metered_segment_transfers_stay_under_the_transfer_bound() {
        use crate::cost::{measured_ceiling, metered, transfer_b};
        // The segment-cascade transfer shape: take k off one map's back and
        // push them onto another's front; the measured node visits must stay
        // under the ceiling on the (fanout-parameterized) transfer bound the
        // maps charge, at the reference and the wide instantiation alike.
        for fan in [2usize, 16] {
            let mut a: RecencyMap<u64, u64> = RecencyMap::with_fanout(fan);
            let mut b: RecencyMap<u64, u64> = RecencyMap::with_fanout(fan);
            for i in 0..512u64 {
                a.insert_back(i, i);
            }
            for i in 1000..1256u64 {
                b.insert_back(i, i);
            }
            for k in [1usize, 4, 16, 64] {
                let larger = a.len().max(b.len()) as u64;
                let ((), touched) = metered(|| {
                    let moved = a.take_back(k);
                    b.push_front_batch(moved);
                });
                let bound = transfer_b(k as u64, larger, fan as u64).work;
                assert!(
                    touched <= measured_ceiling(fan as u64) * bound,
                    "transfer of {k} at fanout {fan}: touched {touched} exceeds \
                     ceiling on bound {bound}"
                );
            }
            a.check_invariants();
            b.check_invariants();
        }
    }

    #[test]
    fn fused_ops_touch_strictly_fewer_nodes_than_the_two_tree_design() {
        use crate::cost::metered;
        // Regression for the PR 5 tentpole: the literals are the touched-node
        // counts the old two-tree (key-map + stamp-keyed recency-map) design
        // measured on these exact workloads, captured on the PR 4 build.
        // Every fused segment op must touch strictly fewer nodes — one
        // metered tree pass instead of two.  The two-tree build was a 2-3
        // tree, so the comparison pins the B = 2 instantiation to stay
        // apples-to-apples (the wide default only widens the margin; the
        // fanout A/B regression lives in `cost::tests`).
        const OLD_REMOVE_BATCH_64: u64 = 1504;
        const OLD_PUSH_FRONT_64: u64 = 1344;
        const OLD_TRANSFER_64: u64 = 1000;
        const OLD_MOVE_TO_FRONT_32: u64 = 771;
        const OLD_TAKE_FRONT_32: u64 = 330;

        // Workload A: remove_batch of 64 spread keys from a 512-item map.
        let mut m: RecencyMap<u64, u64> = RecencyMap::with_fanout(2);
        for i in 0..512u64 {
            m.insert_back(i, i);
        }
        let keys: Vec<u64> = (0..64u64).map(|i| i * 8).collect();
        let (_, remove_touched) = metered(|| m.remove_batch(&keys));
        assert!(
            remove_touched < OLD_REMOVE_BATCH_64,
            "remove_batch: fused {remove_touched} >= two-tree {OLD_REMOVE_BATCH_64}"
        );

        // Workload B: push the same 64 items back at the front as one batch.
        let items: Vec<(u64, u64)> = keys.iter().map(|&k| (k, k)).collect();
        let (_, push_touched) = metered(|| m.push_front_batch(items));
        assert!(
            push_touched < OLD_PUSH_FRONT_64,
            "push_front_batch: fused {push_touched} >= two-tree {OLD_PUSH_FRONT_64}"
        );

        // Workload C: segment-cascade transfer — take_back(64) then
        // push_front into a second 256-item map.
        let mut b: RecencyMap<u64, u64> = RecencyMap::with_fanout(2);
        for i in 1000..1256u64 {
            b.insert_back(i, i);
        }
        let (_, transfer_touched) = metered(|| {
            let moved = m.take_back(64);
            b.push_front_batch(moved);
        });
        assert!(
            transfer_touched < OLD_TRANSFER_64,
            "transfer: fused {transfer_touched} >= two-tree {OLD_TRANSFER_64}"
        );

        // Workload D: 32 point re-inserts (move-to-front) on the map.
        let (_, mtf_touched) = metered(|| {
            for i in 200..232u64 {
                m.insert_front(i, i);
            }
        });
        assert!(
            mtf_touched < OLD_MOVE_TO_FRONT_32,
            "move-to-front: fused {mtf_touched} >= two-tree {OLD_MOVE_TO_FRONT_32}"
        );

        // Workload E: take_front(32) (eviction shape).
        let (_, take_touched) = metered(|| m.take_front(32));
        assert!(
            take_touched < OLD_TAKE_FRONT_32,
            "take_front: fused {take_touched} >= two-tree {OLD_TAKE_FRONT_32}"
        );
        m.check_invariants();
        b.check_invariants();
    }

    #[test]
    fn segment_ops_pay_one_tree_pass_not_two() {
        use crate::cost::{reset_tree_passes, tree_passes};
        // The headline of the fusion, pinned at the pass-counter level: a
        // divide-and-conquer batch removal is exactly one key-map sweep (the
        // stamp design paid one per tree), and a transfer is exactly two (one
        // take-side removal, one push-side insertion — it used to be four).
        // Pass counts are structural, so they hold at every fanout.
        for fan in [2usize, 8, 16] {
            let mut m: RecencyMap<u64, u64> = RecencyMap::with_fanout(fan);
            for i in 0..512u64 {
                m.insert_back(i, i);
            }
            let keys: Vec<u64> = (0..64u64).map(|i| i * 8).collect();
            reset_tree_passes();
            m.remove_batch(&keys);
            assert_eq!(tree_passes(), 1, "batch removal must be one tree pass");

            let items: Vec<(u64, u64)> = keys.iter().map(|&k| (k, k)).collect();
            reset_tree_passes();
            m.push_front_batch(items);
            assert_eq!(tree_passes(), 1, "batch push must be one tree pass");

            let mut b: RecencyMap<u64, u64> = RecencyMap::with_fanout(fan);
            reset_tree_passes();
            let moved = m.take_back(64);
            b.push_front_batch(moved);
            assert_eq!(
                tree_passes(),
                2,
                "a transfer is one take pass + one push pass"
            );
            reset_tree_passes();
        }
    }

    #[test]
    fn get_batch_matches_get() {
        let mut m = RecencyMap::new();
        for i in (0..20u64).step_by(2) {
            m.insert_back(i, i);
        }
        let keys: Vec<u64> = (0..20).collect();
        let got = m.get_batch(&keys);
        for (k, g) in keys.iter().zip(got) {
            assert_eq!(g, m.get(k));
        }
    }
}
