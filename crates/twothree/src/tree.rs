//! The public [`Tree23`] wrapper: a leaf-based 2-3 tree with single-item and
//! structural (split/join/rank) operations.  Batch operations live in
//! [`crate::batch`].

use crate::cost::{pass, touch};
use crate::node::Node;

/// Take-counts at or below this size use repeated point removals instead of
/// a rank split: for tiny `k` the point path avoids the split/join spine
/// rebuild entirely (see `batch::POINT_BATCH` for the same trade-off).
const POINT_TAKE: usize = 8;

/// A leaf-based 2-3 tree storing key-value items in key order.
///
/// `Tree23` is the balanced-search-tree substrate of every segment of the
/// working-set maps (paper Appendix A.2).  It is an ordinary ordered map with
/// the addition of the structural operations batch algorithms need: `join`
/// with a disjoint greater tree, `split` by key or rank, and `take_front` /
/// `take_back` by count.
#[derive(Clone, Debug, Default)]
pub struct Tree23<K, V> {
    pub(crate) root: Option<Node<K, V>>,
}

impl<K: Ord + Clone, V> Tree23<K, V> {
    /// Creates an empty tree.
    // lint: allow(unmetered) — trivial constructor, no nodes exist to charge
    pub fn new() -> Self {
        Tree23 { root: None }
    }

    /// Builds a tree from items that are already sorted by key and contain no
    /// duplicate keys, in `O(n)` work.
    ///
    /// # Panics
    /// Panics in debug builds if the items are not strictly sorted.
    pub fn from_sorted(items: Vec<(K, V)>) -> Self {
        pass();
        debug_assert!(
            items.windows(2).all(|w| w[0].0 < w[1].0),
            "from_sorted requires strictly increasing keys"
        );
        Tree23 {
            root: Node::from_sorted(items),
        }
    }

    /// Number of items.
    // lint: allow(unmetered) — O(1) cached subtree size, no node traversal
    pub fn len(&self) -> usize {
        self.root.as_ref().map_or(0, Node::size)
    }

    /// True if the tree holds no items.
    // lint: allow(unmetered) — O(1) root probe, no node traversal
    pub fn is_empty(&self) -> bool {
        self.root.is_none()
    }

    /// Height of the tree (`0` for empty or single-leaf trees).
    // lint: allow(unmetered) — O(1) cached height, no node traversal
    pub fn height(&self) -> usize {
        self.root.as_ref().map_or(0, Node::height)
    }

    /// Looks up a key.
    pub fn get(&self, key: &K) -> Option<&V> {
        pass();
        self.root.as_ref().and_then(|r| r.get(key))
    }

    /// Looks up a key, returning a mutable reference to its value.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        pass();
        self.root.as_mut().and_then(|r| r.get_mut(key))
    }

    /// True if the key is present.
    pub fn contains(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// The item with rank `idx` (0-based, key order).
    pub fn select(&self, idx: usize) -> Option<(&K, &V)> {
        pass();
        self.root.as_ref().and_then(|r| r.select(idx))
    }

    /// The smallest item.
    pub fn first(&self) -> Option<(&K, &V)> {
        self.select(0)
    }

    /// The largest item.
    pub fn last(&self) -> Option<(&K, &V)> {
        self.len().checked_sub(1).and_then(|i| self.select(i))
    }

    /// Inserts an item; returns the previous value for the key, if any.
    ///
    /// One in-place root-to-leaf traversal (`Node::insert_point`): only the
    /// nodes on the search path are touched, and a node is allocated only
    /// when one actually splits — not along the whole spine as the old
    /// split/join route did.
    pub fn insert(&mut self, key: K, val: V) -> Option<V> {
        pass();
        match self.root.as_mut() {
            None => {
                touch(1);
                self.root = Some(Node::leaf(key, val));
                None
            }
            Some(root) => {
                let (prev, overflow) = root.insert_point(key, val);
                if let Some(sibling) = overflow {
                    let old = self.root.take().expect("root present");
                    self.root = Some(Node::internal(vec![old, sibling]));
                }
                prev
            }
        }
    }

    /// Removes a key; returns its value if it was present.  In-place, like
    /// [`Tree23::insert`].
    pub fn remove(&mut self, key: &K) -> Option<V> {
        pass();
        match self.root.as_mut()? {
            Node::Leaf { key: k, .. } => {
                touch(1);
                if k == key {
                    match self.root.take() {
                        Some(Node::Leaf { val, .. }) => Some(val),
                        _ => unreachable!("matched a leaf root"),
                    }
                } else {
                    None
                }
            }
            Node::Internal(int) => {
                let removed = Node::remove_point(int, key);
                if int.children.len() == 1 {
                    // Height collapse at the root.
                    let only = int.children.pop().expect("one child");
                    self.root = Some(only);
                }
                removed.map(|(_, v)| v)
            }
        }
    }

    /// Splits off everything with key `>= key` into a new tree, keeping the
    /// rest (and returning the exact match separately, if present).
    pub fn split_off(&mut self, key: &K) -> (Option<(K, V)>, Tree23<K, V>) {
        pass();
        let Some(root) = self.root.take() else {
            return (None, Tree23::new());
        };
        let (left, found, right) = root.split_at_key(key);
        self.root = left;
        (found, Tree23 { root: right })
    }

    /// Splits the tree by rank: `self` keeps the first `rank` items, the rest
    /// are returned.
    pub fn split_at_rank(&mut self, rank: usize) -> Tree23<K, V> {
        pass();
        let Some(root) = self.root.take() else {
            return Tree23::new();
        };
        let (left, right) = root.split_at_rank(rank);
        self.root = left;
        Tree23 { root: right }
    }

    /// Removes and returns the first (smallest) `k` items, in key order.
    pub fn take_front(&mut self, k: usize) -> Vec<(K, V)> {
        let k = k.min(self.len());
        if k <= POINT_TAKE {
            let mut out = Vec::with_capacity(k);
            for _ in 0..k {
                let key = self.first().expect("k <= len").0.clone();
                let val = self.remove(&key).expect("first key present");
                out.push((key, val));
            }
            return out;
        }
        let rest = self.split_at_rank(k);
        let front = std::mem::replace(self, rest);
        front.into_sorted_vec()
    }

    /// Removes and returns the last (largest) `k` items, in key order.
    pub fn take_back(&mut self, k: usize) -> Vec<(K, V)> {
        let len = self.len();
        let k = k.min(len);
        if k <= POINT_TAKE {
            let mut out = Vec::with_capacity(k);
            for _ in 0..k {
                let key = self.last().expect("k <= len").0.clone();
                let val = self.remove(&key).expect("last key present");
                out.push((key, val));
            }
            out.reverse();
            return out;
        }
        let back = self.split_at_rank(len - k);
        back.into_sorted_vec()
    }

    /// Concatenates `other` onto this tree.  Every key of `other` must be
    /// strictly greater than every key of `self`.
    pub fn join_greater(&mut self, other: Tree23<K, V>) {
        pass();
        debug_assert!(
            self.is_empty()
                || other.is_empty()
                || self.root.as_ref().unwrap().max_key()
                    < other.root.as_ref().unwrap().select(0).unwrap().0,
            "join_greater key ranges overlap"
        );
        self.root = Node::join_opt(self.root.take(), other.root);
    }

    /// Consumes the tree into a sorted vector of items.
    pub fn into_sorted_vec(self) -> Vec<(K, V)> {
        let mut out = Vec::with_capacity(self.len());
        if let Some(root) = self.root {
            root.collect_into(&mut out);
        }
        out
    }

    /// Calls `f` on every item in key order.
    // lint: allow(unmetered) — whole-tree read sweep for tests/dumps; the cost model charges searches and restructures, not linear scans
    pub fn for_each<'a, F: FnMut(&'a K, &'a V)>(&'a self, mut f: F) {
        if let Some(root) = &self.root {
            root.for_each(&mut f);
        }
    }

    /// Collects all keys in order (cloned).
    // lint: allow(unmetered) — whole-tree dump via for_each, same exemption
    pub fn keys(&self) -> Vec<K> {
        let mut out = Vec::with_capacity(self.len());
        self.for_each(|k, _| out.push(k.clone()));
        out
    }

    /// Validates structural invariants; intended for tests and debug builds.
    pub fn check_invariants(&self)
    where
        K: std::fmt::Debug,
    {
        if let Some(root) = &self.root {
            root.check_invariants();
            // Keys strictly increasing overall.
            let mut prev: Option<&K> = None;
            root.for_each(&mut |k, _| {
                if let Some(p) = prev {
                    assert!(p < k, "keys not strictly increasing");
                }
                prev = Some(k);
            });
        }
    }
}

impl<K: Ord + Clone, V> FromIterator<(K, V)> for Tree23<K, V> {
    fn from_iter<T: IntoIterator<Item = (K, V)>>(iter: T) -> Self {
        let mut items: Vec<(K, V)> = iter.into_iter().collect();
        items.sort_by(|a, b| a.0.cmp(&b.0));
        items.dedup_by(|a, b| a.0 == b.0);
        Tree23::from_sorted(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree_basics() {
        let t: Tree23<u64, u64> = Tree23::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.get(&3), None);
        assert_eq!(t.height(), 0);
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        let mut t = Tree23::new();
        for i in 0..200u64 {
            // 3 and 601 are coprime and i < 601, so keys are distinct.
            assert_eq!(t.insert(i * 3 % 601, i), None);
            t.check_invariants();
        }
        assert_eq!(t.len(), 200);
        for i in 0..200u64 {
            assert_eq!(t.get(&(i * 3 % 601)), Some(&i));
        }
        let mut t = Tree23::new();
        assert_eq!(t.insert(5u64, 1u64), None);
        assert_eq!(t.insert(5, 2), Some(1));
        assert_eq!(t.remove(&5), Some(2));
        assert_eq!(t.remove(&5), None);
        assert!(t.is_empty());
    }

    #[test]
    fn from_sorted_builds_balanced() {
        for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 100, 1000] {
            let items: Vec<(u64, u64)> = (0..n as u64).map(|i| (i, i * 2)).collect();
            let t = Tree23::from_sorted(items);
            t.check_invariants();
            assert_eq!(t.len(), n);
            if n > 0 {
                assert!(
                    t.height() <= (n as f64).log2().ceil() as usize + 1,
                    "height {} too large for n={}",
                    t.height(),
                    n
                );
                for i in 0..n as u64 {
                    assert_eq!(t.get(&i), Some(&(i * 2)));
                }
            }
        }
    }

    #[test]
    fn select_and_first_last() {
        let t: Tree23<u64, ()> = (0..50u64).map(|i| (i * 2, ())).collect();
        assert_eq!(t.select(0), Some((&0, &())));
        assert_eq!(t.select(10), Some((&20, &())));
        assert_eq!(t.select(49), Some((&98, &())));
        assert_eq!(t.select(50), None);
        assert_eq!(t.first(), Some((&0, &())));
        assert_eq!(t.last(), Some((&98, &())));
    }

    #[test]
    fn split_off_by_key() {
        let mut t: Tree23<u64, u64> = (0..100u64).map(|i| (i, i)).collect();
        let (found, right) = t.split_off(&60);
        assert_eq!(found, Some((60, 60)));
        assert_eq!(t.len(), 60);
        assert_eq!(right.len(), 39);
        t.check_invariants();
        right.check_invariants();
        assert!(t.keys().iter().all(|&k| k < 60));
        assert!(right.keys().iter().all(|&k| k > 60));
    }

    #[test]
    fn split_at_rank_and_take() {
        let mut t: Tree23<u64, u64> = (0..100u64).map(|i| (i, i)).collect();
        let right = t.split_at_rank(30);
        assert_eq!(t.len(), 30);
        assert_eq!(right.len(), 70);
        t.check_invariants();
        right.check_invariants();

        let mut t: Tree23<u64, u64> = (0..10u64).map(|i| (i, i)).collect();
        let front = t.take_front(3);
        assert_eq!(front.iter().map(|x| x.0).collect::<Vec<_>>(), vec![0, 1, 2]);
        assert_eq!(t.len(), 7);
        let back = t.take_back(2);
        assert_eq!(back.iter().map(|x| x.0).collect::<Vec<_>>(), vec![8, 9]);
        assert_eq!(t.len(), 5);
        // Taking more than available is clamped.
        let rest = t.take_front(100);
        assert_eq!(rest.len(), 5);
        assert!(t.is_empty());
    }

    #[test]
    fn join_greater_concatenates() {
        let mut a: Tree23<u64, ()> = (0..37u64).map(|i| (i, ())).collect();
        let b: Tree23<u64, ()> = (100..153u64).map(|i| (i, ())).collect();
        a.join_greater(b);
        a.check_invariants();
        assert_eq!(a.len(), 37 + 53);
        assert!(a.contains(&0) && a.contains(&36) && a.contains(&100) && a.contains(&152));
    }

    #[test]
    fn join_with_empty_sides() {
        let mut a: Tree23<u64, ()> = Tree23::new();
        a.join_greater((0..5u64).map(|i| (i, ())).collect());
        assert_eq!(a.len(), 5);
        a.join_greater(Tree23::new());
        assert_eq!(a.len(), 5);
    }

    #[test]
    fn get_mut_updates_value() {
        let mut t: Tree23<u64, u64> = (0..10u64).map(|i| (i, 0)).collect();
        *t.get_mut(&7).unwrap() = 42;
        assert_eq!(t.get(&7), Some(&42));
    }
}
