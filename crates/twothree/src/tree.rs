//! The public tree surface: [`BTree`] (with [`Tree23`] kept as the alias the
//! rest of the workspace was written against) plus single-item and structural
//! (split/join/rank) operations.  Batch operations live in [`crate::batch`].

use crate::cost::{pass, touch};
use crate::node::{Arena, NIL};

/// Take-counts at or below this size use repeated point removals instead of
/// a rank split: for tiny `k` the point path avoids the split/join spine
/// rebuild entirely (see `batch::POINT_BATCH` for the same trade-off).
const POINT_TAKE: usize = 8;

/// A leaf-based fanout-B search tree storing key-value items in key order.
///
/// `BTree` is the balanced-search-tree substrate of every segment of the
/// working-set maps.  Nodes live in a slab [`Arena`] — contiguous routing-key
/// arrays, `usize` child indices, an intrusive free list — so descending one
/// level is a linear scan of one small array rather than a pointer chase.
/// The occupancy bounds come from the per-tree fanout `B`: `max(2, B/2)..=
/// max(3, B)` children per internal node (root exempt from the minimum).
/// `B = 2` is exactly the 2-3 tree of paper Appendix A.2 and stays available
/// as the analytic reference instantiation; the process default is 16
/// (`WSM_TREE_FANOUT`).
///
/// Beyond ordinary ordered-map operations it has the structural operations
/// batch algorithms need: `join` with a disjoint greater tree, `split` by key
/// or rank, and `take_front` / `take_back` by count.
#[derive(Clone, Debug)]
pub struct BTree<K, V> {
    pub(crate) arena: Arena<K, V>,
    pub(crate) root: usize,
}

/// The 2-3-shaped name the workspace was written against.  Since the fanout
/// generalization `Tree23` *is* [`BTree`]; the alias records the paper
/// lineage (Appendix A.2) and keeps every call site source-compatible.
pub type Tree23<K, V> = BTree<K, V>;

impl<K: Ord + Clone, V> Default for BTree<K, V> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord + Clone, V> BTree<K, V> {
    /// Creates an empty tree at the process-default fanout
    /// (`WSM_TREE_FANOUT`, default 16).
    // lint: allow(unmetered) — trivial constructor, no nodes exist to charge
    pub fn new() -> Self {
        Self::with_fanout(crate::default_fanout())
    }

    /// Creates an empty tree with an explicit fanout: internal nodes keep
    /// `max(2, fanout/2)..=max(3, fanout)` children, so `2` gives the 2-3
    /// reference instantiation.
    // lint: allow(unmetered) — trivial constructor, no nodes exist to charge
    pub fn with_fanout(fanout: usize) -> Self {
        BTree {
            arena: Arena::new(fanout),
            root: NIL,
        }
    }

    /// The fanout this tree was constructed with.
    // lint: allow(unmetered) — O(1) configuration accessor, no node traversal
    pub fn fanout(&self) -> usize {
        self.arena.fanout()
    }

    /// Builds a tree from items that are already sorted by key and contain no
    /// duplicate keys, in `O(n)` work, at the process-default fanout.
    ///
    /// # Panics
    /// Panics in debug builds if the items are not strictly sorted.
    pub fn from_sorted(items: Vec<(K, V)>) -> Self {
        Self::from_sorted_with_fanout(items, crate::default_fanout())
    }

    /// [`BTree::from_sorted`] with an explicit fanout.
    pub fn from_sorted_with_fanout(items: Vec<(K, V)>, fanout: usize) -> Self {
        pass();
        debug_assert!(
            items.windows(2).all(|w| w[0].0 < w[1].0),
            "from_sorted requires strictly increasing keys"
        );
        let mut arena = Arena::new(fanout);
        let root = arena.build_sorted(items);
        BTree { arena, root }
    }

    /// Number of items.
    // lint: allow(unmetered) — O(1) cached subtree size, no node traversal
    pub fn len(&self) -> usize {
        if self.root == NIL {
            0
        } else {
            self.arena.size(self.root)
        }
    }

    /// True if the tree holds no items.
    // lint: allow(unmetered) — O(1) root probe, no node traversal
    pub fn is_empty(&self) -> bool {
        self.root == NIL
    }

    /// Height of the tree (`0` for empty or single-leaf trees).
    // lint: allow(unmetered) — O(1) cached height, no node traversal
    pub fn height(&self) -> usize {
        if self.root == NIL {
            0
        } else {
            self.arena.height(self.root)
        }
    }

    /// Looks up a key.
    pub fn get(&self, key: &K) -> Option<&V> {
        pass();
        if self.root == NIL {
            return None;
        }
        self.arena.get(self.root, key)
    }

    /// Looks up a key, returning a mutable reference to its value.
    pub fn get_mut(&mut self, key: &K) -> Option<&mut V> {
        pass();
        if self.root == NIL {
            return None;
        }
        self.arena.get_mut(self.root, key)
    }

    /// True if the key is present.
    pub fn contains(&self, key: &K) -> bool {
        self.get(key).is_some()
    }

    /// The item with rank `idx` (0-based, key order).
    pub fn select(&self, idx: usize) -> Option<(&K, &V)> {
        pass();
        if self.root == NIL {
            return None;
        }
        self.arena.select(self.root, idx)
    }

    /// The smallest item.
    pub fn first(&self) -> Option<(&K, &V)> {
        self.select(0)
    }

    /// The largest item.
    pub fn last(&self) -> Option<(&K, &V)> {
        self.len().checked_sub(1).and_then(|i| self.select(i))
    }

    /// Inserts an item; returns the previous value for the key, if any.
    ///
    /// One in-place root-to-leaf traversal (`Arena::insert_point`): only the
    /// nodes on the search path are touched, and a node is allocated only
    /// when one actually splits.
    pub fn insert(&mut self, key: K, val: V) -> Option<V> {
        pass();
        if self.root == NIL {
            self.root = self.arena.leaf(key, val);
            return None;
        }
        let (prev, overflow) = self.arena.insert_point(self.root, key, val);
        if let Some(sibling) = overflow {
            self.root = self.arena.make_internal(vec![self.root, sibling]);
        }
        prev
    }

    /// Removes a key; returns its value if it was present.  In-place, like
    /// [`BTree::insert`].
    pub fn remove(&mut self, key: &K) -> Option<V> {
        pass();
        if self.root == NIL {
            return None;
        }
        if self.arena.is_leaf(self.root) {
            touch(1);
            if self.arena.max_key(self.root) == key {
                let (_, val) = self.arena.take_leaf(self.root);
                self.root = NIL;
                return Some(val);
            }
            return None;
        }
        let removed = self.arena.remove_point(self.root, key);
        if removed.is_some() && self.arena.children_len(self.root) == 1 {
            // Height collapse at the root.
            let int = self.arena.take_internal(self.root);
            self.root = int.children[0];
        }
        removed.map(|(_, v)| v)
    }

    /// Splits off everything with key `>= key` into a new tree, keeping the
    /// rest (and returning the exact match separately, if present).
    pub fn split_off(&mut self, key: &K) -> (Option<(K, V)>, BTree<K, V>) {
        pass();
        let mut right = Self::with_fanout(self.arena.fanout());
        if self.root == NIL {
            return (None, right);
        }
        let (l, found, r) = self.arena.split_at_key(self.root, key);
        self.root = l;
        if r != NIL {
            // The split-off part moves into its own arena so both trees own
            // their slabs independently (O(size of the right part)).
            right.root = self.arena.extract(r, &mut right.arena);
        }
        (found, right)
    }

    /// Splits the tree by rank: `self` keeps the first `rank` items, the rest
    /// are returned.
    pub fn split_at_rank(&mut self, rank: usize) -> BTree<K, V> {
        pass();
        let mut right = Self::with_fanout(self.arena.fanout());
        if self.root == NIL {
            return right;
        }
        let (l, r) = self.arena.split_at_rank(self.root, rank);
        self.root = l;
        if r != NIL {
            right.root = self.arena.extract(r, &mut right.arena);
        }
        right
    }

    /// Removes and returns the first (smallest) `k` items, in key order.
    pub fn take_front(&mut self, k: usize) -> Vec<(K, V)> {
        let k = k.min(self.len());
        if k <= POINT_TAKE {
            let mut out = Vec::with_capacity(k);
            for _ in 0..k {
                let key = self.first().expect("k <= len").0.clone();
                let val = self.remove(&key).expect("first key present");
                out.push((key, val));
            }
            return out;
        }
        // One pass: rank-split in place and drain the detached front — the
        // remainder stays in this arena, nothing is copied across slabs.
        pass();
        let (l, r) = self.arena.split_at_rank(self.root, k);
        self.root = r;
        let mut out = Vec::with_capacity(k);
        self.arena.collect_into(l, &mut out);
        out
    }

    /// Removes and returns the last (largest) `k` items, in key order.
    pub fn take_back(&mut self, k: usize) -> Vec<(K, V)> {
        let len = self.len();
        let k = k.min(len);
        if k <= POINT_TAKE {
            let mut out = Vec::with_capacity(k);
            for _ in 0..k {
                let key = self.last().expect("k <= len").0.clone();
                let val = self.remove(&key).expect("last key present");
                out.push((key, val));
            }
            out.reverse();
            return out;
        }
        pass();
        let (l, r) = self.arena.split_at_rank(self.root, len - k);
        self.root = l;
        let mut out = Vec::with_capacity(k);
        self.arena.collect_into(r, &mut out);
        out
    }

    /// Concatenates `other` onto this tree.  Every key of `other` must be
    /// strictly greater than every key of `self`.
    ///
    /// The join itself is O(height difference) node visits; bringing
    /// `other`'s arena into ours is an O(slots of `other`) slab append.
    pub fn join_greater(&mut self, other: BTree<K, V>) {
        pass();
        debug_assert!(
            self.is_empty()
                || other.is_empty()
                || self.arena.max_key(self.root)
                    < other.arena.select(other.root, 0).expect("non-empty").0,
            "join_greater key ranges overlap"
        );
        let BTree { arena, root } = other;
        let r = self.arena.absorb(arena, root);
        self.root = self.arena.join_opt(self.root, r);
    }

    /// Consumes the tree into a sorted vector of items.
    pub fn into_sorted_vec(mut self) -> Vec<(K, V)> {
        let mut out = Vec::with_capacity(self.len());
        if self.root != NIL {
            self.arena.collect_into(self.root, &mut out);
            self.root = NIL;
        }
        out
    }

    /// Calls `f` on every item in key order.
    // lint: allow(unmetered) — whole-tree read sweep for tests/dumps; the cost model charges searches and restructures, not linear scans
    pub fn for_each<'a, F: FnMut(&'a K, &'a V)>(&'a self, mut f: F) {
        if self.root != NIL {
            self.arena.for_each(self.root, &mut f);
        }
    }

    /// Collects all keys in order (cloned).
    // lint: allow(unmetered) — whole-tree dump via for_each, same exemption
    pub fn keys(&self) -> Vec<K> {
        let mut out = Vec::with_capacity(self.len());
        self.for_each(|k, _| out.push(k.clone()));
        out
    }

    /// Validates structural invariants; intended for tests and debug builds.
    ///
    /// Checks node occupancy against the fanout bounds (root exempt from the
    /// minimum), routing-key/child agreement, cached height/size, strict
    /// global key order, and the arena's free-list accounting (live nodes +
    /// free slots account for every slab slot — no leaks, no cycles).
    pub fn check_invariants(&self)
    where
        K: std::fmt::Debug,
    {
        let live = if self.root == NIL {
            0
        } else {
            self.arena.check_subtree(self.root, true).1
        };
        self.arena.check_slab(live);
        if self.root != NIL {
            // Keys strictly increasing overall.
            let mut prev: Option<&K> = None;
            self.arena.for_each(self.root, &mut |k, _| {
                if let Some(p) = prev {
                    assert!(p < k, "keys not strictly increasing");
                }
                prev = Some(k);
            });
        }
    }
}

impl<K: Ord + Clone, V> FromIterator<(K, V)> for BTree<K, V> {
    fn from_iter<T: IntoIterator<Item = (K, V)>>(iter: T) -> Self {
        let mut items: Vec<(K, V)> = iter.into_iter().collect();
        items.sort_by(|a, b| a.0.cmp(&b.0));
        items.dedup_by(|a, b| a.0 == b.0);
        BTree::from_sorted(items)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_tree_basics() {
        let t: Tree23<u64, u64> = Tree23::new();
        assert!(t.is_empty());
        assert_eq!(t.len(), 0);
        assert_eq!(t.get(&3), None);
        assert_eq!(t.height(), 0);
    }

    #[test]
    fn insert_get_remove_roundtrip() {
        for fanout in [2usize, 8, 16] {
            let mut t = Tree23::with_fanout(fanout);
            for i in 0..200u64 {
                // 3 and 601 are coprime and i < 601, so keys are distinct.
                assert_eq!(t.insert(i * 3 % 601, i), None);
                t.check_invariants();
            }
            assert_eq!(t.len(), 200);
            for i in 0..200u64 {
                assert_eq!(t.get(&(i * 3 % 601)), Some(&i));
            }
            for i in 0..200u64 {
                assert_eq!(t.remove(&(i * 3 % 601)), Some(i));
                t.check_invariants();
            }
            assert!(t.is_empty());
        }
        let mut t = Tree23::new();
        assert_eq!(t.insert(5u64, 1u64), None);
        assert_eq!(t.insert(5, 2), Some(1));
        assert_eq!(t.remove(&5), Some(2));
        assert_eq!(t.remove(&5), None);
        assert!(t.is_empty());
    }

    #[test]
    fn from_sorted_builds_balanced() {
        for fanout in [2usize, 8, 16] {
            for n in [0usize, 1, 2, 3, 4, 5, 7, 8, 100, 1000] {
                let items: Vec<(u64, u64)> = (0..n as u64).map(|i| (i, i * 2)).collect();
                let t = Tree23::from_sorted_with_fanout(items, fanout);
                t.check_invariants();
                assert_eq!(t.len(), n);
                if n > 0 {
                    // The 2-3 bound is the loosest of the swept fanouts.
                    assert!(
                        t.height() <= (n as f64).log2().ceil() as usize + 1,
                        "height {} too large for n={} at fanout {}",
                        t.height(),
                        n,
                        fanout
                    );
                    for i in 0..n as u64 {
                        assert_eq!(t.get(&i), Some(&(i * 2)));
                    }
                }
            }
        }
    }

    #[test]
    fn select_and_first_last() {
        let t: Tree23<u64, ()> = (0..50u64).map(|i| (i * 2, ())).collect();
        assert_eq!(t.select(0), Some((&0, &())));
        assert_eq!(t.select(10), Some((&20, &())));
        assert_eq!(t.select(49), Some((&98, &())));
        assert_eq!(t.select(50), None);
        assert_eq!(t.first(), Some((&0, &())));
        assert_eq!(t.last(), Some((&98, &())));
    }

    #[test]
    fn split_off_by_key() {
        for fanout in [2usize, 8, 16] {
            let mut t: Tree23<u64, u64> =
                Tree23::from_sorted_with_fanout((0..100u64).map(|i| (i, i)).collect(), fanout);
            let (found, right) = t.split_off(&60);
            assert_eq!(found, Some((60, 60)));
            assert_eq!(t.len(), 60);
            assert_eq!(right.len(), 39);
            t.check_invariants();
            right.check_invariants();
            assert!(t.keys().iter().all(|&k| k < 60));
            assert!(right.keys().iter().all(|&k| k > 60));
        }
    }

    #[test]
    fn split_at_rank_and_take() {
        for fanout in [2usize, 8, 16] {
            let mut t: Tree23<u64, u64> =
                Tree23::from_sorted_with_fanout((0..100u64).map(|i| (i, i)).collect(), fanout);
            let right = t.split_at_rank(30);
            assert_eq!(t.len(), 30);
            assert_eq!(right.len(), 70);
            t.check_invariants();
            right.check_invariants();

            let mut t: Tree23<u64, u64> =
                Tree23::from_sorted_with_fanout((0..10u64).map(|i| (i, i)).collect(), fanout);
            let front = t.take_front(3);
            assert_eq!(front.iter().map(|x| x.0).collect::<Vec<_>>(), vec![0, 1, 2]);
            assert_eq!(t.len(), 7);
            let back = t.take_back(2);
            assert_eq!(back.iter().map(|x| x.0).collect::<Vec<_>>(), vec![8, 9]);
            assert_eq!(t.len(), 5);
            // Taking more than available is clamped.
            let rest = t.take_front(100);
            assert_eq!(rest.len(), 5);
            assert!(t.is_empty());

            // The split path (k > POINT_TAKE) agrees with the point path.
            let mut t: Tree23<u64, u64> =
                Tree23::from_sorted_with_fanout((0..100u64).map(|i| (i, i)).collect(), fanout);
            let front = t.take_front(20);
            assert_eq!(front, (0..20u64).map(|i| (i, i)).collect::<Vec<_>>());
            let back = t.take_back(20);
            assert_eq!(back, (80..100u64).map(|i| (i, i)).collect::<Vec<_>>());
            assert_eq!(t.len(), 60);
            t.check_invariants();
        }
    }

    #[test]
    fn join_greater_concatenates() {
        for fanout in [2usize, 8, 16] {
            let mut a: Tree23<u64, ()> =
                Tree23::from_sorted_with_fanout((0..37u64).map(|i| (i, ())).collect(), fanout);
            let b: Tree23<u64, ()> =
                Tree23::from_sorted_with_fanout((100..153u64).map(|i| (i, ())).collect(), fanout);
            a.join_greater(b);
            a.check_invariants();
            assert_eq!(a.len(), 37 + 53);
            assert!(a.contains(&0) && a.contains(&36) && a.contains(&100) && a.contains(&152));
        }
    }

    #[test]
    fn join_with_empty_sides() {
        let mut a: Tree23<u64, ()> = Tree23::new();
        a.join_greater((0..5u64).map(|i| (i, ())).collect());
        assert_eq!(a.len(), 5);
        a.join_greater(Tree23::new());
        assert_eq!(a.len(), 5);
    }

    #[test]
    fn get_mut_updates_value() {
        let mut t: Tree23<u64, u64> = (0..10u64).map(|i| (i, 0)).collect();
        *t.get_mut(&7).unwrap() = 42;
        assert_eq!(t.get(&7), Some(&42));
    }

    #[test]
    fn fanout_two_matches_wide_fanout_observably() {
        let mut narrow = Tree23::with_fanout(2);
        let mut wide = Tree23::with_fanout(16);
        let mut x = 0x2545F4914F6CDD1Du64;
        for _ in 0..600 {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            let k = x % 512;
            if x.is_multiple_of(3) {
                assert_eq!(narrow.remove(&k), wide.remove(&k));
            } else {
                assert_eq!(narrow.insert(k, x), wide.insert(k, x));
            }
            narrow.check_invariants();
            wide.check_invariants();
        }
        assert_eq!(narrow.keys(), wide.keys());
    }
}
