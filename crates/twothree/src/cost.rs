//! Analytic cost accounting for batched parallel 2-3 tree operations
//! (paper Appendix A.2): worst-case Lemma bounds **and** measured charges.
//!
//! A normal batch operation of `b` item-sorted operations on a tree of `n`
//! items takes `Θ(b · log n)` work and `O(log b + log n)` span; a
//! reverse-indexing operation has the same bounds.  The instrumented map
//! structures (M0, M1, M2) charge these costs to their [`wsm_model::CostMeter`]
//! when they touch a segment, which is exactly how the paper's work/span
//! proofs account for segment accesses (Lemma 11, Corollary 17, Lemma 20).
//!
//! # Measured vs worst-case charges
//!
//! The closed-form functions ([`single_op`], [`batch_op`], [`transfer`]) are
//! the paper's *worst-case* bounds: they charge the full `b · (⌈log n⌉ + 1)`
//! regardless of what the tree actually did.  Since PR 4 the tree layer also
//! counts the nodes it really visits (every recursion step of point
//! search/insert/remove, split, join and collect increments a thread-local
//! counter — see [`metered`]), and the maps charge those **measured** counts
//! through [`single_op_charge`], [`batch_op_charge`] and [`transfer_charge`].
//! Each returns a [`Charge`] carrying both numbers, so the experiments can
//! report the measured-over-bound constant factor, and each debug-asserts the
//! Lemma ceiling `measured ≤ MEASURED_CEILING · bound` — the bound is still
//! the proof obligation, the measurement is what the implementation did.
//!
//! Span is kept at the analytic formula in both cases: the critical path of a
//! batch operation is a model quantity that a sequential execution cannot
//! observe, while the touched-node count is exactly its work.

use std::cell::Cell;
use wsm_model::{ceil_log2, Cost};

/// Cost of a single-item operation (search / insert / delete) on a tree of
/// `n` items: `O(log n + 1)` work and span.
///
/// This is the closed-form Appendix A.2 bound for the 2-3 reference
/// instantiation (`B = 2`); [`single_op_b`] parameterizes it by fanout and
/// reduces to this exact function at `B = 2`.
pub fn single_op(n: u64) -> Cost {
    let steps = u64::from(ceil_log2(n + 1)) + 1;
    Cost::serial(steps)
}

/// Smallest `d` with `base^d >= x` (the fanout-aware analogue of
/// `wsm_model::ceil_log2`; `base >= 2`).
fn ceil_log_base(x: u64, base: u64) -> u64 {
    debug_assert!(base >= 2);
    let mut d = 0u64;
    let mut p = 1u64;
    while p < x {
        p = p.saturating_mul(base);
        d += 1;
    }
    d
}

/// Minimum children per internal node at fanout `B`: `max(2, B/2)` — the
/// (a,b)-tree occupancy floor the arena enforces, and therefore the base of
/// the height logarithm in every fanout-parameterized bound.
pub fn min_children(fanout: u64) -> u64 {
    (fanout / 2).max(2)
}

/// Fanout-parameterized [`single_op`]: a tree of `n` items with occupancy
/// floor `min_children(fanout)` has height `<= log_min(n) + O(1)`, so a point
/// operation visits that many nodes.  `single_op_b(n, 2) == single_op(n)`.
pub fn single_op_b(n: u64, fanout: u64) -> Cost {
    let steps = ceil_log_base(n + 1, min_children(fanout)) + 1;
    Cost::serial(steps)
}

/// Cost of a normal batch operation of `b` item-sorted operations on a tree of
/// `n` items: `Θ(b log n)` work, `O(log b + log n)` span.
pub fn batch_op(b: u64, n: u64) -> Cost {
    if b == 0 {
        return Cost::ZERO;
    }
    let logn = u64::from(ceil_log2(n + 1)) + 1;
    let logb = u64::from(ceil_log2(b + 1)) + 1;
    let span = logb + logn;
    // Work can never be below span (a batch of one small operation still has
    // to walk its own critical path).
    Cost::new((b * logn + b).max(span), span)
}

/// Fanout-parameterized [`batch_op`]: the per-item tree walk shortens to
/// `log_min(n)` (height at occupancy floor `min_children(fanout)`), while the
/// batch term stays `log₂ b` — the divide-and-conquer always splits the batch
/// at its midpoint regardless of node width.  `batch_op_b(b, n, 2) ==
/// batch_op(b, n)`.
pub fn batch_op_b(b: u64, n: u64, fanout: u64) -> Cost {
    if b == 0 {
        return Cost::ZERO;
    }
    let logn = ceil_log_base(n + 1, min_children(fanout)) + 1;
    let logb = u64::from(ceil_log2(b + 1)) + 1;
    let span = logb + logn;
    Cost::new((b * logn + b).max(span), span)
}

/// Cost of a reverse-indexing operation of `b` direct pointers on a tree of
/// `n` items (same bounds as a normal batch operation).
pub fn reverse_index(b: u64, n: u64) -> Cost {
    batch_op(b, n)
}

/// Cost of transferring `k` items between two adjacent segments whose total
/// size is at most `n` (one take + one batch insert on trees of size ≤ n).
pub fn transfer(k: u64, n: u64) -> Cost {
    batch_op(k, n).then(batch_op(k, n))
}

/// Fanout-parameterized [`transfer`]: two fanout-aware batch operations.
pub fn transfer_b(k: u64, n: u64, fanout: u64) -> Cost {
    batch_op_b(k, n, fanout).then(batch_op_b(k, n, fanout))
}

// ---------------------------------------------------------------------------
// Measured charges
// ---------------------------------------------------------------------------

/// Ceiling constant of the Lemma-bound debug assertion: a measured segment
/// operation may touch at most this many times the nodes the corresponding
/// closed-form bound charges.
///
/// Since the arena-fused [`crate::RecencyMap`] every segment operation drives
/// **one** key-ordered tree (recency-order work is O(1) pointer splices on the
/// intrusive list, metered as one touch per located item), so the ceiling is
/// the single-tree constant `3`: the search paths account for at most `1x`
/// the closed form, and the divide-and-conquer split/join spine rebuilds plus
/// underflow repair measure up to `~2x` more on adversarial batch shapes
/// (wide batches over small trees).  The old two-tree design (key-map plus a
/// stamp-keyed recency tree) needed `4`.
///
/// This constant is the `B = 2` reference value; wider fanouts use
/// [`measured_ceiling`], which is what the charge constructors consult.
pub const MEASURED_CEILING: u64 = 3;

/// The Lemma-ceiling constant at fanout `B`.
///
/// At `B = 2` this is [`MEASURED_CEILING`] (`3`), the measured single-tree
/// constant of the 2-3 reference.  At wider fanouts the *bound* shrinks by
/// `log₂ min_children(B)` (the height logarithm changes base) while the
/// divide-and-conquer's split/join spine work per batch item shrinks more
/// slowly (each split still rebuilds `O(height)` transient nodes on both
/// sides of the cut), so the measured-over-bound constant is larger even
/// though the absolute measured work is strictly smaller — which is the
/// point of the refactor and what the E18 A/B rows demonstrate.  `5` covers
/// the adversarial shapes (wide spread batches over small trees) with the
/// same ~1.5x headroom the `B = 2` constant has.
pub fn measured_ceiling(fanout: u64) -> u64 {
    if min_children(fanout) <= 2 {
        MEASURED_CEILING
    } else {
        5
    }
}

thread_local! {
    static TOUCHED: Cell<u64> = const { Cell::new(0) };
    static PASSES: Cell<u64> = const { Cell::new(0) };
}

/// Records `n` node visits on the current thread's counter.  Called by the
/// tree layer at every recursion step of its structural operations, and by
/// the recency map for every O(1) list splice (so measured charges cover the
/// arena work too).
#[inline]
pub(crate) fn touch(n: u64) {
    TOUCHED.with(|t| t.set(t.get() + n));
}

/// Records one *tree pass*: a root-originating traversal of a [`crate::Tree23`]
/// (a point search/insert/remove, a select, a split, or one divide-and-conquer
/// batch sweep).  Unlike [`touch`], the pass counter is monotone per thread
/// and is **not** reset by [`metered`] — it exists so experiments (E18) can
/// report tree-passes-per-segment-op across a whole workload: the fused
/// recency map pays one pass where the old two-tree design paid two.
#[inline]
pub(crate) fn pass() {
    PASSES.with(|p| p.set(p.get() + 1));
}

/// The number of tree passes recorded on this thread since the last
/// [`reset_tree_passes`] (monotone otherwise).
pub fn tree_passes() -> u64 {
    PASSES.with(|p| p.get())
}

/// Resets this thread's tree-pass counter to zero.
pub fn reset_tree_passes() {
    PASSES.with(|p| p.set(0));
}

/// Runs `f` and returns its result together with the number of tree nodes it
/// touched on this thread.
///
/// The counter is reset on entry, so diagnostic traversals performed between
/// metered operations (invariant checks, `for_each` scans) never leak into a
/// charge.  Calls must not nest — the maps meter leaf-level tree operations
/// only.  Work handed to other threads (the `par_*` tree variants) is counted
/// on the threads that perform it; the analytic charging paths of the maps
/// are sequential, so their counts are exact.
pub fn metered<T>(f: impl FnOnce() -> T) -> (T, u64) {
    TOUCHED.with(|t| t.set(0));
    let out = f();
    (out, TOUCHED.with(|t| t.replace(0)))
}

/// A paired charge: the work the operation actually performed (`measured`)
/// and the worst-case Lemma bound it must stay under (`bound`).
///
/// The maps add `measured` to their cost meter and accumulate `bound.work`
/// separately, so experiments can report both the measured constants and the
/// analytic ceilings (ROADMAP "report constant-factor trends, not just
/// shapes").
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Charge {
    /// The charge the map actually pays: measured touched-node work under the
    /// analytic span.
    pub measured: Cost,
    /// The closed-form worst-case bound for the same operation.
    pub bound: Cost,
}

impl Charge {
    /// The zero charge.
    pub const ZERO: Charge = Charge {
        measured: Cost::ZERO,
        bound: Cost::ZERO,
    };

    /// A charge whose measured cost *is* its bound — used for work that is
    /// not a tree operation (entropy sorting, buffer formation) and therefore
    /// has no separate touched-node measurement.
    pub fn exact(cost: Cost) -> Charge {
        Charge {
            measured: cost,
            bound: cost,
        }
    }
}

impl std::ops::Add for Charge {
    type Output = Charge;
    fn add(self, rhs: Charge) -> Charge {
        Charge {
            measured: self.measured.then(rhs.measured),
            bound: self.bound.then(rhs.bound),
        }
    }
}

impl std::ops::AddAssign for Charge {
    fn add_assign(&mut self, rhs: Charge) {
        *self = *self + rhs;
    }
}

/// Builds the measured cost for an operation with analytic bound `bound`:
/// the touched-node count as work (never below the span — even a cheap
/// operation walks its own critical path) and the analytic span.  `ceiling`
/// is the fanout's Lemma-ceiling constant ([`measured_ceiling`]).
fn measured_cost(touched: u64, bound: Cost, ceiling: u64, what: &str) -> Charge {
    debug_assert!(
        touched <= ceiling * bound.work,
        "{what}: measured {touched} touched nodes exceeds the Lemma ceiling \
         {ceiling} x {} (Appendix A.2 bound violated)",
        bound.work
    );
    Charge {
        measured: Cost::new(touched.max(bound.span), bound.span),
        bound,
    }
}

/// Measured charge for a single-item operation on a tree of `n` items at
/// fanout `fanout` (pass the tree's own fanout; `2` gives the closed-form
/// Appendix A.2 reference bound).
pub fn single_op_charge(touched: u64, n: u64, fanout: u64) -> Charge {
    measured_cost(
        touched,
        single_op_b(n, fanout),
        measured_ceiling(fanout),
        "single_op",
    )
}

/// Measured charge for a normal batch operation of `b` item-sorted operations
/// on a tree of `n` items at fanout `fanout`.  Zero-size batches are free.
pub fn batch_op_charge(touched: u64, b: u64, n: u64, fanout: u64) -> Charge {
    if b == 0 {
        debug_assert_eq!(touched, 0, "an empty batch touched {touched} nodes");
        return Charge::ZERO;
    }
    measured_cost(
        touched,
        batch_op_b(b, n, fanout),
        measured_ceiling(fanout),
        "batch_op",
    )
}

/// Measured charge for transferring `k` items between adjacent segments of
/// total size at most `n`, at fanout `fanout`.
pub fn transfer_charge(touched: u64, k: u64, n: u64, fanout: u64) -> Charge {
    if k == 0 {
        debug_assert_eq!(touched, 0, "an empty transfer touched {touched} nodes");
        return Charge::ZERO;
    }
    measured_cost(
        touched,
        transfer_b(k, n, fanout),
        measured_ceiling(fanout),
        "transfer",
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RecencyMap;

    #[test]
    fn single_op_is_logarithmic() {
        assert_eq!(single_op(0).work, 1);
        assert_eq!(single_op(1).work, 2);
        assert!(single_op(1 << 20).work >= 20);
        assert!(single_op(1 << 20).work <= 24);
    }

    #[test]
    fn batch_op_work_scales_linearly_in_b() {
        let n = 1 << 16;
        let c1 = batch_op(10, n);
        let c2 = batch_op(1000, n);
        assert!(
            c2.work > 90 * c1.work / 10 * 9 / 10,
            "work should be ~linear in b"
        );
        // Span grows only logarithmically with b.
        assert!(c2.span <= c1.span + 10);
    }

    #[test]
    fn batch_op_zero_is_free() {
        assert_eq!(batch_op(0, 100), Cost::ZERO);
    }

    #[test]
    fn span_is_sum_of_logs() {
        let c = batch_op(1 << 10, 1 << 20);
        assert!(c.span >= 30 && c.span <= 36, "span {} out of range", c.span);
    }

    #[test]
    fn transfer_is_two_batch_ops() {
        assert_eq!(transfer(8, 100).work, 2 * batch_op(8, 100).work);
        assert_eq!(transfer_b(8, 100, 16).work, 2 * batch_op_b(8, 100, 16).work);
    }

    #[test]
    fn fanout_two_bounds_match_the_closed_form() {
        // B = 2 is the analytic reference: the parameterized bounds must
        // reduce to the Appendix A.2 closed forms exactly.
        for n in [0u64, 1, 2, 7, 64, 1 << 12, 1 << 20] {
            assert_eq!(single_op_b(n, 2), single_op(n));
            for b in [0u64, 1, 8, 64, 1000] {
                assert_eq!(batch_op_b(b, n, 2), batch_op(b, n));
                assert_eq!(transfer_b(b, n, 2), transfer(b, n));
            }
        }
        assert_eq!(measured_ceiling(2), MEASURED_CEILING);
    }

    #[test]
    fn wider_fanout_shrinks_the_bounds() {
        // The height logarithm changes base from 2 to min_children(B), so
        // both work and span drop as the fanout widens.
        let n = 1 << 16;
        assert!(single_op_b(n, 16).work < single_op(n).work);
        assert!(batch_op_b(256, n, 16).work < batch_op(256, n).work);
        assert!(batch_op_b(256, n, 16).span < batch_op(256, n).span);
        assert!(batch_op_b(256, n, 8).work > batch_op_b(256, n, 16).work);
        // Degenerate sizes stay well-formed.
        assert_eq!(batch_op_b(0, n, 16), Cost::ZERO);
        assert!(batch_op_b(1, 0, 16).work >= 1);
    }

    #[test]
    fn metered_resets_and_counts() {
        let mut m: RecencyMap<u64, u64> = RecencyMap::new();
        for i in 0..64u64 {
            m.insert_back(i, i);
        }
        // Diagnostic scans between metered sections must not leak in.
        let _ = m.items_in_recency_order();
        let fan = m.fanout() as u64;
        let (_, touched) = metered(|| m.get(&7));
        assert!(touched >= 1, "a lookup touches at least the root path");
        assert!(
            touched <= measured_ceiling(fan) * single_op_b(64, fan).work,
            "lookup touched {touched} nodes"
        );
        let (_, zero) = metered(|| ());
        assert_eq!(zero, 0);
    }

    #[test]
    fn measured_charges_stay_under_lemma_bounds_on_random_batches() {
        // The satellite regression: on random mixed batches the measured
        // touched-node charge never exceeds the Appendix A.2 ceiling.  Runs
        // both the point-loop (small) and divide-and-conquer (large) batch
        // paths.
        let mut state = 0x5EED_CAFE_u64;
        let mut next = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        // Sweep the reference and the wide instantiations: the ceiling is
        // fanout-aware and must hold for both.
        for fan in [2usize, 8, 16] {
            let mut m: RecencyMap<u64, u64> = RecencyMap::with_fanout(fan);
            let fan = fan as u64;
            let ceiling = measured_ceiling(fan);
            let mut present: std::collections::BTreeSet<u64> = std::collections::BTreeSet::new();
            for round in 0..60 {
                let b = 1 + (next() % 120) as usize;
                let n = m.len() as u64;
                if round % 3 == 2 && !present.is_empty() {
                    // Sorted distinct removals (mix of hits and misses).
                    let mut keys: Vec<u64> = (0..b).map(|_| next() % 4096).collect();
                    keys.sort_unstable();
                    keys.dedup();
                    let (removed, touched) = metered(|| m.remove_batch(&keys));
                    let charge = batch_op_charge(touched, keys.len() as u64, n, fan);
                    assert!(
                        touched <= ceiling * charge.bound.work,
                        "remove_batch b={} n={n} fan={fan}: touched {touched} > ceiling {}",
                        keys.len(),
                        ceiling * charge.bound.work
                    );
                    for (k, r) in keys.iter().zip(removed) {
                        if r.is_some() {
                            present.remove(k);
                        }
                    }
                } else {
                    // Fresh distinct inserts (the maps remove before re-insert).
                    let mut items: Vec<(u64, u64)> = Vec::new();
                    for _ in 0..b {
                        let k = next() % 4096;
                        if present.insert(k) {
                            items.push((k, k));
                        }
                    }
                    let len = items.len() as u64;
                    let (_, touched) = metered(|| m.push_front_batch(items));
                    // Insert bound on the final size, as the maps charge it.
                    let charge = batch_op_charge(touched, len, n + len, fan);
                    assert!(
                        touched <= ceiling * charge.bound.work,
                        "push_front_batch b={len} n={n} fan={fan}: touched {touched}"
                    );
                }
                // Transfers: pop a random count off one end and re-insert.
                let k = (next() % 40) as usize;
                let larger = m.len() as u64;
                let (moved, touched) = metered(|| m.take_back(k.min(m.len())));
                let moved_len = moved.len();
                for (key, _) in &moved {
                    present.remove(key);
                }
                let charge = transfer_charge(touched, moved_len as u64, larger, fan);
                assert!(
                    touched <= ceiling * charge.bound.work || moved_len == 0,
                    "pop_back k={moved_len} n={larger} fan={fan}: touched {touched}"
                );
                for (key, _) in moved {
                    if present.insert(key) {
                        m.insert_back(key, key);
                    }
                }
            }
            m.check_invariants();
        }
    }

    #[test]
    fn measured_charge_is_below_bound_in_practice() {
        // The whole point of the split: on realistic trees the measured work
        // is strictly below the worst-case charge, not just below the
        // ceiling.
        let mut m: RecencyMap<u64, u64> = RecencyMap::new();
        let items: Vec<(u64, u64)> = (0..1024u64).map(|i| (i, i)).collect();
        m.push_back_batch(items);
        let keys: Vec<u64> = (0..64u64).collect();
        let (_, touched) = metered(|| m.remove_batch(&keys));
        let bound = batch_op_b(64, 1024, m.fanout() as u64).work;
        assert!(
            touched < bound,
            "measured {touched} should beat the worst-case bound {bound}"
        );
    }

    #[test]
    fn wide_fanout_touches_strictly_fewer_nodes_than_the_reference() {
        // The fanout satellite regression (the `fused_ops_touch_strictly_
        // fewer_nodes` pattern applied to B): at paper-shaped sizes the wide
        // instantiation must visit strictly fewer tree nodes than the B = 2
        // reference for point, batch and transfer shapes alike.
        use crate::Tree23;
        let build = |fan: usize| {
            Tree23::from_sorted_with_fanout((0..4096u64).map(|i| (i, i)).collect(), fan)
        };
        let point = |fan: usize| {
            let t = build(fan);
            metered(|| {
                for i in 0..64u64 {
                    std::hint::black_box(t.get(&(i * 64)));
                }
            })
            .1
        };
        let batch = |fan: usize| {
            let mut t = build(fan);
            let keys: Vec<u64> = (0..64u64).map(|i| i * 64).collect();
            metered(|| t.batch_remove(&keys)).1
        };
        let transfer_shape = |fan: usize| {
            let mut m: RecencyMap<u64, u64> = RecencyMap::with_fanout(fan);
            m.push_back_batch((0..512u64).map(|i| (i, i)).collect());
            let mut dst: RecencyMap<u64, u64> = RecencyMap::with_fanout(fan);
            dst.push_back_batch((1000..1256u64).map(|i| (i, i)).collect());
            metered(|| {
                let moved = m.take_back(64);
                dst.push_front_batch(moved);
            })
            .1
        };
        for (what, measure) in [
            ("point gets", &point as &dyn Fn(usize) -> u64),
            ("batch remove", &batch),
            ("transfer", &transfer_shape),
        ] {
            let narrow = measure(2);
            let wide = measure(16);
            assert!(
                wide < narrow,
                "{what}: B=16 touched {wide} nodes, should be strictly below B=2's {narrow}"
            );
        }
    }
}
