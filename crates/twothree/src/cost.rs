//! Analytic cost formulas for batched parallel 2-3 tree operations
//! (paper Appendix A.2).
//!
//! A normal batch operation of `b` item-sorted operations on a tree of `n`
//! items takes `Θ(b · log n)` work and `O(log b + log n)` span; a
//! reverse-indexing operation has the same bounds.  The instrumented map
//! structures (M0, M1, M2) charge these costs to their [`wsm_model::CostMeter`]
//! when they touch a segment, which is exactly how the paper's work/span
//! proofs account for segment accesses (Lemma 11, Corollary 17, Lemma 20).

use wsm_model::{ceil_log2, Cost};

/// Cost of a single-item operation (search / insert / delete) on a tree of
/// `n` items: `O(log n + 1)` work and span.
pub fn single_op(n: u64) -> Cost {
    let steps = u64::from(ceil_log2(n + 1)) + 1;
    Cost::serial(steps)
}

/// Cost of a normal batch operation of `b` item-sorted operations on a tree of
/// `n` items: `Θ(b log n)` work, `O(log b + log n)` span.
pub fn batch_op(b: u64, n: u64) -> Cost {
    if b == 0 {
        return Cost::ZERO;
    }
    let logn = u64::from(ceil_log2(n + 1)) + 1;
    let logb = u64::from(ceil_log2(b + 1)) + 1;
    let span = logb + logn;
    // Work can never be below span (a batch of one small operation still has
    // to walk its own critical path).
    Cost::new((b * logn + b).max(span), span)
}

/// Cost of a reverse-indexing operation of `b` direct pointers on a tree of
/// `n` items (same bounds as a normal batch operation).
pub fn reverse_index(b: u64, n: u64) -> Cost {
    batch_op(b, n)
}

/// Cost of transferring `k` items between two adjacent segments whose total
/// size is at most `n` (one take + one batch insert on trees of size ≤ n).
pub fn transfer(k: u64, n: u64) -> Cost {
    batch_op(k, n).then(batch_op(k, n))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_op_is_logarithmic() {
        assert_eq!(single_op(0).work, 1);
        assert_eq!(single_op(1).work, 2);
        assert!(single_op(1 << 20).work >= 20);
        assert!(single_op(1 << 20).work <= 24);
    }

    #[test]
    fn batch_op_work_scales_linearly_in_b() {
        let n = 1 << 16;
        let c1 = batch_op(10, n);
        let c2 = batch_op(1000, n);
        assert!(
            c2.work > 90 * c1.work / 10 * 9 / 10,
            "work should be ~linear in b"
        );
        // Span grows only logarithmically with b.
        assert!(c2.span <= c1.span + 10);
    }

    #[test]
    fn batch_op_zero_is_free() {
        assert_eq!(batch_op(0, 100), Cost::ZERO);
    }

    #[test]
    fn span_is_sum_of_logs() {
        let c = batch_op(1 << 10, 1 << 20);
        assert!(c.span >= 30 && c.span <= 36, "span {} out of range", c.span);
    }

    #[test]
    fn transfer_is_two_batch_ops() {
        assert_eq!(transfer(8, 100).work, 2 * batch_op(8, 100).work);
    }
}
