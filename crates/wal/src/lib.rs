//! # wsm-wal — durable batches: WAL + checkpoint/resume for the concurrent map
//!
//! ROADMAP item 3: a production map that loses everything on restart isn't
//! one.  This crate bolts durability onto the existing architecture at its
//! natural seam — the *combiner commit point*.  Every
//! [`ConcurrentMap`](wsm_core::ConcurrentMap) batch is applied by exactly one
//! combiner under the inner-map lock, so a commit hook at that point sees a
//! totally ordered stream of batches per map (and per shard: each shard's
//! combiner is its own serialization point, so [`DurableShardedMap`] simply
//! gives every shard its own log — per-key durability needs no cross-shard
//! ordering).
//!
//! Three pieces:
//!
//! * **The log** ([`log`]): length-prefixed, CRC-32-checksummed records, one
//!   per committed batch, appended *before* the batch mutates the map or any
//!   caller sees a result.  `WSM_WAL_SYNC=always|batch|off` picks the fsync
//!   policy ([`SyncPolicy`]).
//! * **Checkpoints**: every N batches ([`DurableOptions::checkpoint_every`])
//!   the map's segments — arena-backed `RecencyMap`s, snapshottable as plain
//!   item lists in recency order since the PR 5 slab refactor — are written as an
//!   atomic tmp+fsync+rename checkpoint file and the log is truncated.
//! * **Replay-on-open** ([`DurableMap::open`]): load the newest valid
//!   checkpoint, replay the log tail through the ordinary
//!   [`BatchedMap`](wsm_core::BatchedMap) batch path, detect and cleanly
//!   truncate a torn final record, then assert the structure's own
//!   `check_invariants` — recovery is "replay until the invariants hold",
//!   the self-stabilizing framing of the related-work SSSP kernels.
//!
//! What is durable: the key→value map and, between checkpoints, the
//! mutation order.  Search-only batches append nothing — searches change
//! only recency order, which every checkpoint re-captures exactly; putting
//! each read on the write path would make the log the whole workload.
//! Experiment E20 (`harness e20`) measures the per-batch overhead of the
//! three sync policies against a WAL-free baseline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod durable;
pub mod log;

pub use codec::Codec;
pub use durable::{DurableMap, DurableOptions, DurableShardedMap, DurableState};
pub use log::{RecoveryReport, SyncPolicy, Wal, WalStats};
