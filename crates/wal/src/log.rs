//! The on-disk write-ahead log: record framing, the append path, checkpoint
//! files and the recovery scan.
//!
//! # File layout
//!
//! A WAL directory holds one append-only log plus at most one checkpoint:
//!
//! * `wal.log` — a sequence of *records*, each `[len: u32][crc: u32][payload]`
//!   with `crc = crc32(payload)`.  A record's payload is the batch image
//!   `(seq: u64, ops: Vec<Operation>)`: `seq` numbers appended records from 1
//!   and the ops are the batch's *mutations* in batch order (searches change
//!   only recency, which the next checkpoint re-captures exactly; logging
//!   them would put every read on the write path).
//! * `checkpoint-<seq>.ckpt` — a single framed record whose payload is
//!   `(seq, segments)` where `segments` is the
//!   [`snapshot_segments`](crate::DurableState::snapshot_segments) image: it
//!   covers every log record with sequence `<= seq`.  Written as
//!   `checkpoint-<seq>.tmp` + fsync + rename, so a crash mid-checkpoint
//!   leaves either the old state or the new file, never half of one.
//!
//! # Recovery contract
//!
//! [`Wal::open`] loads the newest checkpoint that decodes cleanly (a corrupt
//! one is skipped — the log behind it still replays), then scans the log:
//! records covered by the checkpoint are skipped (a crash may land between
//! the checkpoint rename and the log truncation), consecutive records beyond
//! it are returned for replay, and the first torn or corrupt record — short
//! header, short payload, checksum mismatch, undecodable bytes, or a
//! sequence gap — *truncates the file at that offset*; nothing at or past a
//! bad record is ever replayed.  Opening twice in a row is therefore
//! idempotent: the first open already normalized the files.

use crate::codec::{decode_exact, Codec};
use std::fs::{self, File, OpenOptions};
use std::io::{self, Seek, SeekFrom, Write};
use std::marker::PhantomData;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;
use wsm_core::{Operation, TaggedOp};

/// CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) lookup table,
/// built at compile time.
const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut c = i as u32;
        let mut k = 0;
        while k < 8 {
            c = if c & 1 != 0 {
                0xEDB8_8320 ^ (c >> 1)
            } else {
                c >> 1
            };
            k += 1;
        }
        table[i] = c;
        i += 1;
    }
    table
};

/// The CRC-32 checksum guarding every record payload.
pub fn crc32(bytes: &[u8]) -> u32 {
    !bytes.iter().fold(u32::MAX, |c, &b| {
        CRC_TABLE[((c ^ u32::from(b)) & 0xFF) as usize] ^ (c >> 8)
    })
}

/// When appended records reach the operating system / the disk.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SyncPolicy {
    /// `write` + `fdatasync` per batch *before* any caller receives a
    /// result: committed means on disk.  Survives power loss.
    Always,
    /// `write` per batch, no fsync: committed means handed to the OS.
    /// Survives a process kill, not power loss.  The default.
    Batch,
    /// Records accumulate in a user-space buffer flushed when it fills and
    /// on [`Wal::flush`] / drop: fastest, survives only a graceful close.
    Off,
}

impl SyncPolicy {
    /// Reads `WSM_WAL_SYNC=always|batch|off` (default [`SyncPolicy::Batch`];
    /// invalid values warn once on stderr via the central knob parser).
    pub fn from_env() -> SyncPolicy {
        wsm_core::env::parse_with(
            "WSM_WAL_SYNC",
            "always|batch|off",
            SyncPolicy::Batch,
            |raw| match raw {
                "always" => Some(SyncPolicy::Always),
                "batch" => Some(SyncPolicy::Batch),
                "off" => Some(SyncPolicy::Off),
                _ => None,
            },
        )
    }
}

/// User-space buffer threshold for [`SyncPolicy::Off`].
const OFF_FLUSH_BYTES: usize = 64 * 1024;

/// The log file inside a WAL directory.
pub fn log_path(dir: &Path) -> PathBuf {
    dir.join("wal.log")
}

/// The checkpoint file covering log records with sequence `<= seq`.
pub fn checkpoint_path(dir: &Path, seq: u64) -> PathBuf {
    dir.join(format!("checkpoint-{seq}.ckpt"))
}

/// All `checkpoint-<seq>.ckpt` files in `dir`, unordered.
pub fn list_checkpoints(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut out = Vec::new();
    for entry in fs::read_dir(dir)? {
        let path = entry?.path();
        let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
            continue;
        };
        if let Some(seq) = name
            .strip_prefix("checkpoint-")
            .and_then(|rest| rest.strip_suffix(".ckpt"))
            .and_then(|digits| digits.parse::<u64>().ok())
        {
            out.push((seq, path));
        }
    }
    Ok(out)
}

/// Frames a payload as `[len][crc][payload]`.
fn frame(payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(payload.len() + 8);
    (payload.len() as u32).encode(&mut out);
    crc32(payload).encode(&mut out);
    out.extend_from_slice(payload);
    out
}

/// One decoded record plus the byte offset it starts at.
struct ScannedRecord<K, V> {
    seq: u64,
    ops: Vec<Operation<K, V>>,
    start: u64,
}

/// Walks the raw log bytes, stopping at the first record that is short,
/// fails its checksum or does not decode.  `valid_len` is where the clean
/// prefix ends.
struct LogScan<K, V> {
    records: Vec<ScannedRecord<K, V>>,
    valid_len: u64,
    torn: bool,
}

fn scan_log<K: Codec, V: Codec>(bytes: &[u8]) -> LogScan<K, V> {
    let mut records = Vec::new();
    let mut offset = 0usize;
    let mut torn = false;
    while offset < bytes.len() {
        let rest = &bytes[offset..];
        let Some(header) = rest.get(..8) else {
            torn = true;
            break;
        };
        let len = u32::from_le_bytes(header[..4].try_into().expect("4 bytes")) as usize;
        let crc = u32::from_le_bytes(header[4..].try_into().expect("4 bytes"));
        let Some(payload) = rest.get(8..8 + len) else {
            torn = true;
            break;
        };
        if crc32(payload) != crc {
            torn = true;
            break;
        }
        let Some((seq, ops)) = decode_exact::<(u64, Vec<Operation<K, V>>)>(payload) else {
            torn = true;
            break;
        };
        records.push(ScannedRecord {
            seq,
            ops,
            start: offset as u64,
        });
        offset += 8 + len;
    }
    LogScan {
        records,
        valid_len: offset as u64,
        torn,
    }
}

/// What [`Wal::open`] found and did; surfaced through
/// [`DurableMap::recovery`](crate::DurableMap::recovery).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Sequence of the checkpoint that seeded the state (0 = none).
    pub checkpoint_seq: u64,
    /// Items restored from the checkpoint image.
    pub checkpoint_items: u64,
    /// Log-tail batches replayed on top of the checkpoint.
    pub replayed_batches: u64,
    /// Mutations inside those replayed batches.
    pub replayed_ops: u64,
    /// Records skipped because the checkpoint already covered them (a crash
    /// landed between the checkpoint rename and the log truncation).
    pub skipped_stale_records: u64,
    /// Whether a torn/corrupt tail (or sequence gap) was cut off the log.
    pub truncated_torn_tail: bool,
}

/// Everything recovered from a WAL directory: the checkpoint image (if any)
/// and the log-tail batches to replay on top of it, in order.
pub struct Recovered<K, V> {
    /// Newest valid checkpoint's segment image.
    pub segments: Option<Vec<Vec<(K, V)>>>,
    /// Batches past the checkpoint, each a list of mutations in batch order.
    pub tail: Vec<Vec<Operation<K, V>>>,
    /// What happened during the scan.
    pub report: RecoveryReport,
}

/// Point-in-time counters for one WAL (cheap atomic reads).
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct WalStats {
    /// Batches appended (batches with no mutations append nothing).
    pub batches_logged: u64,
    /// Mutations inside those batches.
    pub ops_logged: u64,
    /// Framed bytes handed to the log (including headers).
    pub bytes_appended: u64,
    /// `fdatasync` calls on the log ([`SyncPolicy::Always`] only).
    pub syncs: u64,
    /// Checkpoints taken.
    pub checkpoints: u64,
    /// Batches appended since the last checkpoint.
    pub since_checkpoint: u64,
}

struct LogState {
    file: File,
    /// User-space staging for [`SyncPolicy::Off`]; empty otherwise.
    buf: Vec<u8>,
    next_seq: u64,
}

/// An open write-ahead log for one serialization point (one combiner).
///
/// `append` is called from the [`ConcurrentMap`](wsm_core::ConcurrentMap)
/// commit hook — under the map's inner lock — and `checkpoint` from
/// [`with_inner`](wsm_core::ConcurrentMap::with_inner), so the lock order is
/// always inner-then-WAL and the checkpoint's `seq` is exactly consistent
/// with applied state.
pub struct Wal<K, V> {
    dir: PathBuf,
    policy: SyncPolicy,
    state: Mutex<LogState>,
    batches_logged: AtomicU64,
    ops_logged: AtomicU64,
    bytes_appended: AtomicU64,
    syncs: AtomicU64,
    checkpoints: AtomicU64,
    since_checkpoint: AtomicU64,
    _shape: PhantomData<fn(K, V)>,
}

impl<K: Codec, V: Codec> Wal<K, V> {
    /// Opens (creating if needed) the WAL in `dir`, recovering whatever a
    /// previous process left: newest valid checkpoint, clean log tail, torn
    /// records truncated.  Returns the log ready for appending plus the
    /// recovered state for the caller to rebuild its map from.
    pub fn open(dir: &Path, policy: SyncPolicy) -> io::Result<(Self, Recovered<K, V>)> {
        fs::create_dir_all(dir)?;
        let mut report = RecoveryReport::default();

        // Newest checkpoint that decodes cleanly wins; corrupt ones are
        // skipped so the log (which is only truncated after a checkpoint is
        // durable) still replays under an older or absent image.
        let mut checkpoints = list_checkpoints(dir)?;
        checkpoints.sort_by_key(|&(seq, _)| std::cmp::Reverse(seq));
        let mut segments = None;
        for (seq, path) in &checkpoints {
            if let Some(image) = load_checkpoint::<K, V>(path, *seq) {
                report.checkpoint_seq = *seq;
                report.checkpoint_items = image.iter().map(|s| s.len() as u64).sum();
                segments = Some(image);
                break;
            }
        }
        // Interrupted checkpoint writes leave `.tmp` files; they were never
        // part of durable state, so clear them.
        for entry in fs::read_dir(dir)? {
            let path = entry?.path();
            if path.extension().is_some_and(|e| e == "tmp") {
                let _ = fs::remove_file(path);
            }
        }

        let log = log_path(dir);
        let bytes = match fs::read(&log) {
            Ok(bytes) => bytes,
            Err(e) if e.kind() == io::ErrorKind::NotFound => Vec::new(),
            Err(e) => return Err(e),
        };
        let scan = scan_log::<K, V>(&bytes);
        let mut truncate_at = if scan.torn {
            Some(scan.valid_len)
        } else {
            None
        };
        let mut tail = Vec::new();
        let mut last_seq = report.checkpoint_seq;
        for record in scan.records {
            if record.seq <= report.checkpoint_seq {
                report.skipped_stale_records += 1;
            } else if record.seq == last_seq + 1 {
                report.replayed_ops += record.ops.len() as u64;
                tail.push(record.ops);
                last_seq = record.seq;
            } else {
                // A sequence gap means the file is not the clean suffix of
                // any run this WAL wrote; trust nothing from here on.
                truncate_at = Some(record.start);
                break;
            }
        }
        report.replayed_batches = tail.len() as u64;

        let mut file = OpenOptions::new()
            .read(true)
            .write(true)
            .create(true)
            .truncate(false)
            .open(&log)?;
        if let Some(valid_len) = truncate_at {
            report.truncated_torn_tail = true;
            file.set_len(valid_len)?;
            file.sync_all()?;
        }
        file.seek(SeekFrom::End(0))?;

        let wal = Wal {
            dir: dir.to_path_buf(),
            policy,
            state: Mutex::new(LogState {
                file,
                buf: Vec::new(),
                next_seq: last_seq + 1,
            }),
            batches_logged: AtomicU64::new(0),
            ops_logged: AtomicU64::new(0),
            bytes_appended: AtomicU64::new(0),
            syncs: AtomicU64::new(0),
            checkpoints: AtomicU64::new(0),
            since_checkpoint: AtomicU64::new(0),
            _shape: PhantomData,
        };
        Ok((
            wal,
            Recovered {
                segments,
                tail,
                report,
            },
        ))
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, LogState> {
        // A poisoned lock means an append panicked mid-write; the file may
        // hold a torn record, which is exactly what recovery handles — keep
        // going rather than poisoning every later append.
        self.state.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Appends one committed batch's mutations as a single record, honoring
    /// the sync policy.  Batches with no mutations append nothing (searches
    /// change only recency, which the next checkpoint captures).  Returns
    /// whether a record was written.
    pub fn append(&self, batch: &[TaggedOp<K, V>]) -> io::Result<bool> {
        let mutations: Vec<&Operation<K, V>> = batch
            .iter()
            .map(|t| &t.op)
            .filter(|op| !matches!(op, Operation::Search(_)))
            .collect();
        if mutations.is_empty() {
            return Ok(false);
        }
        let mut state = self.lock_state();
        let mut payload = Vec::new();
        state.next_seq.encode(&mut payload);
        (mutations.len() as u64).encode(&mut payload);
        for op in &mutations {
            op.encode(&mut payload);
        }
        let framed = frame(&payload);
        match self.policy {
            SyncPolicy::Always => {
                state.file.write_all(&framed)?;
                state.file.sync_data()?;
                // ord: Relaxed — monotonic stats counter, read only for
                // reporting; the state mutex orders the file writes.
                self.syncs.fetch_add(1, Ordering::Relaxed);
            }
            SyncPolicy::Batch => state.file.write_all(&framed)?,
            SyncPolicy::Off => {
                state.buf.extend_from_slice(&framed);
                if state.buf.len() >= OFF_FLUSH_BYTES {
                    let buf = std::mem::take(&mut state.buf);
                    state.file.write_all(&buf)?;
                }
            }
        }
        state.next_seq += 1;
        drop(state);
        // The four updates below are monotonic stats counters, read only for
        // reporting and the checkpoint-interval check; the state mutex (held
        // by every writer) orders the log itself.
        self.batches_logged.fetch_add(1, Ordering::Relaxed); // ord: Relaxed — stats
        self.ops_logged // ord: Relaxed — stats
            .fetch_add(mutations.len() as u64, Ordering::Relaxed);
        self.bytes_appended // ord: Relaxed — stats
            .fetch_add(framed.len() as u64, Ordering::Relaxed);
        self.since_checkpoint.fetch_add(1, Ordering::Relaxed); // ord: Relaxed — stats
        Ok(true)
    }

    /// Writes a checkpoint covering every record appended so far and
    /// truncates the log.  The caller must hold the map's inner lock (via
    /// [`with_inner`](wsm_core::ConcurrentMap::with_inner)) so `segments` is
    /// exactly the state the appended records produced.
    ///
    /// Crash-safe at every step: the image lands in a `.tmp` file that is
    /// fsynced before an atomic rename, older checkpoints are removed only
    /// after the new one is durable, and the log is truncated last — a crash
    /// anywhere leaves either the old (checkpoint, log) pair, the new
    /// checkpoint with a stale log (whose covered records recovery skips by
    /// sequence), or the fully new pair.
    pub fn checkpoint(&self, segments: &[Vec<(K, V)>]) -> io::Result<u64> {
        let mut state = self.lock_state();
        let seq = state.next_seq - 1;
        let mut payload = Vec::new();
        seq.encode(&mut payload);
        (segments.len() as u64).encode(&mut payload);
        for segment in segments {
            segment.encode(&mut payload);
        }
        let framed = frame(&payload);
        let tmp = self.dir.join(format!("checkpoint-{seq}.tmp"));
        let final_path = checkpoint_path(&self.dir, seq);
        {
            let mut f = File::create(&tmp)?;
            f.write_all(&framed)?;
            f.sync_data()?;
        }
        fs::rename(&tmp, &final_path)?;
        // Make the rename itself durable (best-effort: not every filesystem
        // supports fsync on a directory handle).
        let _ = File::open(&self.dir).and_then(|d| d.sync_all());
        for (old_seq, path) in list_checkpoints(&self.dir)? {
            if old_seq != seq {
                let _ = fs::remove_file(path);
            }
        }
        state.buf.clear();
        state.file.set_len(0)?;
        state.file.seek(SeekFrom::Start(0))?;
        state.file.sync_all()?;
        drop(state);
        // ord: Relaxed — stats counters; the state mutex orders the files.
        self.checkpoints.fetch_add(1, Ordering::Relaxed);
        self.since_checkpoint.store(0, Ordering::Relaxed); // ord: Relaxed — stats
        Ok(seq)
    }

    /// Batches appended since the last checkpoint (drives the
    /// checkpoint-every-N policy).
    pub fn since_checkpoint(&self) -> u64 {
        // ord: Relaxed — heuristic trigger read; off-by-a-batch is harmless
        // (the checkpoint itself runs under the inner lock).
        self.since_checkpoint.load(Ordering::Relaxed)
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> WalStats {
        // ord: Relaxed — independent monotonic counters for reporting; a
        // torn snapshot across them is acceptable.
        let load = |counter: &AtomicU64| counter.load(Ordering::Relaxed);
        WalStats {
            batches_logged: load(&self.batches_logged),
            ops_logged: load(&self.ops_logged),
            bytes_appended: load(&self.bytes_appended),
            syncs: load(&self.syncs),
            checkpoints: load(&self.checkpoints),
            since_checkpoint: load(&self.since_checkpoint),
        }
    }

    /// Hands any user-space-buffered records ([`SyncPolicy::Off`]) to the
    /// operating system.  Called on drop; call explicitly for a graceful
    /// close whose durability you want to observe.
    pub fn flush(&self) -> io::Result<()> {
        let mut state = self.lock_state();
        if !state.buf.is_empty() {
            let buf = std::mem::take(&mut state.buf);
            state.file.write_all(&buf)?;
        }
        Ok(())
    }
}

impl<K, V> Drop for Wal<K, V> {
    fn drop(&mut self) {
        let state = self.state.get_mut().unwrap_or_else(|e| e.into_inner());
        if !state.buf.is_empty() {
            let buf = std::mem::take(&mut state.buf);
            let _ = state.file.write_all(&buf);
        }
    }
}

/// Decodes one checkpoint file; `None` if it is torn, corrupt, or its
/// embedded sequence disagrees with its filename.
fn load_checkpoint<K: Codec, V: Codec>(path: &Path, expect_seq: u64) -> Option<Vec<Vec<(K, V)>>> {
    let bytes = fs::read(path).ok()?;
    let header = bytes.get(..8)?;
    let len = u32::from_le_bytes(header[..4].try_into().ok()?) as usize;
    let crc = u32::from_le_bytes(header[4..].try_into().ok()?);
    let payload = bytes.get(8..8 + len)?;
    if bytes.len() != 8 + len || crc32(payload) != crc {
        return None;
    }
    let (seq, segments) = decode_exact::<(u64, Vec<Vec<(K, V)>>)>(payload)?;
    (seq == expect_seq).then_some(segments)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(
            crc32(b"The quick brown fox jumps over the lazy dog"),
            0x414F_A339
        );
    }

    #[test]
    fn scan_accepts_clean_records_and_stops_at_garbage() {
        let mut bytes = Vec::new();
        for seq in 1u64..=3 {
            let mut payload = Vec::new();
            seq.encode(&mut payload);
            vec![Operation::<u64, u64>::Insert(seq, seq * 10)].encode(&mut payload);
            bytes.extend_from_slice(&frame(&payload));
        }
        let clean_len = bytes.len() as u64;
        bytes.extend_from_slice(&[0xAB; 5]); // torn header
        let scan = scan_log::<u64, u64>(&bytes);
        assert!(scan.torn);
        assert_eq!(scan.valid_len, clean_len);
        assert_eq!(scan.records.len(), 3);
        assert_eq!(scan.records[2].seq, 3);
        assert!(scan.records[2].start < clean_len);
    }

    #[test]
    fn scan_rejects_checksum_mismatch() {
        let mut payload = Vec::new();
        1u64.encode(&mut payload);
        vec![Operation::<u64, u64>::Delete(4)].encode(&mut payload);
        let mut bytes = frame(&payload);
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        let scan = scan_log::<u64, u64>(&bytes);
        assert!(scan.torn);
        assert_eq!(scan.valid_len, 0);
        assert!(scan.records.is_empty());
    }
}
