//! Durable front-ends: [`DurableMap`] (one combiner, one log) and
//! [`DurableShardedMap`] (one log per shard).
//!
//! Both wrap the existing front-ends unchanged and add exactly two behaviors:
//!
//! * every committed batch is appended to a [`Wal`] *before* it is applied,
//!   via the [`ConcurrentMap`] commit hook (under the inner-map lock, so no
//!   caller ever observes a result whose batch is not in the log), and
//! * every `checkpoint_every` logged batches the map's segments are written
//!   as an atomic checkpoint and the log is truncated.
//!
//! IO failure policy is **fail-stop**: an `append` error panics the combiner
//! rather than apply an unlogged batch, and a checkpoint error panics rather
//! than let the log silently stop shrinking.  A durability layer that keeps
//! answering after its log device died is lying to its callers.

use std::io;
use std::path::Path;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use wsm_core::{BatchedMap, ConcurrentMap, OpId, OpResult, Operation, TaggedOp, M1, M2};
use wsm_shard::{HashPartitioner, ShardedMap};

use crate::codec::Codec;
use crate::log::{Recovered, RecoveryReport, SyncPolicy, Wal, WalStats};

/// Submitter-ring count for the wrapped front-end's parallel buffer (same
/// default as `wsm-shard` uses per shard).
const BUFFER_SHARDS: usize = 8;

/// A batched map whose whole semantic state can round-trip through a
/// checkpoint image: the per-segment item lists in recency order.
///
/// Both working-set structures qualify because a batch boundary leaves them
/// with *no* transient state — M2's filter/feed/staged buffers drain to empty
/// before `run_batch` returns (pinned by its property tests) — so the
/// segments alone are the map.
pub trait DurableState<K, V>: BatchedMap<K, V> {
    /// The per-segment items, most recent first within each segment.
    fn snapshot_segments(&self) -> Vec<Vec<(K, V)>>;
    /// Rebuilds a *fresh* map from a snapshot image (panics if `self` has
    /// ever been used).
    fn restore_segments(&mut self, segments: Vec<Vec<(K, V)>>);
    /// Asserts the structure's own invariants; recovery calls this after
    /// restore + replay, so a bad image or bad tail fails loudly at open
    /// rather than corrupting silently at first use.
    fn check_recovered(&self);
}

impl<K, V> DurableState<K, V> for M1<K, V>
where
    K: Ord + Clone + Send + Sync + std::fmt::Debug,
    V: Clone,
{
    fn snapshot_segments(&self) -> Vec<Vec<(K, V)>> {
        M1::snapshot_segments(self)
    }
    fn restore_segments(&mut self, segments: Vec<Vec<(K, V)>>) {
        M1::restore_segments(self, segments);
    }
    fn check_recovered(&self) {
        self.check_invariants();
    }
}

impl<K, V> DurableState<K, V> for M2<K, V>
where
    K: Ord + Clone + Send + Sync + std::fmt::Debug,
    V: Clone,
{
    fn snapshot_segments(&self) -> Vec<Vec<(K, V)>> {
        M2::snapshot_segments(self)
    }
    fn restore_segments(&mut self, segments: Vec<Vec<(K, V)>>) {
        M2::restore_segments(self, segments);
    }
    fn check_recovered(&self) {
        self.check_invariants();
    }
}

/// Durability knobs, defaulted from the environment: `WSM_WAL_SYNC`
/// (`always` | `batch` | `off`) and `WSM_WAL_CHECKPOINT_EVERY` (logged
/// batches between checkpoints, default 1024, must be at least 1 — garbage
/// warns once and keeps the default).
#[derive(Clone, Copy, Debug)]
pub struct DurableOptions {
    /// When appended records reach the disk (see [`SyncPolicy`]).
    pub sync: SyncPolicy,
    /// Checkpoint (and truncate the log) every this many logged batches.
    pub checkpoint_every: u64,
}

impl Default for DurableOptions {
    fn default() -> Self {
        DurableOptions {
            sync: SyncPolicy::from_env(),
            checkpoint_every: wsm_core::env::parse(
                "WSM_WAL_CHECKPOINT_EVERY",
                "a batch count >= 1",
                1024,
                |&n: &u64| n >= 1,
            ),
        }
    }
}

/// Distinct-per-thread submitter hint for the wrapped front-end's parallel
/// buffer (contention only, never correctness) — same idiom as `wsm-shard`.
fn caller_hint() -> usize {
    static NEXT_HINT: AtomicUsize = AtomicUsize::new(0);
    thread_local! {
        static HINT: std::cell::Cell<Option<usize>> = const { std::cell::Cell::new(None) };
    }
    HINT.with(|hint| match hint.get() {
        Some(h) => h,
        None => {
            // ord: Relaxed — the counter only hands out distinct ring hints;
            // nothing is published through it.
            let h = NEXT_HINT.fetch_add(1, Ordering::Relaxed);
            hint.set(Some(h));
            h
        }
    })
}

/// Replays one logged batch through the ordinary batch path (results are
/// discarded — their callers are long gone).
fn replay<K, V, M: BatchedMap<K, V>>(map: &mut M, ops: Vec<Operation<K, V>>) {
    let batch: Vec<TaggedOp<K, V>> = ops
        .into_iter()
        .enumerate()
        .map(|(i, op)| TaggedOp { id: i as OpId, op })
        .collect();
    let _ = map.run_batch(batch);
}

/// Recovers one serialization point: restore the checkpoint image into a
/// fresh map, replay the log tail, assert invariants.
fn recover_into<K, V, M>(map: &mut M, recovered: Recovered<K, V>) -> RecoveryReport
where
    M: DurableState<K, V>,
{
    if let Some(segments) = recovered.segments {
        map.restore_segments(segments);
    }
    for ops in recovered.tail {
        replay(map, ops);
    }
    map.check_recovered();
    recovered.report
}

/// A [`ConcurrentMap`] whose committed batches are write-ahead logged and
/// periodically checkpointed, and which resumes from the log on open.
///
/// ```no_run
/// use wsm_core::M1;
/// use wsm_wal::{DurableMap, DurableOptions};
///
/// let opts = DurableOptions::default();
/// let map = DurableMap::open_with("wal-dir".as_ref(), opts, || M1::<u64, u64>::new(8)).unwrap();
/// map.insert(1, 10);
/// drop(map); // or crash —
/// let map = DurableMap::open_with("wal-dir".as_ref(), opts, || M1::<u64, u64>::new(8)).unwrap();
/// assert_eq!(map.search(1), Some(10));
/// ```
pub struct DurableMap<K, V, M> {
    map: ConcurrentMap<K, V, M>,
    wal: Arc<Wal<K, V>>,
    checkpoint_every: u64,
    recovery: RecoveryReport,
}

impl<K, V, M> DurableMap<K, V, M>
where
    K: Codec + Ord + Clone + Send + Sync + 'static,
    V: Codec + Clone + Send + 'static,
    M: DurableState<K, V> + Send,
{
    /// Opens (creating if needed) a durable map in `dir` with options from
    /// the environment (`WSM_WAL_SYNC`, `WSM_WAL_CHECKPOINT_EVERY`).
    /// `make()` constructs the *empty* batched map; recovery fills it.
    pub fn open(dir: &Path, make: impl FnOnce() -> M) -> io::Result<Self> {
        Self::open_with(dir, DurableOptions::default(), make)
    }

    /// Opens with explicit [`DurableOptions`]: loads the newest valid
    /// checkpoint, replays the log tail (truncating a torn final record),
    /// asserts the structure's invariants, then installs the commit hook so
    /// every later batch is logged before it is applied.
    pub fn open_with(
        dir: &Path,
        opts: DurableOptions,
        make: impl FnOnce() -> M,
    ) -> io::Result<Self> {
        let (wal, recovered) = Wal::open(dir, opts.sync)?;
        let mut inner = make();
        let recovery = recover_into(&mut inner, recovered);
        let wal = Arc::new(wal);
        let hook_wal = Arc::clone(&wal);
        let map = ConcurrentMap::new(inner, BUFFER_SHARDS).with_commit_hook(move |batch| {
            // Fail-stop: applying a batch the log refused would hand out
            // results that a reopen could not reproduce.
            hook_wal
                .append(batch)
                .expect("WAL append failed; refusing to apply an unlogged batch");
        });
        Ok(DurableMap {
            map,
            wal,
            checkpoint_every: opts.checkpoint_every.max(1),
            recovery,
        })
    }

    /// What recovery found when this map was opened.
    pub fn recovery(&self) -> RecoveryReport {
        self.recovery
    }

    /// Point-in-time WAL counters.
    pub fn wal_stats(&self) -> WalStats {
        self.wal.stats()
    }

    /// Current number of items.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if the map is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Searches for a key (never logged: searches change only recency order,
    /// which the next checkpoint re-captures).
    pub fn search(&self, key: K) -> Option<V> {
        self.map.search(caller_hint(), key)
    }

    /// Inserts a key/value pair, returning the previous value.  The batch
    /// carrying this insert is on the log before this returns.
    pub fn insert(&self, key: K, val: V) -> Option<V> {
        let prev = self.map.insert(caller_hint(), key, val);
        self.maybe_checkpoint();
        prev
    }

    /// Deletes a key, returning its value if present.
    pub fn delete(&self, key: K) -> Option<V> {
        let prev = self.map.delete(caller_hint(), key);
        self.maybe_checkpoint();
        prev
    }

    /// Runs a batch of operations, returning results in operation order.
    pub fn call_batch(&self, ops: Vec<Operation<K, V>>) -> Vec<OpResult<V>> {
        let results = self.map.call_batch(caller_hint(), ops);
        self.maybe_checkpoint();
        results
    }

    /// Takes a checkpoint now: snapshots the segments under the inner-map
    /// lock (serialized against the combiner and its commit hook, so the
    /// image is exactly the logged prefix) and truncates the log.  Returns
    /// the checkpoint sequence.
    pub fn checkpoint(&self) -> io::Result<u64> {
        self.map
            .with_inner(|m| self.wal.checkpoint(&m.snapshot_segments()))
    }

    /// Pushes any user-space-buffered records ([`SyncPolicy::Off`]) to the
    /// OS.  No-op under the other policies.
    pub fn flush(&self) -> io::Result<()> {
        self.wal.flush()
    }

    fn maybe_checkpoint(&self) {
        if self.wal.since_checkpoint() >= self.checkpoint_every {
            self.checkpoint()
                .expect("WAL checkpoint failed; refusing to let the log grow unbounded");
        }
    }
}

/// A [`ShardedMap`] with one [`Wal`] per shard (under `dir/shard-<i>/`).
///
/// Each shard's combiner is its own serialization point, so per-shard logs
/// need no cross-shard ordering: the partitioner routes every operation on a
/// key through exactly one shard, and per-key durability is per-shard
/// durability.  Cross-shard batches are *not* atomic under a crash — some
/// shards' sub-batches may be durable while others are not — matching the
/// map's live semantics, where cross-key operations carry no ordering
/// obligation.
pub struct DurableShardedMap<K, V, M> {
    map: ShardedMap<K, V, M, HashPartitioner>,
    wals: Vec<Arc<Wal<K, V>>>,
    checkpoint_every: u64,
    recovery: Vec<RecoveryReport>,
}

impl<K, V, M> DurableShardedMap<K, V, M>
where
    K: Codec + Ord + Clone + Send + Sync + std::hash::Hash + 'static,
    V: Codec + Clone + Send + 'static,
    M: DurableState<K, V> + Send,
{
    /// Opens (creating if needed) a durable sharded map in `dir` with
    /// `shards` shards (at least one) and options from the environment.
    /// `make(i)` constructs the *empty* batched map for shard `i`.
    pub fn open(dir: &Path, shards: usize, make: impl FnMut(usize) -> M) -> io::Result<Self> {
        Self::open_with(dir, shards, DurableOptions::default(), make)
    }

    /// Opens with explicit [`DurableOptions`].  Each shard recovers
    /// independently from its own `dir/shard-<i>/` WAL; the shard count must
    /// match across opens (keys do not migrate).
    pub fn open_with(
        dir: &Path,
        shards: usize,
        opts: DurableOptions,
        mut make: impl FnMut(usize) -> M,
    ) -> io::Result<Self> {
        let shards = shards.max(1);
        let mut wals = Vec::with_capacity(shards);
        let mut recovery = Vec::with_capacity(shards);
        let mut recovered: Vec<Option<M>> = Vec::with_capacity(shards);
        for i in 0..shards {
            let (wal, found) = Wal::open(&dir.join(format!("shard-{i}")), opts.sync)?;
            let mut inner = make(i);
            recovery.push(recover_into(&mut inner, found));
            wals.push(Arc::new(wal));
            recovered.push(Some(inner));
        }
        let map = ShardedMap::with_shards(shards, |i| {
            recovered[i]
                .take()
                .expect("each shard is built exactly once")
        })
        .configure_shards(|i, shard| {
            let wal = Arc::clone(&wals[i]);
            shard.with_commit_hook(move |batch| {
                wal.append(batch)
                    .expect("WAL append failed; refusing to apply an unlogged batch");
            })
        });
        Ok(DurableShardedMap {
            map,
            wals,
            checkpoint_every: opts.checkpoint_every.max(1),
            recovery,
        })
    }

    /// Per-shard recovery reports, in shard order.
    pub fn recovery(&self) -> &[RecoveryReport] {
        &self.recovery
    }

    /// Per-shard WAL counters, in shard order.
    pub fn wal_stats(&self) -> Vec<WalStats> {
        self.wals.iter().map(|w| w.stats()).collect()
    }

    /// Number of shards.
    pub fn shards(&self) -> usize {
        self.map.shards()
    }

    /// Total items across all shards.
    pub fn len(&self) -> usize {
        self.map.len()
    }

    /// True if every shard is empty.
    pub fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    /// Searches for a key on its owning shard (never logged).
    pub fn get(&self, key: K) -> Option<V> {
        self.map.get(key)
    }

    /// Inserts a key/value pair on the key's owning shard; the batch carrying
    /// it is on that shard's log before this returns.
    pub fn insert(&self, key: K, val: V) -> Option<V> {
        let prev = self.map.insert(key, val);
        self.maybe_checkpoint();
        prev
    }

    /// Removes a key from its owning shard.
    pub fn remove(&self, key: K) -> Option<V> {
        let prev = self.map.remove(key);
        self.maybe_checkpoint();
        prev
    }

    /// Runs a batch of operations through the router, returning results in
    /// operation order.  Durability is per shard: under a crash, each shard's
    /// durable prefix is a prefix of *its* sub-batches.
    pub fn run_batch(&self, ops: Vec<Operation<K, V>>) -> Vec<OpResult<V>> {
        let results = self.map.run_batch(ops);
        self.maybe_checkpoint();
        results
    }

    /// Batch insert: the previous value per pair, in input order.
    pub fn insert_batch(&self, pairs: Vec<(K, V)>) -> Vec<Option<V>> {
        let results = self.map.insert_batch(pairs);
        self.maybe_checkpoint();
        results
    }

    /// Batch search: one result per key, in input order.
    pub fn get_batch(&self, keys: Vec<K>) -> Vec<Option<V>> {
        self.map.get_batch(keys)
    }

    /// Batch remove: the removed value per key, in input order.
    pub fn remove_batch(&self, keys: Vec<K>) -> Vec<Option<V>> {
        let results = self.map.remove_batch(keys);
        self.maybe_checkpoint();
        results
    }

    /// Checkpoints one shard now (see [`DurableMap::checkpoint`]).
    pub fn checkpoint_shard(&self, shard: usize) -> io::Result<u64> {
        self.map.with_shard_inner(shard, |m| {
            self.wals[shard].checkpoint(&m.snapshot_segments())
        })
    }

    /// Checkpoints every shard, returning the per-shard sequences.
    pub fn checkpoint_all(&self) -> io::Result<Vec<u64>> {
        (0..self.shards())
            .map(|i| self.checkpoint_shard(i))
            .collect()
    }

    /// Pushes any user-space-buffered records to the OS on every shard.
    pub fn flush(&self) -> io::Result<()> {
        self.wals.iter().try_for_each(|w| w.flush())
    }

    fn maybe_checkpoint(&self) {
        for (i, wal) in self.wals.iter().enumerate() {
            if wal.since_checkpoint() >= self.checkpoint_every {
                self.checkpoint_shard(i)
                    .expect("WAL checkpoint failed; refusing to let the log grow unbounded");
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    /// A fresh per-test directory (tests run in parallel in one process, so
    /// the tag must be unique per test).
    fn fresh_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("wsm-wal-test-{}-{tag}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn opts(sync: SyncPolicy, checkpoint_every: u64) -> DurableOptions {
        DurableOptions {
            sync,
            checkpoint_every,
        }
    }

    #[test]
    fn reopen_recovers_every_mutation_m1() {
        let dir = fresh_dir("reopen-m1");
        let o = opts(SyncPolicy::Batch, u64::MAX);
        {
            let map = DurableMap::open_with(&dir, o, || M1::<u64, u64>::new(4)).unwrap();
            assert_eq!(map.recovery(), RecoveryReport::default());
            for k in 0..300u64 {
                assert_eq!(map.insert(k, k * 2), None);
            }
            for k in 0..100u64 {
                assert_eq!(map.delete(k * 3), Some(k * 6));
            }
            let stats = map.wal_stats();
            assert_eq!(stats.ops_logged, 400);
            assert_eq!(stats.checkpoints, 0);
        }
        let map = DurableMap::open_with(&dir, o, || M1::<u64, u64>::new(4)).unwrap();
        let report = map.recovery();
        assert_eq!(report.checkpoint_seq, 0);
        assert_eq!(report.replayed_ops, 400);
        assert!(!report.truncated_torn_tail);
        for k in 0..300u64 {
            let expect = (k % 3 != 0).then_some(k * 2);
            assert_eq!(map.search(k), expect, "k={k}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn periodic_checkpoints_truncate_the_log_m2() {
        let dir = fresh_dir("ckpt-m2");
        let o = opts(SyncPolicy::Always, 4);
        {
            let map = DurableMap::open_with(&dir, o, || M2::<u64, u64>::new(4)).unwrap();
            for k in 0..200u64 {
                map.insert(k, k + 1);
            }
            let stats = map.wal_stats();
            assert!(stats.checkpoints > 0, "checkpoint_every=4 must checkpoint");
            assert!(stats.since_checkpoint < stats.batches_logged);
            assert!(
                stats.syncs >= stats.batches_logged,
                "Always syncs per batch"
            );
        }
        let map = DurableMap::open_with(&dir, o, || M2::<u64, u64>::new(4)).unwrap();
        let report = map.recovery();
        assert!(report.checkpoint_seq > 0, "reopen must use the checkpoint");
        assert_eq!(
            report.checkpoint_items + report.replayed_ops,
            200,
            "checkpoint + tail must cover every mutation: {report:?}"
        );
        for k in 0..200u64 {
            assert_eq!(map.search(k), Some(k + 1), "k={k}");
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn off_policy_needs_flush_or_drop() {
        let dir = fresh_dir("off-flush");
        let o = opts(SyncPolicy::Off, u64::MAX);
        {
            let map = DurableMap::open_with(&dir, o, || M1::<u64, u64>::new(4)).unwrap();
            for k in 0..50u64 {
                map.insert(k, k);
            }
            // Drop flushes the user-space buffer (a crash here could lose
            // the un-flushed suffix — that's the policy's contract).
        }
        let map = DurableMap::open_with(&dir, o, || M1::<u64, u64>::new(4)).unwrap();
        assert_eq!(map.len(), 50);
        assert_eq!(map.recovery().replayed_ops, 50);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn batches_and_searches_round_trip() {
        let dir = fresh_dir("batch");
        let o = opts(SyncPolicy::Batch, u64::MAX);
        {
            let map = DurableMap::open_with(&dir, o, || M1::<u64, u64>::new(4)).unwrap();
            let ops: Vec<Operation<u64, u64>> = (0..64u64)
                .map(|k| Operation::Insert(k, k))
                .chain((0..64u64).map(Operation::Search))
                .collect();
            let results = map.call_batch(ops);
            assert_eq!(results.len(), 128);
            // Search-only traffic appends nothing.
            let logged_before = map.wal_stats().ops_logged;
            map.call_batch((0..64u64).map(Operation::Search).collect());
            assert_eq!(map.wal_stats().ops_logged, logged_before);
        }
        let map = DurableMap::open_with(&dir, o, || M1::<u64, u64>::new(4)).unwrap();
        assert_eq!(map.len(), 64);
        assert_eq!(map.recovery().replayed_ops, 64);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn sharded_map_recovers_each_shard_independently() {
        let dir = fresh_dir("sharded");
        let o = opts(SyncPolicy::Batch, 8);
        {
            let map = DurableShardedMap::open_with(&dir, 4, o, |_| M1::<u64, u64>::new(4)).unwrap();
            assert_eq!(map.shards(), 4);
            let prev = map.insert_batch((0..500u64).map(|k| (k, k + 7)).collect());
            assert!(prev.iter().all(Option::is_none));
            map.remove_batch((0..100u64).map(|k| k * 5).collect());
            let stats = map.wal_stats();
            assert_eq!(stats.len(), 4);
            assert!(
                stats.iter().all(|s| s.batches_logged > 0),
                "every shard must have logged: {stats:?}"
            );
        }
        let map = DurableShardedMap::open_with(&dir, 4, o, |_| M1::<u64, u64>::new(4)).unwrap();
        assert_eq!(map.len(), 400);
        let total_recovered: u64 = map
            .recovery()
            .iter()
            .map(|r| r.checkpoint_items + r.replayed_ops)
            .sum();
        assert!(
            total_recovered >= 400,
            "recovery covers state: {total_recovered}"
        );
        for k in 0..500u64 {
            let expect = (k % 5 != 0).then_some(k + 7);
            assert_eq!(map.get(k), expect, "k={k}");
        }
        // Manual checkpoint of every shard resets the tails.
        map.checkpoint_all().unwrap();
        assert!(map.wal_stats().iter().all(|s| s.since_checkpoint == 0));
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn double_open_is_idempotent() {
        let dir = fresh_dir("double");
        let o = opts(SyncPolicy::Batch, 4);
        {
            let map = DurableMap::open_with(&dir, o, || M1::<u64, u64>::new(4)).unwrap();
            for k in 0..50u64 {
                map.insert(k, k);
            }
        }
        let first = {
            let map = DurableMap::open_with(&dir, o, || M1::<u64, u64>::new(4)).unwrap();
            (map.recovery(), map.len())
        };
        let map = DurableMap::open_with(&dir, o, || M1::<u64, u64>::new(4)).unwrap();
        assert_eq!((map.recovery(), map.len()), first, "reopen must be a no-op");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
