//! Hand-rolled binary codec for WAL records and checkpoint images.
//!
//! The vendored `serde` is a deliberate no-op stub (the build environment is
//! offline), so — exactly as `wsm_bench::json` hand-rolls its JSON writer —
//! the durability layer hand-rolls its wire format: fixed-width little-endian
//! integers, length-prefixed byte strings, one tag byte per enum variant.
//! Nothing here is self-describing; the record framing in [`crate::log`]
//! carries the length and checksum that make decoding safe against torn or
//! corrupt input, and every decoder returns `None` instead of panicking on
//! malformed bytes.

use wsm_core::Operation;

/// A fixed, symmetric binary encoding.  `decode` consumes its input slice
/// in-place (advancing it past the value) and must reject, with `None`, any
/// input it could not have produced — the torn-tail detector relies on
/// decoders never panicking and never reading past the slice.
pub trait Codec: Sized {
    /// Appends the encoding of `self` to `out`.
    fn encode(&self, out: &mut Vec<u8>);
    /// Reads one value from the front of `input`, advancing it.
    fn decode(input: &mut &[u8]) -> Option<Self>;
}

/// Splits `n` bytes off the front of the input, if present.
fn take<'a>(input: &mut &'a [u8], n: usize) -> Option<&'a [u8]> {
    if input.len() < n {
        return None;
    }
    let (head, rest) = input.split_at(n);
    *input = rest;
    Some(head)
}

macro_rules! int_codec {
    ($($t:ty),*) => {$(
        impl Codec for $t {
            fn encode(&self, out: &mut Vec<u8>) {
                out.extend_from_slice(&self.to_le_bytes());
            }
            fn decode(input: &mut &[u8]) -> Option<Self> {
                let bytes = take(input, std::mem::size_of::<$t>())?;
                Some(<$t>::from_le_bytes(bytes.try_into().ok()?))
            }
        }
    )*};
}

int_codec!(u8, u16, u32, u64, i64);

impl Codec for usize {
    // Fixed 64-bit on the wire, so files are portable across word sizes.
    fn encode(&self, out: &mut Vec<u8>) {
        (*self as u64).encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        usize::try_from(u64::decode(input)?).ok()
    }
}

impl Codec for bool {
    fn encode(&self, out: &mut Vec<u8>) {
        out.push(u8::from(*self));
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        match u8::decode(input)? {
            0 => Some(false),
            1 => Some(true),
            _ => None,
        }
    }
}

impl Codec for String {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        out.extend_from_slice(self.as_bytes());
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        let len = usize::decode(input)?;
        let bytes = take(input, len)?;
        String::from_utf8(bytes.to_vec()).ok()
    }
}

impl<T: Codec> Codec for Vec<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        (self.len() as u64).encode(out);
        for item in self {
            item.encode(out);
        }
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        let len = usize::decode(input)?;
        // Guard the pre-allocation: a corrupt length must not OOM before the
        // element decoders notice the input is short.
        let mut out = Vec::with_capacity(len.min(input.len()));
        for _ in 0..len {
            out.push(T::decode(input)?);
        }
        Some(out)
    }
}

impl<T: Codec> Codec for Option<T> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            None => out.push(0),
            Some(v) => {
                out.push(1);
                v.encode(out);
            }
        }
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        match u8::decode(input)? {
            0 => Some(None),
            1 => Some(Some(T::decode(input)?)),
            _ => None,
        }
    }
}

impl<A: Codec, B: Codec> Codec for (A, B) {
    fn encode(&self, out: &mut Vec<u8>) {
        self.0.encode(out);
        self.1.encode(out);
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        Some((A::decode(input)?, B::decode(input)?))
    }
}

impl<K: Codec, V: Codec> Codec for Operation<K, V> {
    fn encode(&self, out: &mut Vec<u8>) {
        match self {
            Operation::Search(k) => {
                out.push(0);
                k.encode(out);
            }
            Operation::Insert(k, v) => {
                out.push(1);
                k.encode(out);
                v.encode(out);
            }
            Operation::Delete(k) => {
                out.push(2);
                k.encode(out);
            }
        }
    }
    fn decode(input: &mut &[u8]) -> Option<Self> {
        match u8::decode(input)? {
            0 => Some(Operation::Search(K::decode(input)?)),
            1 => Some(Operation::Insert(K::decode(input)?, V::decode(input)?)),
            2 => Some(Operation::Delete(K::decode(input)?)),
            _ => None,
        }
    }
}

/// Encodes a value into a fresh buffer (convenience for tests and framing).
pub fn encode_to_vec<T: Codec>(value: &T) -> Vec<u8> {
    let mut out = Vec::new();
    value.encode(&mut out);
    out
}

/// Decodes a value that must consume the entire input.
pub fn decode_exact<T: Codec>(mut input: &[u8]) -> Option<T> {
    let v = T::decode(&mut input)?;
    input.is_empty().then_some(v)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn round_trip<T: Codec + PartialEq + std::fmt::Debug>(v: T) {
        let bytes = encode_to_vec(&v);
        assert_eq!(decode_exact::<T>(&bytes), Some(v));
    }

    #[test]
    fn scalars_round_trip() {
        round_trip(0u8);
        round_trip(255u8);
        round_trip(0xBEEFu16);
        round_trip(0xDEAD_BEEFu32);
        round_trip(u64::MAX);
        round_trip(-42i64);
        round_trip(usize::MAX);
        round_trip(true);
        round_trip(false);
    }

    #[test]
    fn compounds_round_trip() {
        round_trip(String::from("working-set"));
        round_trip(String::new());
        round_trip(vec![1u64, 2, 3]);
        round_trip(Vec::<u64>::new());
        round_trip(vec![255u8, 0, 128]);
        round_trip(Some(7u32));
        round_trip(Option::<u32>::None);
        round_trip((3u64, String::from("x")));
        round_trip(vec![(1u64, 10u64), (2, 20)]);
    }

    #[test]
    fn operations_round_trip() {
        round_trip(Operation::<u64, u64>::Search(9));
        round_trip(Operation::<u64, u64>::Insert(1, 2));
        round_trip(Operation::<u64, u64>::Delete(3));
        round_trip(Operation::<u64, String>::Insert(1, "v".into()));
    }

    #[test]
    fn truncated_input_is_rejected_not_panicked() {
        let full = encode_to_vec(&Operation::<u64, u64>::Insert(1, 2));
        for cut in 0..full.len() {
            let mut input = &full[..cut];
            assert_eq!(Operation::<u64, u64>::decode(&mut input), None);
        }
    }

    #[test]
    fn bad_tags_and_bad_utf8_are_rejected() {
        assert_eq!(decode_exact::<bool>(&[2]), None);
        assert_eq!(decode_exact::<Option<u8>>(&[9, 1]), None);
        assert_eq!(decode_exact::<Operation<u64, u64>>(&[7]), None);
        let mut bad_string = encode_to_vec(&2u64);
        bad_string.extend_from_slice(&[0xFF, 0xFE]);
        assert_eq!(decode_exact::<String>(&bad_string), None);
        // A huge length prefix must fail cleanly, not allocate.
        let huge = encode_to_vec(&u64::MAX);
        assert_eq!(decode_exact::<Vec<u64>>(&huge), None);
    }

    #[test]
    fn trailing_bytes_fail_decode_exact() {
        let mut bytes = encode_to_vec(&1u32);
        bytes.push(0);
        assert_eq!(decode_exact::<u32>(&bytes), None);
    }
}
