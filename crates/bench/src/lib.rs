//! # wsm-bench — experiment harness library
//!
//! Helper routines shared by the Criterion benches and the `harness` binary.
//! Each `eN` function regenerates one experiment from DESIGN.md /
//! EXPERIMENTS.md and returns printable rows; the harness binary formats them
//! as the tables recorded in EXPERIMENTS.md.

#![forbid(unsafe_code)]

pub mod json;

use serde::Serialize;
use wsm_core::{BatchedMap, OpId, Operation, TaggedOp, M1, M2};
use wsm_model::{working_set_bound, Cost, MapOpKind};
use wsm_seq::{AvlMap, IaconoMap, InstrumentedMap, SplayMap, M0};
use wsm_workloads::{analysis, Pattern, WorkloadSpec};

/// A generic experiment row: a label plus named numeric columns.
#[derive(Clone, Debug, Serialize)]
pub struct Row {
    /// Row label (workload, structure or parameter value).
    pub label: String,
    /// Named numeric columns in display order.
    pub values: Vec<(String, f64)>,
}

impl Row {
    /// Creates a row.
    pub fn new(label: impl Into<String>, values: Vec<(&str, f64)>) -> Self {
        Row {
            label: label.into(),
            values: values
                .into_iter()
                .map(|(k, v)| (k.to_string(), v))
                .collect(),
        }
    }
}

/// Prints rows as an aligned ASCII table.
pub fn print_table(title: &str, rows: &[Row]) {
    println!("\n== {title} ==");
    if rows.is_empty() {
        println!("(no rows)");
        return;
    }
    let mut header = vec!["workload".to_string()];
    header.extend(rows[0].values.iter().map(|(k, _)| k.clone()));
    let mut widths: Vec<usize> = header.iter().map(|h| h.len().max(12)).collect();
    widths[0] = widths[0].max(rows.iter().map(|r| r.label.len()).max().unwrap_or(8));
    print!("{:<w$}", header[0], w = widths[0] + 2);
    for (h, w) in header[1..].iter().zip(&widths[1..]) {
        print!("{h:>w$}", w = w + 2);
    }
    println!();
    for row in rows {
        print!("{:<w$}", row.label, w = widths[0] + 2);
        for ((_, v), w) in row.values.iter().zip(&widths[1..]) {
            print!("{:>w$.2}", v, w = w + 2);
        }
        println!();
    }
}

/// Converts analysis-level operations into concrete map operations (values
/// equal keys).
pub fn to_operations(kinds: &[MapOpKind<u64>]) -> Vec<Operation<u64, u64>> {
    kinds
        .iter()
        .map(|k| match k {
            MapOpKind::Search(k) => Operation::Search(*k),
            MapOpKind::Insert(k) => Operation::Insert(*k, *k),
            MapOpKind::Delete(k) => Operation::Delete(*k),
        })
        .collect()
}

/// Runs a sequence of operations one by one on an instrumented sequential map,
/// returning the total cost.
pub fn run_sequential<M: InstrumentedMap<u64, u64>>(map: &mut M, ops: &[MapOpKind<u64>]) -> Cost {
    let mut total = Cost::ZERO;
    for op in ops {
        let (_, c) = match op {
            MapOpKind::Search(k) => map.search(k),
            MapOpKind::Insert(k) => map.insert(*k, *k),
            MapOpKind::Delete(k) => map.remove(k),
        };
        total += c;
    }
    total
}

/// Runs a sequence of operations on a batched map, feeding them as input
/// batches of the given size (emulating rounds of `width` concurrent calls).
/// Returns the total cost charged by the map.
pub fn run_batched<M: BatchedMap<u64, u64>>(
    map: &mut M,
    ops: &[MapOpKind<u64>],
    batch_size: usize,
) -> Cost {
    let mut total = Cost::ZERO;
    let mut next_id: OpId = 0;
    for chunk in to_operations(ops).chunks(batch_size.max(1)) {
        let batch: Vec<TaggedOp<u64, u64>> = chunk
            .iter()
            .cloned()
            .map(|op| {
                let t = TaggedOp { id: next_id, op };
                next_id += 1;
                t
            })
            .collect();
        let (_, c) = map.run_batch(batch);
        total += c;
    }
    total
}

/// The standard workload suite used by several experiments.
pub fn standard_suite(
    keyspace: u64,
    operations: usize,
    seed: u64,
) -> Vec<(&'static str, WorkloadSpec)> {
    vec![
        (
            "hot-set (8 keys, 2% miss)",
            WorkloadSpec::read_only(
                keyspace,
                operations,
                Pattern::HotSet {
                    hot: 8,
                    miss_rate: 0.02,
                },
                seed,
            ),
        ),
        (
            "working-set (w=64, 10% miss)",
            WorkloadSpec::read_only(
                keyspace,
                operations,
                Pattern::WorkingSet {
                    window: 64,
                    miss_rate: 0.1,
                },
                seed,
            ),
        ),
        (
            "zipf s=1.0",
            WorkloadSpec::read_only(keyspace, operations, Pattern::Zipf(1.0), seed),
        ),
        (
            "uniform",
            WorkloadSpec::read_only(keyspace, operations, Pattern::Uniform, seed),
        ),
        (
            "adversarial (LRU scan)",
            WorkloadSpec::read_only(keyspace, operations, Pattern::Adversarial, seed),
        ),
    ]
}

/// E1/E2: sequential working-set structures (M0, Iacono) against the
/// working-set bound, with splay and AVL baselines.
pub fn experiment_sequential_ws(keyspace: u64, operations: usize) -> Vec<Row> {
    let mut rows = Vec::new();
    for (name, spec) in standard_suite(keyspace, operations, 1) {
        let ops = spec.full_sequence();
        let wl = working_set_bound(&ops) as f64;
        let m0 = run_sequential(&mut M0::new(), &ops).work as f64;
        let iacono = run_sequential(&mut IaconoMap::new(), &ops).work as f64;
        let splay = run_sequential(&mut SplayMap::new(), &ops).work as f64;
        let avl = run_sequential(&mut AvlMap::new(), &ops).work as f64;
        rows.push(Row::new(
            name,
            vec![
                ("W_L", wl),
                ("M0/W_L", m0 / wl),
                ("Iacono/W_L", iacono / wl),
                ("Splay/W_L", splay / wl),
                ("AVL/W_L", avl / wl),
            ],
        ));
    }
    rows
}

/// E3/E5: effective work of M1 and M2 against the working-set bound, per
/// processor count.
pub fn experiment_parallel_work(keyspace: u64, operations: usize, ps: &[usize]) -> Vec<Row> {
    let mut rows = Vec::new();
    for (name, spec) in standard_suite(keyspace, operations, 2) {
        let ops = spec.full_sequence();
        let wl = working_set_bound(&ops) as f64;
        for &p in ps {
            let mut m1 = M1::new(p);
            let w1 = run_batched(&mut m1, &ops, p * p);
            let mut m2 = M2::new(p);
            let w2 = run_batched(&mut m2, &ops, p * p);
            rows.push(Row::new(
                format!("{name} p={p}"),
                vec![
                    ("W_L", wl),
                    ("M1 work/W_L", w1.work as f64 / wl),
                    ("M2 work/W_L", w2.work as f64 / wl),
                ],
            ));
        }
    }
    rows
}

/// E4: effective span of M1 per batch against the `(log p)^2 + log n` shape.
pub fn experiment_m1_span(keyspace: u64, operations: usize, ps: &[usize]) -> Vec<Row> {
    let mut rows = Vec::new();
    let spec = WorkloadSpec::read_only(keyspace, operations, Pattern::Zipf(1.0), 3);
    let ops = spec.full_sequence();
    for &p in ps {
        let mut m1 = M1::new(p);
        run_batched(&mut m1, &ops, p * p);
        let max_span = m1
            .batch_log()
            .iter()
            .map(|b| b.cost.span)
            .max()
            .unwrap_or(0) as f64;
        let avg_span = m1.batch_log().iter().map(|b| b.cost.span).sum::<u64>() as f64
            / m1.batch_log().len().max(1) as f64;
        let logp = (p as f64).log2();
        let logn = (keyspace as f64).log2();
        let bound = logp * logp + logn;
        rows.push(Row::new(
            format!("p={p}"),
            vec![
                ("avg batch span", avg_span),
                ("max batch span", max_span),
                ("(log p)^2+log n", bound),
                ("max/bound", max_span / bound),
            ],
        ));
    }
    rows
}

/// E6: per-operation pipeline latency of M2 by access recency.
pub fn experiment_m2_latency(keyspace: u64, p: usize) -> Vec<Row> {
    let mut m2 = M2::new(p);
    let load: Vec<MapOpKind<u64>> = (0..keyspace).map(MapOpKind::Insert).collect();
    run_batched(&mut m2, &load, p * p);
    // Touch a hot set, then measure latency of hot vs progressively colder
    // keys.
    let hot: Vec<MapOpKind<u64>> = (0..8).map(MapOpKind::Search).collect();
    run_batched(&mut m2, &hot, p * p);
    let mut rows = Vec::new();
    for (label, key) in [
        ("hot (rank ~8)", 1u64),
        ("warm (rank ~n/16)", keyspace / 16),
        ("cool (rank ~n/4)", keyspace / 4),
        ("cold (rank ~n)", keyspace - 2),
    ] {
        let before = m2.latencies().len();
        run_batched(&mut m2, &[MapOpKind::Search(key)], p * p);
        let lat: u64 = m2.latencies()[before..].iter().map(|l| l.latency()).sum();
        rows.push(Row::new(
            label,
            vec![
                ("latency (virtual steps)", lat as f64),
                ("log2(rank) proxy", ((key + 2) as f64).log2()),
            ],
        ));
    }
    rows
}

/// E7: parallel buffer effective cost per flushed batch size.
pub fn experiment_buffer_cost(ps: &[usize]) -> Vec<Row> {
    let mut rows = Vec::new();
    for &p in ps {
        for b in [p, p * p, p * p * 16] {
            let cost = wsm_core::ParallelBuffer::<u64>::flush_cost(p as u64, b as u64);
            rows.push(Row::new(
                format!("p={p} b={b}"),
                vec![
                    ("work", cost.work as f64),
                    ("span", cost.span as f64),
                    ("work/(p+b)", cost.work as f64 / (p + b) as f64),
                ],
            ));
        }
    }
    rows
}

/// E8/E9: sorting cost against the entropy bound.
pub fn experiment_sorting(n: usize) -> Vec<Row> {
    use wsm_model::entropy_bound;
    use wsm_sort::{esort, pesort};
    let mut rows = Vec::new();
    let mut state = 99u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let inputs: Vec<(&str, Vec<u64>)> = vec![
        ("constant", vec![7; n]),
        ("two values", (0..n).map(|i| (i % 2) as u64).collect()),
        (
            "16 values skewed",
            (0..n)
                .map(|_| if next() % 10 < 9 { 0 } else { next() % 16 })
                .collect(),
        ),
        ("256 values", (0..n).map(|_| next() % 256).collect()),
        ("uniform", (0..n).map(|_| next()).collect()),
    ];
    for (name, items) in inputs {
        let bound = entropy_bound(&items);
        let (_, e_cost) = esort(&items);
        let (_, p_cost) = pesort(items.clone());
        rows.push(Row::new(
            name,
            vec![
                ("n(H+1)", bound),
                ("ESort work/bound", e_cost.work as f64 / bound),
                ("PESort work/bound", p_cost.work as f64 / bound),
                ("PESort span", p_cost.span as f64),
            ],
        ));
    }
    rows
}

/// E10: static optimality — M1 total work against the optimal static BST cost
/// on Zipfian workloads.
pub fn experiment_static_optimality(keyspace: u64, operations: usize) -> Vec<Row> {
    let mut rows = Vec::new();
    for alpha in [0.5f64, 0.75, 1.0, 1.25] {
        let spec = WorkloadSpec::read_only(keyspace, operations, Pattern::Zipf(alpha), 5);
        let ops = spec.full_sequence();
        let accesses: Vec<u64> = spec.access_phase().iter().map(|o| *o.key()).collect();
        let static_cost = analysis::static_tree_cost_for(&accesses) as f64;
        let optimal_proxy = analysis::optimal_static_bst_cost(&accesses);
        let mut m1 = M1::new(8);
        let work = run_batched(&mut m1, &ops, 64).work as f64;
        rows.push(Row::new(
            format!("zipf s={alpha}"),
            vec![
                ("static tree cost", static_cost),
                ("entropy lower bound", optimal_proxy),
                ("M1 work", work),
                ("M1/static", work / static_cost),
            ],
        ));
    }
    rows
}

/// E11: dynamic working-set adaptivity across a phase shift.
///
/// The working-set property is a statement about *recency*, so its dynamic
/// content only shows when the working set moves: searches draw from a small
/// hot window, then the window jumps to a disjoint key region.  Steady-state
/// work per operation should track `log w` (window size), the first touches
/// after the shift pay `log n` each (the new keys have recency rank ~n), and
/// the cost must *recover* to `log w` once the new window is resident — the
/// spike-and-recover signature that distinguishes a working-set structure
/// from a plain balanced tree, whose columns stay flat at `log n` throughout.
pub fn experiment_phase_shift(keyspace: u64, operations: usize, p: usize) -> Vec<Row> {
    const WINDOW: u64 = 64;
    let half = (operations / 2).max(512);
    // "Shift" = the first full pass over the new window, where every search
    // pays the cold cost; "steady" = everything after.
    let transition = (WINDOW as usize * 4).min(half / 2);
    let phase = |base: u64, n: usize, seed: u64| -> Vec<MapOpKind<u64>> {
        let mut x = seed | 1;
        (0..n)
            .map(|_| {
                x = x
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                MapOpKind::Search(base + (x >> 33) % WINDOW)
            })
            .collect()
    };
    let load: Vec<MapOpKind<u64>> = (0..keyspace).map(MapOpKind::Insert).collect();
    let warm = phase(0, half, 5);
    let steady_a = phase(0, half, 7);
    let b = phase(keyspace / 2, half, 9);
    let (shift, steady_b) = b.split_at(transition);
    let per_op = |c: Cost, n: usize| c.work as f64 / n.max(1) as f64;
    let mut rows = Vec::new();
    {
        let mut m0 = M0::new();
        run_sequential(&mut m0, &load);
        run_sequential(&mut m0, &warm);
        let a = per_op(run_sequential(&mut m0, &steady_a), steady_a.len());
        let s = per_op(run_sequential(&mut m0, shift), shift.len());
        let r = per_op(run_sequential(&mut m0, steady_b), steady_b.len());
        rows.push(Row::new(
            "M0 (sequential)",
            vec![
                ("steady A work/op", a),
                ("shift work/op", s),
                ("steady B work/op", r),
                ("shift/steady", s / a.max(f64::MIN_POSITIVE)),
            ],
        ));
    }
    {
        let mut avl = AvlMap::new();
        run_sequential(&mut avl, &load);
        run_sequential(&mut avl, &warm);
        let a = per_op(run_sequential(&mut avl, &steady_a), steady_a.len());
        let s = per_op(run_sequential(&mut avl, shift), shift.len());
        let r = per_op(run_sequential(&mut avl, steady_b), steady_b.len());
        rows.push(Row::new(
            "AVL (no WS property)",
            vec![
                ("steady A work/op", a),
                ("shift work/op", s),
                ("steady B work/op", r),
                ("shift/steady", s / a.max(f64::MIN_POSITIVE)),
            ],
        ));
    }
    for (label, batched) in [("M1", true), ("M2", false)] {
        let batch = p * p;
        let (a, s, r) = if batched {
            let mut m = M1::new(p);
            run_batched(&mut m, &load, batch);
            run_batched(&mut m, &warm, batch);
            (
                per_op(run_batched(&mut m, &steady_a, batch), steady_a.len()),
                per_op(run_batched(&mut m, shift, batch), shift.len()),
                per_op(run_batched(&mut m, steady_b, batch), steady_b.len()),
            )
        } else {
            let mut m = M2::new(p);
            run_batched(&mut m, &load, batch);
            run_batched(&mut m, &warm, batch);
            (
                per_op(run_batched(&mut m, &steady_a, batch), steady_a.len()),
                per_op(run_batched(&mut m, shift, batch), shift.len()),
                per_op(run_batched(&mut m, steady_b, batch), steady_b.len()),
            )
        };
        rows.push(Row::new(
            format!("{label} p={p}"),
            vec![
                ("steady A work/op", a),
                ("shift work/op", s),
                ("steady B work/op", r),
                ("shift/steady", s / a.max(f64::MIN_POSITIVE)),
            ],
        ));
    }
    rows.push(Row::new(
        "reference",
        vec![
            ("log2 w", (WINDOW as f64).log2()),
            ("log2 n", (keyspace as f64).log2()),
            ("ops/phase", half as f64),
            ("shift ops", transition as f64),
        ],
    ));
    rows
}

/// E12: ablation — duplicate-combining batches versus executing each
/// duplicate operation as its own singleton batch (the Ω(b log n) blow-up of
/// Section 3).
pub fn experiment_combine_ablation(keyspace: u64, dup: usize) -> Vec<Row> {
    let load: Vec<MapOpKind<u64>> = (0..keyspace).map(MapOpKind::Insert).collect();
    let hot_key = keyspace / 2;
    let dups: Vec<MapOpKind<u64>> = std::iter::repeat_n(MapOpKind::Search(hot_key), dup).collect();

    // Combined: all duplicates arrive in batches and are grouped.
    let mut combined = M1::new(8);
    run_batched(&mut combined, &load, 64);
    let before = combined.effective_work();
    run_batched(&mut combined, &dups, 64);
    let combined_work = (combined.effective_work() - before) as f64;

    // Naive: one operation per batch — no duplicates can combine.
    let mut naive = M1::new(8);
    run_batched(&mut naive, &load, 64);
    let before = naive.effective_work();
    run_batched(&mut naive, &dups, 1);
    let naive_work = (naive.effective_work() - before) as f64;

    vec![Row::new(
        format!("{dup} searches for one key, n={keyspace}"),
        vec![
            ("combined work", combined_work),
            ("naive per-op work", naive_work),
            ("naive/combined", naive_work / combined_work),
            ("b log n", dup as f64 * (keyspace as f64).log2()),
        ],
    )]
}

/// E13: M1 versus M2 latency when an expensive (cold) operation precedes a
/// stream of cheap (hot) operations — the pipelining pay-off.
pub fn experiment_pipelining(keyspace: u64, p: usize) -> Vec<Row> {
    // M2: measure average latency of hot operations that share batches with
    // cold misses.
    let mut m2 = M2::new(p);
    let load: Vec<MapOpKind<u64>> = (0..keyspace).map(MapOpKind::Insert).collect();
    run_batched(&mut m2, &load, p * p);
    run_batched(&mut m2, &[MapOpKind::Search(1)], p * p);
    let mixed: Vec<MapOpKind<u64>> = (0..64u64)
        .map(|i| {
            if i % 8 == 0 {
                MapOpKind::Search(keyspace - 1 - i) // cold
            } else {
                MapOpKind::Search(1) // hot
            }
        })
        .collect();
    let before = m2.latencies().len();
    run_batched(&mut m2, &mixed, p * p);
    let records = &m2.latencies()[before..];
    let avg_m2 =
        records.iter().map(|l| l.latency()).sum::<u64>() as f64 / records.len().max(1) as f64;

    // M1: every operation in a batch waits for the whole batch, so the cheap
    // operations inherit the cold operations' span.
    let mut m1 = M1::new(p);
    run_batched(&mut m1, &load, p * p);
    run_batched(&mut m1, &[MapOpKind::Search(1)], p * p);
    let before_batches = m1.batch_log().len();
    run_batched(&mut m1, &mixed, p * p);
    let avg_m1 = m1.batch_log()[before_batches..]
        .iter()
        .map(|b| b.cost.span)
        .sum::<u64>() as f64
        / (m1.batch_log().len() - before_batches).max(1) as f64;

    vec![Row::new(
        format!("hot stream with cold misses, n={keyspace}, p={p}"),
        vec![
            ("M1 avg batch span (per-op latency proxy)", avg_m1),
            ("M2 avg per-op latency", avg_m2),
            ("M1/M2", avg_m1 / avg_m2.max(1.0)),
        ],
    )]
}

/// E15: wall-clock scaling of the parallel substrates on the work-stealing
/// pool (`wsm-pool`) at increasing worker counts.
///
/// Three workloads, each timed end-to-end and reported as mean ns per
/// operation plus speedup over the first (usually 1-worker) configuration:
///
/// * `pesort` — one parallel entropy sort of `sort_n` random keys;
/// * `tree batch` — one `par_batch_insert` of `tree_n` sorted items into an
///   empty 2-3 tree followed by one `par_batch_get` of every key;
/// * `concurrent map` — `t` OS threads hammering a [`wsm_core::ConcurrentMap`]
///   (insert + search on disjoint ranges), whose combiner runs batches on a
///   dedicated `t`-worker pool.
///
/// Unlike E1–E14 this measures *wall-clock* time, not analytic cost: it is
/// the experiment that justifies the pool's existence (speedup curves), so
/// its output is meaningful only on a multi-core runner.
pub fn experiment_scaling(
    sort_n: usize,
    tree_n: usize,
    map_ops: usize,
    thread_counts: &[usize],
    reps: usize,
) -> Vec<Row> {
    use std::sync::Arc;
    use std::time::Instant;
    use wsm_core::ConcurrentMap;
    use wsm_sort::pesort;
    use wsm_twothree::Tree23;

    let reps = reps.max(1);
    let mut state = 0x1234_5678_9abc_def0u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    let sort_input: Vec<u64> = (0..sort_n).map(|_| next()).collect();
    let tree_items: Vec<(u64, u64)> = (0..tree_n as u64).map(|i| (i * 2, i)).collect();
    let tree_keys: Vec<u64> = tree_items.iter().map(|(k, _)| *k).collect();

    let mut rows = Vec::new();
    let mut baselines: std::collections::BTreeMap<&'static str, f64> =
        std::collections::BTreeMap::new();
    let mut record = |rows: &mut Vec<Row>, name: &'static str, t: usize, n: usize, ns_op: f64| {
        let base = *baselines.entry(name).or_insert(ns_op);
        rows.push(Row::new(
            format!("{name} t={t}"),
            vec![
                ("threads", t as f64),
                ("n", n as f64),
                ("mean ns/op", ns_op),
                ("speedup vs first", base / ns_op),
            ],
        ));
    };

    for &t in thread_counts {
        let pool = Arc::new(wsm_pool::ThreadPool::new(t));

        // PESort of `sort_n` random keys.
        let mut total_ns = 0.0;
        for _ in 0..reps {
            let input = sort_input.clone();
            total_ns += pool.install(move || {
                let start = Instant::now();
                let (sorted, _) = pesort(input);
                let ns = start.elapsed().as_nanos() as f64;
                assert_eq!(sorted.len(), sort_n);
                ns
            });
        }
        record(
            &mut rows,
            "pesort",
            t,
            sort_n,
            total_ns / (reps * sort_n) as f64,
        );

        // 2-3 tree batch insert + batch get (2 * tree_n operations total).
        let mut total_ns = 0.0;
        for _ in 0..reps {
            let items = tree_items.clone();
            let keys = &tree_keys;
            total_ns += pool.install(move || {
                let start = Instant::now();
                let mut tree: Tree23<u64, u64> = Tree23::new();
                tree.par_batch_insert(items);
                let found = tree.par_batch_get(keys);
                let ns = start.elapsed().as_nanos() as f64;
                assert_eq!(found.len(), keys.len());
                ns
            });
        }
        record(
            &mut rows,
            "tree batch",
            t,
            tree_n,
            total_ns / (reps * 2 * tree_n) as f64,
        );

        // ConcurrentMap: `t` OS threads, combiner batches on the same pool.
        let mut total_ns = 0.0;
        let ops_per_thread = (map_ops / t.max(1)).max(1);
        for _ in 0..reps {
            let map = Arc::new(ConcurrentMap::with_pool(
                M1::<u64, u64>::new(8),
                t,
                Arc::clone(&pool),
            ));
            let start = Instant::now();
            std::thread::scope(|s| {
                for th in 0..t {
                    let map = Arc::clone(&map);
                    s.spawn(move || {
                        let base = th as u64 * 100_000_000;
                        for i in 0..ops_per_thread as u64 {
                            map.insert(th, base + i, i);
                            map.search(th, base + i);
                        }
                    });
                }
            });
            total_ns += start.elapsed().as_nanos() as f64;
        }
        record(
            &mut rows,
            "concurrent map",
            t,
            map_ops,
            total_ns / (reps * 2 * ops_per_thread * t) as f64,
        );
    }
    rows
}

/// E16: hot-path constant factors — wall-clock and analytic overheads of the
/// flat-combining `ConcurrentMap` against a coarse-locked AVL on the
/// web-cache workload, plus the `tcost::batch_op` / `W_L` constants the
/// ROADMAP tracks.
///
/// Three row families:
///
/// * `web-cache avl` — the coarse-locked AVL baseline: `threads` OS threads
///   serving Zipfian page lookups through one mutex (mean ns/op and
///   comparison work per request);
/// * `web-cache map inline=T` — the implicitly batched working-set map on
///   the same stream with the small-batch inline threshold pinned to `T`
///   (`0` disables the fast path, reproducing the pre-inline behaviour, so
///   the `inline=0` row *is* the old-regime baseline the ROADMAP's 100x gap
///   was measured against); `… cell` rows repeat the winning thresholds with
///   the slot-free `WSM_HANDOFF=cell` waiter hand-off (spin on the caller's
///   own result cell instead of parking on the shared doorbell), A/B-ing the
///   two hand-off modes on identical streams;
/// * `constants` — thread-independent analytic constant factors: effective
///   work of M1/M2 over `W_L` on the Zipf stream, and the
///   `tcost::batch_op(b, n)` charge per `b·(log n + 1)` unit.
///
/// Wall-clock rows are meaningful on a multi-core runner; the constants rows
/// are exact everywhere.  Results are persisted to `BENCH_e16.json` so the
/// 100x / 5x numbers from the ROADMAP become tracked regressions.
pub fn experiment_hot_paths(
    pages: u64,
    requests_per_worker: usize,
    threads: usize,
    reps: usize,
) -> Vec<Row> {
    use std::sync::{Arc, Mutex};
    use std::time::Instant;
    use wsm_core::{ConcurrentMap, Handoff};
    use wsm_twothree::cost as tcost;

    let threads = threads.max(1);
    let reps = reps.max(1);
    let streams: Vec<Vec<u64>> = (0..threads)
        .map(|w| {
            WorkloadSpec::read_only(pages, requests_per_worker, Pattern::Zipf(1.1), w as u64)
                .access_phase()
                .iter()
                .map(|op| *op.key())
                .collect()
        })
        .collect();
    // Both sides serve the identical request mix: every page is searched
    // and every `page % 97 == 0` hit additionally refreshes (inserts) the
    // page, exactly as in the `web_cache` example.
    let total_ops: u64 = (threads * requests_per_worker) as u64
        + streams
            .iter()
            .flatten()
            .filter(|&&page| page % 97 == 0)
            .count() as u64;
    let mut rows = Vec::new();

    // --- coarse-locked AVL baseline -------------------------------------
    let mut avl = AvlMap::new();
    for p in 0..pages {
        avl.insert_item(p, p);
    }
    let avl = Arc::new(Mutex::new(avl));
    let mut avl_total_ns = 0.0;
    let mut avl_work = 0u64;
    for _ in 0..reps {
        let start = Instant::now();
        let work: u64 = std::thread::scope(|s| {
            let handles: Vec<_> = streams
                .iter()
                .map(|stream| {
                    let avl = Arc::clone(&avl);
                    s.spawn(move || {
                        let mut work = 0u64;
                        for page in stream {
                            let mut guard = avl.lock().unwrap_or_else(|e| e.into_inner());
                            let (_, c) = guard.search(page);
                            work += c.work;
                            if page % 97 == 0 {
                                let (_, c) = guard.insert(*page, page + 1);
                                work += c.work;
                            }
                        }
                        work
                    })
                })
                .collect();
            handles.into_iter().map(|h| h.join().unwrap()).sum()
        });
        avl_total_ns += start.elapsed().as_nanos() as f64;
        avl_work = work;
    }
    let avl_ns_op = avl_total_ns / (reps as u64 * total_ops) as f64;
    rows.push(Row::new(
        format!("web-cache avl t={threads}"),
        vec![
            ("mean ns/op", avl_ns_op),
            ("wall vs avl", 1.0),
            ("work/req", avl_work as f64 / total_ops as f64),
        ],
    ));

    // --- implicitly batched map: inline threshold × hand-off mode --------
    let pool = Arc::new(wsm_pool::ThreadPool::new(threads));
    for (threshold, handoff) in [
        (0usize, Handoff::Doorbell),
        (8, Handoff::Doorbell),
        (64, Handoff::Doorbell),
        (256, Handoff::Doorbell),
        (64, Handoff::Cell),
        (256, Handoff::Cell),
    ] {
        let mut total_ns = 0.0;
        let mut work_per_req = 0.0;
        for _ in 0..reps {
            let mut inner = M1::<u64, u64>::new(threads.max(2));
            inner.run_ops((0..pages).map(|p| Operation::Insert(p, p)).collect());
            let warm_work = inner.effective_work();
            let map = Arc::new(
                ConcurrentMap::with_pool(inner, threads, Arc::clone(&pool))
                    .with_inline_threshold(threshold)
                    .with_handoff(handoff),
            );
            let start = Instant::now();
            std::thread::scope(|s| {
                for (w, stream) in streams.iter().enumerate() {
                    let map = Arc::clone(&map);
                    s.spawn(move || {
                        for &page in stream {
                            map.search(w, page);
                            if page % 97 == 0 {
                                map.insert(w, page, page + 1);
                            }
                        }
                    });
                }
            });
            total_ns += start.elapsed().as_nanos() as f64;
            work_per_req = (map.effective_work() - warm_work) as f64 / total_ops as f64;
        }
        let ns_op = total_ns / (reps as u64 * total_ops) as f64;
        let mode = match handoff {
            Handoff::Doorbell => String::new(),
            Handoff::Cell => " cell".to_string(),
            Handoff::Waker => " waker".to_string(),
        };
        rows.push(Row::new(
            format!("web-cache map inline={threshold}{mode} t={threads}"),
            vec![
                ("mean ns/op", ns_op),
                ("wall vs avl", ns_op / avl_ns_op),
                ("work/req", work_per_req),
            ],
        ));
    }

    // --- analytic constant factors (thread-independent) ------------------
    let spec = WorkloadSpec::read_only(pages, requests_per_worker, Pattern::Zipf(1.1), 11);
    let ops = spec.full_sequence();
    let wl = working_set_bound(&ops) as f64;
    let mut m1 = M1::new(4);
    let w1 = run_batched(&mut m1, &ops, 16).work as f64;
    let mut m2 = M2::new(4);
    let w2 = run_batched(&mut m2, &ops, 16).work as f64;
    let logn = (pages as f64).log2() + 1.0;
    let batch_unit = tcost::batch_op(64, pages).work as f64 / (64.0 * logn);
    rows.push(Row::new(
        "constants (W/W_L, batch_op unit)",
        vec![
            ("M1 work/W_L", w1 / wl),
            ("M2 work/W_L", w2 / wl),
            ("batch_op/(b·log n)", batch_unit),
        ],
    ));
    rows
}

/// E17: measured-vs-bound analytic constants per structure and workload.
///
/// Since the measured/worst-case charge split in `wsm_twothree::cost`, the
/// maps' cost meters record the tree nodes batches *actually* touched while
/// `analytic_bound_work` accumulates the closed-form Appendix A.2 charges the
/// same batches would have paid.  This experiment records, per workload of
/// the standard suite plus a Zipf size sweep plus a 40%-update mix:
///
/// * `M1 W/W_L`, `M2 W/W_L` — measured effective work over the working-set
///   bound: the constants the ROADMAP tracked at ≈6.1 / ≈7.7 under
///   worst-case charging;
/// * `M1 bound/W_L` — the worst-case constant, for the before/after trend;
/// * `M1 W/bound`, `M2 W/bound` — how far below the Lemma ceiling the
///   implementation runs (must be ≤ 1 by construction: exceeding the bound
///   trips a debug assertion in `tcost`, which CI runs with assertions on);
/// * `M2 maint runs` — dedicated hole-refill maintenance runs of the eager
///   cascade that keeps the Lemma 16 prefix deficit under 2p².
///
/// Results are persisted to `BENCH_e17.json` so the constants become tracked
/// regressions rather than one-off ROADMAP notes.
pub fn experiment_cost_constants(keyspace: u64, operations: usize) -> Vec<Row> {
    let p = 4;
    let mut rows = Vec::new();
    let record = |rows: &mut Vec<Row>, label: String, spec: &WorkloadSpec| {
        let ops = spec.full_sequence();
        let wl = working_set_bound(&ops) as f64;
        let mut m1 = M1::new(p);
        run_batched(&mut m1, &ops, p * p);
        let mut m2 = M2::new(p);
        run_batched(&mut m2, &ops, p * p);
        let m1_bound = m1.analytic_bound_work() as f64;
        let m2_bound = m2.analytic_bound_work() as f64;
        rows.push(Row::new(
            label,
            vec![
                ("W_L", wl),
                ("M1 W/W_L", m1.effective_work() as f64 / wl),
                ("M1 bound/W_L", m1_bound / wl),
                ("M1 W/bound", m1.effective_work() as f64 / m1_bound),
                ("M2 W/W_L", m2.effective_work() as f64 / wl),
                ("M2 W/bound", m2.effective_work() as f64 / m2_bound),
                ("M2 maint runs", m2.maintenance_runs() as f64),
            ],
        ));
    };
    for (name, spec) in standard_suite(keyspace, operations, 13) {
        record(&mut rows, name.to_string(), &spec);
    }
    // Constant-factor *trend* over the structure size (the paper-shaped
    // regime is the largest row).
    for shift in [2u32, 1, 0] {
        let ks = (keyspace >> shift).max(64);
        let nops = (operations >> shift).max(256);
        let spec = WorkloadSpec::read_only(ks, nops, Pattern::Zipf(1.1), 17);
        record(&mut rows, format!("zipf s=1.1 n={ks}"), &spec);
    }
    // Update-heavy mix: deletions drive the hole-refill maintenance cascade.
    let mut spec = WorkloadSpec::read_only(keyspace, operations, Pattern::Zipf(1.0), 19);
    spec.update_fraction = 0.4;
    record(&mut rows, "zipf s=1.0, 40% updates".to_string(), &spec);

    // Regression gate (CI runs this experiment as a smoke step): cold uniform
    // scans are the workload with the least locality, so their measured/bound
    // ratio is the ceiling of the whole suite.  Under the two-tree RecencyMap
    // it sat at ≈1.0 (two full tree passes per segment op ate the closed
    // form's headroom); the arena-fused single-pass design holds it at ≈0.67.
    // Fail loudly if it ever climbs back above 0.8.
    let uniform = rows
        .iter()
        .find(|r| r.label == "uniform")
        .expect("standard suite contains the uniform workload");
    for which in ["M1 W/bound", "M2 W/bound"] {
        let ratio = uniform
            .values
            .iter()
            .find(|(k, _)| k == which)
            .expect("ratio column present")
            .1;
        assert!(
            ratio <= 0.8,
            "uniform-scan {which} regressed to {ratio:.3} (> 0.8): segment ops \
             are paying extra tree passes again"
        );
    }
    rows
}

/// E18: tree passes per operation — the direct witness of the arena-fused
/// `RecencyMap`.
///
/// The fused design's claim is structural: locating an item in the key-map
/// yields its recency position for free (the arena index *is* the paper's
/// direct pointer), so every segment operation drives **one** tree where the
/// old stamp-keyed two-tree design drove two — tree passes halve on every
/// path (small batches go through the point loop at one counted traversal
/// per item, on one tree instead of two).
/// `wsm_twothree::cost::tree_passes` counts root-originating `Tree23`
/// traversals; this experiment records, per structure and workload, the
/// passes and touched nodes per map operation, plus a micro row family
/// measuring isolated segment-op shapes at `b = 64` — the
/// divide-and-conquer regime, where the counts are exact small integers: 1
/// pass for a one-sided op (batch removal, batch push, an eviction take), 2
/// for a transfer (take + push), where the two-tree design paid 2 and 4.
///
/// Since the fanout-B arena rewrite every row also records `nodes/op`
/// (thread-local metered tree-node touches) and `ns/op` (wall time), and an
/// A/B micro family re-runs the point / batch / transfer shapes at `B = 2`
/// (the paper's 2-3 shape) and `B = 16` (the cache-conscious default): node
/// touches per op must drop by roughly the height ratio
/// `log2(n) / log_{B/2}(n)`, which is what makes the wide node pay for its
/// linear in-node scans.  The thread-local meter is exact on the micro and
/// A/B rows (they run on the harness thread); the map-level rows execute
/// batches inside the combiner's pool, where the cross-thread measured
/// node-touch work is what `W/op` reports, so their `nodes/op` column only
/// counts harness-thread touches (typically 0).
///
/// Results are persisted to `BENCH_e18.json` so the constant-factor drop is
/// a tracked regression, not a one-off PR note.
pub fn experiment_tree_passes(keyspace: u64, operations: usize) -> Vec<Row> {
    use std::time::Instant;
    use wsm_twothree::cost as tcost;
    use wsm_twothree::{RecencyMap, Tree23};
    let p = 4;
    let mut rows = Vec::new();

    // Map-level rows: passes/op across whole workloads (sequential
    // run_batched, so the thread-local pass counter sees every tree op).
    let suite = [
        (
            "uniform",
            WorkloadSpec::read_only(keyspace, operations, Pattern::Uniform, 23),
        ),
        (
            "hot-set (8 keys, 2% miss)",
            WorkloadSpec::read_only(
                keyspace,
                operations,
                Pattern::HotSet {
                    hot: 8,
                    miss_rate: 0.02,
                },
                23,
            ),
        ),
        (
            "zipf s=1.1",
            WorkloadSpec::read_only(keyspace, operations, Pattern::Zipf(1.1), 23),
        ),
    ];
    for (name, spec) in suite {
        let ops = spec.full_sequence();
        let total_ops = ops.len() as f64;
        let mut m1 = M1::new(p);
        tcost::reset_tree_passes();
        let start = Instant::now();
        let (_, m1_nodes) = tcost::metered(|| run_batched(&mut m1, &ops, p * p));
        let m1_ns = start.elapsed().as_nanos() as f64;
        let m1_passes = tcost::tree_passes() as f64;
        let mut m2 = M2::new(p);
        tcost::reset_tree_passes();
        let start = Instant::now();
        let (_, m2_nodes) = tcost::metered(|| run_batched(&mut m2, &ops, p * p));
        let m2_ns = start.elapsed().as_nanos() as f64;
        let m2_passes = tcost::tree_passes() as f64;
        tcost::reset_tree_passes();
        rows.push(Row::new(
            format!("{name} M1"),
            vec![
                ("ops", total_ops),
                ("tree passes", m1_passes),
                ("passes/op", m1_passes / total_ops),
                ("nodes/op", m1_nodes as f64 / total_ops),
                ("ns/op", m1_ns / total_ops),
                ("W/op", m1.effective_work() as f64 / total_ops),
            ],
        ));
        rows.push(Row::new(
            format!("{name} M2"),
            vec![
                ("ops", total_ops),
                ("tree passes", m2_passes),
                ("passes/op", m2_passes / total_ops),
                ("nodes/op", m2_nodes as f64 / total_ops),
                ("ns/op", m2_ns / total_ops),
                ("W/op", m2.effective_work() as f64 / total_ops),
            ],
        ));
    }

    // Micro rows: isolated segment-op shapes with exact pass counts.
    let build = |n: u64| -> RecencyMap<u64, u64> {
        let mut m = RecencyMap::new();
        for i in 0..n {
            m.insert_back(i, i);
        }
        m
    };
    let micro = |rows: &mut Vec<Row>, label: &str, f: &mut dyn FnMut()| {
        tcost::reset_tree_passes();
        let start = Instant::now();
        let ((), nodes) = tcost::metered(f);
        let ns = start.elapsed().as_nanos() as f64;
        let passes = tcost::tree_passes() as f64;
        tcost::reset_tree_passes();
        rows.push(Row::new(
            label,
            vec![
                ("ops", 1.0),
                ("tree passes", passes),
                ("passes/op", passes),
                ("nodes/op", nodes as f64),
                ("ns/op", ns),
                ("W/op", 0.0),
            ],
        ));
    };
    let mut m = build(512);
    let keys: Vec<u64> = (0..64u64).map(|i| i * 8).collect();
    let mut removed_items: Vec<(u64, u64)> = Vec::new();
    micro(&mut rows, "segment remove_batch b=64 n=512", &mut || {
        removed_items = keys
            .iter()
            .zip(m.remove_batch(&keys))
            .map(|(&k, v)| (k, v.expect("key present")))
            .collect();
    });
    let removed_items = std::mem::take(&mut removed_items);
    micro(
        &mut rows,
        "segment push_front_batch b=64 n=512",
        &mut || {
            m.push_front_batch(removed_items.clone());
        },
    );
    let mut dest = build(256);
    micro(
        &mut rows,
        "segment transfer k=64 (take_back + push_front)",
        &mut || {
            let moved = m.take_back(64);
            dest.push_front_batch(moved.into_iter().map(|(k, v)| (k + 10_000, v)).collect());
        },
    );
    micro(&mut rows, "segment take_front k=64 (eviction)", &mut || {
        let evicted = m.take_front(64);
        assert_eq!(evicted.len(), 64);
    });

    // A/B micro family: the same op shapes on the 2-3 reference (B = 2) and
    // the cache-conscious default (B = 16).  Passes are structural and must
    // not change with the fanout; nodes/op must drop at B = 16 by roughly
    // the height ratio log2(n) / log_{B/2}(n).
    let n = keyspace.max(512);
    for fan in [2usize, 16] {
        let items: Vec<(u64, u64)> = (0..n).map(|i| (i, i)).collect();
        let mut tree: Tree23<u64, u64> = Tree23::from_sorted_with_fanout(items, fan);
        let probes: Vec<u64> = (0..256u64).map(|i| (i * 97) % n).collect();
        micro(
            &mut rows,
            &format!("point get x256 n={n} fanout={fan}"),
            &mut || {
                for k in &probes {
                    assert!(tree.get(k).is_some());
                }
            },
        );
        let batch: Vec<(u64, u64)> = (0..64u64).map(|i| (n + i * 3, i)).collect();
        micro(
            &mut rows,
            &format!("batch insert b=64 n={n} fanout={fan}"),
            &mut || {
                tree.batch_insert(batch.clone());
            },
        );
        let mut src: RecencyMap<u64, u64> = RecencyMap::with_fanout(fan);
        let mut dst: RecencyMap<u64, u64> = RecencyMap::with_fanout(fan);
        for i in 0..n {
            src.insert_back(i, i);
        }
        micro(
            &mut rows,
            &format!("segment transfer k=64 n={n} fanout={fan}"),
            &mut || {
                let moved = src.take_back(64);
                dst.push_front_batch(moved);
            },
        );
    }
    rows
}

/// E14: runtime invariant checking of M1 and M2 over mixed workloads.
pub fn experiment_invariants(keyspace: u64, operations: usize) -> Vec<Row> {
    let mut spec = WorkloadSpec::read_only(keyspace, operations, Pattern::Zipf(1.0), 7);
    spec.update_fraction = 0.3;
    let ops = spec.full_sequence();
    let mut m1 = M1::new(4);
    let mut m2 = M2::new(4);
    let mut checks = 0u64;
    for chunk in to_operations(&ops).chunks(64) {
        let batch: Vec<TaggedOp<u64, u64>> = chunk
            .iter()
            .cloned()
            .enumerate()
            .map(|(i, op)| TaggedOp { id: i as OpId, op })
            .collect();
        m1.run_batch(batch.clone());
        m2.run_batch(batch);
        m1.check_invariants();
        m2.check_invariants();
        checks += 2;
    }
    vec![Row::new(
        format!("zipf+30% updates, n={keyspace}, {operations} ops"),
        vec![
            ("invariant checks passed", checks as f64),
            ("final size M1", m1.len() as f64),
            ("final size M2", m2.len() as f64),
        ],
    )]
}

/// E19: sharded front-end scaling — `wsm_shard::ShardedMap` against a single
/// flat-combining `ConcurrentMap` across shards × threads × skew.
///
/// Every configuration serves the identical deterministic request streams:
/// `t` OS threads each submit their stream in 64-operation batches
/// (`run_batch` for the sharded map, `call_batch` for the unsharded
/// baseline).  Two skews: a shared-hot-set Zipfian stream (worst case for
/// hash sharding — the hot keys land on a few shards) and the multi-tenant
/// pattern from ROADMAP 5a (best case — each tenant's private hot set splits
/// cleanly).
///
/// Columns per row:
///
/// * `mean ns/op` — wall-clock per operation over the access phase;
/// * `wall vs unsharded` — ratio against the unsharded baseline at the same
///   skew and thread count (1.0 = parity; the `S=1` row records the router's
///   pure overhead, which acceptance tracks as "sharded ≥ unsharded at S=1");
/// * `shard W/W_L` — mean over shards of effective work divided by the
///   working-set bound of that shard's *projected* stream (the per-thread
///   streams round-robin interleaved, then split by `shard_of`, exactly the
///   1/S-thinned sequence each shard actually serves).  Compared with the
///   unsharded row's `W/W_L`, this is the thinning curve: hash-splitting a
///   skewed stream dilutes each shard's locality, so the per-shard constant
///   drifts up with `S` while wall-clock drops.
///
/// Wall-clock rows need a multi-core runner to show scaling; the `W/W_L`
/// columns are exact everywhere.  Persisted to `BENCH_e19.json`.
pub fn experiment_sharded(
    keyspace: u64,
    operations: usize,
    max_threads: usize,
    reps: usize,
) -> Vec<Row> {
    use std::sync::Arc;
    use std::time::Instant;
    use wsm_core::ConcurrentMap;
    use wsm_shard::ShardedMap;

    const CHUNK: usize = 64;
    let max_threads = max_threads.max(1);
    let reps = reps.max(1);
    let thread_counts: Vec<usize> = [1usize, 2, 4]
        .into_iter()
        .filter(|&t| t <= max_threads)
        .collect();
    let skews = [
        ("zipf s=1.1", Pattern::Zipf(1.1)),
        (
            "4 tenants s=1.1",
            Pattern::MultiTenant { tenants: 4, s: 1.1 },
        ),
    ];
    let load_keys: Vec<u64> = (0..keyspace).collect();
    let mut rows = Vec::new();

    for (skew_label, pattern) in skews {
        for &t in &thread_counts {
            let per_thread = (operations / t).max(1);
            let streams: Vec<Vec<u64>> = (0..t)
                .map(|w| {
                    WorkloadSpec::read_only(keyspace, per_thread, pattern, w as u64)
                        .access_phase()
                        .iter()
                        .map(|op| *op.key())
                        .collect()
                })
                .collect();
            let total_ops = (t * per_thread) as f64;
            // Deterministic serial proxy of what the maps see: the thread
            // streams round-robin interleaved.  `W_L` projections per shard
            // are computed over this sequence.
            let interleaved: Vec<u64> = (0..per_thread)
                .flat_map(|i| streams.iter().map(move |s| s[i]))
                .collect();
            let wl_of = |keys: &[u64], owned_loads: &[u64]| -> f64 {
                let mut seq: Vec<MapOpKind<u64>> =
                    owned_loads.iter().map(|&k| MapOpKind::Insert(k)).collect();
                seq.extend(keys.iter().map(|&k| MapOpKind::Search(k)));
                working_set_bound(&seq) as f64
            };

            // --- unsharded baseline: one combiner serves every thread -----
            let mut base_total_ns = 0.0;
            let mut base_work = 0.0;
            for _ in 0..reps {
                let map = Arc::new(ConcurrentMap::new(M1::<u64, u64>::new(t.max(2)), t));
                for chunk in load_keys.chunks(512) {
                    map.call_batch(0, chunk.iter().map(|&k| Operation::Insert(k, k)).collect());
                }
                let warm = map.effective_work();
                let start = Instant::now();
                std::thread::scope(|s| {
                    for (w, stream) in streams.iter().enumerate() {
                        let map = Arc::clone(&map);
                        s.spawn(move || {
                            for chunk in stream.chunks(CHUNK) {
                                map.call_batch(
                                    w,
                                    chunk.iter().map(|&k| Operation::Search(k)).collect(),
                                );
                            }
                        });
                    }
                });
                base_total_ns += start.elapsed().as_nanos() as f64;
                base_work = (map.effective_work() - warm) as f64;
            }
            let base_ns_op = base_total_ns / (reps as f64 * total_ops);
            rows.push(Row::new(
                format!("{skew_label} unsharded t={t}"),
                vec![
                    ("mean ns/op", base_ns_op),
                    ("wall vs unsharded", 1.0),
                    ("shard W/W_L", base_work / wl_of(&interleaved, &load_keys)),
                ],
            ));

            // --- sharded front-end, swept over the shard count ------------
            for shards in [1usize, 2, 4] {
                let mut total_ns = 0.0;
                let mut shard_ratio = 0.0;
                for _ in 0..reps {
                    let map = Arc::new(ShardedMap::with_shards(shards, |_| {
                        M1::<u64, u64>::new(t.max(2))
                    }));
                    for chunk in load_keys.chunks(512) {
                        map.insert_batch(chunk.iter().map(|&k| (k, k)).collect());
                    }
                    let warm: Vec<u64> =
                        map.shard_stats().iter().map(|s| s.effective_work).collect();
                    let start = Instant::now();
                    std::thread::scope(|s| {
                        for stream in &streams {
                            let map = Arc::clone(&map);
                            s.spawn(move || {
                                for chunk in stream.chunks(CHUNK) {
                                    map.run_batch(
                                        chunk.iter().map(|&k| Operation::Search(k)).collect(),
                                    );
                                }
                            });
                        }
                    });
                    total_ns += start.elapsed().as_nanos() as f64;
                    // Per-shard W/W_L over the shard's own projected stream.
                    shard_ratio = map
                        .shard_stats()
                        .iter()
                        .map(|stats| {
                            let mine = |keys: &[u64]| -> Vec<u64> {
                                keys.iter()
                                    .copied()
                                    .filter(|k| map.shard_of(k) == stats.shard)
                                    .collect()
                            };
                            let work = (stats.effective_work - warm[stats.shard]) as f64;
                            work / wl_of(&mine(&interleaved), &mine(&load_keys))
                        })
                        .sum::<f64>()
                        / shards as f64;
                }
                let ns_op = total_ns / (reps as f64 * total_ops);
                rows.push(Row::new(
                    format!("{skew_label} S={shards} t={t}"),
                    vec![
                        ("mean ns/op", ns_op),
                        ("wall vs unsharded", ns_op / base_ns_op),
                        ("shard W/W_L", shard_ratio),
                    ],
                ));
            }
        }
    }
    rows
}

/// E20 — durability overhead: per-operation cost of write-ahead logging
/// every committed batch, swept across the three `WSM_WAL_SYNC` policies and
/// measured against a WAL-free [`ConcurrentMap`](wsm_core::ConcurrentMap)
/// baseline, plus the recovery costs (reopen + full-log replay, and reopen
/// from a checkpoint).
///
/// `t` OS threads each insert their own keyspace slice in 64-operation
/// batches — inserts, because only mutations hit the log; search-only
/// batches append nothing by construction.
///
/// Columns per policy row:
///
/// * `mean ns/op` — wall-clock per operation over the insert phase;
/// * `wal overhead x` — ratio against the WAL-free baseline (1.0 = free);
/// * `bytes/batch` — framed bytes appended per logged batch (encoding
///   density: headers + seq + op tags + keys/values);
/// * `batches logged` — how many combiner batches actually reached the log
///   (combining under contention means fewer, larger batches).
///
/// The two `reopen` rows time [`DurableMap::open_with`](wsm_wal::DurableMap)
/// against the artifacts the `sync=batch` run left behind: once replaying the
/// whole log, once after a checkpoint truncated it.  Persisted to
/// `BENCH_e20.json`.
pub fn experiment_wal_overhead(
    keyspace: u64,
    operations: usize,
    threads: usize,
    reps: usize,
) -> Vec<Row> {
    use std::sync::Arc;
    use std::time::Instant;
    use wsm_core::ConcurrentMap;
    use wsm_wal::{DurableMap, DurableOptions, SyncPolicy};

    const CHUNK: usize = 64;
    let t = threads.max(1);
    let reps = reps.max(1);
    let per_thread = (operations / t).max(1);
    let total_ops = (t * per_thread) as f64;
    let streams: Vec<Vec<u64>> = (0..t as u64)
        .map(|w| {
            (0..per_thread as u64)
                .map(|i| (w * per_thread as u64 + i) % keyspace)
                .collect()
        })
        .collect();

    let dir_base = std::env::temp_dir().join(format!("wsm-e20-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir_base);
    let mut rows = Vec::new();

    // --- WAL-free baseline: the same front-end, no commit hook ------------
    let mut base_ns = 0.0;
    for _ in 0..reps {
        let map = Arc::new(ConcurrentMap::new(M1::<u64, u64>::new(t.max(2)), t));
        let start = Instant::now();
        std::thread::scope(|s| {
            for (w, stream) in streams.iter().enumerate() {
                let map = Arc::clone(&map);
                s.spawn(move || {
                    for chunk in stream.chunks(CHUNK) {
                        map.call_batch(w, chunk.iter().map(|&k| Operation::Insert(k, k)).collect());
                    }
                });
            }
        });
        base_ns += start.elapsed().as_nanos() as f64;
    }
    let base_ns_op = base_ns / (reps as f64 * total_ops);
    rows.push(Row::new(
        format!("m1 no wal t={t}"),
        vec![
            ("mean ns/op", base_ns_op),
            ("wal overhead x", 1.0),
            ("bytes/batch", 0.0),
            ("batches logged", 0.0),
        ],
    ));

    // --- the three sync policies ------------------------------------------
    for (label, sync) in [
        ("off", SyncPolicy::Off),
        ("batch", SyncPolicy::Batch),
        ("always", SyncPolicy::Always),
    ] {
        let mut total_ns = 0.0;
        let mut bytes_per_batch = 0.0;
        let mut batches = 0.0;
        for rep in 0..reps {
            let dir = dir_base.join(format!("{label}-{rep}"));
            let opts = DurableOptions {
                sync,
                checkpoint_every: u64::MAX,
            };
            let map = Arc::new(
                DurableMap::open_with(&dir, opts, || M1::<u64, u64>::new(t.max(2)))
                    .expect("open E20 WAL dir"),
            );
            let start = Instant::now();
            std::thread::scope(|s| {
                for stream in &streams {
                    let map = Arc::clone(&map);
                    s.spawn(move || {
                        for chunk in stream.chunks(CHUNK) {
                            map.call_batch(
                                chunk.iter().map(|&k| Operation::Insert(k, k)).collect(),
                            );
                        }
                    });
                }
            });
            map.flush().expect("flush E20 WAL");
            total_ns += start.elapsed().as_nanos() as f64;
            let stats = map.wal_stats();
            batches = stats.batches_logged as f64;
            bytes_per_batch = stats.bytes_appended as f64 / stats.batches_logged.max(1) as f64;
        }
        let ns_op = total_ns / (reps as f64 * total_ops);
        rows.push(Row::new(
            format!("m1 wal sync={label} t={t}"),
            vec![
                ("mean ns/op", ns_op),
                ("wal overhead x", ns_op / base_ns_op),
                ("bytes/batch", bytes_per_batch),
                ("batches logged", batches),
            ],
        ));
    }

    // --- recovery cost against the sync=batch rep-0 artifacts -------------
    let dir = dir_base.join("batch-0");
    let opts = DurableOptions {
        sync: SyncPolicy::Batch,
        checkpoint_every: u64::MAX,
    };
    let start = Instant::now();
    let map = DurableMap::open_with(&dir, opts, || M1::<u64, u64>::new(t.max(2)))
        .expect("reopen E20 WAL dir");
    let open_ms = start.elapsed().as_nanos() as f64 / 1e6;
    let report = map.recovery();
    rows.push(Row::new(
        "reopen: replay full log",
        vec![
            ("open ms", open_ms),
            ("replayed batches", report.replayed_batches as f64),
            ("replayed ops", report.replayed_ops as f64),
            ("checkpoint items", report.checkpoint_items as f64),
        ],
    ));
    map.checkpoint().expect("E20 checkpoint");
    drop(map);
    let start = Instant::now();
    let map = DurableMap::open_with(&dir, opts, || M1::<u64, u64>::new(t.max(2)))
        .expect("reopen E20 checkpoint");
    let open_ms = start.elapsed().as_nanos() as f64 / 1e6;
    let report = map.recovery();
    rows.push(Row::new(
        "reopen: from checkpoint",
        vec![
            ("open ms", open_ms),
            ("replayed batches", report.replayed_batches as f64),
            ("replayed ops", report.replayed_ops as f64),
            ("checkpoint items", report.checkpoint_items as f64),
        ],
    ));
    drop(map);

    let _ = std::fs::remove_dir_all(&dir_base);
    rows
}

/// E21 — async service latency under a QPS-paced open(ish) loop.
///
/// `clients` executor tasks each issue `requests` batched searches of
/// `batch` keys through [`wsm_svc::WsMapService`], pacing themselves at one
/// request per `interval_us` microseconds from a fixed start (a late request
/// fires immediately, degrading toward closed-loop under saturation — the
/// achieved-throughput column records how far offered load was met).  The
/// sweep covers all three waiter hand-off modes × {unsharded, S=4}: in
/// doorbell/cell modes the service future must cooperatively self-wake
/// (busy re-polling between harvests), while waker mode goes quiescent until
/// a `ResultCell` fill wakes it — E21 measures exactly the latency and
/// throughput shape of that difference.
pub fn experiment_service_latency(
    keyspace: u64,
    clients: usize,
    requests: usize,
    batch: usize,
    interval_us: u64,
    workers: usize,
) -> Vec<Row> {
    use std::sync::Arc;
    use std::time::{Duration, Instant};
    use wsm_core::Handoff;
    use wsm_shard::ShardedMap;
    use wsm_svc::{block_on, Executor, WsMapService};

    let modes = [
        ("doorbell", Handoff::Doorbell),
        ("cell", Handoff::Cell),
        ("waker", Handoff::Waker),
    ];
    let mut rows = Vec::new();
    for (mode_name, handoff) in modes {
        for shards in [1usize, 4] {
            let map = Arc::new(
                ShardedMap::with_shards(shards, |_| M1::<u64, u64>::new(4)).with_handoff(handoff),
            );
            let preload: Vec<(u64, u64)> = (0..keyspace).map(|k| (k, k)).collect();
            for chunk in preload.chunks(512) {
                map.insert_batch(chunk.to_vec());
            }
            let svc = WsMapService::from_arc(map);
            let exec = Executor::new(workers);
            let timer = exec.timer();
            let wall_start = Instant::now();
            let handles: Vec<_> = (0..clients)
                .map(|c| {
                    let svc = svc.clone();
                    let timer = timer.clone();
                    let keys: Vec<u64> = WorkloadSpec::read_only(
                        keyspace,
                        requests * batch,
                        Pattern::Zipf(1.1),
                        c as u64,
                    )
                    .access_phase()
                    .iter()
                    .map(|op| *op.key())
                    .collect();
                    exec.spawn(async move {
                        let mut latencies = Vec::with_capacity(requests);
                        let base = Instant::now();
                        for r in 0..requests {
                            let tick = base + Duration::from_micros(interval_us * r as u64);
                            timer.sleep_until(tick).await;
                            let issued = Instant::now();
                            let _ = svc
                                .batch_search(keys[r * batch..(r + 1) * batch].to_vec())
                                .await;
                            latencies.push(issued.elapsed().as_nanos() as u64);
                        }
                        latencies
                    })
                })
                .collect();
            let mut latencies: Vec<u64> = handles.into_iter().flat_map(block_on).collect();
            let wall = wall_start.elapsed().as_secs_f64();
            latencies.sort_unstable();
            let pct = |p: f64| {
                let idx = ((latencies.len() as f64 - 1.0) * p).round() as usize;
                latencies[idx] as f64 / 1_000.0
            };
            let total_ops = (clients * requests * batch) as f64;
            let label = if shards == 1 {
                format!("{mode_name} unsharded")
            } else {
                format!("{mode_name} S={shards}")
            };
            rows.push(Row::new(
                label,
                vec![
                    ("p50 us", pct(0.50)),
                    ("p99 us", pct(0.99)),
                    ("p999 us", pct(0.999)),
                    ("achieved kops/s", total_ops / wall / 1_000.0),
                ],
            ));
        }
    }
    rows
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn suite_and_rows_are_well_formed() {
        let rows = experiment_buffer_cost(&[2, 4]);
        assert_eq!(rows.len(), 6);
        assert!(rows.iter().all(|r| r.values.len() == 3));
    }

    #[test]
    fn sequential_experiment_shows_adaptivity() {
        let rows = experiment_sequential_ws(1 << 8, 1 << 10);
        // On the hot-set workload M0 must be within a constant factor of W_L.
        let hot = &rows[0];
        let ratio = hot.values.iter().find(|(k, _)| k == "M0/W_L").unwrap().1;
        assert!(ratio < 30.0, "M0/W_L ratio {ratio} too large");
    }

    #[test]
    fn combine_ablation_shows_blowup() {
        let rows = experiment_combine_ablation(1 << 10, 256);
        let ratio = rows[0]
            .values
            .iter()
            .find(|(k, _)| k == "naive/combined")
            .unwrap()
            .1;
        assert!(
            ratio > 1.5,
            "naive execution should be clearly worse, got {ratio}"
        );
    }

    #[test]
    fn hot_path_experiment_rows_are_well_formed() {
        let rows = experiment_hot_paths(1 << 9, 1 << 8, 2, 1);
        // 1 AVL row + 6 threshold×hand-off rows + 1 constants row.
        assert_eq!(rows.len(), 8);
        assert_eq!(
            rows.iter().filter(|r| r.label.contains(" cell ")).count(),
            2
        );
        for row in &rows[..7] {
            let ns_op = row
                .values
                .iter()
                .find(|(k, _)| k == "mean ns/op")
                .unwrap()
                .1;
            assert!(ns_op > 0.0, "non-positive timing in {}", row.label);
        }
        let constants = rows.last().unwrap();
        let m1_ratio = constants
            .values
            .iter()
            .find(|(k, _)| k == "M1 work/W_L")
            .unwrap()
            .1;
        assert!(
            m1_ratio > 0.5 && m1_ratio < 100.0,
            "implausible M1/W_L constant {m1_ratio}"
        );
    }

    #[test]
    fn cost_constants_experiment_shows_measured_below_bound() {
        let rows = experiment_cost_constants(1 << 9, 1 << 11);
        // 5 suite workloads + 3 zipf sizes + 1 update mix.
        assert_eq!(rows.len(), 9);
        let ceiling = wsm_twothree::cost::MEASURED_CEILING as f64;
        for row in &rows {
            let get = |key: &str| row.values.iter().find(|(k, _)| k == key).unwrap().1;
            for which in ["M1 W/bound", "M2 W/bound"] {
                let ratio = get(which);
                assert!(
                    ratio > 0.0 && ratio < ceiling,
                    "{}: {which} {ratio} outside (0, ceiling {ceiling})",
                    row.label
                );
            }
        }
        // On workloads with locality the split must actually tighten the
        // constant, not relabel it: measured work clearly below the
        // worst-case charge (cold uniform scans may measure at ≈1x the
        // closed form — that is the honest answer, the ceiling covers it).
        for label in ["hot-set (8 keys, 2% miss)", "zipf s=1.0, 40% updates"] {
            let row = rows.iter().find(|r| r.label == label).unwrap();
            let get = |key: &str| row.values.iter().find(|(k, _)| k == key).unwrap().1;
            assert!(
                get("M1 W/W_L") < get("M1 bound/W_L"),
                "{label}: measured constant not below the bound constant"
            );
            assert!(
                get("M1 W/bound") < 1.0 && get("M2 W/bound") < 1.0,
                "{label}: locality workload should measure below the bound"
            );
        }
        // The maintenance-run column counts only real hole-refill work (at
        // these small sizes the mix may legitimately need none — a non-zero
        // count on a genuine deletion wave is pinned by
        // tests/property_invariants.rs); here it just has to be well-formed.
        for row in &rows {
            let maint = row
                .values
                .iter()
                .find(|(k, _)| k == "M2 maint runs")
                .unwrap()
                .1;
            assert!(
                maint >= 0.0 && maint.is_finite(),
                "{}: malformed maintenance-run count {maint}",
                row.label
            );
        }
    }

    #[test]
    fn tree_passes_experiment_pins_single_pass_segment_ops() {
        let rows = experiment_tree_passes(1 << 9, 1 << 11);
        // 3 workloads x 2 structures + 4 micro rows + 2 fanouts x 3 A/B rows.
        assert_eq!(rows.len(), 16);
        let get = |label: &str, key: &str| -> f64 {
            rows.iter()
                .find(|r| r.label == label)
                .unwrap_or_else(|| panic!("row {label} missing"))
                .values
                .iter()
                .find(|(k, _)| k == key)
                .unwrap()
                .1
        };
        // The micro rows are exact: one-sided segment ops are one tree pass,
        // a transfer is two (the two-tree design paid 2 and 4).
        assert_eq!(get("segment remove_batch b=64 n=512", "tree passes"), 1.0);
        assert_eq!(
            get("segment push_front_batch b=64 n=512", "tree passes"),
            1.0
        );
        assert_eq!(
            get(
                "segment transfer k=64 (take_back + push_front)",
                "tree passes"
            ),
            2.0
        );
        assert_eq!(
            get("segment take_front k=64 (eviction)", "tree passes"),
            1.0
        );
        // The A/B family: passes are structural (fanout-independent), while
        // the wide node must touch strictly fewer nodes on every shape.
        let n = 1u64 << 9;
        for shape in [
            format!("point get x256 n={n}"),
            format!("batch insert b=64 n={n}"),
            format!("segment transfer k=64 n={n}"),
        ] {
            let narrow = format!("{shape} fanout=2");
            let wide = format!("{shape} fanout=16");
            assert_eq!(
                get(&narrow, "tree passes"),
                get(&wide, "tree passes"),
                "{shape}: pass counts must not depend on the fanout"
            );
            assert!(
                get(&wide, "nodes/op") < get(&narrow, "nodes/op"),
                "{shape}: B=16 should touch fewer nodes than B=2 ({} vs {})",
                get(&wide, "nodes/op"),
                get(&narrow, "nodes/op"),
            );
        }
        // Workload-level pass counts are positive and finite.
        for row in &rows {
            let passes = row
                .values
                .iter()
                .find(|(k, _)| k == "tree passes")
                .unwrap()
                .1;
            assert!(
                passes >= 1.0 && passes.is_finite(),
                "{}: malformed pass count {passes}",
                row.label
            );
        }
    }

    #[test]
    fn invariant_experiment_passes() {
        let rows = experiment_invariants(1 << 9, 1 << 11);
        assert!(rows[0].values[0].1 > 0.0);
    }

    #[test]
    fn sharded_experiment_rows_are_well_formed() {
        let rows = experiment_sharded(1 << 9, 1 << 10, 2, 1);
        // 2 skews × 2 thread counts × (1 unsharded + 3 shard counts).
        assert_eq!(rows.len(), 16);
        for row in &rows {
            let get = |key: &str| row.values.iter().find(|(k, _)| k == key).unwrap().1;
            assert!(
                get("mean ns/op") > 0.0,
                "non-positive timing in {}",
                row.label
            );
            assert!(
                get("shard W/W_L") > 0.0 && get("shard W/W_L").is_finite(),
                "implausible W/W_L in {}",
                row.label
            );
            if row.label.contains("unsharded") {
                assert_eq!(get("wall vs unsharded"), 1.0, "{}", row.label);
            } else {
                assert!(get("wall vs unsharded") > 0.0, "{}", row.label);
            }
        }
    }

    #[test]
    fn wal_overhead_experiment_rows_are_well_formed() {
        let rows = experiment_wal_overhead(1 << 9, 1 << 10, 2, 1);
        // 1 baseline + 3 sync policies + 2 reopen rows.
        assert_eq!(rows.len(), 6);
        let get = |row: &Row, key: &str| row.values.iter().find(|(k, _)| k == key).unwrap().1;
        for row in &rows[..4] {
            assert!(
                get(row, "mean ns/op") > 0.0 && get(row, "mean ns/op").is_finite(),
                "non-positive timing in {}",
                row.label
            );
            assert!(get(row, "wal overhead x") > 0.0, "{}", row.label);
        }
        for row in &rows[1..4] {
            assert!(get(row, "batches logged") > 0.0, "{}", row.label);
            assert!(get(row, "bytes/batch") > 0.0, "{}", row.label);
        }
        // The full-log reopen replays every mutation; the post-checkpoint
        // reopen replays none.
        assert_eq!(get(&rows[4], "replayed ops"), (1 << 10) as f64);
        assert_eq!(get(&rows[5], "replayed ops"), 0.0);
        assert!(get(&rows[5], "checkpoint items") > 0.0);
    }

    #[test]
    fn scaling_experiment_rows_are_well_formed() {
        let rows = experiment_scaling(1 << 10, 1 << 9, 1 << 8, &[1, 2], 1);
        // 3 workloads x 2 thread counts.
        assert_eq!(rows.len(), 6);
        for row in &rows {
            assert_eq!(row.values.len(), 4, "row {}", row.label);
            let ns_op = row
                .values
                .iter()
                .find(|(k, _)| k == "mean ns/op")
                .unwrap()
                .1;
            assert!(ns_op > 0.0, "non-positive timing in {}", row.label);
        }
        // The first configuration is its own baseline: speedup exactly 1.
        let first = rows.iter().find(|r| r.label.starts_with("pesort")).unwrap();
        let speedup = first
            .values
            .iter()
            .find(|(k, _)| k == "speedup vs first")
            .unwrap()
            .1;
        assert!((speedup - 1.0).abs() < 1e-9);
    }
}
