//! The experiment harness: regenerates every table recorded in EXPERIMENTS.md.
//!
//! Usage:
//! ```text
//! harness [e1|e2|e3|e4|e5|e6|e7|e8|e9|e10|e11|e12|e13|e14|e15|e16|e17|e18|e19|e20|e21|all] [--small] [--threads N]
//! ```
//! With no experiment argument, all experiments run at their default
//! (paper-shaped) sizes; `--small` shrinks them for a quick smoke run.
//!
//! `--threads N` pins the work-stealing pool: E1–E14 run inside a dedicated
//! `N`-worker pool (their analytic results are thread-count independent, but
//! their wall-clock time is not), and E15 — the wall-clock scaling
//! experiment — sweeps worker counts `1, 2, 4, 8` capped at `N`.
//!
//! Every experiment additionally writes a machine-readable
//! `BENCH_<id>.json` artifact (into `$WSM_BENCH_DIR`, defaulting to the
//! repository root so committed trends accumulate across PRs) for regression
//! tracking.

use wsm_bench as bench;

struct Sizes {
    keyspace: u64,
    operations: usize,
    sort_n: usize,
    /// E15 input sizes: pesort keys, tree batch items, concurrent-map ops.
    scale_sort_n: usize,
    scale_tree_n: usize,
    scale_map_ops: usize,
    scale_reps: usize,
    /// E16 input sizes: cached pages and requests per serving thread.
    hot_pages: u64,
    hot_requests: usize,
}

/// Runs `f` on the dedicated pool when `--threads` was given, otherwise
/// directly (global pool).  One pool is created per harness run and shared by
/// every experiment, so per-table timings do not include pool start-up.
fn in_pool(
    pool: Option<&wsm_pool::ThreadPool>,
    f: impl FnOnce() -> Vec<bench::Row> + Send,
) -> Vec<bench::Row> {
    match pool {
        Some(pool) => pool.install(f),
        None => f(),
    }
}

/// Prints the table and persists one `BENCH_<id>[_small].json` artifact per
/// id in `ids` — the first id is the primary; the rest are aliases for
/// experiments that share a table (E1/E2, E3/E5, E8/E9), written as their
/// own files (with `alias_of` recorded in the meta) so the committed
/// trajectory has an artifact for every experiment number.
///
/// Small-preset runs write to a `_small`-suffixed file (with the preset also
/// recorded in the meta), so the committed small-preset trend artifacts are
/// never clobbered with incomparable paper-shaped numbers and vice versa.
/// Likewise every artifact records the tree `fanout` in its meta, and
/// non-default fanouts (e.g. a `WSM_TREE_FANOUT=2` run of the analytic
/// reference) write to a `_b{fanout}`-suffixed file, so B=2 and B=16 runs of
/// the same preset never clobber each other.
fn emit(ids: &[&str], title: &str, rows: &[bench::Row], threads: Option<usize>, small: bool) {
    emit_extra(ids, title, rows, threads, small, &[]);
}

/// [`emit`] plus experiment-specific meta entries (e.g. E21's CPU-count
/// caveat), appended after the shared threads/preset/fanout keys.
fn emit_extra(
    ids: &[&str],
    title: &str,
    rows: &[bench::Row],
    threads: Option<usize>,
    small: bool,
    extra: &[(&str, String)],
) {
    bench::print_table(title, rows);
    let threads_meta = match threads {
        Some(n) => n.to_string(),
        None => "default".to_string(),
    };
    let preset = if small { "small" } else { "full" };
    let fanout = wsm_twothree::default_fanout();
    let primary = ids[0];
    for id in ids {
        let mut meta = vec![
            ("threads", threads_meta.clone()),
            ("preset", preset.to_string()),
            ("fanout", fanout.to_string()),
        ];
        if id != &primary {
            meta.push(("alias_of", primary.to_string()));
        }
        for (k, v) in extra {
            meta.push((*k, v.clone()));
        }
        let file_id = format!("{id}{}", artifact_suffix(small, fanout));
        match bench::json::write_rows(&bench::json::bench_dir(), &file_id, &meta, rows) {
            Ok(path) => println!("[wrote {}]", path.display()),
            Err(err) => eprintln!("warning: could not write BENCH_{file_id}.json: {err}"),
        }
    }
}

/// File-id suffix for the active preset and fanout: `_b{fanout}` for
/// non-default fanouts, then `_small` for the small preset.
fn artifact_suffix(small: bool, fanout: usize) -> String {
    let mut suffix = String::new();
    if fanout != 16 {
        suffix.push_str(&format!("_b{fanout}"));
    }
    if small {
        suffix.push_str("_small");
    }
    suffix
}

/// Every experiment id an artifact is expected for (aliases included).
const ALL_IDS: [&str; 21] = [
    "e1", "e2", "e3", "e4", "e5", "e6", "e7", "e8", "e9", "e10", "e11", "e12", "e13", "e14", "e15",
    "e16", "e17", "e18", "e19", "e20", "e21",
];

/// Warns about experiment ids with no committed artifact for the active
/// preset, so a hole in the `BENCH_*.json` trajectory is loud instead of
/// silently absent from the trend data.
fn warn_missing_artifacts(small: bool) {
    let dir = bench::json::bench_dir();
    let suffix = artifact_suffix(small, wsm_twothree::default_fanout());
    let suffix = suffix.as_str();
    let missing: Vec<&str> = ALL_IDS
        .iter()
        .copied()
        .filter(|id| !dir.join(format!("BENCH_{id}{suffix}.json")).exists())
        .collect();
    if !missing.is_empty() {
        eprintln!(
            "warning: no BENCH_<id>{suffix}.json artifact for: {} \
             (run `harness <id>{}` to generate)",
            missing.join(", "),
            if small { " --small" } else { "" },
        );
    }
}

fn main() {
    let parsed = parse_args(std::env::args().skip(1));
    let small = parsed.small;
    let threads = parsed.threads;
    let which: Vec<&str> = parsed.which.iter().map(String::as_str).collect();
    let which = if which.is_empty() { vec!["all"] } else { which };
    let shared_pool = threads.map(wsm_pool::ThreadPool::new);
    let shared_pool = shared_pool.as_ref();
    let sizes = if small {
        Sizes {
            keyspace: 1 << 10,
            operations: 1 << 12,
            sort_n: 1 << 12,
            scale_sort_n: 1 << 13,
            scale_tree_n: 1 << 12,
            scale_map_ops: 1 << 11,
            scale_reps: 2,
            hot_pages: 1 << 12,
            hot_requests: 1 << 12,
        }
    } else {
        Sizes {
            keyspace: 1 << 14,
            operations: 1 << 16,
            sort_n: 1 << 15,
            scale_sort_n: 1 << 20,
            scale_tree_n: 1 << 16,
            scale_map_ops: 1 << 14,
            scale_reps: 3,
            hot_pages: 1 << 14,
            hot_requests: 20_000,
        }
    };

    let run = |name: &str| which.contains(&"all") || which.contains(&name);

    if run("e1") || run("e2") {
        let rows = in_pool(shared_pool, || {
            bench::experiment_sequential_ws(sizes.keyspace, sizes.operations)
        });
        emit(
            &["e1", "e2"],
            "E1/E2: sequential working-set structures vs W_L (work ratio)",
            &rows,
            threads,
            small,
        );
    }
    if run("e3") || run("e5") {
        let rows = in_pool(shared_pool, || {
            bench::experiment_parallel_work(sizes.keyspace, sizes.operations / 2, &[2, 4, 8, 16])
        });
        emit(
            &["e3", "e5"],
            "E3/E5: M1 and M2 effective work vs W_L",
            &rows,
            threads,
            small,
        );
    }
    if run("e4") {
        let rows = in_pool(shared_pool, || {
            bench::experiment_m1_span(sizes.keyspace, sizes.operations / 2, &[2, 4, 8, 16, 32])
        });
        emit(
            &["e4"],
            "E4: M1 effective span per batch vs (log p)^2 + log n",
            &rows,
            threads,
            small,
        );
    }
    if run("e6") {
        let rows = in_pool(shared_pool, || {
            bench::experiment_m2_latency(sizes.keyspace, 8)
        });
        emit(
            &["e6"],
            "E6: M2 per-operation pipeline latency by recency",
            &rows,
            threads,
            small,
        );
    }
    if run("e7") {
        let rows = in_pool(shared_pool, || bench::experiment_buffer_cost(&[4, 16, 64]));
        emit(
            &["e7"],
            "E7: parallel buffer flush cost",
            &rows,
            threads,
            small,
        );
    }
    if run("e8") || run("e9") {
        let rows = in_pool(shared_pool, || bench::experiment_sorting(sizes.sort_n));
        emit(
            &["e8", "e9"],
            "E8/E9: ESort and PESort work vs the entropy bound",
            &rows,
            threads,
            small,
        );
    }
    if run("e10") {
        let rows = in_pool(shared_pool, || {
            bench::experiment_static_optimality(sizes.keyspace, sizes.operations / 2)
        });
        emit(
            &["e10"],
            "E10: static optimality (M1 work vs optimal static BST)",
            &rows,
            threads,
            small,
        );
    }
    if run("e11") {
        let rows = in_pool(shared_pool, || {
            bench::experiment_phase_shift(sizes.keyspace, sizes.operations, 8)
        });
        emit(
            &["e11"],
            "E11: dynamic adaptivity — work/op across a working-set phase shift (spike to log n, recover to log w)",
            &rows,
            threads,
            small,
        );
    }
    if run("e12") {
        let rows = in_pool(shared_pool, || {
            bench::experiment_combine_ablation(sizes.keyspace, 1 << 10)
        });
        emit(
            &["e12"],
            "E12: ablation — duplicate combining vs naive per-op execution",
            &rows,
            threads,
            small,
        );
    }
    if run("e13") {
        let rows = in_pool(shared_pool, || {
            bench::experiment_pipelining(sizes.keyspace, 8)
        });
        emit(
            &["e13"],
            "E13: pipelining — M1 vs M2 latency for hot ops behind cold misses",
            &rows,
            threads,
            small,
        );
    }
    if run("e14") {
        let rows = in_pool(shared_pool, || {
            bench::experiment_invariants(sizes.keyspace.min(1 << 12), sizes.operations.min(1 << 14))
        });
        emit(
            &["e14"],
            "E14: runtime invariant checks (Lemma 16 style)",
            &rows,
            threads,
            small,
        );
    }
    if run("e17") {
        let rows = in_pool(shared_pool, || {
            bench::experiment_cost_constants(sizes.keyspace, sizes.operations)
        });
        emit(
            &["e17"],
            "E17: measured vs worst-case analytic constants (W/W_L, W/bound per structure and workload)",
            &rows,
            threads,
            small,
        );
    }
    if run("e18") {
        // E18 reads the thread-local tree-pass counter, so it runs directly
        // on this thread (not through the pool wrapper).
        let rows = bench::experiment_tree_passes(sizes.keyspace, sizes.operations / 2);
        emit(
            &["e18"],
            "E18: tree passes per op (arena-fused RecencyMap: one key-map pass per segment op)",
            &rows,
            threads,
            small,
        );
    }
    if run("e16") {
        // E16 spawns its own OS threads and a dedicated pool, like E15.
        let t = threads.unwrap_or(4).max(1);
        let rows =
            bench::experiment_hot_paths(sizes.hot_pages, sizes.hot_requests, t, sizes.scale_reps);
        emit(
            &["e16"],
            "E16: hot-path constant factors (ConcurrentMap vs coarse-locked AVL, inline-threshold sweep, W/W_L)",
            &rows,
            threads,
            small,
        );
    }
    if run("e19") {
        // E19 spawns its own OS threads and the sharded maps own their
        // router pools, so it runs outside the `in_pool` wrapper.
        let t = threads.unwrap_or(4).max(1);
        let rows = bench::experiment_sharded(
            sizes.keyspace,
            sizes.operations.min(1 << 14),
            t,
            sizes.scale_reps,
        );
        emit(
            &["e19"],
            "E19: sharded front-end scaling (ShardedMap vs one combiner, shards x threads x skew, per-shard W/W_L)",
            &rows,
            threads,
            small,
        );
    }
    if run("e20") {
        // E20 spawns its own OS threads and owns its WAL temp dirs, so it
        // runs outside the `in_pool` wrapper.
        let t = threads.unwrap_or(4).max(1);
        let rows = bench::experiment_wal_overhead(
            sizes.keyspace,
            sizes.operations.min(1 << 14),
            t,
            sizes.scale_reps,
        );
        emit(
            &["e20"],
            "E20: WAL overhead per batch (sync=off|batch|always vs no-WAL baseline, bytes/batch, reopen/replay)",
            &rows,
            threads,
            small,
        );
    }
    if run("e21") {
        // E21 owns its async executor and the sharded maps own their router
        // pools, so it runs outside the `in_pool` wrapper.
        let t = threads.unwrap_or(2).max(1);
        let (clients, requests, batch, interval_us) = if small {
            (8, 40, 16, 2_000)
        } else {
            (32, 200, 16, 1_000)
        };
        let rows = bench::experiment_service_latency(
            sizes.keyspace.min(1 << 14),
            clients,
            requests,
            batch,
            interval_us,
            t,
        );
        let cpus = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
        emit_extra(
            &["e21"],
            "E21: async service latency (QPS-paced clients, p50/p99/p999 by hand-off mode x sharding)",
            &rows,
            threads,
            small,
            &[
                ("cpus", cpus.to_string()),
                (
                    "caveat",
                    "tail latencies on <= 2 CPUs mostly measure run-queue contention \
                     between client tasks and the combiner, not service quality"
                        .to_string(),
                ),
            ],
        );
    }
    if run("e15") {
        // E15 manages its own pools (one per swept worker count), so it runs
        // outside the `in_pool` wrapper.
        let cap = threads.unwrap_or(8).max(1);
        let mut sweep: Vec<usize> = [1usize, 2, 4, 8]
            .into_iter()
            .filter(|&t| t <= cap)
            .collect();
        if !sweep.contains(&cap) {
            sweep.push(cap);
        }
        let rows = bench::experiment_scaling(
            sizes.scale_sort_n,
            sizes.scale_tree_n,
            sizes.scale_map_ops,
            &sweep,
            sizes.scale_reps,
        );
        emit(
            &["e15"],
            "E15: wall-clock scaling on the work-stealing pool (pesort / tree batch / concurrent map)",
            &rows,
            threads,
            small,
        );
    }
    warn_missing_artifacts(small);
}

/// Parsed command line.
struct ParsedArgs {
    small: bool,
    threads: Option<usize>,
    which: Vec<String>,
}

/// Single-pass argument parser.  Invalid or incomplete flags abort with a
/// message rather than being silently ignored (a typo'd `--threads` must not
/// produce results labeled as if pinning worked).
fn parse_args(args: impl Iterator<Item = String>) -> ParsedArgs {
    let mut parsed = ParsedArgs {
        small: false,
        threads: None,
        which: Vec::new(),
    };
    let mut args = args.peekable();
    while let Some(arg) = args.next() {
        if arg == "--small" {
            parsed.small = true;
        } else if arg == "--threads" {
            let value = args
                .next()
                .unwrap_or_else(|| usage_error("--threads requires a value"));
            parsed.threads = Some(parse_positive("--threads", &value));
        } else if let Some(value) = arg.strip_prefix("--threads=") {
            parsed.threads = Some(parse_positive("--threads", value));
        } else if arg.starts_with("--") {
            usage_error(&format!("unknown flag {arg}"));
        } else {
            parsed.which.push(arg);
        }
    }
    parsed
}

fn parse_positive(flag: &str, value: &str) -> usize {
    match value.parse::<usize>() {
        Ok(n) if n > 0 => n,
        _ => usage_error(&format!("{flag} needs a positive integer, got {value:?}")),
    }
}

fn usage_error(msg: &str) -> ! {
    eprintln!("harness: {msg}");
    eprintln!(
        "usage: harness [e1|e2|e3|e4|e5|e6|e7|e8|e9|e10|e11|e12|e13|e14|e15|e16|e17|e18|e19|e20|e21|all] [--small] [--threads N]"
    );
    std::process::exit(2);
}
