//! The experiment harness: regenerates every table recorded in EXPERIMENTS.md.
//!
//! Usage:
//! ```text
//! harness [e1|e3|e4|e6|e7|e8|e10|e12|e13|e14|all] [--small]
//! ```
//! With no argument, all experiments run at their default (paper-shaped)
//! sizes; `--small` shrinks them for a quick smoke run.

use wsm_bench as bench;

struct Sizes {
    keyspace: u64,
    operations: usize,
    sort_n: usize,
}

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let small = args.iter().any(|a| a == "--small");
    let which: Vec<&str> = args
        .iter()
        .filter(|a| !a.starts_with("--"))
        .map(String::as_str)
        .collect();
    let which = if which.is_empty() { vec!["all"] } else { which };
    let sizes = if small {
        Sizes {
            keyspace: 1 << 10,
            operations: 1 << 12,
            sort_n: 1 << 12,
        }
    } else {
        Sizes {
            keyspace: 1 << 14,
            operations: 1 << 16,
            sort_n: 1 << 15,
        }
    };

    let run = |name: &str| which.contains(&"all") || which.contains(&name);

    if run("e1") || run("e2") {
        bench::print_table(
            "E1/E2: sequential working-set structures vs W_L (work ratio)",
            &bench::experiment_sequential_ws(sizes.keyspace, sizes.operations),
        );
    }
    if run("e3") || run("e5") {
        bench::print_table(
            "E3/E5: M1 and M2 effective work vs W_L",
            &bench::experiment_parallel_work(sizes.keyspace, sizes.operations / 2, &[2, 4, 8, 16]),
        );
    }
    if run("e4") {
        bench::print_table(
            "E4: M1 effective span per batch vs (log p)^2 + log n",
            &bench::experiment_m1_span(sizes.keyspace, sizes.operations / 2, &[2, 4, 8, 16, 32]),
        );
    }
    if run("e6") {
        bench::print_table(
            "E6: M2 per-operation pipeline latency by recency",
            &bench::experiment_m2_latency(sizes.keyspace, 8),
        );
    }
    if run("e7") {
        bench::print_table(
            "E7: parallel buffer flush cost",
            &bench::experiment_buffer_cost(&[4, 16, 64]),
        );
    }
    if run("e8") || run("e9") {
        bench::print_table(
            "E8/E9: ESort and PESort work vs the entropy bound",
            &bench::experiment_sorting(sizes.sort_n),
        );
    }
    if run("e10") {
        bench::print_table(
            "E10: static optimality (M1 work vs optimal static BST)",
            &bench::experiment_static_optimality(sizes.keyspace, sizes.operations / 2),
        );
    }
    if run("e12") {
        bench::print_table(
            "E12: ablation — duplicate combining vs naive per-op execution",
            &bench::experiment_combine_ablation(sizes.keyspace, 1 << 10),
        );
    }
    if run("e13") {
        bench::print_table(
            "E13: pipelining — M1 vs M2 latency for hot ops behind cold misses",
            &bench::experiment_pipelining(sizes.keyspace, 8),
        );
    }
    if run("e14") {
        bench::print_table(
            "E14: runtime invariant checks (Lemma 16 style)",
            &bench::experiment_invariants(
                sizes.keyspace.min(1 << 12),
                sizes.operations.min(1 << 14),
            ),
        );
    }
}
