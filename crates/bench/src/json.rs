//! Minimal JSON emission for machine-readable benchmark artifacts.
//!
//! The vendored `serde` is a no-op stand-in (its derives generate nothing),
//! so this module hand-writes the tiny subset of JSON the harness needs:
//! objects, arrays, strings and finite numbers.  Every harness run persists
//! one `BENCH_<experiment>.json` per experiment so results can be
//! regression-tracked across commits (ROADMAP "Benches are not wired to
//! BENCH_*.json output").

use crate::Row;
use std::fmt::Write as _;
use std::path::{Path, PathBuf};

/// Escapes a string for a JSON string literal (quotes not included).
pub fn escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Formats a float as a JSON number (`null` for NaN/infinite values, which
/// JSON cannot represent).
pub fn number(v: f64) -> String {
    if v.is_finite() {
        // Rust's `Display` for f64 prints the shortest round-trip decimal,
        // which is valid JSON.
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// The warning emitted when a non-finite measurement is about to be written
/// as `null`.  A NaN in a bench artifact almost always means a bug upstream
/// (zero iterations, a 0/0 rate) — writing `null` silently would let a
/// regression-tracking diff read it as "no data" instead of "broken run".
fn non_finite_warning(experiment: &str, row: &str, key: &str, v: f64) -> String {
    format!(
        "wsm-bench: non-finite value {v} for experiment \"{experiment}\" row \"{row}\" key \"{key}\"; writing null"
    )
}

/// Renders one experiment's rows as a self-describing JSON document:
///
/// ```json
/// {
///   "experiment": "e15",
///   "meta": {"threads": "4"},
///   "rows": [{"label": "...", "values": {"mean ns/op": 123.4}}]
/// }
/// ```
pub fn rows_to_json(experiment: &str, meta: &[(&str, String)], rows: &[Row]) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    let _ = writeln!(out, "  \"experiment\": \"{}\",", escape(experiment));
    out.push_str("  \"meta\": {");
    for (i, (key, value)) in meta.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        let _ = write!(out, "\"{}\": \"{}\"", escape(key), escape(value));
    }
    out.push_str("},\n");
    out.push_str("  \"rows\": [\n");
    for (i, row) in rows.iter().enumerate() {
        let _ = write!(
            out,
            "    {{\"label\": \"{}\", \"values\": {{",
            escape(&row.label)
        );
        for (j, (key, value)) in row.values.iter().enumerate() {
            if j > 0 {
                out.push_str(", ");
            }
            if !value.is_finite() {
                eprintln!(
                    "{}",
                    non_finite_warning(experiment, &row.label, key, *value)
                );
            }
            let _ = write!(out, "\"{}\": {}", escape(key), number(*value));
        }
        out.push_str("}}");
        out.push_str(if i + 1 < rows.len() { ",\n" } else { "\n" });
    }
    out.push_str("  ]\n}\n");
    out
}

/// Directory benchmark artifacts are written to: `$WSM_BENCH_DIR` if set,
/// otherwise the repository root (so `BENCH_*.json` trends accumulate in one
/// committed location no matter where the harness is invoked from), falling
/// back to the current working directory if no workspace root is found.
///
/// The root is located by walking up from the *invoking* directory to the
/// nearest ancestor holding both `Cargo.toml` and `ROADMAP.md` — not from
/// the compile-time manifest path, which would point a binary built in one
/// checkout at that checkout even when run from another.
pub fn bench_dir() -> PathBuf {
    if let Some(dir) = std::env::var_os("WSM_BENCH_DIR") {
        return PathBuf::from(dir);
    }
    if let Ok(cwd) = std::env::current_dir() {
        for dir in cwd.ancestors() {
            if dir.join("Cargo.toml").is_file() && dir.join("ROADMAP.md").is_file() {
                return dir.to_path_buf();
            }
        }
    }
    PathBuf::from(".")
}

/// Writes `BENCH_<experiment>.json` into `dir`, returning the path written.
pub fn write_rows(
    dir: &Path,
    experiment: &str,
    meta: &[(&str, String)],
    rows: &[Row],
) -> std::io::Result<PathBuf> {
    let path = dir.join(format!("BENCH_{experiment}.json"));
    std::fs::write(&path, rows_to_json(experiment, meta, rows))?;
    Ok(path)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escape_handles_specials() {
        assert_eq!(escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
        assert_eq!(escape("\u{1}"), "\\u0001");
    }

    #[test]
    fn number_handles_non_finite() {
        assert_eq!(number(1.5), "1.5");
        assert_eq!(number(f64::NAN), "null");
        assert_eq!(number(f64::INFINITY), "null");
    }

    #[test]
    fn non_finite_values_warn_with_full_context_and_render_null() {
        let warning = non_finite_warning("e20", "wal sync=always", "ns/op", f64::NAN);
        assert!(warning.contains("\"e20\""), "{warning}");
        assert!(warning.contains("\"wal sync=always\""), "{warning}");
        assert!(warning.contains("\"ns/op\""), "{warning}");
        assert!(warning.contains("NaN"), "{warning}");
        // The artifact itself still gets valid JSON: null, never NaN.
        let rows = vec![Row::new("wal sync=always", vec![("ns/op", f64::NAN)])];
        let json = rows_to_json("e20", &[], &rows);
        assert!(json.contains("\"ns/op\": null"), "{json}");
        assert!(!json.contains("NaN"), "{json}");
    }

    #[test]
    fn rows_render_as_valid_looking_json() {
        let rows = vec![
            Row::new("pesort t=1", vec![("threads", 1.0), ("mean ns/op", 250.25)]),
            Row::new("pesort t=2", vec![("threads", 2.0), ("mean ns/op", 130.0)]),
        ];
        let json = rows_to_json("e15", &[("threads", "2".to_string())], &rows);
        assert!(json.contains("\"experiment\": \"e15\""));
        assert!(json.contains("\"threads\": 1"));
        assert!(json.contains("\"mean ns/op\": 250.25"));
        // Balanced braces / brackets (cheap well-formedness check).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces in {json}"
        );
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn bench_dir_defaults_to_repo_root() {
        // Only meaningful when WSM_BENCH_DIR is unset (the test environment
        // does not set it); the default must be the workspace root of the
        // *invoking* directory so that committed BENCH_*.json trends
        // accumulate in one place.
        if std::env::var_os("WSM_BENCH_DIR").is_none() {
            let dir = bench_dir();
            assert!(
                (dir.join("ROADMAP.md").is_file() && dir.join("Cargo.toml").is_file())
                    || dir == Path::new("."),
                "bench_dir {dir:?} is neither the repo root nor the cwd fallback"
            );
        }
    }

    #[test]
    fn write_rows_creates_artifact() {
        let dir = std::env::temp_dir().join("wsm_bench_json_test");
        std::fs::create_dir_all(&dir).unwrap();
        let rows = vec![Row::new("r", vec![("v", 1.0)])];
        let path = write_rows(&dir, "e_test", &[], &rows).unwrap();
        let content = std::fs::read_to_string(&path).unwrap();
        assert!(content.contains("\"experiment\": \"e_test\""));
        std::fs::remove_file(path).unwrap();
    }
}
