//! E1/E2 benchmark: sequential working-set structures (M0, Iacono) and
//! baselines (splay, AVL) across access patterns.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use wsm_bench::run_sequential;
use wsm_seq::{AvlMap, IaconoMap, SplayMap, M0};
use wsm_workloads::{Pattern, WorkloadSpec};

fn bench_sequential(c: &mut Criterion) {
    let mut group = c.benchmark_group("sequential_working_set");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    let keyspace = 1u64 << 12;
    let operations = 1usize << 13;
    for (name, pattern) in [
        (
            "hotset",
            Pattern::HotSet {
                hot: 8,
                miss_rate: 0.02,
            },
        ),
        ("zipf1", Pattern::Zipf(1.0)),
        ("uniform", Pattern::Uniform),
    ] {
        let ops = WorkloadSpec::read_only(keyspace, operations, pattern, 1).full_sequence();
        group.bench_with_input(BenchmarkId::new("M0", name), &ops, |b, ops| {
            b.iter(|| run_sequential(&mut M0::new(), ops))
        });
        group.bench_with_input(BenchmarkId::new("Iacono", name), &ops, |b, ops| {
            b.iter(|| run_sequential(&mut IaconoMap::new(), ops))
        });
        group.bench_with_input(BenchmarkId::new("Splay", name), &ops, |b, ops| {
            b.iter(|| run_sequential(&mut SplayMap::new(), ops))
        });
        group.bench_with_input(BenchmarkId::new("AVL", name), &ops, |b, ops| {
            b.iter(|| run_sequential(&mut AvlMap::new(), ops))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_sequential);
criterion_main!(benches);
