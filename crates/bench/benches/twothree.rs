//! Substrate benchmark: batched parallel 2-3 tree operations against
//! `std::collections::BTreeMap` (single-threaded) on the same batches.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::collections::BTreeMap;
use std::time::Duration;
use wsm_twothree::Tree23;

fn bench_twothree(c: &mut Criterion) {
    let mut group = c.benchmark_group("twothree");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for n in [1usize << 12, 1 << 15] {
        let items: Vec<(u64, u64)> = (0..n as u64).map(|i| (i * 2, i)).collect();
        let probe: Vec<u64> = (0..n as u64).collect();
        group.bench_with_input(BenchmarkId::new("batch_insert", n), &items, |b, items| {
            b.iter(|| {
                let mut t: Tree23<u64, u64> = Tree23::new();
                t.batch_insert(items.clone());
                t
            })
        });
        group.bench_with_input(
            BenchmarkId::new("par_batch_insert", n),
            &items,
            |b, items| {
                b.iter(|| {
                    let mut t: Tree23<u64, u64> = Tree23::new();
                    t.par_batch_insert(items.clone());
                    t
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("btreemap_insert", n),
            &items,
            |b, items| {
                b.iter(|| {
                    let mut t: BTreeMap<u64, u64> = BTreeMap::new();
                    for (k, v) in items.clone() {
                        t.insert(k, v);
                    }
                    t
                })
            },
        );
        let tree: Tree23<u64, u64> = items.iter().cloned().collect();
        group.bench_with_input(BenchmarkId::new("batch_get", n), &probe, |b, probe| {
            b.iter(|| tree.batch_get(probe))
        });
        group.bench_with_input(BenchmarkId::new("par_batch_get", n), &probe, |b, probe| {
            b.iter(|| tree.par_batch_get(probe))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_twothree);
criterion_main!(benches);
