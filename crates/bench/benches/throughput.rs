//! E11 benchmark: wall-clock throughput of the implicitly-batched concurrent
//! working-set maps against coarse-locked self-adjusting and balanced
//! baselines, under real threads and a skewed access pattern.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;
use wsm_core::{ConcurrentMap, Operation, M1};
use wsm_seq::{AvlMap, InstrumentedMap, SplayMap};
use wsm_workloads::{Pattern, WorkloadSpec};

const KEYSPACE: u64 = 1 << 12;
const OPS_PER_THREAD: usize = 2_000;

fn keys_for(pattern: Pattern, seed: u64) -> Vec<u64> {
    WorkloadSpec::read_only(KEYSPACE, OPS_PER_THREAD, pattern, seed)
        .access_phase()
        .iter()
        .map(|op| *op.key())
        .collect()
}

fn run_concurrent_wsm(threads: usize, pattern: Pattern) {
    let mut inner = M1::<u64, u64>::new(threads.max(2));
    inner.run_ops((0..KEYSPACE).map(|k| Operation::Insert(k, k)).collect());
    let map = Arc::new(ConcurrentMap::new(inner, threads));
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let map = Arc::clone(&map);
            let keys = keys_for(pattern, t as u64);
            std::thread::spawn(move || {
                for k in keys {
                    std::hint::black_box(map.search(t, k));
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

fn run_locked<M>(threads: usize, pattern: Pattern, map: Arc<Mutex<M>>)
where
    M: InstrumentedMap<u64, u64> + Send + 'static,
{
    let handles: Vec<_> = (0..threads)
        .map(|t| {
            let map = Arc::clone(&map);
            let keys = keys_for(pattern, t as u64);
            std::thread::spawn(move || {
                for k in keys {
                    std::hint::black_box(map.lock().search(&k).0);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().unwrap();
    }
}

fn bench_throughput(c: &mut Criterion) {
    let mut group = c.benchmark_group("throughput");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(2));
    let pattern = Pattern::Zipf(1.0);
    for threads in [2usize, 4, 8] {
        group.bench_with_input(
            BenchmarkId::new("implicit_batched_M1", threads),
            &threads,
            |b, &threads| b.iter(|| run_concurrent_wsm(threads, pattern)),
        );
        group.bench_with_input(
            BenchmarkId::new("locked_splay", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let mut splay = SplayMap::new();
                    for k in 0..KEYSPACE {
                        splay.insert_item(k, k);
                    }
                    run_locked(threads, pattern, Arc::new(Mutex::new(splay)))
                })
            },
        );
        group.bench_with_input(
            BenchmarkId::new("locked_avl", threads),
            &threads,
            |b, &threads| {
                b.iter(|| {
                    let mut avl = AvlMap::new();
                    for k in 0..KEYSPACE {
                        avl.insert_item(k, k);
                    }
                    run_locked(threads, pattern, Arc::new(Mutex::new(avl)))
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_throughput);
criterion_main!(benches);
