//! E3 benchmark: M1 batched processing across access patterns and processor
//! counts (wall time; effective-work ratios are reported by the harness).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use wsm_bench::run_batched;
use wsm_core::M1;
use wsm_workloads::{Pattern, WorkloadSpec};

fn bench_m1(c: &mut Criterion) {
    let mut group = c.benchmark_group("m1_work");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    let keyspace = 1u64 << 12;
    let operations = 1usize << 13;
    for (name, pattern) in [
        (
            "hotset",
            Pattern::HotSet {
                hot: 8,
                miss_rate: 0.02,
            },
        ),
        ("zipf1", Pattern::Zipf(1.0)),
        ("uniform", Pattern::Uniform),
    ] {
        let ops = WorkloadSpec::read_only(keyspace, operations, pattern, 2).full_sequence();
        for p in [4usize, 16] {
            group.bench_with_input(BenchmarkId::new(format!("p{p}"), name), &ops, |b, ops| {
                b.iter(|| run_batched(&mut M1::new(p), ops, p * p))
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_m1);
criterion_main!(benches);
