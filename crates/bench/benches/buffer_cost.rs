//! E7 benchmark: parallel buffer deposit + flush throughput.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use wsm_core::ParallelBuffer;

fn bench_buffer(c: &mut Criterion) {
    let mut group = c.benchmark_group("parallel_buffer");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for shards in [4usize, 16, 64] {
        for batch in [1usize << 8, 1 << 12] {
            group.bench_with_input(
                BenchmarkId::new(format!("shards{shards}"), batch),
                &batch,
                |b, &batch| {
                    b.iter(|| {
                        let buf: ParallelBuffer<u64> = ParallelBuffer::new(shards);
                        for i in 0..batch as u64 {
                            buf.push(i as usize, i);
                        }
                        buf.flush()
                    })
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_buffer);
criterion_main!(benches);
