//! E12 benchmark: duplicate combining versus naive per-operation execution of
//! a duplicate-heavy batch (the Ω(b log n) blow-up of Section 3).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use wsm_bench::run_batched;
use wsm_core::M1;
use wsm_model::MapOpKind;

fn bench_ablation(c: &mut Criterion) {
    let mut group = c.benchmark_group("ablation_combine");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    let keyspace = 1u64 << 12;
    let load: Vec<MapOpKind<u64>> = (0..keyspace).map(MapOpKind::Insert).collect();
    for dup in [256usize, 1024] {
        let dups: Vec<MapOpKind<u64>> =
            std::iter::repeat_n(MapOpKind::Search(keyspace / 2), dup).collect();
        group.bench_with_input(BenchmarkId::new("combined", dup), &dups, |b, dups| {
            b.iter(|| {
                let mut m = M1::new(8);
                run_batched(&mut m, &load, 64);
                run_batched(&mut m, dups, 64)
            })
        });
        group.bench_with_input(BenchmarkId::new("naive_per_op", dup), &dups, |b, dups| {
            b.iter(|| {
                let mut m = M1::new(8);
                run_batched(&mut m, &load, 64);
                run_batched(&mut m, dups, 1)
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_ablation);
criterion_main!(benches);
