//! E9 benchmark: PESort (parallel entropy sort) against `std` stable and
//! unstable sorts on inputs of varying entropy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use wsm_sort::{pesort, pesort_group};

fn inputs(n: usize) -> Vec<(&'static str, Vec<u64>)> {
    let mut state = 6u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    vec![
        ("low_entropy", (0..n).map(|_| next() % 8).collect()),
        ("medium_entropy", (0..n).map(|_| next() % 4096).collect()),
        ("high_entropy", (0..n).map(|_| next()).collect()),
    ]
}

fn bench_pesort(c: &mut Criterion) {
    let mut group = c.benchmark_group("pesort");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for (name, items) in inputs(1 << 15) {
        group.bench_with_input(BenchmarkId::new("pesort", name), &items, |b, items| {
            b.iter(|| pesort(items.clone()))
        });
        group.bench_with_input(
            BenchmarkId::new("pesort_group", name),
            &items,
            |b, items| b.iter(|| pesort_group(items)),
        );
        group.bench_with_input(BenchmarkId::new("std_sort", name), &items, |b, items| {
            b.iter(|| {
                let mut v = items.clone();
                v.sort_unstable();
                v
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_pesort);
criterion_main!(benches);
