//! E8 benchmark: ESort against `std` sorting on inputs of varying entropy.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::time::Duration;
use wsm_sort::esort;

fn inputs(n: usize) -> Vec<(&'static str, Vec<u64>)> {
    let mut state = 5u64;
    let mut next = move || {
        state ^= state << 13;
        state ^= state >> 7;
        state ^= state << 17;
        state
    };
    vec![
        ("constant", vec![7u64; n]),
        ("low_entropy", (0..n).map(|_| next() % 8).collect()),
        ("high_entropy", (0..n).map(|_| next()).collect()),
    ]
}

fn bench_esort(c: &mut Criterion) {
    let mut group = c.benchmark_group("esort");
    group
        .sample_size(10)
        .warm_up_time(Duration::from_millis(300))
        .measurement_time(Duration::from_secs(1));
    for (name, items) in inputs(1 << 13) {
        group.bench_with_input(BenchmarkId::new("esort", name), &items, |b, items| {
            b.iter(|| esort(items))
        });
        group.bench_with_input(BenchmarkId::new("std_sort", name), &items, |b, items| {
            b.iter(|| {
                let mut v = items.clone();
                v.sort_unstable();
                v
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_esort);
criterion_main!(benches);
