//! Splay tree baseline (Sleator–Tarjan \[37\]).
//!
//! The classic sequential self-adjusting search tree: every access splays the
//! accessed node to the root, which yields the working-set bound *amortized*
//! (among other distribution-sensitive bounds).  The paper's structures give
//! the same bound with worst-case parallel guarantees; the experiment harness
//! uses this splay tree as the canonical sequential self-adjusting comparison
//! point, and a coarse-locked version of it as a concurrent baseline (in the
//! spirit of the CBTree discussion in Section 1).

use crate::InstrumentedMap;
use std::cmp::Ordering;
use wsm_model::Cost;

#[derive(Clone, Debug)]
struct Node<K, V> {
    key: K,
    val: V,
    left: Option<Box<Node<K, V>>>,
    right: Option<Box<Node<K, V>>>,
}

/// A splay tree map with per-operation cost accounting (cost = number of nodes
/// touched while splaying, i.e. the depth of the access).
#[derive(Clone, Debug, Default)]
pub struct SplayMap<K, V> {
    root: Option<Box<Node<K, V>>>,
    len: usize,
    total: Cost,
}

fn rotate_right<K, V>(mut node: Box<Node<K, V>>) -> Box<Node<K, V>> {
    let mut l = node
        .left
        .take()
        .expect("rotate_right requires a left child");
    node.left = l.right.take();
    l.right = Some(node);
    l
}

fn rotate_left<K, V>(mut node: Box<Node<K, V>>) -> Box<Node<K, V>> {
    let mut r = node
        .right
        .take()
        .expect("rotate_left requires a right child");
    node.right = r.left.take();
    r.left = Some(node);
    r
}

/// Splays `key` towards the root of the subtree, returning the new subtree
/// root: the node holding `key` if present, otherwise the last node on the
/// search path.  `steps` counts the nodes visited.
fn splay<K: Ord, V>(mut root: Box<Node<K, V>>, key: &K, steps: &mut u64) -> Box<Node<K, V>> {
    *steps += 1;
    match key.cmp(&root.key) {
        Ordering::Equal => root,
        Ordering::Less => {
            let Some(mut l) = root.left.take() else {
                return root;
            };
            *steps += 1;
            match key.cmp(&l.key) {
                Ordering::Less => {
                    // Zig-zig: recurse into the left-left grandchild first.
                    if let Some(ll) = l.left.take() {
                        l.left = Some(splay(ll, key, steps));
                    }
                    root.left = Some(l);
                    let new_root = rotate_right(root);
                    if new_root.left.is_some() {
                        rotate_right(new_root)
                    } else {
                        new_root
                    }
                }
                Ordering::Greater => {
                    // Zig-zag: recurse into the left-right grandchild.
                    if let Some(lr) = l.right.take() {
                        l.right = Some(splay(lr, key, steps));
                    }
                    let l = if l.right.is_some() { rotate_left(l) } else { l };
                    root.left = Some(l);
                    rotate_right(root)
                }
                Ordering::Equal => {
                    root.left = Some(l);
                    rotate_right(root)
                }
            }
        }
        Ordering::Greater => {
            let Some(mut r) = root.right.take() else {
                return root;
            };
            *steps += 1;
            match key.cmp(&r.key) {
                Ordering::Greater => {
                    if let Some(rr) = r.right.take() {
                        r.right = Some(splay(rr, key, steps));
                    }
                    root.right = Some(r);
                    let new_root = rotate_left(root);
                    if new_root.right.is_some() {
                        rotate_left(new_root)
                    } else {
                        new_root
                    }
                }
                Ordering::Less => {
                    if let Some(rl) = r.left.take() {
                        r.left = Some(splay(rl, key, steps));
                    }
                    let r = if r.left.is_some() { rotate_right(r) } else { r };
                    root.right = Some(r);
                    rotate_left(root)
                }
                Ordering::Equal => {
                    root.right = Some(r);
                    rotate_left(root)
                }
            }
        }
    }
}

impl<K: Ord + Clone, V: Clone> SplayMap<K, V> {
    /// Creates an empty splay tree.
    pub fn new() -> Self {
        SplayMap {
            root: None,
            len: 0,
            total: Cost::ZERO,
        }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Non-adjusting lookup (no splaying, no cost): for tests.
    pub fn peek(&self, key: &K) -> Option<&V> {
        let mut cur = self.root.as_deref();
        while let Some(node) = cur {
            match key.cmp(&node.key) {
                Ordering::Equal => return Some(&node.val),
                Ordering::Less => cur = node.left.as_deref(),
                Ordering::Greater => cur = node.right.as_deref(),
            }
        }
        None
    }

    /// Searches for `key`, splaying it (or its neighbour) to the root.
    pub fn access(&mut self, key: &K) -> (Option<V>, Cost) {
        let Some(root) = self.root.take() else {
            let cost = Cost::UNIT;
            self.total += cost;
            return (None, cost);
        };
        let mut steps = 0;
        let root = splay(root, key, &mut steps);
        let found = (root.key == *key).then(|| root.val.clone());
        self.root = Some(root);
        let cost = Cost::serial(steps.max(1));
        self.total += cost;
        (found, cost)
    }

    /// Inserts `key`, splaying it to the root.  Returns the previous value.
    pub fn insert_item(&mut self, key: K, val: V) -> (Option<V>, Cost) {
        let Some(root) = self.root.take() else {
            self.root = Some(Box::new(Node {
                key,
                val,
                left: None,
                right: None,
            }));
            self.len = 1;
            let cost = Cost::UNIT;
            self.total += cost;
            return (None, cost);
        };
        let mut steps = 0;
        let mut root = splay(root, &key, &mut steps);
        let prev;
        match key.cmp(&root.key) {
            Ordering::Equal => {
                prev = Some(std::mem::replace(&mut root.val, val));
                self.root = Some(root);
            }
            Ordering::Less => {
                let mut new = Box::new(Node {
                    key,
                    val,
                    left: None,
                    right: None,
                });
                new.left = root.left.take();
                new.right = Some(root);
                self.root = Some(new);
                self.len += 1;
                prev = None;
            }
            Ordering::Greater => {
                let mut new = Box::new(Node {
                    key,
                    val,
                    left: None,
                    right: None,
                });
                new.right = root.right.take();
                new.left = Some(root);
                self.root = Some(new);
                self.len += 1;
                prev = None;
            }
        }
        let cost = Cost::serial(steps.max(1) + 1);
        self.total += cost;
        (prev, cost)
    }

    /// Removes `key` if present.
    pub fn remove_item(&mut self, key: &K) -> (Option<V>, Cost) {
        let Some(root) = self.root.take() else {
            let cost = Cost::UNIT;
            self.total += cost;
            return (None, cost);
        };
        let mut steps = 0;
        let mut root = splay(root, key, &mut steps);
        let result;
        if root.key == *key {
            let left = root.left.take();
            let right = root.right.take();
            result = Some(root.val.clone());
            self.len -= 1;
            self.root = match left {
                None => right,
                Some(left) => {
                    // Splaying the left subtree by `key` brings its maximum to
                    // the root (all its keys are smaller), leaving no right
                    // child; attach the right subtree there.
                    let mut left = splay(left, key, &mut steps);
                    debug_assert!(left.right.is_none());
                    left.right = right;
                    Some(left)
                }
            };
        } else {
            result = None;
            self.root = Some(root);
        }
        let cost = Cost::serial(steps.max(1));
        self.total += cost;
        (result, cost)
    }

    /// Height of the tree (for diagnostics).
    pub fn height(&self) -> usize {
        fn h<K, V>(n: &Option<Box<Node<K, V>>>) -> usize {
            n.as_ref().map_or(0, |n| 1 + h(&n.left).max(h(&n.right)))
        }
        h(&self.root)
    }

    /// Validates the binary-search-tree ordering invariant.
    pub fn check_invariants(&self) {
        fn check<K: Ord, V>(n: &Option<Box<Node<K, V>>>, lo: Option<&K>, hi: Option<&K>) -> usize {
            match n {
                None => 0,
                Some(n) => {
                    if let Some(lo) = lo {
                        assert!(&n.key > lo, "BST order violated");
                    }
                    if let Some(hi) = hi {
                        assert!(&n.key < hi, "BST order violated");
                    }
                    1 + check(&n.left, lo, Some(&n.key)) + check(&n.right, Some(&n.key), hi)
                }
            }
        }
        let count = check(&self.root, None, None);
        assert_eq!(count, self.len, "length does not match node count");
    }
}

impl<K: Ord + Clone, V: Clone> InstrumentedMap<K, V> for SplayMap<K, V> {
    fn search(&mut self, key: &K) -> (Option<V>, Cost) {
        self.access(key)
    }
    fn insert(&mut self, key: K, val: V) -> (Option<V>, Cost) {
        self.insert_item(key, val)
    }
    fn remove(&mut self, key: &K) -> (Option<V>, Cost) {
        self.remove_item(key)
    }
    fn len(&self) -> usize {
        self.len
    }
    fn total_cost(&self) -> Cost {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matches_btreemap_model() {
        use std::collections::BTreeMap;
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        let mut m = SplayMap::new();
        let mut state = 12345u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..2000 {
            let key = next() % 200;
            match next() % 3 {
                0 => {
                    let v = next();
                    assert_eq!(m.insert_item(key, v).0, model.insert(key, v));
                }
                1 => assert_eq!(m.access(&key).0, model.get(&key).copied()),
                _ => assert_eq!(m.remove_item(&key).0, model.remove(&key)),
            }
            assert_eq!(m.len(), model.len());
        }
        m.check_invariants();
    }

    #[test]
    fn insert_get_remove() {
        let mut m = SplayMap::new();
        for i in 0..100u64 {
            assert_eq!(m.insert_item(i, i * 3).0, None);
        }
        m.check_invariants();
        assert_eq!(m.len(), 100);
        for i in 0..100u64 {
            assert_eq!(m.access(&i).0, Some(i * 3), "key {i}");
        }
        for i in 0..100u64 {
            assert_eq!(m.remove_item(&i).0, Some(i * 3));
            m.check_invariants();
        }
        assert!(m.is_empty());
        assert_eq!(m.access(&5).0, None);
    }

    #[test]
    fn accessed_key_becomes_root() {
        let mut m = SplayMap::new();
        for i in 0..64u64 {
            m.insert_item(i, i);
        }
        m.access(&13);
        assert_eq!(m.root.as_ref().map(|n| n.key), Some(13));
        m.check_invariants();
    }

    #[test]
    fn repeated_access_is_cheap() {
        let mut m = SplayMap::new();
        for i in 0..4096u64 {
            m.insert_item(i, i);
        }
        // First access may be deep, repeated accesses are O(1)-ish.
        m.access(&2000);
        let (_, second) = m.access(&2000);
        assert!(
            second.work <= 3,
            "repeated access should touch the root: {second}"
        );
    }

    #[test]
    fn sequential_access_costs_linear_total() {
        // The sequential-access theorem for splay trees: scanning all keys in
        // order costs O(n) total.  We only check it is far below n log n.
        let n = 4096u64;
        let mut m = SplayMap::new();
        for i in 0..n {
            m.insert_item(i, i);
        }
        let before = m.total_cost().work;
        for i in 0..n {
            m.access(&i);
        }
        let scan_cost = m.total_cost().work - before;
        assert!(
            scan_cost < 8 * n,
            "sequential scan should be ~linear, got {scan_cost} for n={n}"
        );
    }

    #[test]
    fn replace_value_returns_previous() {
        let mut m = SplayMap::new();
        m.insert_item(9u64, 1u64);
        let (prev, _) = m.insert_item(9, 2);
        assert_eq!(prev, Some(1));
        assert_eq!(m.len(), 1);
        assert_eq!(m.peek(&9), Some(&2));
    }
}
