//! The amortized sequential working-set map M0 (paper Section 5).
//!
//! M0 keeps its items in a list of segments `S[0..l]`, where segment `S[k]`
//! has capacity `2^(2^k)` and every segment is full except perhaps the last.
//! The self-adjustment is *local*: a successful search in `S[k]` moves the
//! item only to the front of `S[k-1]` (not all the way to the front as in
//! Iacono's structure), and the least recent item of `S[k-1]` is shifted back
//! to `S[k]` in exchange.  Theorem 7 shows the total cost still satisfies the
//! working-set bound, via the Working-Set Cost Lemma (Lemma 6); this
//! localisation is what makes the pipelined parallel version M2 possible.

use crate::{segment_capacity, InstrumentedMap};
use wsm_model::{Cost, CostMeter};
use wsm_twothree::{cost as tcost, RecencyMap};

/// The amortized sequential working-set map of Section 5.
///
/// Each segment is a [`RecencyMap`] (arena-fused key/recency map).  Every
/// operation returns the analytic cost charged for it; the running total is
/// available through [`InstrumentedMap::total_cost`].
#[derive(Clone, Debug, Default)]
pub struct M0<K, V> {
    segments: Vec<RecencyMap<K, V>>,
    meter_total: Cost,
}

impl<K: Ord + Clone, V: Clone> M0<K, V> {
    /// Creates an empty map.
    pub fn new() -> Self {
        M0 {
            segments: Vec::new(),
            meter_total: Cost::ZERO,
        }
    }

    /// Number of items stored.
    pub fn len(&self) -> usize {
        self.segments.iter().map(RecencyMap::len).sum()
    }

    /// True if no items are stored.
    pub fn is_empty(&self) -> bool {
        self.segments.iter().all(RecencyMap::is_empty)
    }

    /// Number of segments currently allocated.
    pub fn num_segments(&self) -> usize {
        self.segments.len()
    }

    /// Non-adjusting lookup (does not count as an access and charges no cost);
    /// used by tests to inspect the map.
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.segments.iter().find_map(|s| s.get(key))
    }

    /// The index of the segment currently holding `key`, if present.
    pub fn segment_of(&self, key: &K) -> Option<usize> {
        self.segments.iter().position(|s| s.contains(key))
    }

    fn charge(&mut self, c: Cost) {
        self.meter_total += c;
    }

    /// Searches for `key`.  On success the item is promoted one segment
    /// forward (or to the front of `S[0]`), per Section 5.
    pub fn access(&mut self, key: &K) -> (Option<V>, Cost) {
        let mut cost = Cost::ZERO;
        let mut found_at: Option<usize> = None;
        for (k, seg) in self.segments.iter().enumerate() {
            cost += tcost::single_op(seg.len() as u64);
            if seg.contains(key) {
                found_at = Some(k);
                break;
            }
        }
        let Some(k) = found_at else {
            self.charge(cost);
            return (None, cost);
        };
        let val = self.segments[k].remove(key).expect("item located above");
        if k == 0 {
            // Move to the front of S[0].
            cost += tcost::single_op(self.segments[0].len() as u64);
            self.segments[0].insert_front(key.clone(), val.clone());
        } else {
            // Move to the front of S[k-1]; shift the least recent item of
            // S[k-1] to the front of S[k].
            cost += tcost::single_op(self.segments[k - 1].len() as u64);
            self.segments[k - 1].insert_front(key.clone(), val.clone());
            if self.segments[k - 1].len() as u64 > segment_capacity((k - 1) as u32) {
                let shifted = self.segments[k - 1].take_back(1);
                cost += tcost::transfer(1, self.segments[k - 1].len() as u64 + 1);
                self.segments[k].push_front_batch(shifted);
            }
        }
        self.charge(cost);
        (Some(val), cost)
    }

    /// Inserts an item at the back of the last segment (creating a new
    /// terminal segment if the last one is full).  Replacing an existing key
    /// is treated as an access that also updates the value.
    pub fn insert_item(&mut self, key: K, val: V) -> (Option<V>, Cost) {
        if self.peek(&key).is_some() {
            // Update: access (promotes the item) and overwrite its value.
            let (old, mut cost) = self.access(&key);
            let seg = self
                .segments
                .iter_mut()
                .find(|s| s.contains(&key))
                .expect("item present after successful access");
            if let Some(slot) = seg.get_mut(&key) {
                *slot = val;
            }
            cost += Cost::UNIT;
            self.charge(Cost::UNIT);
            return (old, cost);
        }
        let mut cost = Cost::ZERO;
        if self.segments.is_empty() {
            self.segments.push(RecencyMap::new());
            cost += Cost::UNIT;
        }
        let last = self.segments.len() - 1;
        if self.segments[last].len() as u64 >= segment_capacity(last as u32) {
            self.segments.push(RecencyMap::new());
            cost += Cost::UNIT;
        }
        let last = self.segments.len() - 1;
        cost += tcost::single_op(self.segments[last].len() as u64);
        self.segments[last].insert_back(key, val);
        self.charge(cost);
        (None, cost)
    }

    /// Removes an item.  Holes are refilled by pulling the most recent item of
    /// each later segment to the back of the previous one, per Section 5.
    pub fn remove_item(&mut self, key: &K) -> (Option<V>, Cost) {
        let mut cost = Cost::ZERO;
        let mut found_at: Option<usize> = None;
        for (k, seg) in self.segments.iter().enumerate() {
            cost += tcost::single_op(seg.len() as u64);
            if seg.contains(key) {
                found_at = Some(k);
                break;
            }
        }
        let Some(k) = found_at else {
            self.charge(cost);
            return (None, cost);
        };
        let val = self.segments[k].remove(key);
        // Refill the hole: for i in [k .. l-1], move the most recent item of
        // S[i+1] to the back of S[i].
        let l = self.segments.len();
        for i in k..l.saturating_sub(1) {
            let pulled = self.segments[i + 1].take_front(1);
            cost += tcost::transfer(1, self.segments[i + 1].len() as u64 + 1);
            self.segments[i].push_back_batch(pulled);
        }
        // Drop a now-empty terminal segment.
        while matches!(self.segments.last(), Some(s) if s.is_empty()) {
            self.segments.pop();
        }
        self.charge(cost);
        (val, cost)
    }

    /// Items of the whole map in working-set order (segment order, then
    /// recency within each segment) — the abstract list `R` of the Working-Set
    /// Cost Lemma.  Intended for tests.
    pub fn items_in_working_set_order(&self) -> Vec<K> {
        let mut out = Vec::with_capacity(self.len());
        for seg in &self.segments {
            out.extend(seg.items_in_recency_order().into_iter().map(|(k, _)| k));
        }
        out
    }

    /// Checks the structural invariants of Section 5: every segment except the
    /// last is exactly full, and every segment's key-map, arena and recency
    /// list agree.
    pub fn check_invariants(&self)
    where
        K: std::fmt::Debug,
    {
        for (k, seg) in self.segments.iter().enumerate() {
            seg.check_invariants();
            if k + 1 < self.segments.len() {
                assert_eq!(
                    seg.len() as u64,
                    segment_capacity(k as u32),
                    "segment {k} must be exactly full"
                );
            } else {
                assert!(
                    seg.len() as u64 <= segment_capacity(k as u32),
                    "terminal segment over capacity"
                );
                assert!(!seg.is_empty() || self.segments.len() == 1 || self.segments.is_empty());
            }
        }
    }

    /// Total cost charged so far.
    pub fn total(&self) -> Cost {
        self.meter_total
    }

    /// Produces a [`CostMeter`] snapshot (for uniformity with the parallel
    /// structures in the harness).
    pub fn meter_snapshot(&self) -> CostMeter {
        let mut m = CostMeter::new();
        m.charge(self.meter_total);
        m
    }
}

impl<K: Ord + Clone, V: Clone> InstrumentedMap<K, V> for M0<K, V> {
    fn search(&mut self, key: &K) -> (Option<V>, Cost) {
        self.access(key)
    }
    fn insert(&mut self, key: K, val: V) -> (Option<V>, Cost) {
        self.insert_item(key, val)
    }
    fn remove(&mut self, key: &K) -> (Option<V>, Cost) {
        self.remove_item(key)
    }
    fn len(&self) -> usize {
        M0::len(self)
    }
    fn total_cost(&self) -> Cost {
        self.meter_total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn insert_search_remove_roundtrip() {
        let mut m = M0::new();
        for i in 0..100u64 {
            let (prev, _) = m.insert_item(i, i * 10);
            assert_eq!(prev, None);
            m.check_invariants();
        }
        assert_eq!(m.len(), 100);
        for i in 0..100u64 {
            let (v, _) = m.access(&i);
            assert_eq!(v, Some(i * 10));
            m.check_invariants();
        }
        for i in (0..100u64).step_by(2) {
            let (v, _) = m.remove_item(&i);
            assert_eq!(v, Some(i * 10));
            m.check_invariants();
        }
        assert_eq!(m.len(), 50);
        let (missing, _) = m.access(&0);
        assert_eq!(missing, None);
    }

    #[test]
    fn update_promotes_and_overwrites() {
        let mut m = M0::new();
        for i in 0..50u64 {
            m.insert_item(i, i);
        }
        let (prev, _) = m.insert_item(7, 700);
        assert_eq!(prev, Some(7));
        assert_eq!(m.peek(&7), Some(&700));
        assert_eq!(m.len(), 50);
        m.check_invariants();
    }

    #[test]
    fn repeated_access_moves_item_forward() {
        let mut m = M0::new();
        for i in 0..1000u64 {
            m.insert_item(i, i);
        }
        // Insertions go to the back of the terminal segment, so a recently
        // inserted item sits in a late segment.
        let before = m.segment_of(&999).unwrap();
        assert!(before >= 2, "expected item 999 deep in the structure");
        // Access it repeatedly: each access moves it exactly one segment
        // forward until it reaches S[0].
        for step in 1..=before {
            m.access(&999);
            m.check_invariants();
            assert_eq!(m.segment_of(&999), Some(before - step));
        }
        assert_eq!(m.segment_of(&999), Some(0));
    }

    #[test]
    fn hot_items_are_cheap_cold_items_expensive() {
        let mut m = M0::new();
        let n = 4096u64;
        for i in 0..n {
            m.insert_item(i, i);
        }
        // Warm up: access item 1 twice so it is at the very front.
        m.access(&1);
        m.access(&1);
        let (_, hot_cost) = m.access(&1);
        // A cold item (inserted late, never accessed) sits in the last
        // segment.
        let (_, cold_cost) = m.access(&(n - 10));
        assert!(
            hot_cost.work * 3 < cold_cost.work,
            "hot access ({}) should be much cheaper than cold access ({})",
            hot_cost.work,
            cold_cost.work
        );
    }

    #[test]
    fn working_set_order_has_accessed_items_first() {
        let mut m = M0::new();
        for i in 0..20u64 {
            m.insert_item(i, i);
        }
        m.access(&15);
        m.access(&17);
        let order = m.items_in_working_set_order();
        // The two accessed items must be within the first segment-capacity
        // positions (segment 0 has capacity 2).
        assert!(order[..2].contains(&15) || order[..4].contains(&15));
        assert!(order[..4].contains(&17));
    }

    #[test]
    fn unsuccessful_search_costs_log_n() {
        let mut m = M0::new();
        for i in 0..(1 << 12) as u64 {
            m.insert_item(i, i);
        }
        let (res, cost) = m.access(&(1 << 20));
        assert_eq!(res, None);
        // Must be O(log n): generously under 40 * log2(n).
        assert!(
            cost.work < 40 * 12,
            "unsuccessful search too expensive: {cost}"
        );
    }

    #[test]
    fn deletion_refills_holes_keeping_segments_full() {
        let mut m = M0::new();
        for i in 0..300u64 {
            m.insert_item(i, i);
        }
        for i in 100..200u64 {
            m.remove_item(&i);
            m.check_invariants();
        }
        assert_eq!(m.len(), 200);
    }

    #[test]
    fn total_cost_accumulates() {
        let mut m = M0::new();
        assert_eq!(m.total(), Cost::ZERO);
        m.insert_item(1u64, 1u64);
        m.insert_item(2, 2);
        m.access(&1);
        assert!(m.total().work > 0);
        assert_eq!(m.total(), InstrumentedMap::total_cost(&m));
    }
}
