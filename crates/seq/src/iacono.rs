//! Iacono's sequential working-set structure \[29\] (paper Section 3).
//!
//! The structure is a sequence of balanced trees `t_0, t_1, …, t_l` where tree
//! `t_k` holds `2^(2^k)` items, so its height is `Θ(2^k)`.  The invariant is
//! that the `r` most recently accessed items live in the first `O(log log r)`
//! trees.  A search scans the trees in order; when the key is found in `t_k`
//! the item is moved to the *front of the whole structure* (`t_0`) and, for
//! every `i < k`, the least recently accessed item of `t_i` is demoted to
//! `t_{i+1}`.  Accessing an item with recency `r` therefore costs
//! `O(log r + 1)`, insertions and deletions cost `O(log n + 1)`.
//!
//! The difference from [`crate::M0`] is the *global* move-to-front: M0 only
//! promotes by one segment.  Both satisfy the working-set bound; Iacono's
//! structure is used as the dictionary inside ESort (Definition 29).

use crate::{segment_capacity, InstrumentedMap};
use wsm_model::Cost;
use wsm_twothree::{cost as tcost, RecencyMap};

/// Iacono's working-set structure.
#[derive(Clone, Debug, Default)]
pub struct IaconoMap<K, V> {
    trees: Vec<RecencyMap<K, V>>,
    total: Cost,
}

impl<K: Ord + Clone, V: Clone> IaconoMap<K, V> {
    /// Creates an empty structure.
    pub fn new() -> Self {
        IaconoMap {
            trees: Vec::new(),
            total: Cost::ZERO,
        }
    }

    /// Number of items stored.
    pub fn len(&self) -> usize {
        self.trees.iter().map(RecencyMap::len).sum()
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.trees.iter().all(RecencyMap::is_empty)
    }

    /// Number of trees currently allocated.
    pub fn num_trees(&self) -> usize {
        self.trees.len()
    }

    /// Non-adjusting lookup, charging no cost (for tests).
    pub fn peek(&self, key: &K) -> Option<&V> {
        self.trees.iter().find_map(|t| t.get(key))
    }

    /// Non-adjusting mutable lookup, charging no cost.  Used by ESort to
    /// append to the tag list of an item that was just accessed.
    pub fn peek_mut(&mut self, key: &K) -> Option<&mut V> {
        self.trees.iter_mut().find_map(|t| t.get_mut(key))
    }

    /// The index of the tree currently holding `key`.
    pub fn tree_of(&self, key: &K) -> Option<usize> {
        self.trees.iter().position(|t| t.contains(key))
    }

    fn ensure_tree(&mut self, idx: usize) {
        while self.trees.len() <= idx {
            self.trees.push(RecencyMap::new());
        }
    }

    /// Restores the capacity invariant by demoting the least recent item of
    /// every overfull tree to the next tree.  Returns the cost of the
    /// demotions.
    fn cascade_overflow(&mut self, from: usize) -> Cost {
        let mut cost = Cost::ZERO;
        let mut i = from;
        while i < self.trees.len() {
            if self.trees[i].len() as u64 > segment_capacity(i as u32) {
                let demoted = self.trees[i].take_back(1);
                cost += tcost::transfer(1, self.trees[i].len() as u64 + 1);
                self.ensure_tree(i + 1);
                self.trees[i + 1].push_front_batch(demoted);
            }
            i += 1;
        }
        cost
    }

    /// Searches for (accesses) `key`.  On success the item moves to the front
    /// of `t_0` and one item is demoted from each earlier tree.
    pub fn access(&mut self, key: &K) -> (Option<V>, Cost) {
        let mut cost = Cost::ZERO;
        let mut found_at = None;
        for (k, tree) in self.trees.iter().enumerate() {
            cost += tcost::single_op(tree.len() as u64);
            if tree.contains(key) {
                found_at = Some(k);
                break;
            }
        }
        let Some(k) = found_at else {
            self.total += cost;
            return (None, cost);
        };
        let val = self.trees[k].remove(key).expect("located above");
        cost += tcost::single_op(segment_capacity(k as u32).min(1 << 20));
        self.ensure_tree(0);
        self.trees[0].insert_front(key.clone(), val.clone());
        cost += tcost::single_op(self.trees[0].len() as u64);
        // Demote one item from every tree t_i with i < k that is now over
        // capacity (t_0 gained an item; the cascade stops at the tree the item
        // came from, which now has a free slot).
        cost += self.cascade_overflow(0);
        self.total += cost;
        (Some(val), cost)
    }

    /// Inserts an item; it becomes the most recently accessed item.  Replacing
    /// an existing key is treated as an access plus a value update.
    pub fn insert_item(&mut self, key: K, val: V) -> (Option<V>, Cost) {
        if self.peek(&key).is_some() {
            let (old, mut cost) = self.access(&key);
            if let Some(slot) = self.trees.iter_mut().find_map(|t| t.get_mut(&key)) {
                *slot = val;
            }
            cost += Cost::UNIT;
            self.total += Cost::UNIT;
            return (old, cost);
        }
        let mut cost = Cost::ZERO;
        self.ensure_tree(0);
        self.trees[0].insert_front(key, val);
        cost += tcost::single_op(self.trees[0].len() as u64);
        cost += self.cascade_overflow(0);
        // Charge the full O(log n) insertion cost (Definition 1: insertions
        // have access rank n + 1).
        cost += tcost::single_op(self.len() as u64);
        self.total += cost;
        (None, cost)
    }

    /// Removes an item, pulling one item forward from each later tree to
    /// refill the hole.
    pub fn remove_item(&mut self, key: &K) -> (Option<V>, Cost) {
        let mut cost = Cost::ZERO;
        let mut found_at = None;
        for (k, tree) in self.trees.iter().enumerate() {
            cost += tcost::single_op(tree.len() as u64);
            if tree.contains(key) {
                found_at = Some(k);
                break;
            }
        }
        let Some(k) = found_at else {
            self.total += cost;
            return (None, cost);
        };
        let val = self.trees[k].remove(key);
        let l = self.trees.len();
        for i in k..l.saturating_sub(1) {
            let pulled = self.trees[i + 1].take_front(1);
            cost += tcost::transfer(1, self.trees[i + 1].len() as u64 + 1);
            self.trees[i].push_back_batch(pulled);
        }
        while matches!(self.trees.last(), Some(t) if t.is_empty()) {
            self.trees.pop();
        }
        cost += tcost::single_op(self.len() as u64);
        self.total += cost;
        (val, cost)
    }

    /// The items of each tree in key-sorted order, one vector per tree from
    /// `t_0` upward.  ESort (Definition 29) uses this to construct the sorted
    /// list of each segment before merging them in order of increasing
    /// capacity.
    pub fn trees_items_sorted(&self) -> Vec<Vec<(K, V)>> {
        self.trees
            .iter()
            .map(|t| {
                t.keys_sorted()
                    .into_iter()
                    .map(|k| {
                        let v = t.get(&k).expect("key listed by the tree").clone();
                        (k, v)
                    })
                    .collect()
            })
            .collect()
    }

    /// Checks that no tree exceeds its capacity and the internal maps agree.
    pub fn check_invariants(&self)
    where
        K: std::fmt::Debug,
    {
        for (k, tree) in self.trees.iter().enumerate() {
            tree.check_invariants();
            assert!(
                tree.len() as u64 <= segment_capacity(k as u32),
                "tree {k} over capacity: {} > {}",
                tree.len(),
                segment_capacity(k as u32)
            );
        }
    }

    /// Total cost charged so far.
    pub fn total(&self) -> Cost {
        self.total
    }
}

impl<K: Ord + Clone, V: Clone> InstrumentedMap<K, V> for IaconoMap<K, V> {
    fn search(&mut self, key: &K) -> (Option<V>, Cost) {
        self.access(key)
    }
    fn insert(&mut self, key: K, val: V) -> (Option<V>, Cost) {
        self.insert_item(key, val)
    }
    fn remove(&mut self, key: &K) -> (Option<V>, Cost) {
        self.remove_item(key)
    }
    fn len(&self) -> usize {
        IaconoMap::len(self)
    }
    fn total_cost(&self) -> Cost {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip() {
        let mut m = IaconoMap::new();
        for i in 0..200u64 {
            assert_eq!(m.insert_item(i, i).0, None);
            m.check_invariants();
        }
        assert_eq!(m.len(), 200);
        for i in 0..200u64 {
            assert_eq!(m.access(&i).0, Some(i));
        }
        m.check_invariants();
        for i in 0..200u64 {
            assert_eq!(m.remove_item(&i).0, Some(i));
            m.check_invariants();
        }
        assert!(m.is_empty());
    }

    #[test]
    fn accessed_item_moves_to_front_tree() {
        let mut m = IaconoMap::new();
        for i in 0..500u64 {
            m.insert_item(i, i);
        }
        // Item 0 was inserted first and then displaced by 499 later
        // insertions, so it lives in a late tree.
        let before = m.tree_of(&0).unwrap();
        assert!(before >= 2, "item 0 should be deep, found in tree {before}");
        m.access(&0);
        assert_eq!(m.tree_of(&0), Some(0), "Iacono moves accessed items to t_0");
        m.check_invariants();
    }

    #[test]
    fn working_set_property_recent_items_cheap() {
        let mut m = IaconoMap::new();
        let n = 4096u64;
        for i in 0..n {
            m.insert_item(i, i);
        }
        // The most recently inserted items are cheap to access again.
        let (_, recent) = m.access(&(n - 1));
        // An item untouched for n operations is expensive.
        let (_, old) = m.access(&0);
        assert!(
            recent.work * 2 < old.work,
            "recent {} vs old {}",
            recent.work,
            old.work
        );
    }

    #[test]
    fn insert_existing_updates_value() {
        let mut m = IaconoMap::new();
        m.insert_item(1u64, 10u64);
        let (prev, _) = m.insert_item(1, 20);
        assert_eq!(prev, Some(10));
        assert_eq!(m.peek(&1), Some(&20));
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn missing_key_operations() {
        let mut m: IaconoMap<u64, u64> = IaconoMap::new();
        assert_eq!(m.access(&5).0, None);
        assert_eq!(m.remove_item(&5).0, None);
        m.insert_item(1, 1);
        assert_eq!(m.access(&5).0, None);
        assert_eq!(m.remove_item(&5).0, None);
        assert_eq!(m.len(), 1);
    }

    #[test]
    fn total_cost_grows_with_operations() {
        let mut m = IaconoMap::new();
        for i in 0..100u64 {
            m.insert_item(i, i);
        }
        let after_inserts = m.total().work;
        for i in 0..100u64 {
            m.access(&i);
        }
        assert!(m.total().work > after_inserts);
    }
}
