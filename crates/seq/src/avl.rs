//! AVL tree baseline: a non-adaptive balanced binary search tree.
//!
//! Every operation costs `Θ(log n)` regardless of the access pattern, which is
//! exactly the behaviour the working-set structures improve upon for skewed
//! access sequences.  The experiment harness uses it (a) to demonstrate the
//! gap predicted by the working-set bound on high-locality workloads and (b)
//! as the "optimal static tree is no better than this on uniform workloads"
//! sanity point for the static-optimality corollary.

use crate::InstrumentedMap;
use std::cmp::Ordering;
use wsm_model::Cost;

#[derive(Clone, Debug)]
struct Node<K, V> {
    key: K,
    val: V,
    height: i32,
    left: Option<Box<Node<K, V>>>,
    right: Option<Box<Node<K, V>>>,
}

/// An AVL tree map with per-operation cost accounting (cost = nodes visited).
#[derive(Clone, Debug, Default)]
pub struct AvlMap<K, V> {
    root: Option<Box<Node<K, V>>>,
    len: usize,
    total: Cost,
}

fn height<K, V>(n: &Option<Box<Node<K, V>>>) -> i32 {
    n.as_ref().map_or(0, |n| n.height)
}

fn update<K, V>(n: &mut Box<Node<K, V>>) {
    n.height = 1 + height(&n.left).max(height(&n.right));
}

fn balance_factor<K, V>(n: &Node<K, V>) -> i32 {
    height(&n.left) - height(&n.right)
}

fn rotate_right<K, V>(mut n: Box<Node<K, V>>) -> Box<Node<K, V>> {
    let mut l = n.left.take().expect("rotate_right needs a left child");
    n.left = l.right.take();
    update(&mut n);
    l.right = Some(n);
    update(&mut l);
    l
}

fn rotate_left<K, V>(mut n: Box<Node<K, V>>) -> Box<Node<K, V>> {
    let mut r = n.right.take().expect("rotate_left needs a right child");
    n.right = r.left.take();
    update(&mut n);
    r.left = Some(n);
    update(&mut r);
    r
}

fn rebalance<K, V>(mut n: Box<Node<K, V>>) -> Box<Node<K, V>> {
    update(&mut n);
    let bf = balance_factor(&n);
    if bf > 1 {
        if balance_factor(n.left.as_ref().expect("bf>1 implies left")) < 0 {
            n.left = Some(rotate_left(n.left.take().unwrap()));
        }
        rotate_right(n)
    } else if bf < -1 {
        if balance_factor(n.right.as_ref().expect("bf<-1 implies right")) > 0 {
            n.right = Some(rotate_right(n.right.take().unwrap()));
        }
        rotate_left(n)
    } else {
        n
    }
}

fn insert_node<K: Ord, V>(
    n: Option<Box<Node<K, V>>>,
    key: K,
    val: V,
    steps: &mut u64,
) -> (Box<Node<K, V>>, Option<V>) {
    *steps += 1;
    match n {
        None => (
            Box::new(Node {
                key,
                val,
                height: 1,
                left: None,
                right: None,
            }),
            None,
        ),
        Some(mut n) => match key.cmp(&n.key) {
            Ordering::Equal => {
                let prev = std::mem::replace(&mut n.val, val);
                (n, Some(prev))
            }
            Ordering::Less => {
                let (child, prev) = insert_node(n.left.take(), key, val, steps);
                n.left = Some(child);
                (rebalance(n), prev)
            }
            Ordering::Greater => {
                let (child, prev) = insert_node(n.right.take(), key, val, steps);
                n.right = Some(child);
                (rebalance(n), prev)
            }
        },
    }
}

type TakeMinOut<K, V> = (Option<Box<Node<K, V>>>, Box<Node<K, V>>);

fn take_min<K, V>(mut n: Box<Node<K, V>>, steps: &mut u64) -> TakeMinOut<K, V> {
    *steps += 1;
    match n.left.take() {
        None => {
            let right = n.right.take();
            (right, n)
        }
        Some(left) => {
            let (rest, min) = take_min(left, steps);
            n.left = rest;
            (Some(rebalance(n)), min)
        }
    }
}

fn remove_node<K: Ord, V>(
    n: Option<Box<Node<K, V>>>,
    key: &K,
    steps: &mut u64,
) -> (Option<Box<Node<K, V>>>, Option<V>) {
    let Some(mut n) = n else {
        return (None, None);
    };
    *steps += 1;
    match key.cmp(&n.key) {
        Ordering::Less => {
            let (child, removed) = remove_node(n.left.take(), key, steps);
            n.left = child;
            (Some(rebalance(n)), removed)
        }
        Ordering::Greater => {
            let (child, removed) = remove_node(n.right.take(), key, steps);
            n.right = child;
            (Some(rebalance(n)), removed)
        }
        Ordering::Equal => {
            let left = n.left.take();
            let right = n.right.take();
            let val = n.val;
            match (left, right) {
                (None, r) => (r, Some(val)),
                (l, None) => (l, Some(val)),
                (Some(l), Some(r)) => {
                    let (rest, mut successor) = take_min(r, steps);
                    successor.left = Some(l);
                    successor.right = rest;
                    (Some(rebalance(successor)), Some(val))
                }
            }
        }
    }
}

impl<K: Ord + Clone, V: Clone> AvlMap<K, V> {
    /// Creates an empty AVL map.
    pub fn new() -> Self {
        AvlMap {
            root: None,
            len: 0,
            total: Cost::ZERO,
        }
    }

    /// Number of items.
    pub fn len(&self) -> usize {
        self.len
    }

    /// True if empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Height of the tree.
    pub fn height(&self) -> usize {
        height(&self.root) as usize
    }

    /// Looks up a key (counts as an access for cost purposes, but does not
    /// restructure: AVL trees are not self-adjusting).
    pub fn access(&mut self, key: &K) -> (Option<V>, Cost) {
        let mut steps = 1u64;
        let mut cur = self.root.as_deref();
        let mut found = None;
        while let Some(node) = cur {
            match key.cmp(&node.key) {
                Ordering::Equal => {
                    found = Some(node.val.clone());
                    break;
                }
                Ordering::Less => cur = node.left.as_deref(),
                Ordering::Greater => cur = node.right.as_deref(),
            }
            steps += 1;
        }
        let cost = Cost::serial(steps);
        self.total += cost;
        (found, cost)
    }

    /// Inserts a key/value pair.
    pub fn insert_item(&mut self, key: K, val: V) -> (Option<V>, Cost) {
        let mut steps = 0u64;
        let (root, prev) = insert_node(self.root.take(), key, val, &mut steps);
        self.root = Some(root);
        if prev.is_none() {
            self.len += 1;
        }
        let cost = Cost::serial(steps);
        self.total += cost;
        (prev, cost)
    }

    /// Removes a key.
    pub fn remove_item(&mut self, key: &K) -> (Option<V>, Cost) {
        let mut steps = 0u64;
        let (root, removed) = remove_node(self.root.take(), key, &mut steps);
        self.root = root;
        if removed.is_some() {
            self.len -= 1;
        }
        let cost = Cost::serial(steps.max(1));
        self.total += cost;
        (removed, cost)
    }

    /// Validates the AVL balance and BST ordering invariants.
    pub fn check_invariants(&self) {
        fn check<K: Ord, V>(
            n: &Option<Box<Node<K, V>>>,
            lo: Option<&K>,
            hi: Option<&K>,
        ) -> (i32, usize) {
            match n {
                None => (0, 0),
                Some(n) => {
                    if let Some(lo) = lo {
                        assert!(&n.key > lo, "BST order violated");
                    }
                    if let Some(hi) = hi {
                        assert!(&n.key < hi, "BST order violated");
                    }
                    let (hl, cl) = check(&n.left, lo, Some(&n.key));
                    let (hr, cr) = check(&n.right, Some(&n.key), hi);
                    assert!((hl - hr).abs() <= 1, "AVL balance violated");
                    assert_eq!(n.height, 1 + hl.max(hr), "cached height wrong");
                    (n.height, cl + cr + 1)
                }
            }
        }
        let (_, count) = check(&self.root, None, None);
        assert_eq!(count, self.len, "node count mismatch");
    }
}

impl<K: Ord + Clone, V: Clone> InstrumentedMap<K, V> for AvlMap<K, V> {
    fn search(&mut self, key: &K) -> (Option<V>, Cost) {
        self.access(key)
    }
    fn insert(&mut self, key: K, val: V) -> (Option<V>, Cost) {
        self.insert_item(key, val)
    }
    fn remove(&mut self, key: &K) -> (Option<V>, Cost) {
        self.remove_item(key)
    }
    fn len(&self) -> usize {
        self.len
    }
    fn total_cost(&self) -> Cost {
        self.total
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeMap;

    #[test]
    fn matches_btreemap_model() {
        let mut model: BTreeMap<u64, u64> = BTreeMap::new();
        let mut m = AvlMap::new();
        let mut state = 99u64;
        let mut next = || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..3000 {
            let key = next() % 300;
            match next() % 3 {
                0 => {
                    let v = next();
                    assert_eq!(m.insert_item(key, v).0, model.insert(key, v));
                }
                1 => assert_eq!(m.access(&key).0, model.get(&key).copied()),
                _ => assert_eq!(m.remove_item(&key).0, model.remove(&key)),
            }
            assert_eq!(m.len(), model.len());
        }
        m.check_invariants();
    }

    #[test]
    fn height_stays_logarithmic() {
        let mut m = AvlMap::new();
        let n = 1 << 14;
        for i in 0..n as u64 {
            m.insert_item(i, i);
        }
        m.check_invariants();
        // AVL height <= 1.45 log2(n+2).
        assert!(
            (m.height() as f64) <= 1.45 * ((n + 2) as f64).log2() + 1.0,
            "AVL height {} too large",
            m.height()
        );
    }

    #[test]
    fn sorted_and_reverse_insertions_balance() {
        let mut asc = AvlMap::new();
        let mut desc = AvlMap::new();
        for i in 0..1000u64 {
            asc.insert_item(i, i);
            desc.insert_item(1000 - i, i);
        }
        asc.check_invariants();
        desc.check_invariants();
        assert!(asc.height() <= 15);
        assert!(desc.height() <= 15);
    }

    #[test]
    fn all_accesses_cost_log_n() {
        let mut m = AvlMap::new();
        for i in 0..(1 << 12) as u64 {
            m.insert_item(i, i);
        }
        // Non-adaptive: repeated access to the same key never gets cheaper
        // than the depth of that key.
        let (_, c1) = m.access(&1234);
        let (_, c2) = m.access(&1234);
        assert_eq!(c1, c2);
        assert!(c1.work >= 2, "an AVL access touches Θ(log n) nodes");
    }

    #[test]
    fn remove_from_empty_and_missing() {
        let mut m: AvlMap<u64, u64> = AvlMap::new();
        assert_eq!(m.remove_item(&1).0, None);
        m.insert_item(1, 1);
        assert_eq!(m.remove_item(&2).0, None);
        assert_eq!(m.len(), 1);
    }
}
