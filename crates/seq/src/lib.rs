//! # wsm-seq — sequential search structures
//!
//! The sequential building blocks and baselines of the reproduction:
//!
//! * [`IaconoMap`] — Iacono's working-set structure \[29\]: a sequence of
//!   balanced trees `t_1, t_2, …` where `t_i` holds `2^(2^i)` items and the
//!   `r` most recently accessed items live in the first `log log r` trees.
//!   Accessing an item of recency `r` costs `O(log r + 1)`.  ESort (in
//!   `wsm-sort`) uses it as its dictionary.
//! * [`M0`] — the paper's amortized sequential working-set map (Section 5):
//!   like Iacono's structure but an accessed item only moves forward by one
//!   segment, which is the localisation of self-adjustment that M2's
//!   pipelining builds on.  Theorem 7: its total cost satisfies the
//!   working-set bound.
//! * [`SplayMap`] — a classic top-down splay tree \[37\], the canonical
//!   sequential self-adjusting baseline.
//! * [`AvlMap`] — a non-adaptive balanced baseline (every access costs
//!   `Θ(log n)` regardless of locality).
//!
//! Every structure implements [`InstrumentedMap`], returning a
//! [`wsm_model::Cost`] per operation so the experiment harness can compare
//! measured work against the working-set bound `W_L`.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod avl;
pub mod iacono;
pub mod m0;
pub mod splay;

pub use avl::AvlMap;
pub use iacono::IaconoMap;
pub use m0::M0;
pub use splay::SplayMap;

use wsm_model::Cost;

/// A sequential map instrumented with per-operation cost accounting.
///
/// `search` is an *access*: on self-adjusting structures it restructures the
/// map (working-set promotion, splaying); on the AVL baseline it is a plain
/// lookup.  All three operations return the affected value (previous value for
/// `insert`, found value for `search`/`remove`) and the cost charged.
pub trait InstrumentedMap<K, V> {
    /// Searches for (accesses) a key.
    fn search(&mut self, key: &K) -> (Option<V>, Cost);
    /// Inserts a key/value pair, returning the previous value if any.
    fn insert(&mut self, key: K, val: V) -> (Option<V>, Cost);
    /// Removes a key, returning its value if present.
    fn remove(&mut self, key: &K) -> (Option<V>, Cost);
    /// Number of items currently stored.
    fn len(&self) -> usize;
    /// True if the map is empty.
    fn is_empty(&self) -> bool {
        self.len() == 0
    }
    /// Total cost charged since construction.
    fn total_cost(&self) -> Cost;
}

/// Capacity of segment `k` of a working-set structure: `2^(2^k)`, saturating
/// at `u64::MAX` to avoid overflow for large `k`.
pub fn segment_capacity(k: u32) -> u64 {
    let exp = 1u64.checked_shl(k).unwrap_or(u64::MAX);
    if exp >= 63 {
        u64::MAX
    } else {
        1u64 << exp
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn segment_capacities() {
        assert_eq!(segment_capacity(0), 2);
        assert_eq!(segment_capacity(1), 4);
        assert_eq!(segment_capacity(2), 16);
        assert_eq!(segment_capacity(3), 256);
        assert_eq!(segment_capacity(4), 65536);
        assert_eq!(segment_capacity(5), 1 << 32);
        assert_eq!(segment_capacity(6), u64::MAX);
        assert_eq!(segment_capacity(40), u64::MAX);
    }
}
